"""Fleet-scale benchmark: columnar FleetState vs object-per-node.

Sweeps the collection stage over fleet sizes N ∈ {1k, 10k, 100k, 1M}
and compares the execution paths on the same trace:

* **object loop** — the pre-refactor architecture: one ``LocalNode``
  Python object per node, slot-by-slot ``observe``/``send``/``apply``
  (``CollectionSimulation._run_object_loop``).  Skipped beyond
  N = 10k, where it would take minutes.
* **columnar** — the FleetState path: the whole-fleet Lyapunov
  recurrence over the ``(N,)``/``(N, d)`` columns (``collect``).
* **sharded** — the columnar path partitioned into 4 contiguous node
  shards in-process and merged back, pinned bit-identical to
  single-shard.
* **shm pool** — the shards serviced by persistent
  :class:`~repro.simulation.shard_pool.ShardPool` workers over
  ``multiprocessing.shared_memory``: the trace and result columns are
  shared segments, requests never pickle array data.
* **pickle pool** — the legacy ``ProcessPoolExecutor`` path
  (``pool="pickle"``) that serializes every shard's slice and results;
  measured up to N = 100k as the regression reference.

Asserts the acceptance bars: the columnar path is at least 5× faster
than the object-per-node path at the largest N the reference still
runs; the shared-memory pool is bit-identical to columnar everywhere,
never slower than the pickle pool at the largest common N, and — on a
multi-core box — faster than single-process columnar at N = 1M.

Quick mode — ``REPRO_BENCH_QUICK=1`` — runs only the N = 1k case
(including a shared-memory pool smoke), for CI.
"""

import os
import time

import numpy as np
import pytest

from repro.api import Engine
from repro.core.config import PipelineConfig, TransmissionConfig
from repro.core.types import validate_trace
from repro.simulation.collection import CollectionSimulation, collect
from repro.transmission.adaptive import AdaptiveTransmissionPolicy

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
FLEET_SIZES = (
    (1_000,) if QUICK else (1_000, 10_000, 100_000, 1_000_000)
)
OBJECT_LOOP_MAX_N = 10_000  # beyond this the reference path is minutes
PICKLE_POOL_MAX_N = 100_000  # beyond this pickling the trace is minutes
NUM_STEPS = 40
SHARDS = 4
WORKERS = min(SHARDS, os.cpu_count() or 1)
BUDGET = 0.3
MULTI_CORE = (os.cpu_count() or 1) >= 2


def _timeit(fn, *, repeats=3):
    """Best-of-N wall time of ``fn()`` (first call included in timing)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _trace(num_nodes, rng):
    steps = np.cumsum(
        rng.normal(0, 0.02, size=(NUM_STEPS, num_nodes)), axis=0
    )
    return np.clip(0.5 + steps, 0, 1)


@pytest.mark.slow
def test_bench_fleet_scale(record_result):
    rng = np.random.default_rng(0)
    config = TransmissionConfig(budget=BUDGET)
    engine = Engine(PipelineConfig(transmission=config))
    lines = [
        f"collection stage, T={NUM_STEPS} slots, adaptive policy "
        f"(budget {BUDGET}), {SHARDS}-way sharding, "
        f"{WORKERS} pool workers ({os.cpu_count()} cpu)",
        "",
        f"{'N':>8}  {'object/node s':>13}  {'columnar s':>10}  "
        f"{'sharded s':>9}  {'shm pool s':>10}  {'pickle s':>9}  "
        f"{'col speedup':>11}",
        f"{'-' * 8}  {'-' * 13}  {'-' * 10}  {'-' * 9}  {'-' * 10}  "
        f"{'-' * 9}  {'-' * 11}",
    ]
    speedups = {}
    rows = []
    pool_times = {}

    for num_nodes in FLEET_SIZES:
        trace = _trace(num_nodes, rng)
        data = validate_trace(trace)
        repeats = 2 if num_nodes >= 1_000_000 else 3

        columnar_s, columnar = _timeit(
            lambda: collect(trace, config), repeats=repeats
        )

        sharded_s, sharded = _timeit(
            lambda: engine._collect_sharded(data, SHARDS, None),
            repeats=repeats,
        )
        np.testing.assert_array_equal(
            columnar.decisions, sharded[0].decisions
        )
        np.testing.assert_array_equal(columnar.stored, sharded[0].stored)

        # Persistent shared-memory workers (pool startup included —
        # that's the real cost an Engine.run caller pays).
        shm_s, shm = _timeit(
            lambda: engine._collect_sharded(data, SHARDS, WORKERS, "shared"),
            repeats=repeats,
        )
        np.testing.assert_array_equal(columnar.decisions, shm[0].decisions)
        np.testing.assert_array_equal(columnar.stored, shm[0].stored)

        if num_nodes <= PICKLE_POOL_MAX_N and not QUICK:
            pickle_s, pickled = _timeit(
                lambda: engine._collect_sharded(
                    data, SHARDS, WORKERS, "pickle"
                ),
                repeats=repeats,
            )
            np.testing.assert_array_equal(
                columnar.stored, pickled[0].stored
            )
            pool_times[num_nodes] = (shm_s, pickle_s)
            pickle_part = f"{pickle_s:>9.4f}"
        else:
            pickle_s = None
            pickle_part = f"{'—':>9}"

        if num_nodes <= OBJECT_LOOP_MAX_N:

            def run_object_loop():
                sim = CollectionSimulation(
                    num_nodes,
                    lambda i: AdaptiveTransmissionPolicy(config),
                )
                return sim._run_object_loop(data.copy())

            object_s, object_result = _timeit(run_object_loop, repeats=1)
            np.testing.assert_array_equal(
                columnar.decisions, object_result.decisions
            )
            np.testing.assert_array_equal(
                columnar.stored, object_result.stored
            )
            speedups[num_nodes] = object_s / columnar_s
            object_part = f"{object_s:>13.3f}"
            speedup_part = f"{speedups[num_nodes]:>10.1f}x"
        else:
            object_s = None
            object_part = f"{'(skipped)':>13}"
            speedup_part = f"{'—':>11}"

        lines.append(
            f"{num_nodes:>8}  {object_part}  {columnar_s:>10.4f}  "
            f"{sharded_s:>9.4f}  {shm_s:>10.4f}  {pickle_part}  "
            f"{speedup_part}"
        )
        rows.append(
            {
                "num_nodes": num_nodes,
                "object_s": object_s,
                "columnar_s": columnar_s,
                "sharded_inprocess_s": sharded_s,
                "shm_pool_s": shm_s,
                "pickle_pool_s": pickle_s,
                "columnar_speedup": speedups.get(num_nodes),
            }
        )

    lines += [
        "",
        "sharded (K=4) and both worker pools are pinned bit-identical "
        "to single-shard; beyond",
        "N=10k the object-per-node path is skipped (it scales as N·T "
        "Python calls — the very",
        "bottleneck FleetState removes), and beyond N=100k the pickle "
        "pool is skipped (it",
        "serializes the full trace per run — the very bottleneck the "
        "shared-memory pool removes).",
    ]
    record_result(
        "fleet_scale",
        "\n".join(lines),
        data={
            "num_steps": NUM_STEPS,
            "shards": SHARDS,
            "workers": WORKERS,
            "cpu_count": os.cpu_count(),
            "budget": BUDGET,
            "rows": rows,
        },
    )

    # Acceptance bar 1: >= 5x over the object-per-node path at the
    # largest fleet the reference can still run.
    gate = max(n for n in speedups)
    assert speedups[gate] >= 5.0, (
        f"expected >= 5x columnar speedup at N={gate}, got "
        f"{speedups[gate]:.1f}x"
    )

    # Acceptance bar 2: the shared-memory pool never regresses against
    # the legacy pickle pool at the largest N both ran (same workers,
    # same shards — the only difference is how arrays cross processes).
    if pool_times:
        gate = max(pool_times)
        shm_s, pickle_s = pool_times[gate]
        assert shm_s <= pickle_s * 1.5, (
            f"shared-memory pool regressed vs pickle pool at N={gate}: "
            f"{shm_s:.3f}s vs {pickle_s:.3f}s"
        )

    # Acceptance bar 3: with real parallelism available, the
    # shared-memory sharded path beats single-process columnar at the
    # top of the ladder.  On a single-core box the workers time-slice
    # one CPU, so the comparison is meaningless and skipped.
    top = FLEET_SIZES[-1]
    if MULTI_CORE and top >= 1_000_000:
        top_row = rows[-1]
        assert top_row["shm_pool_s"] < top_row["columnar_s"], (
            f"shared-memory pool ({top_row['shm_pool_s']:.3f}s) did not "
            f"beat single-process columnar "
            f"({top_row['columnar_s']:.3f}s) at N={top}"
        )
