"""Fleet-scale benchmark: columnar FleetState vs object-per-node.

Sweeps the collection stage over fleet sizes N ∈ {1k, 10k, 100k} and
compares three execution paths on the same trace:

* **object loop** — the pre-refactor architecture: one ``LocalNode``
  Python object per node, slot-by-slot ``observe``/``send``/``apply``
  (``CollectionSimulation._run_object_loop``).  Skipped at N = 100k,
  where it would take minutes.
* **columnar** — the FleetState path: the whole-fleet Lyapunov
  recurrence over the ``(N,)``/``(N, d)`` columns (``collect``).
* **sharded** — the columnar path partitioned into 4 contiguous node
  shards and merged back (``Engine.run``'s collection stage), pinned
  bit-identical to single-shard.

Asserts the refactor's acceptance bar: the columnar path is at least
5× faster than the object-per-node path at N = 10k (N = 1k in quick
mode, where the margin is even wider).

Quick mode — ``REPRO_BENCH_QUICK=1`` — runs only the N = 1k case, for
CI smoke.
"""

import os
import time

import numpy as np
import pytest

from repro.api import Engine
from repro.core.config import PipelineConfig, TransmissionConfig
from repro.core.types import validate_trace
from repro.simulation.collection import CollectionSimulation, collect
from repro.transmission.adaptive import AdaptiveTransmissionPolicy

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
FLEET_SIZES = (1_000,) if QUICK else (1_000, 10_000, 100_000)
OBJECT_LOOP_MAX_N = 10_000  # beyond this the reference path is minutes
NUM_STEPS = 40
SHARDS = 4
BUDGET = 0.3


def _timeit(fn, *, repeats=3):
    """Best-of-N wall time of ``fn()`` (first call included in timing)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _trace(num_nodes, rng):
    steps = np.cumsum(
        rng.normal(0, 0.02, size=(NUM_STEPS, num_nodes)), axis=0
    )
    return np.clip(0.5 + steps, 0, 1)


@pytest.mark.slow
def test_bench_fleet_scale(record_result):
    rng = np.random.default_rng(0)
    config = TransmissionConfig(budget=BUDGET)
    engine = Engine(PipelineConfig(transmission=config))
    lines = [
        f"collection stage, T={NUM_STEPS} slots, adaptive policy "
        f"(budget {BUDGET}), {SHARDS}-way sharding",
        "",
        f"{'N':>7}  {'object/node s':>13}  {'columnar s':>10}  "
        f"{'sharded s':>9}  {'col speedup':>11}",
        f"{'-' * 7}  {'-' * 13}  {'-' * 10}  {'-' * 9}  {'-' * 11}",
    ]
    speedups = {}

    for num_nodes in FLEET_SIZES:
        trace = _trace(num_nodes, rng)
        data = validate_trace(trace)

        columnar_s, columnar = _timeit(lambda: collect(trace, config))

        sharded_s, sharded = _timeit(
            lambda: engine._collect_sharded(data, SHARDS, None)
        )
        np.testing.assert_array_equal(
            columnar.decisions, sharded[0].decisions
        )
        np.testing.assert_array_equal(columnar.stored, sharded[0].stored)

        if num_nodes <= OBJECT_LOOP_MAX_N:

            def run_object_loop():
                sim = CollectionSimulation(
                    num_nodes,
                    lambda i: AdaptiveTransmissionPolicy(config),
                )
                return sim._run_object_loop(data.copy())

            object_s, object_result = _timeit(run_object_loop, repeats=1)
            np.testing.assert_array_equal(
                columnar.decisions, object_result.decisions
            )
            np.testing.assert_array_equal(
                columnar.stored, object_result.stored
            )
            speedups[num_nodes] = object_s / columnar_s
            object_part = f"{object_s:>13.3f}"
            speedup_part = f"{speedups[num_nodes]:>10.1f}x"
        else:
            object_part = f"{'(skipped)':>13}"
            speedup_part = f"{'—':>11}"

        lines.append(
            f"{num_nodes:>7}  {object_part}  {columnar_s:>10.4f}  "
            f"{sharded_s:>9.4f}  {speedup_part}"
        )

    lines += [
        "",
        "sharded (K=4) is pinned bit-identical to single-shard; at "
        "N=100k the object-per-node",
        "path is skipped (it scales as N·T Python calls — the very "
        "bottleneck FleetState removes).",
    ]
    record_result("fleet_scale", "\n".join(lines))

    # Acceptance bar: >= 5x over the object-per-node path at the
    # largest fleet the reference can still run.
    gate = max(n for n in speedups)
    assert speedups[gate] >= 5.0, (
        f"expected >= 5x columnar speedup at N={gate}, got "
        f"{speedups[gate]:.1f}x"
    )
