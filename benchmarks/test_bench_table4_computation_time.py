"""Table IV bench — per-scheme computation time in the Sec. VI-E setup."""

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.experiments import run_fig12


def test_bench_table4(benchmark, record_result):
    result = run_once(
        benchmark, run_fig12, num_nodes=100,
        train_steps=500, test_steps=500, monitor_counts=(25,),
    )
    rows = []
    for dataset in ("alibaba", "bitbrains", "google"):
        timing = result.timing_table(dataset)
        for scheme, seconds in sorted(timing.items()):
            rows.append([dataset, scheme, seconds])
    record_result(
        "table4_computation_time",
        format_table(["dataset", "scheme", "seconds"], rows, precision=4),
    )
    # Paper claims: the proposed scheme is far cheaper than Top-W-Update
    # (which re-estimates the covariance every step), and
    # minimum-distance is the cheapest of all.
    for dataset in ("alibaba", "bitbrains", "google"):
        timing = result.timing_table(dataset)
        assert timing["top_w_update"] > 3 * timing["proposed"], dataset
        assert timing["minimum_distance"] <= timing["proposed"], dataset
