"""Fig. 6 bench — intermediate RMSE vs transmission budget per method."""

from conftest import run_once

from repro.experiments import run_fig6


def test_bench_fig6(benchmark, record_result):
    result = run_once(benchmark, run_fig6, num_nodes=60, num_steps=700)
    record_result("fig6_rmse_vs_b", result.format())
    # Paper claims: proposed beats minimum-distance everywhere, and the
    # curve flattens by B ~ 0.3 (little gain from higher budgets).
    assert result.proposed_beats_minimum_distance() == 1.0
    budgets = list(result.budgets)
    b3 = budgets.index(0.3)
    for (dataset, resource, method), values in result.rmse.items():
        if method != "proposed":
            continue
        gain_after_03 = values[b3] - min(values[b3:])
        total_range = max(values) - min(values) + 1e-12
        assert gain_after_03 <= 0.5 * total_range, (dataset, resource)
