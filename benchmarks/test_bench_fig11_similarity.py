"""Fig. 11 bench — intersection similarity vs Jaccard index."""

from conftest import run_once

from repro.experiments import run_fig11


def test_bench_fig11(benchmark, record_result):
    result = run_once(
        benchmark, run_fig11, num_nodes=60, num_steps=700,
        horizons=(1, 5, 10, 25), start=100,
    )
    record_result("fig11_similarity", result.format())
    # Paper claim: the proposed measure is better than or similar to the
    # Jaccard index in all cases.
    assert result.proposed_not_worse(tolerance=0.01) >= 0.9
