"""Table II bench — aggregate model-training time (ARIMA vs LSTM)."""

from conftest import run_once

from repro.experiments import run_table2


def test_bench_table2(benchmark, record_result):
    result = run_once(
        benchmark, run_table2, num_nodes=40, num_steps=900,
        initial_collection=300, retrain_interval=200,
    )
    record_result("table2_training_time", result.format())
    # Paper claims: LSTM training is an order of magnitude slower than
    # ARIMA, and both are small relative to the monitoring duration.
    assert result.lstm_slower_everywhere()
    for per_model in result.seconds.values():
        assert per_model["lstm"] > 2 * per_model["arima"]
