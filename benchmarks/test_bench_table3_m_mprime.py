"""Table III bench — RMSE over the (M, M') look-back grid."""

from conftest import run_once

from repro.experiments import run_table3


def test_bench_table3(benchmark, record_result):
    result = run_once(
        benchmark, run_table3, num_nodes=60, num_steps=700, start=100,
    )
    record_result("table3_m_mprime", result.format())
    # Paper claims, as reproducible on the synthetic traces (see
    # EXPERIMENTS.md): (a) M = 1 is a consistently good choice at every
    # horizon; (b) longer membership look-back M' becomes *relatively*
    # less costly as the horizon grows (in the paper it eventually wins
    # outright; our synthetic churn is permanent migration rather than
    # oscillation, so the trend shows as a shrinking penalty).
    for h in result.horizons:
        best_m1 = min(result.rmse[(h, 1, mp)] for mp in result.m_prime_values)
        best_any = min(
            value for (hh, _m, _mp), value in result.rmse.items() if hh == h
        )
        assert best_m1 <= best_any + 0.01, h

    def relative_penalty(h, mp):
        base = result.rmse[(h, 1, 1)]
        return (result.rmse[(h, 1, mp)] - base) / base

    long_mp = max(result.m_prime_values)
    penalties = [relative_penalty(h, long_mp) for h in result.horizons]
    assert penalties[-1] <= penalties[0] + 1e-9, penalties
