"""Scenario-engine overhead benchmark: link models vs bare session.

Measures slots/sec of the trace-replay harness under three link
regimes over the same Alibaba-like trace and pipeline configuration:

* **bare** — a plain streaming session, no link (the PR-5 baseline);
* **ideal** — :class:`~repro.scenarios.links.IdealLink` interposed
  (bit-identical outputs by contract — asserted here on the message
  counters before any timing is reported);
* **lossy** — a full :class:`~repro.scenarios.links.NetworkLink` with
  i.i.d. + burst loss, two shared uplinks and one slot of latency, so
  every delivery takes the late-arrival re-ingestion path.

The interesting number is the overhead column: what a scenario costs
relative to the bare session at the same fleet size.  The acceptance
bar is generous (ideal <= 1.5x bare, lossy <= 4x bare) — the link is
Python-loop bookkeeping over at most one message per node per slot,
not a kernel — and exists to catch accidental quadratic behavior.

Quick mode — ``REPRO_BENCH_QUICK=1`` — runs the small fleet only, for
CI smoke.
"""

import os
import time

import numpy as np
import pytest

from repro.api import Engine
from repro.core.config import (
    ClusteringConfig,
    ForecastingConfig,
    PipelineConfig,
    TransmissionConfig,
)
from repro.datasets import load_alibaba_like
from repro.scenarios import IdealLink, LinkConfig, NetworkLink

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
FLEET_SIZES = (200,) if QUICK else (200, 1_000)
SLOTS = 40 if QUICK else 120
IDEAL_OVERHEAD_BAR = 1.5
LOSSY_OVERHEAD_BAR = 4.0

LOSSY = LinkConfig(
    loss=0.05,
    burst_enter=0.05, burst_exit=0.35, burst_loss=0.8,
    latency=1,
    uplinks=2, uplink_capacity=10**9,
    seed=104,
)


def _config():
    return PipelineConfig(
        transmission=TransmissionConfig(budget=0.3),
        clustering=ClusteringConfig(num_clusters=3, seed=0, warm_start=True),
        forecasting=ForecastingConfig(
            model="sample_hold",
            initial_collection=10,
            retrain_interval=200,
            max_horizon=3,
        ),
    )


def _drive(num_nodes, trace, link):
    session = Engine(_config(), policy="adaptive").session(
        num_nodes, 1, reorder_window=8, link=link
    )
    started = time.perf_counter()
    for t in range(trace.shape[0]):
        if link is not None:
            for origin, ids, values in link.due(t):
                session.ingest(values, ids, t=origin)
        session.ingest(trace[t][:, np.newaxis])
    return session, time.perf_counter() - started


@pytest.mark.slow
def test_bench_scenario_overhead(record_result):
    lines = [
        f"trace-replay harness cost, adaptive policy, {SLOTS} slots, "
        "K=3, sample-hold bank, H=3",
        "(bare = no link; ideal = pass-through IdealLink; lossy = "
        "NetworkLink with i.i.d.+burst",
        "loss, 2 shared uplinks, latency 1 — every delivery re-ingested "
        "as a late arrival)",
        "",
        f"{'N':>6}  {'bare slots/s':>12}  {'ideal slots/s':>13}  "
        f"{'lossy slots/s':>13}  {'ideal ovhd':>10}  {'lossy ovhd':>10}",
        f"{'-' * 6}  {'-' * 12}  {'-' * 13}  {'-' * 13}  {'-' * 10}  "
        f"{'-' * 10}",
    ]
    worst_ideal = worst_lossy = 0.0
    for num_nodes in FLEET_SIZES:
        trace = load_alibaba_like(
            num_nodes=num_nodes, num_steps=SLOTS
        ).resource("cpu")

        bare, bare_seconds = _drive(num_nodes, trace, None)
        ideal, ideal_seconds = _drive(num_nodes, trace, IdealLink(num_nodes))
        lossy_link = NetworkLink(num_nodes, LOSSY)
        lossy, lossy_seconds = _drive(num_nodes, trace, lossy_link)

        # The ideal link is invisible: identical stored state and
        # message counters (asserted before any timing is reported).
        np.testing.assert_array_equal(bare.fleet.stored, ideal.fleet.stored)
        assert (
            bare.transport_stats.messages == ideal.transport_stats.messages
        )
        assert lossy_link.is_conserved

        ideal_overhead = ideal_seconds / bare_seconds
        lossy_overhead = lossy_seconds / bare_seconds
        worst_ideal = max(worst_ideal, ideal_overhead)
        worst_lossy = max(worst_lossy, lossy_overhead)
        lines.append(
            f"{num_nodes:>6}  {SLOTS / bare_seconds:>12.1f}  "
            f"{SLOTS / ideal_seconds:>13.1f}  "
            f"{SLOTS / lossy_seconds:>13.1f}  "
            f"{ideal_overhead:>9.2f}x  {lossy_overhead:>9.2f}x"
        )

    lines += [
        "",
        "ideal-link outputs asserted bit-identical to the bare session "
        "before timing; the lossy",
        "link's conservation invariant (sent = delivered + dropped + "
        "in flight) asserted after.",
    ]
    record_result("scenarios", "\n".join(lines))

    assert worst_ideal <= IDEAL_OVERHEAD_BAR, (
        f"IdealLink costs {worst_ideal:.2f}x the bare session "
        f"(bar: {IDEAL_OVERHEAD_BAR}x)"
    )
    assert worst_lossy <= LOSSY_OVERHEAD_BAR, (
        f"NetworkLink costs {worst_lossy:.2f}x the bare session "
        f"(bar: {LOSSY_OVERHEAD_BAR}x)"
    )
