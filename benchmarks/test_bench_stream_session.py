"""Streaming-session benchmark: vectorized slot kernel vs object loop.

Measures slots/sec of a live :class:`~repro.session.StreamSession` at
fleet sizes N ∈ {1k, 10k} under the adaptive policy, comparing the two
slot paths over identical traces:

* **object loop** — the pre-redesign ``Engine.step`` architecture: one
  ``LocalNode.observe`` Python call per node per slot, per-message
  ``Channel.send``, then the central store's apply loop;
* **vectorized** — the session hot path: one batched slot-kernel call
  over the fleet columns plus one ``record_batch``, so the whole
  transmission stage is a handful of array operations.

Both paths share the identical clustering + forecasting pipeline, and
outputs are asserted bit-identical before any timing is reported.

Asserts the redesign's acceptance bar: >= 5x at N = 10k.

Quick mode — ``REPRO_BENCH_QUICK=1`` — runs only N = 1k with fewer
slots, for CI smoke (same bit-identity assertion, 3x bar to absorb CI
noise).
"""

import os
import time

import numpy as np
import pytest

from repro.core.config import (
    ClusteringConfig,
    ForecastingConfig,
    PipelineConfig,
    TransmissionConfig,
)
from repro.session import StreamSession

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
FLEET_SIZES = (1_000,) if QUICK else (1_000, 10_000)
SLOTS = 10 if QUICK else 25
SPEEDUP_BAR = 3.0 if QUICK else 5.0


def _config():
    return PipelineConfig(
        transmission=TransmissionConfig(budget=0.3),
        # warm_start is the serving-session clustering configuration: a
        # long-lived session re-clusters a slowly drifting fleet every
        # slot, so seeding K-means from the previous centroids is the
        # realistic steady state (identical for both measured paths).
        clustering=ClusteringConfig(num_clusters=3, seed=0, warm_start=True),
        # Forecasting active from slot 5 on, so the benchmark covers the
        # full serving slot: transmit + cluster + train/update + forecast.
        forecasting=ForecastingConfig(
            model="ar",
            initial_collection=5,
            retrain_interval=200,
            max_horizon=3,
        ),
    )


def _trace(num_nodes, rng):
    walk = np.cumsum(
        rng.normal(0, 0.02, size=(SLOTS, num_nodes)), axis=0
    )
    return np.clip(0.5 + walk, 0, 1)


def _drive(session, trace):
    outputs = []
    for t in range(trace.shape[0]):
        outputs.append(session.ingest(trace[t]))
    return outputs


@pytest.mark.slow
def test_bench_stream_session(record_result):
    rng = np.random.default_rng(0)
    lines = [
        f"one live session per path, adaptive policy, {SLOTS} slots, "
        "K=3, AR bank, H=3",
        "(object loop = per-node observe/send/apply; vectorized = "
        "batched slot kernel)",
        "",
        f"{'N':>7}  {'object s/slot':>13}  {'vector s/slot':>13}  "
        f"{'object slots/s':>14}  {'vector slots/s':>14}  {'speedup':>8}",
        f"{'-' * 7}  {'-' * 13}  {'-' * 13}  {'-' * 14}  {'-' * 14}  "
        f"{'-' * 8}",
    ]
    speedups = {}
    for num_nodes in FLEET_SIZES:
        trace = _trace(num_nodes, rng)
        config = _config()

        slow = StreamSession(config, num_nodes, 1, vectorized=False)
        started = time.perf_counter()
        slow_outputs = _drive(slow, trace)
        object_seconds = time.perf_counter() - started

        fast = StreamSession(config, num_nodes, 1, vectorized=True)
        started = time.perf_counter()
        fast_outputs = _drive(fast, trace)
        vector_seconds = time.perf_counter() - started

        # Bit-identity before timing is reported.
        for a, b in zip(slow_outputs, fast_outputs):
            np.testing.assert_array_equal(a.stored, b.stored)
            if a.node_forecasts is not None:
                for h in a.node_forecasts:
                    np.testing.assert_array_equal(
                        a.node_forecasts[h], b.node_forecasts[h]
                    )
        assert (
            slow.transport_stats.messages == fast.transport_stats.messages
        )

        speedups[num_nodes] = object_seconds / vector_seconds
        lines.append(
            f"{num_nodes:>7}  {object_seconds / SLOTS:>13.4f}  "
            f"{vector_seconds / SLOTS:>13.4f}  "
            f"{SLOTS / object_seconds:>14.1f}  "
            f"{SLOTS / vector_seconds:>14.1f}  "
            f"{speedups[num_nodes]:>7.1f}x"
        )

    lines += [
        "",
        "outputs (stored values, forecasts, transport counters) asserted "
        "bit-identical between",
        "the paths at every N; both include the identical clustering + "
        "forecasting stages, so",
        "the speedup is pure transmission-path overhead removed by the "
        "slot kernels.",
    ]
    record_result("stream_session", "\n".join(lines))

    gate = max(speedups)
    assert speedups[gate] >= SPEEDUP_BAR, (
        f"expected >= {SPEEDUP_BAR}x vectorized-session speedup at "
        f"N={gate}, got {speedups[gate]:.1f}x"
    )
