"""Ablation benches — design-choice validation (DESIGN.md §4 extras)."""

from conftest import run_once

from repro.experiments import (
    run_ablation_offsets,
    run_ablation_reindexing,
    run_ablation_warm_start,
)


def test_bench_ablation_reindexing(benchmark, record_result):
    result = run_once(
        benchmark, run_ablation_reindexing, num_nodes=60, num_steps=500,
    )
    record_result("ablation_reindexing", result.format())
    for h in result.horizons:
        assert result.reindexing_helps(h), h


def test_bench_ablation_offsets(benchmark, record_result):
    result = run_once(
        benchmark, run_ablation_offsets, num_nodes=60, num_steps=500,
    )
    record_result("ablation_offsets", result.format())
    assert result.offsets_help(1)


def test_bench_ablation_deadband(benchmark, record_result):
    from repro.experiments import run_ablation_deadband

    result = run_once(
        benchmark, run_ablation_deadband, num_nodes=60, num_steps=800,
    )
    record_result("ablation_deadband", result.format())
    # Sec. II's argument: implicit-frequency policies cannot be budgeted;
    # the Lyapunov policy can.
    assert result.max_adaptive_miss() < 0.05
    assert result.max_deadband_miss() > 0.15


def test_bench_ablation_warm_start(benchmark, record_result):
    result = run_once(
        benchmark, run_ablation_warm_start, num_nodes=80, num_steps=500,
    )
    record_result("ablation_warm_start", result.format())
    assert result.quality_gap() < 0.01
    assert result.seconds["warm"] < result.seconds["cold"]
