"""Fig. 10 bench — RMSE vs horizon per clustering method (S&H model)."""

from conftest import run_once

from repro.experiments import run_fig10


def test_bench_fig10(benchmark, record_result):
    result = run_once(
        benchmark, run_fig10, num_nodes=100, num_steps=600,
        horizons=(1, 5, 10, 25), start=100,
    )
    record_result("fig10_clustering_methods", result.format())
    # Paper claim: proposed beats minimum-distance everywhere; the
    # offline static baseline is the only method that may come close.
    for (dataset, resource, method), per_h in result.rmse.items():
        if method != "proposed":
            continue
        random_baseline = result.rmse[(dataset, resource, "minimum_distance")]
        for h, value in per_h.items():
            assert value <= random_baseline[h] + 1e-9, (dataset, h)
    # Proposed is the best *online* method at short horizons in a
    # majority of (dataset, resource) cells.
    assert result.proposed_wins(1) >= 0.5
