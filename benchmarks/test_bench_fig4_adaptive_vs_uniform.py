"""Fig. 4 bench — RMSE(h=0): adaptive vs uniform transmission."""

from conftest import run_once

from repro.experiments import run_fig4


def test_bench_fig4(benchmark, record_result):
    result = run_once(benchmark, run_fig4, num_nodes=60, num_steps=1500)
    record_result("fig4_adaptive_vs_uniform", result.format())
    # Paper claim: adaptive <= uniform at every budget, zero at B = 1.
    assert result.adaptive_wins() == 1.0
    for (dataset, resource, method), values in result.rmse.items():
        assert values[-1] < 1e-9  # B = 1.0 -> exact storage
