"""Table I bench — scalar (per-resource) vs full-vector clustering."""

from conftest import run_once

from repro.experiments import run_table1


def test_bench_table1(benchmark, record_result):
    result = run_once(benchmark, run_table1, num_nodes=60, num_steps=800)
    record_result("table1_scalar_vs_vector", result.format())
    # Paper claim: scalar clustering wins every (resource, dataset) cell.
    assert result.scalar_wins() == len(result.scalar)
