"""Fleet-scale hot-path scaling benchmark.

Times the vectorized per-slot kernels against the pre-vectorization
loop implementations (`repro.reference_impl`) at growing fleet sizes
N ∈ {100, 500, 1000}:

* `estimate_offsets` — the Eq. 12 α-clipped offsets;
* similarity re-indexing — the Eq. 10 contingency for the Hungarian
  matching;
* `forecast_membership` — the majority-vote membership forecast;
* the collection stage — `CollectionSimulation`'s batched fast path vs
  its per-node object loop (fewer slots, it is the slowest reference).

Asserts the paper's fleet-scale claim is actually realized: at
N = 1000 the vectorized `estimate_offsets` + re-indexing combo must be
at least 10× faster than the reference loops.
"""

import time

import numpy as np
import pytest

from repro.clustering.similarity import similarity_matrix_from_labels
from repro.core.config import TransmissionConfig
from repro.forecasting.membership import forecast_membership
from repro.forecasting.offsets import estimate_offsets
from repro.reference_impl import (
    estimate_offsets_reference,
    forecast_membership_reference,
    reindex_weights_reference,
)
from repro.simulation.collection import CollectionSimulation
from repro.transmission.adaptive import AdaptiveTransmissionPolicy

FLEET_SIZES = (100, 500, 1000)
NUM_CLUSTERS = 10
WINDOW = 4  # offsets lookback M' + 1
HISTORY_DEPTH = 3  # similarity look-back M
COLLECTION_STEPS = 120


def _timeit(fn, *, repeats=3):
    """Best-of-N wall time of ``fn()`` (first call included in timing)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _fleet_case(num_nodes, rng):
    """Clustered measurements + centroid/label history for one fleet."""
    base = rng.uniform(0.1, 0.9, size=(NUM_CLUSTERS, 1))
    labels = rng.integers(0, NUM_CLUSTERS, size=num_nodes)
    stored, cents, label_history = [], [], []
    for _ in range(max(WINDOW, HISTORY_DEPTH)):
        stored.append(base[labels] + rng.normal(0, 0.08, (num_nodes, 1)))
        cents.append(base + rng.normal(0, 0.01, base.shape))
        churn = rng.random(num_nodes) < 0.05
        labels = np.where(
            churn, rng.integers(0, NUM_CLUSTERS, size=num_nodes), labels
        )
        label_history.append(labels.copy())
    new_labels = np.where(
        rng.random(num_nodes) < 0.05,
        rng.integers(0, NUM_CLUSTERS, size=num_nodes),
        labels,
    )
    return stored, cents, label_history, new_labels


@pytest.mark.slow
def test_bench_hot_path(record_result):
    rng = np.random.default_rng(0)
    lines = [
        f"{'kernel':<12} {'N':>5}  {'reference s':>11}  "
        f"{'vectorized s':>12}  {'speedup':>8}",
        f"{'-' * 12} {'-' * 5}  {'-' * 11}  {'-' * 12}  {'-' * 8}",
    ]
    combined = {}

    for num_nodes in FLEET_SIZES:
        stored, cents, label_history, new_labels = _fleet_case(
            num_nodes, rng
        )
        memberships = label_history[-1]

        ref_s, ref_out = _timeit(lambda: estimate_offsets_reference(
            stored[-WINDOW:], cents[-WINDOW:], memberships, WINDOW - 1
        ), repeats=1 if num_nodes >= 500 else 2)
        vec_s, vec_out = _timeit(lambda: estimate_offsets(
            stored[-WINDOW:], cents[-WINDOW:], memberships, WINDOW - 1
        ))
        np.testing.assert_array_equal(ref_out, vec_out)
        lines.append(
            f"{'offsets':<12} {num_nodes:>5}  {ref_s:>11.4f}  "
            f"{vec_s:>12.4f}  {ref_s / vec_s:>7.1f}x"
        )

        history = label_history[-HISTORY_DEPTH:]
        reindex_ref_s, ref_w = _timeit(lambda: reindex_weights_reference(
            "intersection", new_labels, history, NUM_CLUSTERS
        ))
        reindex_vec_s, vec_w = _timeit(lambda: similarity_matrix_from_labels(
            "intersection", new_labels, history, NUM_CLUSTERS
        ))
        np.testing.assert_array_equal(ref_w, vec_w)
        lines.append(
            f"{'reindex':<12} {num_nodes:>5}  {reindex_ref_s:>11.4f}  "
            f"{reindex_vec_s:>12.4f}  {reindex_ref_s / reindex_vec_s:>7.1f}x"
        )

        member_ref_s, ref_m = _timeit(lambda: forecast_membership_reference(
            label_history, WINDOW - 1
        ))
        member_vec_s, vec_m = _timeit(lambda: forecast_membership(
            label_history, WINDOW - 1
        ))
        np.testing.assert_array_equal(ref_m, vec_m)
        lines.append(
            f"{'membership':<12} {num_nodes:>5}  {member_ref_s:>11.4f}  "
            f"{member_vec_s:>12.4f}  {member_ref_s / member_vec_s:>7.1f}x"
        )

        trace = np.clip(
            0.5 + np.cumsum(
                rng.normal(0, 0.02, (COLLECTION_STEPS, num_nodes)), axis=0
            ),
            0,
            1,
        )
        config = TransmissionConfig(budget=0.3)

        def run_object_loop():
            sim = CollectionSimulation(
                num_nodes, lambda i: AdaptiveTransmissionPolicy(config)
            )
            return sim._run_object_loop(trace[:, :, np.newaxis].copy())

        def run_fast_path():
            sim = CollectionSimulation(
                num_nodes, lambda i: AdaptiveTransmissionPolicy(config)
            )
            assert sim._batchable()
            return sim.run(trace)

        collect_ref_s, ref_c = _timeit(run_object_loop, repeats=1)
        collect_vec_s, vec_c = _timeit(run_fast_path)
        np.testing.assert_array_equal(ref_c.decisions, vec_c.decisions)
        np.testing.assert_array_equal(ref_c.stored, vec_c.stored)
        lines.append(
            f"{'collection':<12} {num_nodes:>5}  {collect_ref_s:>11.4f}  "
            f"{collect_vec_s:>12.4f}  "
            f"{collect_ref_s / collect_vec_s:>7.1f}x"
        )

        combined[num_nodes] = (
            (ref_s + reindex_ref_s) / (vec_s + reindex_vec_s)
        )

    lines.append("")
    lines.append(
        "combined offsets+reindex speedup: "
        + ", ".join(
            f"N={n}: {ratio:.1f}x" for n, ratio in combined.items()
        )
    )
    record_result("hot_path", "\n".join(lines))

    # The acceptance bar: >= 10x at fleet scale.
    assert combined[1000] >= 10.0, (
        f"expected >= 10x offsets+reindex speedup at N=1000, got "
        f"{combined[1000]:.1f}x"
    )
