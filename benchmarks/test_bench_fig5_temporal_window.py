"""Fig. 5 bench — intermediate RMSE vs temporal clustering window."""

from conftest import run_once

from repro.experiments import run_fig5


def test_bench_fig5(benchmark, record_result):
    result = run_once(benchmark, run_fig5, num_nodes=60, num_steps=800)
    record_result("fig5_temporal_window", result.format())
    # Paper claim: window length 1 gives the lowest intermediate RMSE.
    for key in result.rmse:
        assert result.best_window(*key) == 1, key
