#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md (and per-entry JSON) from result files.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/update_experiments_md.py

Each entry pairs the paper's claim with the measured rows from
``benchmarks/results/<name>.txt`` and a short commentary on how well the
shape reproduces (including honest deviations).  Alongside the
markdown, every entry is also (re)written as machine-readable
``benchmarks/results/<name>.json`` — title, paper claim, assessment,
the measured text, and any structured ``data`` rows the benchmark
recorded — so the bench trajectory can be consumed programmatically.
"""

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "EXPERIMENTS.md")

PREAMBLE = """\
# EXPERIMENTS — paper vs measured

Every table and figure of the paper's evaluation (Sec. VI), regenerated
by the benchmark harness on **synthetic stand-in traces** (the real
Alibaba/Bitbrains/Google/Intel-lab data is not redistributable; see
DESIGN.md §3 for each substitution and why it preserves the property
being tested).  The reproduction target is the *shape* of each result —
who wins, by roughly what factor, where curves flatten — not absolute
values, which depend on trace statistics and hardware.

Regenerate everything with:

```bash
pytest benchmarks/ --benchmark-only -s
python benchmarks/update_experiments_md.py
```

Scaled-down configurations are recorded per entry; every benchmark also
*asserts* its claim, so a regression that breaks a paper property fails
CI, not just the documentation.
"""

#: (result-file stem, title, paper claim, our commentary)
ENTRIES = [
    (
        "fig1_correlation",
        "Fig. 1 — CDF of long-term spatial correlation",
        "Sensor-network data (temperature/humidity) is strongly "
        "spatially correlated — most pairwise correlations above 0.5 — "
        "while compute-cluster CPU/memory correlations mostly lie in "
        "(−0.5, 0.5). This motivates abandoning Gaussian/covariance "
        "methods for cluster monitoring.",
        "Reproduced. The sensor-field generator puts ~100% of pairs "
        "above 0.5; the Google-like cluster trace puts the large "
        "majority below it (CDF(0.5) ≈ 0.7–0.97 depending on resource). "
        "Config: 54 sensors / 80 machines, 1500 steps.",
    ),
    (
        "fig3_transmission",
        "Fig. 3 — requested vs actual transmission frequency",
        "The adaptive algorithm's empirical transmission frequency "
        "matches the requested budget B across datasets (log-log "
        "diagonal).",
        "Reproduced with the calibrated V0 = 1.0 (see DESIGN.md §3 on "
        "why the paper's literal V0 = 1e-12 degenerates on normalized "
        "data): actual/requested ratio within ~1% for B ≥ 0.05 on all "
        "three datasets; small-B points sit slightly above the diagonal "
        "at finite T, matching the paper's plot. Config: 60 nodes, "
        "2000 steps.",
    ),
    (
        "fig4_adaptive_vs_uniform",
        "Fig. 4 — RMSE(h=0) of adaptive vs uniform sampling",
        "Adaptive transmission gives lower staleness RMSE than uniform "
        "sampling at every requested frequency, for all datasets and "
        "both resources; both reach zero at B = 1.",
        "Reproduced: adaptive wins at 100% of sweep points (six "
        "dataset-resource panels × six budgets), with the biggest "
        "margins on the bursty Bitbrains-like trace — the same panel "
        "the paper highlights. Config: 60 nodes, 1500 steps.",
    ),
    (
        "fig5_temporal_window",
        "Fig. 5 — intermediate RMSE vs temporal clustering window",
        "Clustering on a single time step (window = 1) beats extended "
        "temporal-feature windows on these highly dynamic traces.",
        "Reproduced: window 1 is best for every dataset and resource; "
        "RMSE grows monotonically with the window. Config: 60 nodes, "
        "800 steps, windows {1, 5, 10, 20, 30}.",
    ),
    (
        "table1_scalar_vs_vector",
        "Table I — clustering independent scalars vs full vectors",
        "Clustering each resource type independently on scalar values "
        "gives lower intermediate RMSE than jointly clustering "
        "(CPU, memory) vectors, on all three datasets — cross-resource "
        "correlation is weak.",
        "Reproduced: scalar wins all 6 cells, by factors of ~1.1–2×, "
        "comparable to the paper's margins. Config: 60 nodes, 800 "
        "steps.",
    ),
    (
        "fig6_rmse_vs_b",
        "Fig. 6 — intermediate RMSE vs transmission frequency",
        "Proposed dynamic clustering beats the minimum-distance "
        "(random-representative) baseline at every B and is competitive "
        "with the offline static baseline; the curves flatten around "
        "B ≈ 0.3, justifying the default budget.",
        "Reproduced: proposed < minimum-distance at 100% of points, "
        "proposed < static on every dataset here (our static baseline "
        "suffers more because synthetic membership churn accumulates "
        "over the full horizon it clusters on); improvements beyond "
        "B = 0.3 are marginal. Config: 60 nodes, 700 steps.",
    ),
    (
        "fig7_rmse_vs_k",
        "Fig. 7 — intermediate RMSE vs number of clusters K",
        "A small number of clusters already achieves close to the "
        "minimum RMSE; even K = N retains error because stored "
        "measurements are stale at B = 0.3.",
        "Reproduced: monotone decrease with diminishing returns, "
        "proposed dominating minimum-distance at every K, and a "
        "non-zero floor at K = N. On the synthetic traces the knee is "
        "softer than the paper's (profiles keep sub-structure), so "
        "K = 3 is 'near-optimal' rather than indistinguishable. "
        "Config: 60 nodes, 600 steps, K ∈ {1 … 40}.",
    ),
    (
        "fig8_centroid_tracking",
        "Fig. 8 — instantaneous true vs forecasted centroids (h = 5)",
        "Forecasted centroid trajectories (ARIMA, LSTM, sample-and-"
        "hold) follow the true centroid curves closely on the Alibaba "
        "CPU data.",
        "Reproduced: per-cluster tracking MAE is small relative to the "
        "centroid spread for all three models (see table; the result "
        "file also contains trajectory excerpts). Config: 60 nodes, "
        "900 steps, forecasts from t = 300.",
    ),
    (
        "fig9_forecast_models",
        "Fig. 9 — time-averaged RMSE vs horizon per forecasting model",
        "Cluster-level (K = 3) forecasting beats per-node (K = N) "
        "sample-and-hold; every model beats the standard-deviation "
        "bound of a long-term-statistics forecaster for h ≤ 50; LSTM "
        "is best overall.",
        "Mostly reproduced: K = 3 ≤ K = N at h ≥ 5 (noisy per-node "
        "series penalize holding a single node's value), and all "
        "models sit below the std-dev bound through h = 25–50. "
        "Deviation: our LSTM (small net, few epochs, single run) does "
        "not beat ARIMA/S&H as it does in the paper — with 10-run "
        "averaging and full-scale training data the paper's LSTM edge "
        "is plausible but expensive to reproduce here. Config: 40 "
        "nodes, 600 steps.",
    ),
    (
        "fig10_clustering_methods",
        "Fig. 10 — RMSE vs horizon per clustering method (S&H model)",
        "With the forecaster fixed to sample-and-hold, the proposed "
        "dynamic clustering is best in almost all cases; the offline "
        "static baseline approaches it at large h.",
        "Reproduced in shape: proposed beats minimum-distance "
        "everywhere and is the best online method at short horizons on "
        "most dataset panels; static (using oracle knowledge of the "
        "full series) closes the gap — and on the burst-dominated "
        "Bitbrains-like panel overtakes, slightly stronger than in the "
        "paper. Config: 100 nodes, 600 steps.",
    ),
    (
        "table2_training_time",
        "Table II — aggregated model-training time per centroid",
        "Training ARIMA on one centroid over the full trace costs tens "
        "of seconds; LSTM costs ~10× more; both are negligible against "
        "the monitoring duration (days).",
        "Reproduced as an ordering: LSTM is several times slower than "
        "the ARIMA grid search on every dataset (exact ratio depends "
        "on grid size and epochs; absolute seconds are hardware-"
        "dependent). Both remain a tiny fraction of the simulated "
        "monitoring duration. Config: 40 nodes, 900 steps, 3 "
        "retrainings.",
    ),
    (
        "table3_m_mprime",
        "Table III — RMSE across the (M, M') look-back grid",
        "M = 1 is a good similarity look-back everywhere; the optimal "
        "membership/offset look-back M' grows with the forecast "
        "horizon (rely on longer history when forecasting farther).",
        "Partially reproduced: M = 1 is within noise of the best at "
        "every horizon (matching). For M', the paper's trend appears "
        "in weakened form — the relative penalty of larger M' shrinks "
        "monotonically as h grows (5.5% → 0% from h=1 to h=10) but "
        "never becomes an outright win, because synthetic membership "
        "churn is permanent migration rather than the oscillation that "
        "makes long look-backs pay off in the real traces. Config: 60 "
        "nodes, 700 steps, google-like CPU.",
    ),
    (
        "fig11_similarity",
        "Fig. 11 — proposed similarity measure vs Jaccard index",
        "The unnormalized multi-step-intersection measure (Eq. 10) "
        "performs better than or similar to the Jaccard index in all "
        "cases.",
        "Reproduced: intersection ≤ Jaccard + 0.01 at ≥ 90% of points "
        "(they coincide on most panels, as in the paper, since both "
        "usually find the same matching). Config: 60 nodes, 700 "
        "steps.",
    ),
    (
        "fig12_gaussian_comparison",
        "Fig. 12 — comparison with the Gaussian-based method of [3]",
        "In the train/test monitor-selection setting, the proposed "
        "clustering-based scheme has the smallest RMSE; the Gaussian "
        "schemes (Top-W, Top-W-Update, Batch Selection) are far worse — "
        "their log-scale RMSE explodes to 1e3–1e5 on several panels.",
        "Reproduced for the Top-W family: near-collinear replica "
        "machines make the raw sample covariance ill-conditioned and "
        "Top-W (which selects exactly those machines) degrades to ~2–3× "
        "the proposed scheme's RMSE; proposed also beats the random "
        "minimum-distance baseline. Honest deviation: our Batch "
        "Selection implementation (greedy variance deflation) avoids "
        "the collinearity trap and remains competitive with — often "
        "slightly better than — proposed, i.e. a stronger baseline "
        "than whatever produced the paper's 1e5 blow-ups. Config: 100 "
        "nodes, 500/500 train/test steps.",
    ),
    (
        "table4_computation_time",
        "Table IV — computation time per scheme (100 nodes)",
        "Proposed runs in ~0.14 s; minimum-distance is cheapest "
        "(~0.02 s); Top-W-Update is ~200× the proposed cost; Batch "
        "Selection ~20×.",
        "Reproduced as an ordering: minimum-distance < proposed ≈ "
        "Top-W ≈ Batch Selection ≪ Top-W-Update (which re-estimates "
        "the covariance and re-selects monitors every test step). "
        "Our Top-W-Update/proposed ratio is ~10–30× rather than 200× — "
        "numpy's covariance estimation is comparatively faster than "
        "the paper's implementation. Config: 100 nodes, K = 25.",
    ),
    (
        "ablation_reindexing",
        "Ablation — Hungarian re-indexing (extension)",
        "(Not in the paper; validates Sec. V-B's design.) Without "
        "re-indexing, K-means label permutations should scramble the "
        "centroid series and break forecasting.",
        "Confirmed: raw K-means label order roughly doubles forecast "
        "RMSE at every horizon versus matched clusters.",
    ),
    (
        "ablation_offsets",
        "Ablation — per-node offsets and α-clipping (extension)",
        "(Not in the paper; validates Eq. 12.) Offsets should beat "
        "pure-centroid estimation; clipping should keep reconstructed "
        "values inside their cluster.",
        "Offsets help at every horizon. Clipped and raw offsets are "
        "nearly identical on this data (raw marginally better): the "
        "clipping rule matters for safety on boundary nodes, not for "
        "aggregate RMSE here.",
    ),
    (
        "ablation_warm_start",
        "Ablation — warm-started per-step K-means (extension)",
        "(Not in the paper.) Seeding each slot's K-means with the "
        "previous centroids should preserve quality at lower cost.",
        "Confirmed: identical intermediate RMSE (gap < 0.01) at ~3× "
        "less clustering wall-clock.",
    ),
    (
        "fleet_scale",
        "Scaling — columnar FleetState vs object-per-node (extension)",
        "(Not in the paper; realizes its 'large-scale distributed "
        "systems' premise.) The collection stage should scale to "
        "million-node fleets when per-node Python objects are "
        "replaced by one structure-of-arrays fleet state, and neither "
        "partitioning the fleet into contiguous node shards nor "
        "servicing those shards from worker processes may change a "
        "single bit of the result.",
        "Confirmed: the columnar path is two orders of magnitude "
        "faster than the object-per-node loop (hundreds of times at "
        "N = 1k–10k, far above the 5x acceptance bar) and handles "
        "N = 1M in seconds where the object loop would take hours; "
        "the 4-way sharded run, the persistent shared-memory worker "
        "pool, and the legacy pickle pool are all asserted "
        "bit-identical to single-shard at every N.  The shared-memory "
        "pool never regresses against the pickle pool at their "
        "largest common N (it stops serializing the trace per run); "
        "its beat-columnar-at-1M bar only engages on multi-core "
        "boxes — the recorded run's single CPU time-slices the "
        "workers, so wall-clock parallel wins are not observable "
        "there.",
    ),
    (
        "model_bank",
        "Scaling — columnar ForecasterBank vs object-per-cluster "
        "(extension)",
        "(Not in the paper; model-layer counterpart of the FleetState "
        "refactor.) Training one forecaster per cluster centroid and "
        "re-forecasting every slot should not cost K·d Python calls: "
        "batching every (cluster, dim) series of a resource group into "
        "one structure-of-arrays bank must leave the numbers untouched "
        "while removing the per-object loop from the train+forecast "
        "stage.",
        "Confirmed: the vectorized Yule–Walker bank (one batched "
        "lag-matrix solve, one array op per forecast slot) is roughly "
        "two orders of magnitude faster than the object path at the "
        "largest configurations (~100x at K = 128, d = 4 on the "
        "recorded run, far above the 5x acceptance bar), with "
        "forecasts asserted bit-identical at every swept "
        "configuration.",
    ),
    (
        "stream_session",
        "Serving — StreamSession vectorized slot vs per-node loop "
        "(extension)",
        "(Not in the paper; realizes its *online monitoring service* "
        "premise as a serving API.) A long-lived streaming session — "
        "the stateful surface behind Engine.step, with partial "
        "ingestion, late-arrival handling and checkpoint/resume — "
        "should advance one slot with whole-fleet array operations, "
        "not one Python transmission decision per node.",
        "Confirmed: the batched slot-kernel path processes full "
        "serving slots (transmission + clustering + training + "
        "forecasting) ~7x faster than the per-node object loop at "
        "N = 10k (above the 5x acceptance bar; the transmission stage "
        "alone is two orders of magnitude faster — the residual is "
        "the shared clustering/forecasting work), with stored values, "
        "forecasts and transport counters asserted bit-identical "
        "between the paths. Resume-from-checkpoint is separately "
        "pinned bit-identical to uninterrupted sessions for every "
        "registered transmission policy and forecaster bank.",
    ),
    (
        "scenarios",
        "Scenarios — link models and fleet churn overhead (extension)",
        "(Not in the paper; realizes its *large-scale distributed "
        "system* premise as testable adversity.) The paper's protocol "
        "must keep working when the network between nodes and "
        "controller loses, delays and serializes messages and when "
        "the fleet itself churns; the controller keeps the last "
        "received value for silent nodes (the staleness rule).",
        "Confirmed: interposing a link model costs little over the "
        "bare streaming session — the pass-through IdealLink is "
        "asserted bit-identical to no link at all before timing, and "
        "a NetworkLink with i.i.d.+burst loss, shared uplinks and one "
        "slot of latency (every delivery re-ingested through the "
        "late-arrival contract) stays well under the 4x overhead bar, "
        "with message conservation (sent = delivered + dropped + in "
        "flight) asserted after every run.",
    ),
    (
        "ablation_deadband",
        "Ablation — deadband (send-on-delta) vs Lyapunov (extension)",
        "(Validates Sec. II's argument.) Threshold-based adaptive "
        "sampling ties frequency to data volatility, so a δ calibrated "
        "on one dataset misses the bandwidth budget elsewhere; the "
        "Lyapunov policy hits the budget everywhere by construction.",
        "Confirmed: the calibrated deadband misses the target "
        "frequency by up to ~40% on the other datasets while the "
        "adaptive policy stays within 1%.",
    ),
]


def main() -> None:
    sections = [PREAMBLE]
    for stem, title, paper, ours in ENTRIES:
        path = os.path.join(RESULTS_DIR, f"{stem}.txt")
        if os.path.exists(path):
            with open(path) as handle:
                measured = handle.read().rstrip()
        else:
            measured = "(run `pytest benchmarks/ --benchmark-only` first)"
        sections.append(
            f"\n## {title}\n\n"
            f"**Paper:** {paper}\n\n"
            f"**Measured** (`benchmarks/results/{stem}.txt`):\n\n"
            f"```\n{measured}\n```\n\n"
            f"**Assessment:** {ours}\n"
        )
        # Enrich (or create) the machine-readable twin: keep any
        # structured `data` rows the benchmark run recorded, add the
        # curated metadata that lives only in this script.
        json_path = os.path.join(RESULTS_DIR, f"{stem}.json")
        data = None
        if os.path.exists(json_path):
            try:
                with open(json_path) as handle:
                    data = json.load(handle).get("data")
            except (OSError, ValueError):
                data = None
        with open(json_path, "w") as handle:
            json.dump(
                {
                    "name": stem,
                    "title": title,
                    "paper_claim": paper,
                    "assessment": ours,
                    "text": measured,
                    "data": data,
                },
                handle,
                indent=2,
            )
            handle.write("\n")
    with open(OUTPUT, "w") as handle:
        handle.write("\n".join(sections))
    print(
        f"wrote {os.path.abspath(OUTPUT)} and {len(ENTRIES)} "
        f"results/*.json entries"
    )


if __name__ == "__main__":
    main()
