"""RSS guard: mmap resume never holds two copies of the fleet state.

``Engine.resume`` maps a checkpoint's array members copy-on-write and
adopts them as the session's live columns; the historical failure mode
is an in-memory load that materializes the full state *and* copies it
into freshly allocated columns — 2x resident memory, which at N=1M is
the difference between resuming and OOMing.

This script builds a checkpoint at a moderate fleet size, then measures
the peak-RSS delta of a resume in a **fresh subprocess**, via
``/proc/self/status`` ``VmHWM`` — the high-water mark that resets on
``exec``.  (``getrusage``'s ``ru_maxrss`` does *not* reset on exec: a
child forked from a large parent starts with the parent's fork-time RSS
as its high water, silently zeroing every delta.)  The guard asserts
the mmap resume's delta stays under 1.5x the checkpoint's array
payload; the plain in-memory resume is measured too, for the report.

Run from the repo root (CI does)::

    PYTHONPATH=src python benchmarks/rss_resume_guard.py

``REPRO_RSS_NODES`` overrides the fleet size (default 200000).
"""

import json
import os
import subprocess
import sys
import tempfile
import zipfile

HEADROOM = 1.5
SLACK_BYTES = 32 * 1024 * 1024  # interpreter noise floor at small N

CHILD = r"""
import json, sys
import numpy as np
from repro.api import Engine


def peak_kb():
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmHWM"):
                return int(line.split()[1])
    raise SystemExit("no VmHWM in /proc/self/status (not Linux?)")


path, mmap = sys.argv[1], sys.argv[2] == "mmap"
engine = Engine.from_config(json.load(open(sys.argv[3])))
before = peak_kb()
session = engine.resume(path, mmap=mmap)
after = peak_kb()
print(json.dumps({
    "delta_kb": after - before,
    "adopted_memmap": isinstance(session.fleet.stored, np.memmap),
}))
"""


def build_checkpoint(workdir, num_nodes):
    import numpy as np

    from repro.api import Engine
    from repro.core.config import PipelineConfig

    # High initial_collection: no model training at this fleet size,
    # the guard is about state bytes, not forecasting.
    config = PipelineConfig.small(
        initial_collection=1000, retrain_interval=1000
    )
    session = Engine(config).session(num_nodes, 4)
    rng = np.random.default_rng(0)
    for _ in range(3):
        session.ingest(rng.random((num_nodes, 4)))
    path = os.path.join(workdir, "guard.ckpt")
    session.save(path)
    config_path = os.path.join(workdir, "config.json")
    with open(config_path, "w") as handle:
        json.dump(config.to_dict(), handle)
    return path, config_path


def array_payload_bytes(path):
    with zipfile.ZipFile(path) as archive:
        return sum(
            info.file_size
            for info in archive.infolist()
            if info.filename.endswith(".npy")
        )


def measure(path, config_path, mode):
    output = subprocess.run(
        [sys.executable, "-c", CHILD, path, mode, config_path],
        check=True,
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    ).stdout
    report = json.loads(output.strip().splitlines()[-1])
    return report["delta_kb"] * 1024, report["adopted_memmap"]


def main():
    num_nodes = int(os.environ.get("REPRO_RSS_NODES", "200000"))
    with tempfile.TemporaryDirectory() as workdir:
        path, config_path = build_checkpoint(workdir, num_nodes)
        state = array_payload_bytes(path)
        mmap_delta, adopted = measure(path, config_path, "mmap")
        plain_delta, _ = measure(path, config_path, "plain")

    budget = HEADROOM * state + SLACK_BYTES
    print(
        f"rss_resume_guard: N={num_nodes}, state={state / 1e6:.1f} MB, "
        f"mmap resume delta={mmap_delta / 1e6:.1f} MB "
        f"(budget {budget / 1e6:.1f} MB), "
        f"plain resume delta={plain_delta / 1e6:.1f} MB, "
        f"adopted_memmap={adopted}"
    )
    if not adopted:
        raise SystemExit("mmap resume did not adopt mapped columns")
    if mmap_delta >= budget:
        raise SystemExit(
            f"mmap resume held {mmap_delta / 1e6:.1f} MB over a "
            f"{state / 1e6:.1f} MB state — more than {HEADROOM}x + slack; "
            "zero-copy adoption has regressed"
        )
    print("rss_resume_guard: OK")


if __name__ == "__main__":
    main()
