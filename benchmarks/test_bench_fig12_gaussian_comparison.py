"""Fig. 12 bench — RMSE vs K against the Gaussian-based schemes of [3]."""

from conftest import run_once

from repro.experiments import run_fig12


def test_bench_fig12(benchmark, record_result):
    result = run_once(
        benchmark, run_fig12, num_nodes=100,
        train_steps=500, test_steps=500, monitor_counts=(10, 25, 50),
    )
    record_result("fig12_gaussian_comparison", result.format())
    for dataset in ("alibaba", "bitbrains", "google"):
        rmse = result.rmse_table(dataset)
        for idx in range(len(result.monitor_counts)):
            # Paper claims reproduced: proposed beats the random
            # minimum-distance selection and the Top-W family (whose raw
            # covariance is poisoned by near-collinear replica nodes).
            assert rmse["proposed"][idx] <= rmse["top_w"][idx] + 0.02, (
                dataset, idx,
            )
            assert (
                rmse["proposed"][idx]
                <= rmse["minimum_distance"][idx] + 0.02
            ), (dataset, idx)
