"""Fig. 7 bench — intermediate RMSE vs number of clusters K."""

from conftest import run_once

from repro.experiments import run_fig7


def test_bench_fig7(benchmark, record_result):
    result = run_once(
        benchmark, run_fig7, num_nodes=60, num_steps=600,
        cluster_counts=(1, 2, 3, 5, 10, 20, 40),
    )
    record_result("fig7_rmse_vs_k", result.format())
    for (dataset, resource, method), values in result.rmse.items():
        # RMSE decreases with K for every method.
        assert values[0] >= values[-1], (dataset, resource, method)
        if method == "proposed":
            # Paper claim: even K = N leaves residual error because the
            # stored values are stale at B = 0.3.
            assert values[-1] > 0.0
            # Proposed dominates minimum-distance at each K.
            other = result.rmse[(dataset, resource, "minimum_distance")]
            assert all(p <= m + 1e-9 for p, m in zip(values, other))
