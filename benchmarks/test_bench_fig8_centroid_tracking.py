"""Fig. 8 bench — forecasted centroid trajectories track the truth."""

from conftest import run_once

from repro.experiments import run_fig8


def test_bench_fig8(benchmark, record_result):
    result = run_once(
        benchmark, run_fig8, num_nodes=60, num_steps=900,
        start=300, retrain_interval=200,
    )
    lines = [result.format()]
    # Also emit a short excerpt of the trajectories (the paper's plot).
    for (model, cluster), predictions in sorted(result.forecasts.items()):
        times = sorted(predictions)[:5]
        excerpt = " ".join(
            f"(t={t}, pred={predictions[t]:.3f}, "
            f"true={result.centroids[t, cluster]:.3f})"
            for t in times
        )
        lines.append(f"{model} cluster {cluster}: {excerpt}")
    record_result("fig8_centroid_tracking", "\n".join(lines))
    # Paper claim: forecasts follow the true centroids closely (h = 5).
    spread = result.centroids.std()
    for (model, cluster), mae in result.tracking_mae.items():
        assert mae < max(0.1, spread), (model, cluster, mae)
