"""Fig. 1 bench — spatial-correlation CDFs, sensor vs cluster data."""

from conftest import run_once

from repro.experiments import run_fig1


def test_bench_fig1(benchmark, record_result):
    result = run_once(
        benchmark, run_fig1, num_nodes=54, num_steps=1500, cluster_nodes=80
    )
    record_result("fig1_correlation", result.format())
    # Paper claim: sensor correlations mostly > 0.5; cluster mostly not.
    assert result.fraction_above_half["temperature"] > 0.8
    assert result.fraction_above_half["humidity"] > 0.8
    assert result.fraction_above_half["cpu"] < 0.5
    assert result.fraction_above_half["memory"] < 0.5
