"""Model-bank benchmark: columnar ForecasterBank vs object-per-cluster.

Sweeps the train+forecast stage over the model-layer size — clusters
K ∈ {8, 32, 128} and group dimensionality d ∈ {1, 4} — and compares
the two execution paths of the same Yule–Walker AR model on the same
centroid tensor:

* **object bank** — the pre-refactor architecture: one scalar
  forecaster per (cluster, dim) series behind the :class:`ObjectBank`
  adapter, fitted/updated/forecast one Python call at a time;
* **vectorized bank** — :class:`YuleWalkerBank`: one batched
  lag-matrix solve for all K·d series, one array op per update/forecast
  slot.

The workload is the pipeline's steady state: one full (re)fit on the
history, then a run of slots each doing ``update`` + multi-horizon
``forecast``.  Forecasts are asserted bit-identical between the paths
before any timing is reported.

Asserts the refactor's acceptance bar: >= 5x speedup at the largest
swept configuration (K = 128, d = 4 in full mode).

Quick mode — ``REPRO_BENCH_QUICK=1`` — runs only K = 8, d = 1, for CI
smoke.
"""

import os
import time

import numpy as np
import pytest

from repro.core.config import ForecastingConfig
from repro.forecasting.bank import (
    ObjectBank,
    default_forecaster_factory,
    resolve_bank,
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
NUM_CLUSTERS = (8,) if QUICK else (8, 32, 128)
DIMS = (1,) if QUICK else (1, 4)
HISTORY_STEPS = 600
FORECAST_SLOTS = 50
HORIZON = 5
MODEL = "ar"


def _tensor(num_clusters, dim, rng):
    walk = np.cumsum(
        rng.normal(0, 0.02, size=(HISTORY_STEPS + FORECAST_SLOTS,
                                  num_clusters, dim)),
        axis=0,
    )
    return 0.5 + walk


def _stage(bank, history, slots):
    """One retrain + a run of update/forecast slots (the paper's steady
    state between retrainings); returns stacked forecasts."""
    bank.fit(history)
    outputs = []
    for values in slots:
        bank.update(values)
        outputs.append(bank.forecast(HORIZON))
    return np.stack(outputs)


def _timeit(fn, *, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.slow
def test_bench_model_bank(record_result):
    rng = np.random.default_rng(0)
    config = ForecastingConfig(model=MODEL)
    lines = [
        f"train+forecast stage, model={MODEL}, T={HISTORY_STEPS} history "
        f"slots, {FORECAST_SLOTS} update+forecast slots, H={HORIZON}",
        "",
        f"{'K':>4}  {'d':>2}  {'series':>6}  {'object s':>9}  "
        f"{'bank s':>8}  {'speedup':>8}",
        f"{'-' * 4}  {'-' * 2}  {'-' * 6}  {'-' * 9}  {'-' * 8}  {'-' * 8}",
    ]
    speedups = {}

    for num_clusters in NUM_CLUSTERS:
        for dim in DIMS:
            data = _tensor(num_clusters, dim, rng)
            history, slots = data[:HISTORY_STEPS], data[HISTORY_STEPS:]

            object_s, object_out = _timeit(
                lambda: _stage(
                    ObjectBank(
                        default_forecaster_factory(config),
                        num_clusters,
                        dim,
                    ),
                    history,
                    slots,
                ),
                repeats=1 if num_clusters >= 128 else 2,
            )
            bank_s, bank_out = _timeit(
                lambda: _stage(
                    resolve_bank(config, num_clusters=num_clusters, dim=dim),
                    history,
                    slots,
                )
            )
            np.testing.assert_array_equal(bank_out, object_out)

            speedups[(num_clusters, dim)] = object_s / bank_s
            lines.append(
                f"{num_clusters:>4}  {dim:>2}  {num_clusters * dim:>6}  "
                f"{object_s:>9.3f}  {bank_s:>8.4f}  "
                f"{speedups[(num_clusters, dim)]:>7.1f}x"
            )

    lines += [
        "",
        "bank forecasts asserted bit-identical to the object path at "
        "every configuration; the",
        "object path scales as K·d Python calls per slot — the model-"
        "layer analogue of the",
        "object-per-node loop the FleetState refactor removed.",
    ]
    record_result("model_bank", "\n".join(lines))

    gate = max(speedups)
    assert speedups[gate] >= 5.0, (
        f"expected >= 5x bank speedup at (K, d)={gate}, got "
        f"{speedups[gate]:.1f}x"
    )
