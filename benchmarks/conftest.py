"""Shared benchmark fixtures.

Each benchmark module regenerates one table or figure of the paper at a
laptop-scale configuration (recorded in EXPERIMENTS.md).  Results are
printed to stdout (run with ``-s`` to see them live) and written to
``benchmarks/results/`` twice over: the human-readable table as
``<name>.txt`` (pasted into EXPERIMENTS.md by
``update_experiments_md.py``) and a machine-readable ``<name>.json``
carrying the same text plus whatever structured rows the benchmark
passed as ``data`` — so the bench trajectory can be tracked
programmatically across commits instead of by diffing prose.
"""

import json
import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_result():
    """Write a named experiment report to benchmarks/results/.

    ``writer(name, text, data=None)`` writes ``<name>.txt`` (the
    rendered table) and ``<name>.json`` (machine-readable: the same
    text plus the optional ``data`` payload of JSON-able rows).
    """

    def writer(name: str, text: str, data=None) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as handle:
            json.dump(
                {"name": name, "text": text, "data": data},
                handle,
                indent=2,
            )
            handle.write("\n")
        print(f"\n=== {name} ===\n{text}")

    return writer


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
