"""Shared benchmark fixtures.

Each benchmark module regenerates one table or figure of the paper at a
laptop-scale configuration (recorded in EXPERIMENTS.md).  Results are
printed to stdout (run with ``-s`` to see them live) and appended to
``benchmarks/results/`` so EXPERIMENTS.md entries can be refreshed by
copy-paste.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_result():
    """Write a named experiment report to benchmarks/results/<name>.txt."""

    def writer(name: str, text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return writer


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
