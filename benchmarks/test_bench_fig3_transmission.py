"""Fig. 3 bench — requested vs actual transmission frequency."""

from conftest import run_once

from repro.experiments import run_fig3


def test_bench_fig3(benchmark, record_result):
    result = run_once(benchmark, run_fig3, num_nodes=60, num_steps=2000)
    record_result("fig3_transmission", result.format())
    # Paper claim: actual frequency tracks the requested budget closely.
    for dataset, freqs in result.actual.items():
        for budget, freq in zip(result.budgets, freqs):
            assert freq <= budget * 1.6 + 0.005, (dataset, budget, freq)
            if budget >= 0.05:
                assert abs(freq - budget) / budget < 0.1, (
                    dataset, budget, freq,
                )
