"""Fig. 9 bench — per-model RMSE vs forecast horizon (full pipeline)."""

from conftest import run_once

from repro.experiments import run_fig9


def test_bench_fig9(benchmark, record_result):
    result = run_once(
        benchmark, run_fig9, num_nodes=40, num_steps=600,
        horizons=(1, 5, 10, 25, 50),
        initial_collection=200, retrain_interval=200,
    )
    record_result("fig9_forecast_models", result.format())
    bound = result.stddev_bound["alibaba"]
    sh_k3 = result.rmse[("alibaba", "sample_hold")]
    sh_kn = result.rmse[("alibaba", "sample_hold_K=N")]
    # Paper claims: (a) cluster-level models beat the long-term-statistics
    # bound for h <= 50; (b) K = 3 is at least as good as per-node K = N.
    for h in (1, 5, 10, 25):
        assert sh_k3[h] < bound, h
    assert sum(sh_k3[h] <= sh_kn[h] + 1e-9 for h in (5, 10, 25, 50)) >= 3
