"""Tests for the columnar FleetState core and its thin views.

Covers the FleetState columns themselves, the LocalNode↔FleetState view
equivalence (hypothesis property: a fleet-backed node behaves
bit-identically to the historical self-contained node on any decision
sequence), and the transport-channel edge cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import TransmissionConfig
from repro.core.types import Measurement
from repro.exceptions import SimulationError
from repro.simulation.collection import CollectionSimulation
from repro.simulation.controller import CentralStore
from repro.simulation.fleet import (
    FleetState,
    merge_collection_shards,
    shard_slices,
)
from repro.simulation.node import LocalNode
from repro.simulation.transport import Channel, PerNodeMessages, TransportStats
from repro.transmission.adaptive import AdaptiveTransmissionPolicy
from repro.transmission.uniform import UniformTransmissionPolicy


class TestFleetState:
    def test_invalid_construction(self):
        with pytest.raises(SimulationError):
            FleetState(0)

    def test_lazy_dimension(self):
        fleet = FleetState(3)
        assert fleet.dim is None
        assert fleet.stored is None
        fleet.ensure_dim(2)
        assert fleet.dim == 2
        assert fleet.stored.shape == (3, 2)

    def test_dimension_is_fixed(self):
        fleet = FleetState(2, 1)
        fleet.ensure_dim(1)  # same d: fine
        with pytest.raises(SimulationError):
            fleet.ensure_dim(3)

    def test_advance_batch_columns(self):
        fleet = FleetState(4)
        decisions = np.array([
            [1, 1, 1, 0],
            [0, 1, 0, 0],
            [1, 0, 0, 0],
        ])
        final = np.array([[0.1], [0.2], [0.3], [0.4]])
        fleet.advance_batch(decisions, final)
        np.testing.assert_array_equal(fleet.times, [3, 3, 3, 3])
        np.testing.assert_array_equal(fleet.observed, [True, True, True, False])
        # Last slot with a 1, per node; -1 for the silent node.
        np.testing.assert_array_equal(fleet.last_update, [2, 1, 0, -1])
        # Silent node's stored value untouched (stays zero-initialized).
        np.testing.assert_array_equal(
            fleet.stored, [[0.1], [0.2], [0.3], [0.0]]
        )

    def test_advance_batch_accumulates_clocks(self):
        fleet = FleetState(2, 1)
        ones = np.ones((5, 2), dtype=int)
        fleet.advance_batch(ones, np.zeros((2, 1)))
        fleet.advance_batch(ones, np.ones((2, 1)))
        np.testing.assert_array_equal(fleet.times, [10, 10])
        np.testing.assert_array_equal(fleet.last_update, [9, 9])

    def test_advance_batch_node_count_mismatch(self):
        fleet = FleetState(3, 1)
        with pytest.raises(SimulationError):
            fleet.advance_batch(np.ones((4, 2), dtype=int), np.zeros((2, 1)))

    def test_reset_single_node(self):
        fleet = FleetState(2, 1)
        fleet.advance_batch(np.ones((3, 2), dtype=int), np.ones((2, 1)))
        fleet.reset_nodes(0)
        assert fleet.times[0] == 0 and fleet.times[1] == 3
        assert not fleet.observed[0] and fleet.observed[1]
        assert fleet.stored[0, 0] == 0.0 and fleet.stored[1, 0] == 1.0

    def test_from_run_snapshot(self):
        rng = np.random.default_rng(0)
        stored = rng.random((6, 3, 2))
        decisions = rng.integers(0, 2, size=(6, 3))
        fleet = FleetState.from_run(stored, decisions)
        np.testing.assert_array_equal(
            fleet.message_counts, decisions.sum(axis=0)
        )
        sent = decisions.any(axis=0)
        np.testing.assert_array_equal(
            fleet.stored[sent], stored[-1][sent]
        )


class TestShardHelpers:
    @given(st.integers(1, 200), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_shard_slices_partition(self, num_nodes, shards):
        if shards > num_nodes:
            with pytest.raises(SimulationError):
                shard_slices(num_nodes, shards)
            return
        slices = shard_slices(num_nodes, shards)
        assert slices[0][0] == 0 and slices[-1][1] == num_nodes
        sizes = []
        for (lo, hi), (next_lo, _) in zip(slices, slices[1:]):
            assert hi == next_lo  # contiguous
        for lo, hi in slices:
            assert hi > lo
            sizes.append(hi - lo)
        assert max(sizes) - min(sizes) <= 1

    def test_merge_accepts_tuples_and_results(self):
        a = (np.zeros((4, 2, 1)), np.zeros((4, 2), dtype=int))
        b = (np.ones((4, 3, 1)), np.ones((4, 3), dtype=int))
        stored, decisions = merge_collection_shards([a, b])
        assert stored.shape == (4, 5, 1)
        assert decisions.shape == (4, 5)
        np.testing.assert_array_equal(decisions[:, :2], 0)
        np.testing.assert_array_equal(decisions[:, 2:], 1)


def _reference_node_model(values, policy):
    """The pre-refactor LocalNode semantics, transcribed directly."""
    stored = None
    out_decisions, out_stored, times = [], [], []
    time = 0
    for x in values:
        x = np.atleast_1d(np.asarray(x, dtype=float))
        if stored is None:
            policy.first_transmission()
            transmit = True
        else:
            transmit = policy.decide(x, stored)
        time += 1
        if transmit:
            stored = x.copy()
        out_decisions.append(int(transmit))
        out_stored.append(stored.copy())
        times.append(time)
    return out_decisions, out_stored, times


class TestLocalNodeViewEquivalence:
    """FleetState-backed LocalNode ≡ the historical per-object node."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_view_matches_reference_model(self, seed):
        rng = np.random.default_rng(seed)
        num_nodes = int(rng.integers(1, 6))
        num_steps = int(rng.integers(1, 40))
        dim = int(rng.integers(1, 3))
        budget = float(rng.uniform(0.05, 1.0))
        adaptive = bool(rng.integers(0, 2))
        trace = rng.random((num_steps, num_nodes, dim))

        def make_policy():
            if adaptive:
                return AdaptiveTransmissionPolicy(
                    TransmissionConfig(budget=budget)
                )
            return UniformTransmissionPolicy(budget)

        fleet = FleetState(num_nodes)
        view_nodes = [
            LocalNode(i, make_policy(), fleet=fleet)
            for i in range(num_nodes)
        ]
        for i, node in enumerate(view_nodes):
            ref_decisions, ref_stored, ref_times = _reference_node_model(
                trace[:, i], make_policy()
            )
            for t in range(num_steps):
                message = node.observe(trace[t, i])
                assert (message is not None) == bool(ref_decisions[t])
                np.testing.assert_array_equal(
                    node.stored_value, ref_stored[t]
                )
                assert node.time == ref_times[t]
            # The fleet columns agree with the view's answers.
            np.testing.assert_array_equal(fleet.stored[i], ref_stored[-1])
            assert fleet.times[i] == num_steps
            assert fleet.observed[i]

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_standalone_node_matches_fleet_backed(self, seed):
        rng = np.random.default_rng(seed)
        num_steps = int(rng.integers(1, 50))
        budget = float(rng.uniform(0.05, 1.0))
        values = rng.random((num_steps, 1))

        standalone = LocalNode(
            0, AdaptiveTransmissionPolicy(TransmissionConfig(budget=budget))
        )
        fleet = FleetState(3)
        backed = LocalNode(
            1,
            AdaptiveTransmissionPolicy(TransmissionConfig(budget=budget)),
            fleet=fleet,
        )
        for t in range(num_steps):
            a = standalone.observe(values[t])
            b = backed.observe(values[t])
            assert (a is None) == (b is None)
            if a is not None:
                assert a.time == b.time
                np.testing.assert_array_equal(a.value, b.value)
        np.testing.assert_array_equal(
            standalone.stored_value, backed.stored_value
        )
        assert standalone.time == backed.time
        np.testing.assert_array_equal(
            standalone.policy.decisions, backed.policy.decisions
        )
        # Only the backed node's column moved.
        assert fleet.observed[1] and not fleet.observed[0]

    def test_node_id_outside_fleet_rejected(self):
        fleet = FleetState(2)
        with pytest.raises(SimulationError):
            LocalNode(2, UniformTransmissionPolicy(1.0), fleet=fleet)

    def test_policy_state_column_mirrors_queue(self):
        fleet = FleetState(1)
        policy = AdaptiveTransmissionPolicy(TransmissionConfig(budget=0.4))
        node = LocalNode(0, policy, fleet=fleet)
        for x in (0.1, 0.5, 0.9, 0.2):
            node.observe(np.array([x]))
            assert fleet.policy_state[0] == policy.queue_length

    def test_store_rejects_dims_disagreeing_with_fleet(self):
        fleet = FleetState(5, 2)
        with pytest.raises(SimulationError):
            CentralStore(10, 2, fleet=fleet)
        with pytest.raises(SimulationError):
            CentralStore(5, 3, fleet=fleet)
        store = CentralStore(5, 2, fleet=fleet)  # agreeing dims are fine
        assert store.num_nodes == 5 and store.dimension == 2

    def test_store_and_nodes_share_one_fleet(self):
        fleet = FleetState(2, 1)
        store = CentralStore(fleet=fleet)
        node = LocalNode(0, UniformTransmissionPolicy(1.0), fleet=fleet)
        node.observe(np.array([0.7]))
        # The node's transmission is already the store's value: one array.
        assert store.values[0, 0] == 0.7
        np.testing.assert_array_equal(store.last_update, [0, -1])

    def test_continuation_run_keeps_one_time_base(self):
        # Heterogeneous policies force the object loop; across two runs
        # the store and the node views must write last_update on the
        # same (fleet) clock, so staleness stays meaningful.
        def factory(i):
            if i == 2:
                return UniformTransmissionPolicy(0.05)  # mostly silent
            return AdaptiveTransmissionPolicy(TransmissionConfig(budget=0.4))

        rng = np.random.default_rng(3)
        sim = CollectionSimulation(3, factory)
        first = sim.run(rng.random((12, 3)))
        second = sim.run(rng.random((12, 3)))
        decisions = np.concatenate([first.decisions, second.decisions])
        for i in range(3):
            sent = np.flatnonzero(decisions[:, i])
            assert sim.fleet.last_update[i] == sent[-1]
        now = int(sim.fleet.times.max()) - 1
        store = CentralStore(fleet=sim.fleet)
        assert (store.staleness(now) >= 0).all()

    def test_batched_collection_fills_columns(self):
        trace = np.random.default_rng(1).random((30, 5))
        sim = CollectionSimulation(
            5,
            lambda i: AdaptiveTransmissionPolicy(
                TransmissionConfig(budget=0.3)
            ),
        )
        result = sim.run(trace)
        assert sim.fleet.dim == 1
        np.testing.assert_array_equal(sim.fleet.times, np.full(5, 30))
        np.testing.assert_array_equal(
            sim.fleet.message_counts, result.decisions.sum(axis=0)
        )
        # Channel stats and fleet counters are the same memory.
        assert sim.channel.stats.per_node_messages == {
            i: int(c)
            for i, c in enumerate(result.decisions.sum(axis=0))
            if c
        }
        np.testing.assert_array_equal(
            sim.fleet.policy_state,
            [node.policy.queue_length for node in sim.nodes],
        )


class TestChannelEdgeCases:
    def _measurement(self, node=0, time=0, dim=1):
        return Measurement(node=node, time=time, value=np.zeros(dim))

    def test_zero_message_slot(self):
        channel = Channel()
        assert channel.drain() == []
        assert channel.pending == 0
        assert channel.stats.messages == 0
        assert channel.stats.payload_floats == 0
        assert len(channel.stats.per_node_messages) == 0
        assert dict(channel.stats.per_node_messages) == {}

    def test_payload_bytes_custom_width(self):
        channel = Channel()
        channel.send(self._measurement(dim=3))
        channel.send(self._measurement(node=1, dim=3))
        assert channel.stats.payload_floats == 6
        assert channel.stats.payload_bytes() == 48          # 8 bytes/float
        assert channel.stats.payload_bytes(bytes_per_float=4) == 24
        assert channel.stats.payload_bytes(bytes_per_float=2) == 12

    def test_per_node_counts_after_silence(self):
        channel = Channel()
        for t in range(3):
            channel.send(self._measurement(node=0, time=t))
        channel.drain()
        # Node 0 goes silent; node 1 speaks once.
        channel.send(self._measurement(node=1, time=3))
        channel.drain()
        channel.drain()  # two silent slots for everyone
        assert channel.stats.per_node_messages == {0: 3, 1: 1}
        assert channel.stats.messages == 4

    def test_per_node_view_mapping_semantics(self):
        channel = Channel()
        channel.send(self._measurement(node=2))
        view = channel.stats.per_node_messages
        assert isinstance(view, PerNodeMessages)
        assert view[2] == 1
        assert view.get(0) is None        # silent node: not a key
        assert view.get(0, 0) == 0
        with pytest.raises(KeyError):
            view[0]
        with pytest.raises(KeyError):
            view[99]
        assert list(view) == [2]
        assert len(view) == 1
        assert view == {2: 1}
        assert view != {2: 2}
        np.testing.assert_array_equal(view.as_array()[:3], [0, 0, 1])

    def test_counters_advance_only_in_channel(self):
        # The public counters are read-only: a second accounting site
        # (the historical double-counting risk) is an AttributeError.
        stats = Channel().stats
        with pytest.raises(AttributeError):
            stats.messages = 5
        with pytest.raises(AttributeError):
            stats.payload_floats = 5
        with pytest.raises(AttributeError):
            stats.per_node_messages = {}

    def test_growable_counts_for_unbounded_node_ids(self):
        channel = Channel()
        channel.send(self._measurement(node=1000))
        assert channel.stats.per_node_messages == {1000: 1}

    def test_per_node_view_is_live_across_growth(self):
        # Like the dict it replaces, the mapping is a live reference:
        # counts sent after the view was taken — even ones that force
        # the backing array to be reallocated — must show through it.
        channel = Channel()
        channel.send(self._measurement(node=0))
        view = channel.stats.per_node_messages
        channel.send(self._measurement(node=500))  # grows the array
        channel.send(self._measurement(node=0))
        assert view[500] == 1
        assert view == {0: 2, 500: 1}

    def test_fleet_backed_counts_reject_foreign_nodes(self):
        fleet = FleetState(2, 1)
        channel = Channel(node_counts=fleet.message_counts)
        channel.send(self._measurement(node=1))
        assert fleet.message_counts[1] == 1
        with pytest.raises(SimulationError):
            channel.send(self._measurement(node=2))

    def test_record_batch_matches_per_message_sends(self):
        loop = Channel()
        for t in range(4):
            loop.send(self._measurement(node=0, time=t, dim=2))
        loop.send(self._measurement(node=2, time=0, dim=2))
        batched = Channel()
        batched.record_batch(np.array([4, 0, 1]), floats_per_message=2)
        assert batched.stats.messages == loop.stats.messages
        assert batched.stats.payload_floats == loop.stats.payload_floats
        assert (
            batched.stats.per_node_messages == loop.stats.per_node_messages
        )

    def test_from_node_counts_derives_consistent_totals(self):
        counts = np.array([2, 0, 1], dtype=np.int64)
        stats = TransportStats.from_node_counts(counts, floats_per_message=2)
        assert stats.messages == 3
        assert stats.payload_floats == 6
        assert stats.payload_bytes() == 48
        assert stats.per_node_messages == {0: 2, 2: 1}
        # Adopted, not copied: the column and the stats stay one array.
        counts[1] += 1  # (simulating the owner's channel counting)
        assert stats.per_node_messages.get(1) == 1

    def test_adopting_nonzero_counts_requires_payload_info(self):
        # Without floats_per_message the payload would silently read 0
        # while messages is non-zero — refuse the inconsistent state.
        with pytest.raises(SimulationError):
            TransportStats(node_counts=np.array([1], dtype=np.int64))
        # A fresh (all-zero) column is fine: nothing to be inconsistent.
        zeros = np.zeros(3, dtype=np.int64)
        assert TransportStats(node_counts=zeros).messages == 0
