"""Shared tier-1 fixtures."""

import pytest

from repro._compat import reset_deprecation_warnings


@pytest.fixture(autouse=True)
def _fresh_deprecation_state():
    """Make every test see first-call deprecation behavior.

    The deprecated shims warn once per process (see ``repro._compat``);
    tests asserting the warning with ``pytest.deprecated_call`` must not
    depend on whether an earlier test already triggered it.
    """
    reset_deprecation_warnings()
    yield
