"""Tests for the MonitoringSystem streaming facade."""

import numpy as np
import pytest

from repro.core.config import (
    ClusteringConfig,
    ForecastingConfig,
    PipelineConfig,
    TransmissionConfig,
)
from repro.exceptions import ConfigurationError, DataError
from repro.simulation.system import MonitoringSystem
from repro.transmission.uniform import UniformTransmissionPolicy


def small_config(budget=0.3, initial=20, horizon=2):
    return PipelineConfig(
        transmission=TransmissionConfig(budget=budget),
        clustering=ClusteringConfig(num_clusters=2, seed=0),
        forecasting=ForecastingConfig(
            model="sample_hold",
            max_horizon=horizon,
            initial_collection=initial,
            retrain_interval=initial,
        ),
    )


def feed(seed=0, steps=50, nodes=6):
    rng = np.random.default_rng(seed)
    base = np.where(np.arange(nodes) < nodes // 2, 0.2, 0.7)
    return np.clip(
        base[None, :] + rng.normal(0, 0.02, (steps, nodes)), 0, 1
    )


class TestMonitoringSystem:
    def test_tick_advances_everything(self):
        system = MonitoringSystem(6, 1, small_config())
        data = feed()
        for t in range(30):
            output = system.tick(data[t])
            assert output.time == t
        assert system.time == 30
        assert system.transport_stats.messages > 0

    def test_first_tick_all_transmit(self):
        system = MonitoringSystem(6, 1, small_config())
        system.tick(feed()[0])
        assert system.transport_stats.messages == 6

    def test_forecasts_after_initial_collection(self):
        system = MonitoringSystem(6, 1, small_config(initial=15))
        data = feed()
        last = None
        for t in range(25):
            last = system.tick(data[t])
        assert last.node_forecasts is not None
        assert last.node_forecasts[1].shape == (6, 1)

    def test_empirical_frequency_near_budget(self):
        rng = np.random.default_rng(1)
        walk = np.clip(
            0.5 + np.cumsum(rng.normal(0, 0.02, (400, 5)), axis=0), 0, 1
        )
        system = MonitoringSystem(5, 1, small_config(budget=0.3))
        for t in range(400):
            system.tick(walk[t])
        assert system.empirical_frequency == pytest.approx(0.3, abs=0.02)

    def test_custom_policy_factory(self):
        system = MonitoringSystem(
            4, 1, small_config(),
            policy_factory=lambda i: UniformTransmissionPolicy(
                0.5, phase=i / 4
            ),
        )
        data = feed(nodes=4)
        for t in range(20):
            system.tick(data[t])
        # Forced first tick + ~50% of the remaining 19 slots per node.
        expected = 4 + 0.5 * 19 * 4
        assert system.transport_stats.messages == pytest.approx(
            expected, abs=4
        )

    def test_wrong_shape_rejected(self):
        system = MonitoringSystem(4, 1, small_config())
        with pytest.raises(DataError):
            system.tick(np.zeros(5))

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            MonitoringSystem(0, 1)

    def test_store_matches_node_views(self):
        system = MonitoringSystem(5, 1, small_config())
        data = feed(nodes=5)
        for t in range(25):
            system.tick(data[t])
        stored = system.store.values
        for node in system.nodes:
            assert stored[node.node_id, 0] == pytest.approx(
                node.stored_value[0]
            )

    def test_forecast_report_collecting_phase(self):
        system = MonitoringSystem(4, 1, small_config(initial=30))
        output = system.tick(feed(nodes=4)[0])
        report = system.forecast_report(output, 1)
        assert "collecting" in report

    def test_forecast_report_with_forecasts(self):
        system = MonitoringSystem(6, 1, small_config(initial=10))
        data = feed()
        output = None
        for t in range(15):
            output = system.tick(data[t])
        report = system.forecast_report(output, 1)
        assert "forecast for t+1" in report
        assert "node" in report

    def test_multiresource(self):
        system = MonitoringSystem(4, 2, small_config(initial=10))
        rng = np.random.default_rng(2)
        output = None
        for t in range(15):
            output = system.tick(rng.random((4, 2)))
        assert output.node_forecasts[1].shape == (4, 2)
