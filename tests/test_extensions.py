"""Tests for extensions: deadband policy, error decomposition, ARIMA
prediction intervals, and the deadband ablation."""

import numpy as np
import pytest

from repro.analysis.decomposition import decompose_error
from repro.core.config import (
    ClusteringConfig,
    ForecastingConfig,
    PipelineConfig,
    TransmissionConfig,
)
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.forecasting.arima import ArimaModel, ArimaOrder
from repro.transmission.deadband import (
    DeadbandTransmissionPolicy,
    simulate_deadband_collection,
)


class TestDeadbandPolicy:
    def test_transmits_beyond_delta(self):
        policy = DeadbandTransmissionPolicy(delta=0.1)
        assert policy.decide(np.array([0.5]), np.array([0.3]))

    def test_silent_within_delta(self):
        policy = DeadbandTransmissionPolicy(delta=0.1)
        assert not policy.decide(np.array([0.35]), np.array([0.3]))

    def test_boundary_not_transmitted(self):
        # Exactly at the deadband edge (binary-exact values): stay silent.
        policy = DeadbandTransmissionPolicy(delta=0.5)
        assert not policy.decide(np.array([0.75]), np.array([0.25]))

    def test_multidimensional_rms(self):
        policy = DeadbandTransmissionPolicy(delta=0.1)
        # mean squared deviation = (0.04 + 0) / 2 = 0.02 > 0.01
        assert policy.decide(np.array([0.5, 0.3]), np.array([0.3, 0.3]))

    def test_invalid_delta(self):
        with pytest.raises(ConfigurationError):
            DeadbandTransmissionPolicy(delta=0.0)

    def test_shape_mismatch(self):
        policy = DeadbandTransmissionPolicy(delta=0.1)
        with pytest.raises(DataError):
            policy.decide(np.zeros(2), np.zeros(3))

    def test_frequency_depends_on_volatility(self):
        # The deadband's defining (bad) property: the same δ yields very
        # different frequencies on calm vs volatile data.
        rng = np.random.default_rng(0)
        calm = np.clip(0.5 + rng.normal(0, 0.01, (500, 5)), 0, 1)
        wild = np.clip(0.5 + rng.normal(0, 0.2, (500, 5)), 0, 1)
        delta = 0.05
        f_calm = simulate_deadband_collection(calm, delta).empirical_frequency
        f_wild = simulate_deadband_collection(wild, delta).empirical_frequency
        assert f_wild > 3 * f_calm

    def test_vectorized_matches_policy(self):
        rng = np.random.default_rng(1)
        trace = rng.random((80, 4))
        vec = simulate_deadband_collection(trace, 0.2)
        # Replay via the per-node policy (with forced first send).
        for node in range(4):
            policy = DeadbandTransmissionPolicy(delta=0.2)
            stored = trace[0, node]
            decisions = [1]
            for t in range(1, 80):
                sent = policy.decide(
                    np.array([trace[t, node]]), np.array([stored])
                )
                if sent:
                    stored = trace[t, node]
                decisions.append(int(sent))
            np.testing.assert_array_equal(vec.decisions[:, node], decisions)

    def test_simulate_invalid_delta(self):
        with pytest.raises(ConfigurationError):
            simulate_deadband_collection(np.zeros((5, 2)), -1.0)


class TestDeadbandAblation:
    def test_adaptive_hits_budget_deadband_does_not(self):
        from repro.experiments import run_ablation_deadband

        result = run_ablation_deadband(num_nodes=25, num_steps=300)
        assert result.max_adaptive_miss() < 0.05
        assert result.max_deadband_miss() > 0.15
        # δ was calibrated on the calibration dataset, so that one hits.
        cal = result.calibration_dataset
        assert result.deadband_frequency[cal] == pytest.approx(
            result.target, abs=0.02
        )


class TestErrorDecomposition:
    def _config(self, budget=0.3):
        return PipelineConfig(
            transmission=TransmissionConfig(budget=budget),
            clustering=ClusteringConfig(num_clusters=2, seed=0),
            forecasting=ForecastingConfig(
                model="sample_hold", max_horizon=3,
                initial_collection=25, retrain_interval=25,
            ),
        )

    def _trace(self):
        rng = np.random.default_rng(0)
        base = np.where(np.arange(8) < 4, 0.25, 0.7)
        return np.clip(
            base[None, :] + rng.normal(0, 0.03, (90, 8)), 0, 1
        )

    def test_components_ordered(self):
        decomposition = decompose_error(self._trace(), self._config(), 1)
        # Idealizing the collection can only help (statistically).
        assert decomposition.without_staleness <= decomposition.total + 0.02
        assert 0.0 <= decomposition.staleness_share <= 1.0

    def test_perfect_collection_kills_staleness_floor(self):
        decomposition = decompose_error(
            self._trace(), self._config(budget=1.0), 1
        )
        assert decomposition.staleness_only == pytest.approx(0.0, abs=1e-12)
        assert decomposition.staleness_share == pytest.approx(0.0, abs=0.05)

    def test_horizon_validation(self):
        with pytest.raises(DataError):
            decompose_error(self._trace(), self._config(), 9)

    def test_format_contains_fields(self):
        decomposition = decompose_error(self._trace(), self._config(), 1)
        text = decomposition.format()
        assert "total RMSE" in text
        assert "staleness" in text


class TestArimaIntervals:
    def _fit_ar1(self, phi=0.7, sigma=0.1, n=2000, seed=0):
        rng = np.random.default_rng(seed)
        x = np.zeros(n)
        for t in range(1, n):
            x[t] = phi * x[t - 1] + rng.normal(0, sigma)
        model = ArimaModel(ArimaOrder(p=1))
        model.fit(x)
        return model, phi, sigma

    def test_psi_weights_of_ar1(self):
        model, phi, _ = self._fit_ar1()
        psi = model.psi_weights(5)
        expected = model.params[0] ** np.arange(5)
        np.testing.assert_allclose(psi, expected, rtol=1e-6)

    def test_interval_widens_with_horizon(self):
        model, _, _ = self._fit_ar1()
        point, lower, upper = model.forecast_interval(10)
        widths = upper - lower
        assert (np.diff(widths) >= -1e-12).all()
        np.testing.assert_allclose(point, (lower + upper) / 2)

    def test_one_step_width_matches_sigma(self):
        model, _, sigma = self._fit_ar1()
        _, lower, upper = model.forecast_interval(1, confidence=0.95)
        width = float(upper[0] - lower[0])
        assert width == pytest.approx(2 * 1.96 * sigma, rel=0.1)

    def test_empirical_coverage(self):
        # Check the 90% interval covers about 90% of realized values.
        rng = np.random.default_rng(1)
        phi, sigma = 0.6, 0.1
        x = np.zeros(3000)
        for t in range(1, x.size):
            x[t] = phi * x[t - 1] + rng.normal(0, sigma)
        model = ArimaModel(ArimaOrder(p=1)).fit(x[:2000])
        hits = 0
        total = 0
        for t in range(2000, 2995):
            model_forecasts = model.forecast_interval(1, confidence=0.9)
            _, lower, upper = model_forecasts
            if lower[0] <= x[t] <= upper[0]:
                hits += 1
            total += 1
            model.update(float(x[t]))
        assert hits / total == pytest.approx(0.9, abs=0.05)

    def test_random_walk_interval_grows_like_sqrt_h(self):
        rng = np.random.default_rng(2)
        x = np.cumsum(rng.normal(0, 0.1, 1000))
        model = ArimaModel(ArimaOrder(p=0, d=1, q=0)).fit(x)
        _, lower, upper = model.forecast_interval(16)
        widths = upper - lower
        assert widths[15] / widths[3] == pytest.approx(2.0, rel=0.1)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            ArimaModel().psi_weights(3)

    def test_invalid_confidence(self):
        model, _, _ = self._fit_ar1()
        with pytest.raises(DataError):
            model.forecast_interval(3, confidence=1.5)
