"""Tests for the numpy LSTM stack: layers, gradients, training, forecasting."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError
from repro.forecasting.lstm import (
    Adam,
    DenseLayer,
    LSTMLayer,
    LstmForecaster,
    MinMaxScaler,
    SGD,
    StackedLSTMNetwork,
    build_windows,
    clip_gradients,
    sigmoid,
)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_extremes_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)
        assert np.isfinite(out).all()

    def test_symmetry(self):
        x = np.linspace(-5, 5, 21)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), 1.0)


def numerical_gradient(fn, param, idx, eps=1e-6):
    orig = param[idx]
    param[idx] = orig + eps
    up = fn()
    param[idx] = orig - eps
    down = fn()
    param[idx] = orig
    return (up - down) / (2 * eps)


class TestLSTMLayerGradients:
    def _setup(self, seed=0, batch=3, steps=4, input_dim=2, hidden=5):
        rng = np.random.default_rng(seed)
        layer = LSTMLayer(input_dim, hidden, rng=rng)
        x = rng.normal(size=(batch, steps, input_dim))
        target = rng.normal(size=(batch, steps, hidden))

        def loss():
            h = layer.forward(x)
            return 0.5 * float(np.sum((h - target) ** 2))

        # Analytic gradients.
        h = layer.forward(x)
        layer.backward(h - target)
        return layer, x, loss

    @pytest.mark.parametrize("name", ["W", "U", "b"])
    def test_parameter_gradients(self, name):
        layer, x, loss = self._setup()
        grad = layer.gradients[name]
        param = layer.parameters[name]
        rng = np.random.default_rng(1)
        flat_indices = rng.choice(param.size, size=6, replace=False)
        for flat in flat_indices:
            idx = np.unravel_index(flat, param.shape)
            numeric = numerical_gradient(loss, param, idx)
            assert grad[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-7)

    def test_input_gradients(self):
        rng = np.random.default_rng(2)
        layer = LSTMLayer(2, 4, rng=rng)
        x = rng.normal(size=(2, 3, 2))
        target = rng.normal(size=(2, 3, 4))
        h = layer.forward(x)
        dx = layer.backward(h - target)

        def loss():
            return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

        for idx in [(0, 0, 0), (1, 2, 1), (0, 1, 1)]:
            numeric = numerical_gradient(loss, x, idx)
            assert dx[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-7)

    def test_forward_shapes(self):
        layer = LSTMLayer(3, 7, rng=np.random.default_rng(0))
        out = layer.forward(np.zeros((2, 5, 3)))
        assert out.shape == (2, 5, 7)

    def test_forward_bad_input(self):
        layer = LSTMLayer(3, 7)
        with pytest.raises(DataError):
            layer.forward(np.zeros((2, 5, 4)))

    def test_backward_before_forward(self):
        layer = LSTMLayer(2, 3)
        with pytest.raises(DataError):
            layer.backward(np.zeros((1, 1, 3)))

    def test_forget_bias_initialized_to_one(self):
        layer = LSTMLayer(2, 4, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(layer.b[4:8], 1.0)


class TestDenseLayer:
    def test_linear_forward(self):
        layer = DenseLayer(2, 1, activation="linear",
                           rng=np.random.default_rng(0))
        layer.W[:] = [[2.0], [3.0]]
        layer.b[:] = 1.0
        out = layer.forward(np.array([[1.0, 1.0]]))
        assert out[0, 0] == pytest.approx(6.0)

    def test_relu_clamps(self):
        layer = DenseLayer(1, 1, activation="relu",
                           rng=np.random.default_rng(0))
        layer.W[:] = [[1.0]]
        layer.b[:] = 0.0
        assert layer.forward(np.array([[-2.0]]))[0, 0] == 0.0

    def test_gradients(self):
        rng = np.random.default_rng(3)
        layer = DenseLayer(3, 2, activation="relu", rng=rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss():
            return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

        out = layer.forward(x)
        dx = layer.backward(out - target)
        for idx in [(0, 0), (2, 1)]:
            numeric = numerical_gradient(loss, layer.W, idx)
            assert layer.dW[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-7)
        numeric_x = numerical_gradient(loss, x, (1, 2))
        assert dx[1, 2] == pytest.approx(numeric_x, rel=1e-4, abs=1e-7)

    def test_invalid_activation(self):
        with pytest.raises(ConfigurationError):
            DenseLayer(2, 1, activation="tanh")

    def test_bias_init(self):
        layer = DenseLayer(2, 1, bias_init=0.5)
        assert layer.b[0] == 0.5


class TestStackedNetwork:
    def test_end_to_end_gradient(self):
        rng = np.random.default_rng(4)
        net = StackedLSTMNetwork(1, 4, 1, rng=rng)
        x = rng.normal(size=(3, 5, 1))
        y = rng.normal(size=(3, 1))
        net.loss_and_gradient(x, y)

        def loss():
            return float(np.mean((net.forward(x) - y) ** 2))

        for layer, name, idx in [
            (net.lstm1, "W", (0, 3)),
            (net.lstm2, "U", (1, 2)),
            (net.head, "W", (2, 0)),
        ]:
            # Recompute analytic gradients (loss() calls overwrote caches).
            net.loss_and_gradient(x, y)
            analytic = layer.gradients[name][idx]
            numeric = numerical_gradient(loss, layer.parameters[name], idx)
            assert analytic == pytest.approx(numeric, rel=1e-3, abs=1e-7)

    def test_output_shape(self):
        net = StackedLSTMNetwork(1, 4, 1, rng=np.random.default_rng(0))
        out = net.forward(np.zeros((7, 3, 1)))
        assert out.shape == (7, 1)

    def test_target_shape_mismatch(self):
        net = StackedLSTMNetwork(1, 4, 1, rng=np.random.default_rng(0))
        with pytest.raises(DataError):
            net.loss_and_gradient(np.zeros((2, 3, 1)), np.zeros((3, 1)))

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(5)
        net = StackedLSTMNetwork(1, 8, 1, rng=rng)
        t = np.arange(100)
        series = 0.5 + 0.3 * np.sin(2 * np.pi * t / 10)
        windows, targets = build_windows(series, 8)
        optimizer = Adam(net.layers, learning_rate=1e-2)
        first = net.loss_and_gradient(windows, targets[:, None])
        for _ in range(60):
            loss = net.loss_and_gradient(windows, targets[:, None])
            clip_gradients(net.layers, 5.0)
            optimizer.step()
        assert loss < first * 0.2


class TestOptimizers:
    def test_adam_moves_toward_minimum(self):
        layer = DenseLayer(1, 1, activation="linear",
                           rng=np.random.default_rng(0))
        optimizer = Adam([layer], learning_rate=0.1)
        x = np.array([[1.0]])
        for _ in range(200):
            out = layer.forward(x)
            layer.backward(out - 3.0)
            optimizer.step()
        assert layer.forward(x)[0, 0] == pytest.approx(3.0, abs=0.05)

    def test_sgd_moves_toward_minimum(self):
        layer = DenseLayer(1, 1, activation="linear",
                           rng=np.random.default_rng(1))
        optimizer = SGD([layer], learning_rate=0.1, momentum=0.5)
        x = np.array([[1.0]])
        for _ in range(200):
            out = layer.forward(x)
            layer.backward(out - 2.0)
            optimizer.step()
        assert layer.forward(x)[0, 0] == pytest.approx(2.0, abs=0.05)

    def test_clip_gradients_bounds_norm(self):
        layer = DenseLayer(2, 2, activation="linear",
                           rng=np.random.default_rng(2))
        layer.dW[:] = 100.0
        layer.db[:] = 100.0
        norm_before = clip_gradients([layer], 1.0)
        assert norm_before > 1.0
        total = np.sqrt(
            np.sum(layer.dW**2) + np.sum(layer.db**2)
        )
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_clip_invalid_norm(self):
        with pytest.raises(ConfigurationError):
            clip_gradients([], 0.0)

    def test_adam_invalid_params(self):
        with pytest.raises(ConfigurationError):
            Adam([], learning_rate=-1.0)
        with pytest.raises(ConfigurationError):
            Adam([], beta1=1.0)


class TestBuildWindows:
    def test_shapes_and_alignment(self):
        series = np.arange(10, dtype=float)
        windows, targets = build_windows(series, 3)
        assert windows.shape == (7, 3, 1)
        assert targets.shape == (7,)
        np.testing.assert_array_equal(windows[0, :, 0], [0, 1, 2])
        assert targets[0] == 3.0
        np.testing.assert_array_equal(windows[-1, :, 0], [6, 7, 8])
        assert targets[-1] == 9.0

    def test_too_short(self):
        with pytest.raises(DataError):
            build_windows(np.arange(3, dtype=float), 3)


class TestMinMaxScaler:
    def test_round_trip(self):
        scaler = MinMaxScaler().fit(np.array([2.0, 4.0, 6.0]))
        x = np.array([3.0, 5.0])
        np.testing.assert_allclose(scaler.inverse(scaler.transform(x)), x)

    def test_constant_series_safe(self):
        scaler = MinMaxScaler().fit(np.full(5, 3.0))
        out = scaler.transform(np.array([3.0]))
        assert np.isfinite(out).all()


class TestLstmForecaster:
    def test_learns_sine(self):
        t = np.arange(240)
        series = 0.5 + 0.3 * np.sin(2 * np.pi * t / 24)
        forecaster = LstmForecaster(
            hidden_dim=16, lookback=12, epochs=25, seed=0
        )
        forecaster.fit(series)
        prediction = forecaster.forecast(6)
        truth = 0.5 + 0.3 * np.sin(2 * np.pi * (240 + np.arange(6)) / 24)
        assert np.abs(prediction - truth).mean() < 0.06

    def test_update_influences_forecast(self):
        t = np.arange(150)
        series = 0.5 + 0.2 * np.sin(2 * np.pi * t / 15)
        forecaster = LstmForecaster(
            hidden_dim=8, lookback=10, epochs=10, seed=1
        )
        forecaster.fit(series)
        f1 = forecaster.forecast(1)[0]
        for _ in range(5):
            forecaster.update(0.9)
        f2 = forecaster.forecast(1)[0]
        assert f2 != pytest.approx(f1)

    def test_deterministic_with_seed(self):
        series = np.random.default_rng(6).random(80)
        a = LstmForecaster(hidden_dim=4, lookback=5, epochs=3, seed=7)
        b = LstmForecaster(hidden_dim=4, lookback=5, epochs=3, seed=7)
        fa = a.fit(series).forecast(3)
        fb = b.fit(series).forecast(3)
        np.testing.assert_allclose(fa, fb)

    def test_series_too_short(self):
        forecaster = LstmForecaster(lookback=20)
        with pytest.raises(DataError):
            forecaster.fit(np.zeros(10))

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            LstmForecaster(lookback=0)
        with pytest.raises(ConfigurationError):
            LstmForecaster(epochs=0)
        with pytest.raises(ConfigurationError):
            LstmForecaster(batch_size=0)

    def test_loss_history_populated(self):
        series = np.random.default_rng(8).random(60)
        forecaster = LstmForecaster(hidden_dim=4, lookback=5, epochs=4, seed=0)
        forecaster.fit(series)
        assert forecaster.loss_history.shape == (4,)

    def test_forecast_nonnegative(self):
        # ReLU head + [0, 1] scaling: forecasts stay at or above the
        # training minimum.
        series = np.abs(np.random.default_rng(9).random(80))
        forecaster = LstmForecaster(hidden_dim=4, lookback=5, epochs=3, seed=0)
        forecaster.fit(series)
        assert (forecaster.forecast(5) >= series.min() - 1e-9).all()
