"""Tests for repro.core.config validation and defaults."""

import pytest

from repro.core.config import (
    ClusteringConfig,
    ForecastingConfig,
    PipelineConfig,
    TransmissionConfig,
)
from repro.exceptions import ConfigurationError


class TestTransmissionConfig:
    def test_paper_defaults(self):
        config = TransmissionConfig()
        assert config.budget == 0.3
        assert config.gamma == 0.65

    @pytest.mark.parametrize("budget", [0.0, -0.1, 1.5])
    def test_invalid_budget(self, budget):
        with pytest.raises(ConfigurationError):
            TransmissionConfig(budget=budget)

    @pytest.mark.parametrize("gamma", [0.0, 1.0, -0.2])
    def test_invalid_gamma(self, gamma):
        with pytest.raises(ConfigurationError):
            TransmissionConfig(gamma=gamma)

    def test_invalid_v0(self):
        with pytest.raises(ConfigurationError):
            TransmissionConfig(v0=0.0)

    def test_budget_one_allowed(self):
        assert TransmissionConfig(budget=1.0).budget == 1.0


class TestClusteringConfig:
    def test_paper_defaults(self):
        config = ClusteringConfig()
        assert config.num_clusters == 3
        assert config.history_depth == 1
        assert config.similarity == "intersection"
        assert config.window == 1
        assert config.scalar_per_resource is True

    def test_invalid_num_clusters(self):
        with pytest.raises(ConfigurationError):
            ClusteringConfig(num_clusters=0)

    def test_invalid_similarity(self):
        with pytest.raises(ConfigurationError):
            ClusteringConfig(similarity="cosine")

    def test_invalid_history(self):
        with pytest.raises(ConfigurationError):
            ClusteringConfig(history_depth=0)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            ClusteringConfig(window=0)

    def test_jaccard_accepted(self):
        assert ClusteringConfig(similarity="jaccard").similarity == "jaccard"


class TestForecastingConfig:
    def test_paper_defaults(self):
        config = ForecastingConfig()
        assert config.membership_lookback == 5
        assert config.initial_collection == 1000
        assert config.retrain_interval == 288
        assert config.arima_max_p == 5
        assert config.arima_max_d == 2
        assert config.arima_max_q == 5

    def test_invalid_model(self):
        with pytest.raises(ConfigurationError):
            ForecastingConfig(model="prophet")

    @pytest.mark.parametrize(
        "field", ["membership_lookback", "initial_collection",
                  "retrain_interval", "max_horizon"]
    )
    def test_positive_fields(self, field):
        with pytest.raises(ConfigurationError):
            ForecastingConfig(**{field: 0})

    def test_negative_arima_bound(self):
        with pytest.raises(ConfigurationError):
            ForecastingConfig(arima_max_p=-1)

    def test_invalid_lstm(self):
        with pytest.raises(ConfigurationError):
            ForecastingConfig(lstm_hidden=0)


class TestPipelineConfig:
    def test_paper_defaults_factory(self):
        config = PipelineConfig.paper_defaults()
        assert config.transmission.budget == 0.3
        assert config.clustering.num_clusters == 3

    def test_small_factory(self):
        config = PipelineConfig.small(num_clusters=2, budget=0.5)
        assert config.clustering.num_clusters == 2
        assert config.transmission.budget == 0.5
        assert config.forecasting.initial_collection < 1000

    def test_frozen(self):
        config = PipelineConfig()
        with pytest.raises(AttributeError):
            config.transmission = TransmissionConfig()
