"""Tests for transmission policies (Sec. V-A) and their budget behavior."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TransmissionConfig
from repro.exceptions import ConfigurationError, DataError
from repro.transmission.adaptive import AdaptiveTransmissionPolicy
from repro.transmission.uniform import UniformTransmissionPolicy


class TestAdaptivePolicy:
    def test_transmits_on_large_error_with_credit(self):
        policy = AdaptiveTransmissionPolicy(TransmissionConfig(budget=0.5))
        # Build credit with a few identical observations.
        same = np.array([0.5])
        for _ in range(5):
            policy.decide(same, same)
        assert policy.decide(np.array([0.9]), np.array([0.5]))

    def test_constant_data_frequency_tracks_budget(self):
        # The literal Eq. 7 argmin transmits whenever the queue goes
        # negative, even with zero change — so on constant data the
        # frequency still converges to B (never above it).
        policy = AdaptiveTransmissionPolicy(TransmissionConfig(budget=0.3))
        same = np.array([0.4])
        for _ in range(300):
            policy.decide(same, same)
        assert policy.empirical_frequency <= 0.3 + 1e-9
        assert policy.empirical_frequency == pytest.approx(0.3, abs=0.02)

    def test_skips_on_tie_at_zero_queue(self):
        # Q = 0 and F = 0: both objectives are 0; the tie breaks to
        # "don't transmit".
        policy = AdaptiveTransmissionPolicy(TransmissionConfig(budget=0.3))
        same = np.array([0.4])
        assert policy.decide(same, same) is False

    def test_frequency_converges_to_budget(self):
        rng = np.random.default_rng(0)
        config = TransmissionConfig(budget=0.3)
        policy = AdaptiveTransmissionPolicy(config)
        stored = np.array([0.5])
        for _ in range(2000):
            current = np.clip(stored + rng.normal(0, 0.05, 1), 0, 1)
            if policy.decide(current, stored):
                stored = current
        assert policy.empirical_frequency == pytest.approx(0.3, abs=0.01)

    @given(st.floats(0.05, 0.9))
    @settings(max_examples=15, deadline=None)
    def test_budget_respected_for_any_b(self, budget):
        rng = np.random.default_rng(1)
        policy = AdaptiveTransmissionPolicy(TransmissionConfig(budget=budget))
        stored = np.array([0.5])
        for _ in range(1500):
            current = np.clip(stored + rng.normal(0, 0.05, 1), 0, 1)
            if policy.decide(current, stored):
                stored = current
        assert policy.empirical_frequency <= budget + 0.03

    def test_penalty_definition(self):
        policy = AdaptiveTransmissionPolicy()
        # F = (1/d)||z - x||^2 with d = 2.
        value = policy.penalty(np.array([0.2, 0.4]), np.array([0.4, 0.8]))
        assert value == pytest.approx((0.04 + 0.16) / 2)

    def test_penalty_shape_mismatch(self):
        policy = AdaptiveTransmissionPolicy()
        with pytest.raises(DataError):
            policy.penalty(np.zeros(2), np.zeros(3))

    def test_queue_history_recorded(self):
        policy = AdaptiveTransmissionPolicy()
        same = np.array([0.1])
        for _ in range(5):
            policy.decide(same, same)
        assert policy.queue_history.shape == (5,)

    def test_first_transmission_charges_queue(self):
        config = TransmissionConfig(budget=0.3)
        policy = AdaptiveTransmissionPolicy(config)
        policy.first_transmission()
        assert policy.queue_length == pytest.approx(0.7)
        assert policy.decisions.tolist() == [1]

    def test_reset(self):
        policy = AdaptiveTransmissionPolicy()
        policy.first_transmission()
        policy.reset()
        assert policy.queue_length == 0.0
        assert policy.decisions.size == 0

    def test_credit_enables_bursts(self):
        # After a long quiet period the policy should transmit several
        # slots in a row when the signal changes rapidly.
        policy = AdaptiveTransmissionPolicy(TransmissionConfig(budget=0.2))
        same = np.array([0.5])
        for _ in range(50):
            policy.decide(same, same)
        stored = same
        burst_decisions = []
        for step in range(5):
            current = np.array([0.5 + 0.1 * (step + 1)])
            transmitted = policy.decide(current, stored)
            burst_decisions.append(transmitted)
            if transmitted:
                stored = current
        # At budget 0.2, five slots nominally allow one transmission;
        # the banked credit plus the penalty term should deliver more.
        assert sum(burst_decisions) >= 2


class TestUniformPolicy:
    def test_exact_frequency_integer_period(self):
        policy = UniformTransmissionPolicy(0.25)
        x = np.array([0.0])
        decisions = [policy.decide(x, x) for _ in range(100)]
        assert sum(decisions) == 25

    def test_error_diffusion_non_integer_period(self):
        policy = UniformTransmissionPolicy(0.3)
        x = np.array([0.0])
        decisions = [policy.decide(x, x) for _ in range(1000)]
        assert sum(decisions) == pytest.approx(300, abs=1)

    def test_oblivious_to_data(self):
        policy_a = UniformTransmissionPolicy(0.5)
        policy_b = UniformTransmissionPolicy(0.5)
        x = np.array([0.0])
        y = np.array([1.0])
        d_a = [policy_a.decide(x, x) for _ in range(20)]
        d_b = [policy_b.decide(y, x) for _ in range(20)]
        assert d_a == d_b

    def test_phase_staggers(self):
        p0 = UniformTransmissionPolicy(0.5, phase=0.0)
        p1 = UniformTransmissionPolicy(0.5, phase=0.5)
        x = np.array([0.0])
        d0 = [p0.decide(x, x) for _ in range(4)]
        d1 = [p1.decide(x, x) for _ in range(4)]
        assert d0 != d1

    def test_invalid_budget(self):
        with pytest.raises(ConfigurationError):
            UniformTransmissionPolicy(0.0)
        with pytest.raises(ConfigurationError):
            UniformTransmissionPolicy(1.2)

    def test_invalid_phase(self):
        with pytest.raises(ConfigurationError):
            UniformTransmissionPolicy(0.5, phase=1.0)

    def test_reset_restores_phase(self):
        policy = UniformTransmissionPolicy(0.5, phase=0.25)
        x = np.array([0.0])
        first = [policy.decide(x, x) for _ in range(8)]
        policy.reset()
        second = [policy.decide(x, x) for _ in range(8)]
        assert first == second

    def test_budget_one_transmits_always(self):
        policy = UniformTransmissionPolicy(1.0)
        x = np.array([0.0])
        assert all(policy.decide(x, x) for _ in range(10))
