"""Tests for repro.core.types."""

import numpy as np
import pytest

from repro.core.types import (
    ClusterAssignment,
    Forecast,
    Measurement,
    TransmissionRecord,
    partition_from_labels,
    validate_trace,
)
from repro.exceptions import DataError


class TestMeasurement:
    def test_basic_construction(self):
        m = Measurement(node=3, time=7, value=np.array([0.5, 0.2]))
        assert m.node == 3
        assert m.time == 7
        assert m.dimension == 2

    def test_value_coerced_to_float(self):
        m = Measurement(node=0, time=0, value=np.array([1, 2]))
        assert m.value.dtype == float

    def test_rejects_2d_value(self):
        with pytest.raises(DataError):
            Measurement(node=0, time=0, value=np.zeros((2, 2)))

    def test_scalar_list_accepted(self):
        m = Measurement(node=0, time=0, value=[0.25])
        assert m.dimension == 1


class TestClusterAssignment:
    def test_members_and_member_sets(self):
        a = ClusterAssignment(
            time=0,
            labels=np.array([0, 1, 0, 2, 1]),
            centroids=np.zeros((3, 1)),
        )
        assert list(a.members(0)) == [0, 2]
        assert a.member_sets() == [{0, 2}, {1, 4}, {3}]
        assert a.num_clusters == 3
        assert a.num_nodes == 5

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(DataError):
            ClusterAssignment(
                time=0, labels=np.array([0, 3]), centroids=np.zeros((2, 1))
            )

    def test_rejects_negative_labels(self):
        with pytest.raises(DataError):
            ClusterAssignment(
                time=0, labels=np.array([-1, 0]), centroids=np.zeros((2, 1))
            )

    def test_rejects_bad_shapes(self):
        with pytest.raises(DataError):
            ClusterAssignment(
                time=0, labels=np.zeros((2, 2), dtype=int),
                centroids=np.zeros((2, 1)),
            )
        with pytest.raises(DataError):
            ClusterAssignment(
                time=0, labels=np.zeros(2, dtype=int), centroids=np.zeros(3)
            )

    def test_empty_cluster_allowed(self):
        a = ClusterAssignment(
            time=0, labels=np.array([0, 0]), centroids=np.zeros((2, 1))
        )
        assert list(a.members(1)) == []


class TestForecast:
    def test_for_horizon(self):
        f = Forecast(
            made_at=10,
            horizons=[1, 2],
            node_values=np.arange(12).reshape(2, 3, 2),
            centroid_values=np.zeros((2, 1, 2)),
            memberships=np.zeros(3, dtype=int),
        )
        np.testing.assert_array_equal(
            f.for_horizon(2), np.arange(6, 12).reshape(3, 2)
        )

    def test_unknown_horizon_raises(self):
        f = Forecast(
            made_at=0,
            horizons=[1],
            node_values=np.zeros((1, 2, 1)),
            centroid_values=np.zeros((1, 1, 1)),
            memberships=np.zeros(2, dtype=int),
        )
        with pytest.raises(DataError):
            f.for_horizon(3)


class TestTransmissionRecord:
    def test_frequency(self):
        r = TransmissionRecord(node=0, decisions=[1, 0, 0, 1])
        assert r.count == 2
        assert r.frequency == 0.5

    def test_empty_frequency_zero(self):
        assert TransmissionRecord(node=0).frequency == 0.0


class TestValidateTrace:
    def test_promotes_2d(self):
        out = validate_trace(np.zeros((4, 3)))
        assert out.shape == (4, 3, 1)

    def test_passes_3d(self):
        out = validate_trace(np.zeros((4, 3, 2)))
        assert out.shape == (4, 3, 2)

    def test_rejects_1d(self):
        with pytest.raises(DataError):
            validate_trace(np.zeros(4))

    def test_rejects_nan(self):
        data = np.zeros((2, 2))
        data[0, 0] = np.nan
        with pytest.raises(DataError):
            validate_trace(data)

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            validate_trace(np.zeros((0, 3)))


class TestPartitionFromLabels:
    def test_round_trip(self):
        labels = np.array([0, 2, 1, 0])
        partition = partition_from_labels(labels, 3)
        assert partition == {0: {0, 3}, 1: {2}, 2: {1}}

    def test_empty_clusters_present(self):
        partition = partition_from_labels(np.array([0]), 3)
        assert partition[1] == set() and partition[2] == set()

    def test_rejects_out_of_range(self):
        with pytest.raises(DataError):
            partition_from_labels(np.array([5]), 3)
