"""Tests for ACF/PACF/differencing/AICc statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataError
from repro.forecasting.stattools import (
    acf,
    aicc,
    difference,
    differencing_polynomial,
    ljung_box,
    pacf,
    undifference_forecasts,
)


class TestAcf:
    def test_lag_zero_is_one(self):
        x = np.random.default_rng(0).random(100)
        assert acf(x, 5)[0] == pytest.approx(1.0)

    def test_white_noise_small_lags(self):
        x = np.random.default_rng(1).standard_normal(5000)
        rho = acf(x, 3)
        assert abs(rho[1]) < 0.05
        assert abs(rho[2]) < 0.05

    def test_ar1_geometric_decay(self):
        rng = np.random.default_rng(2)
        phi = 0.8
        x = np.zeros(20000)
        for t in range(1, x.size):
            x[t] = phi * x[t - 1] + rng.standard_normal()
        rho = acf(x, 3)
        assert rho[1] == pytest.approx(phi, abs=0.03)
        assert rho[2] == pytest.approx(phi**2, abs=0.05)

    def test_constant_series(self):
        rho = acf(np.full(50, 0.5), 3)
        np.testing.assert_array_equal(rho, [1.0, 0.0, 0.0, 0.0])

    def test_lag_too_large(self):
        with pytest.raises(DataError):
            acf(np.zeros(5), 5)

    def test_2d_rejected(self):
        with pytest.raises(DataError):
            acf(np.zeros((5, 2)), 2)


class TestPacf:
    def test_ar1_cuts_off_after_lag1(self):
        rng = np.random.default_rng(3)
        x = np.zeros(20000)
        for t in range(1, x.size):
            x[t] = 0.7 * x[t - 1] + rng.standard_normal()
        phi = pacf(x, 4)
        assert phi[1] == pytest.approx(0.7, abs=0.03)
        assert abs(phi[2]) < 0.05
        assert abs(phi[3]) < 0.05

    def test_ar2_second_coefficient(self):
        rng = np.random.default_rng(4)
        x = np.zeros(30000)
        for t in range(2, x.size):
            x[t] = 0.5 * x[t - 1] + 0.3 * x[t - 2] + rng.standard_normal()
        phi = pacf(x, 3)
        assert phi[2] == pytest.approx(0.3, abs=0.04)

    def test_lag_zero(self):
        x = np.random.default_rng(5).random(50)
        assert pacf(x, 0)[0] == 1.0


class TestDifferencingPolynomial:
    def test_d1(self):
        np.testing.assert_array_equal(
            differencing_polynomial(1, 0, 0), [1.0, -1.0]
        )

    def test_d2(self):
        np.testing.assert_array_equal(
            differencing_polynomial(2, 0, 0), [1.0, -2.0, 1.0]
        )

    def test_seasonal(self):
        poly = differencing_polynomial(0, 1, 4)
        np.testing.assert_array_equal(poly, [1, 0, 0, 0, -1])

    def test_combined(self):
        poly = differencing_polynomial(1, 1, 2)
        # (1-B)(1-B^2) = 1 - B - B^2 + B^3
        np.testing.assert_array_equal(poly, [1, -1, -1, 1])

    def test_invalid(self):
        with pytest.raises(DataError):
            differencing_polynomial(-1, 0, 0)
        with pytest.raises(DataError):
            differencing_polynomial(0, 1, 1)


class TestDifference:
    def test_d1_matches_numpy(self):
        x = np.random.default_rng(6).random(20)
        np.testing.assert_allclose(difference(x, 1), np.diff(x))

    def test_d2_matches_numpy(self):
        x = np.random.default_rng(7).random(20)
        np.testing.assert_allclose(difference(x, 2), np.diff(x, 2))

    def test_seasonal_difference(self):
        x = np.arange(12, dtype=float)
        out = difference(x, 0, 1, 4)
        np.testing.assert_allclose(out, np.full(8, 4.0))

    def test_removes_linear_trend(self):
        x = 2.0 * np.arange(30) + 5.0
        np.testing.assert_allclose(difference(x, 1), np.full(29, 2.0))

    def test_removes_seasonality(self):
        t = np.arange(60)
        x = np.sin(2 * np.pi * t / 12)
        out = difference(x, 0, 1, 12)
        np.testing.assert_allclose(out, 0.0, atol=1e-12)

    def test_too_short(self):
        with pytest.raises(DataError):
            difference(np.zeros(3), 0, 1, 4)

    def test_d0_identity(self):
        x = np.random.default_rng(8).random(10)
        np.testing.assert_array_equal(difference(x, 0), x)


class TestUndifference:
    @given(
        st.integers(0, 2),
        st.integers(0, 1),
        st.lists(st.floats(-1, 1), min_size=1, max_size=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, d, seasonal_d, future):
        # Differencing a known continuation, then integrating the
        # differenced forecasts, must reproduce the continuation.
        period = 4
        rng = np.random.default_rng(9)
        history = rng.random(30)
        continuation = np.asarray(future)
        full = np.concatenate([history, continuation])
        w_full = difference(full, d, seasonal_d, period)
        lag = d + seasonal_d * period
        if lag == 0:
            w_future = continuation
        else:
            w_future = w_full[-len(continuation):] if len(continuation) else w_full[:0]
        rebuilt = undifference_forecasts(
            history, w_future, d, seasonal_d, period
        )
        np.testing.assert_allclose(rebuilt, continuation, atol=1e-9)

    def test_no_differencing_passthrough(self):
        out = undifference_forecasts(np.zeros(5), np.array([1.0, 2.0]), 0)
        np.testing.assert_array_equal(out, [1.0, 2.0])

    def test_short_history_rejected(self):
        with pytest.raises(DataError):
            undifference_forecasts(np.zeros(2), np.zeros(1), 0, 1, 4)


class TestAicc:
    def test_penalizes_parameters(self):
        base = aicc(10.0, 100, 2)
        richer = aicc(10.0, 100, 5)
        assert richer > base

    def test_rewards_fit(self):
        worse = aicc(20.0, 100, 2)
        better = aicc(10.0, 100, 2)
        assert better < worse

    def test_infinite_when_saturated(self):
        assert aicc(1.0, 10, 10) == float("inf")

    def test_invalid_inputs(self):
        with pytest.raises(DataError):
            aicc(-1.0, 10, 2)
        with pytest.raises(DataError):
            aicc(1.0, 0, 2)

    def test_correction_term(self):
        # AICc - AIC = 2k(k+1)/(n-k-1)
        n, k, sse = 50, 3, 5.0
        sigma2 = sse / n
        ll = -0.5 * n * (np.log(2 * np.pi * sigma2) + 1)
        aic = 2 * k - 2 * ll
        expected = aic + 2 * k * (k + 1) / (n - k - 1)
        assert aicc(sse, n, k) == pytest.approx(expected)


class TestLjungBox:
    def test_white_noise_small(self):
        x = np.random.default_rng(10).standard_normal(1000)
        q, dof = ljung_box(x, 10)
        assert dof == 10
        assert q < 30  # chi2(10) 99th percentile is ~23; generous margin

    def test_correlated_large(self):
        rng = np.random.default_rng(11)
        x = np.zeros(1000)
        for t in range(1, 1000):
            x[t] = 0.9 * x[t - 1] + rng.standard_normal()
        q, _ = ljung_box(x, 10)
        assert q > 100
