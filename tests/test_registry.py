"""Tests for the component registries (repro.registry)."""

import pytest

from repro.core.config import ForecastingConfig, PipelineConfig
from repro.core.pipeline import default_forecaster_factory
from repro.exceptions import ConfigurationError
from repro.registry import (
    COLLECTION_BACKENDS,
    FORECASTERS,
    SIMILARITY_MEASURES,
    TRANSMISSION_POLICIES,
    Registry,
)
from repro.transmission.base import TransmissionPolicy


class TestRegistryMechanics:
    def test_register_and_get(self):
        registry = Registry("widget")
        registry.register("a", object)
        assert registry.get("a") is object
        assert "a" in registry
        assert registry.available() == ("a",)

    def test_register_as_decorator(self):
        registry = Registry("widget")

        @registry.register("fancy")
        def build():
            return 42

        assert registry.create("fancy") == 42

    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.register("a", object)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("a", int)

    def test_same_object_reregistration_is_noop(self):
        registry = Registry("widget")
        registry.register("a", object)
        registry.register("a", object)  # idempotent (module re-import)
        assert registry.get("a") is object

    def test_override_replaces(self):
        registry = Registry("widget")
        registry.register("a", object)
        registry.register("a", int, override=True)
        assert registry.get("a") is int

    def test_invalid_name_rejected(self):
        registry = Registry("widget")
        with pytest.raises(ConfigurationError):
            registry.register("", object)
        with pytest.raises(ConfigurationError):
            registry.register(3, object)

    def test_unknown_name_lists_available(self):
        registry = Registry("widget")
        registry.register("alpha", object)
        with pytest.raises(ConfigurationError, match="alpha"):
            registry.get("beta")

    def test_unknown_name_suggests_close_match(self):
        with pytest.raises(ConfigurationError, match="sample_hold"):
            FORECASTERS.get("sample_hol")
        with pytest.raises(ConfigurationError, match="did you mean"):
            FORECASTERS.get("armia")

    def test_iteration_and_len(self):
        registry = Registry("widget")
        registry.register("b", object)
        registry.register("a", int)
        assert list(registry) == ["a", "b"]
        assert len(registry) == 2


class TestBuiltinRegistries:
    def test_forecasters_available(self):
        names = FORECASTERS.available()
        for expected in (
            "ar", "arima", "holt", "holt_winters", "lstm", "mean",
            "sample_hold", "ses",
        ):
            assert expected in names

    def test_collection_backends_available(self):
        names = COLLECTION_BACKENDS.available()
        for expected in ("adaptive", "uniform", "perfect", "deadband"):
            assert expected in names

    def test_transmission_policies_available(self):
        names = TRANSMISSION_POLICIES.available()
        for expected in ("adaptive", "uniform", "deadband"):
            assert expected in names

    def test_similarity_measures_available(self):
        assert set(SIMILARITY_MEASURES.available()) >= {
            "intersection", "jaccard",
        }

    def test_every_forecaster_constructible_from_config(self):
        # Round trip: each registered name is a valid ForecastingConfig
        # model, and the default factory builds a usable forecaster.
        for name in FORECASTERS.available():
            config = ForecastingConfig(model=name, seed=0)
            factory = default_forecaster_factory(config)
            forecaster = factory(0, 0)
            assert hasattr(forecaster, "fit"), name
            assert hasattr(forecaster, "forecast"), name
            assert hasattr(forecaster, "update"), name

    def test_every_transmission_policy_constructible_from_config(self):
        config = PipelineConfig().transmission
        for name in TRANSMISSION_POLICIES.available():
            policy = TRANSMISSION_POLICIES.create(name, config, 0)
            assert isinstance(policy, TransmissionPolicy), name

    def test_unknown_model_rejected_by_config(self):
        with pytest.raises(ConfigurationError, match="unknown forecaster"):
            ForecastingConfig(model="transformer")

    def test_unknown_similarity_rejected_by_config(self):
        from repro.core.config import ClusteringConfig

        with pytest.raises(
            ConfigurationError, match="unknown similarity"
        ):
            ClusteringConfig(similarity="cosine")

    def test_user_registered_forecaster_usable_end_to_end(self):
        from repro.forecasting.sample_hold import SampleHoldForecaster
        from repro.registry import register_forecaster

        name = "test_only_model"
        if name not in FORECASTERS:
            @register_forecaster(name)
            def _build(config, cluster, group):
                return SampleHoldForecaster()

        config = ForecastingConfig(model=name)
        forecaster = default_forecaster_factory(config)(1, 0)
        assert isinstance(forecaster, SampleHoldForecaster)
