"""Integration tests: every experiment runs at tiny scale and reproduces
the paper's qualitative claim it encodes."""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    run_fig1,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.common import (
    load_cluster_datasets,
    rolling_forecast,
    run_clustering,
    sample_hold_forecast_rmse,
)
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        expected = {
            "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12", "table1", "table2",
            "table3",
        }
        ablations = {
            "ablation_reindexing", "ablation_offsets",
            "ablation_warm_start", "ablation_deadband",
        }
        assert set(EXPERIMENTS) == expected | ablations


class TestCommon:
    def test_load_cluster_datasets(self):
        datasets = load_cluster_datasets(10, 40)
        assert set(datasets) == {"alibaba", "bitbrains", "google"}
        for ds in datasets.values():
            assert ds.num_nodes == 10
            assert ds.num_steps == 40

    def test_run_clustering_methods(self):
        stored = np.random.default_rng(0).random((30, 12))
        for method in ("proposed", "minimum_distance", "static"):
            assignments = run_clustering(stored, method, 3, seed=0)
            assert len(assignments) == 30

    def test_run_clustering_unknown(self):
        with pytest.raises(ConfigurationError):
            run_clustering(np.zeros((5, 4)), "other", 2)

    def test_sample_hold_forecast_rmse_keys(self):
        rng = np.random.default_rng(1)
        truth = rng.random((40, 6))
        assignments = run_clustering(truth, "proposed", 2, seed=0)
        out = sample_hold_forecast_rmse(
            truth, truth, assignments, horizons=(1, 3), start=5
        )
        assert set(out) == {1, 3}
        assert all(v >= 0 for v in out.values())

    def test_rolling_forecast_walkforward(self):
        series = np.linspace(0, 1, 60)
        predictions = rolling_forecast(
            series,
            lambda: __import__(
                "repro.forecasting.sample_hold", fromlist=["SampleHoldForecaster"]
            ).SampleHoldForecaster(),
            start=10, horizon=2, retrain_interval=100,
        )
        # Sample-and-hold made at t for t+2 equals series[t].
        assert predictions[20] == pytest.approx(series[18])

    def test_rolling_forecast_start_validation(self):
        with pytest.raises(ConfigurationError):
            rolling_forecast(np.zeros(10), lambda: None, start=0,
                             horizon=1, retrain_interval=5)


@pytest.mark.slow
class TestExperimentClaims:
    """Each test reruns one experiment at reduced scale and asserts the
    paper's qualitative conclusion."""

    def test_fig1_sensors_more_correlated(self):
        result = run_fig1(num_nodes=20, num_steps=300, cluster_nodes=30)
        assert result.fraction_above_half["temperature"] > 0.8
        assert result.fraction_above_half["humidity"] > 0.8
        assert result.fraction_above_half["cpu"] < 0.5
        assert result.fraction_above_half["memory"] < 0.5

    def test_fig3_frequency_matches(self):
        result = run_fig3(num_nodes=15, num_steps=600,
                          budgets=(0.05, 0.1, 0.3))
        for freqs in result.actual.values():
            for budget, freq in zip(result.budgets, freqs):
                assert freq == pytest.approx(budget, rel=0.25)

    def test_fig4_adaptive_beats_uniform(self):
        result = run_fig4(num_nodes=20, num_steps=400,
                          budgets=(0.1, 0.3), resources=("cpu",))
        assert result.adaptive_wins() == 1.0

    def test_fig5_window_one_best(self):
        result = run_fig5(num_nodes=20, num_steps=200, windows=(1, 10),
                          resources=("cpu",))
        for key in result.rmse:
            assert result.best_window(*key) == 1

    def test_table1_scalar_beats_vector(self):
        result = run_table1(num_nodes=20, num_steps=200)
        assert result.scalar_wins() == len(result.scalar)

    def test_fig6_proposed_beats_minimum_distance(self):
        result = run_fig6(num_nodes=20, num_steps=200, budgets=(0.3,),
                          resources=("cpu",))
        assert result.proposed_beats_minimum_distance() == 1.0

    def test_fig7_rmse_decreases_with_k(self):
        result = run_fig7(num_nodes=20, num_steps=200,
                          cluster_counts=(1, 3, 10), resources=("cpu",))
        for key, values in result.rmse.items():
            if key[2] == "proposed":
                assert values[0] > values[-1]

    def test_fig8_tracking_reasonable(self):
        result = run_fig8(num_nodes=20, num_steps=260, start=120,
                          retrain_interval=100)
        for (model, cluster), mae in result.tracking_mae.items():
            assert mae < 0.25, (model, cluster, mae)

    def test_fig9_cluster_models_beat_stddev(self):
        result = run_fig9(
            num_nodes=15, num_steps=260, horizons=(1, 5),
            initial_collection=120, retrain_interval=120,
            models=("sample_hold",),
        )
        bound = result.stddev_bound["alibaba"]
        per_h = result.rmse[("alibaba", "sample_hold")]
        assert per_h[1] < bound
        assert per_h[5] < bound

    def test_fig10_runs_all_methods(self):
        result = run_fig10(num_nodes=20, num_steps=200, horizons=(1, 5),
                           start=40)
        methods = {key[2] for key in result.rmse}
        assert methods == {"proposed", "static", "minimum_distance"}

    def test_table2_lstm_slower(self):
        result = run_table2(
            num_nodes=10, num_steps=240, initial_collection=120,
            retrain_interval=120, lstm_epochs=20,
        )
        assert result.lstm_slower_everywhere()

    def test_table3_grid_complete(self):
        result = run_table3(num_nodes=20, num_steps=200,
                            m_values=(1, 5), m_prime_values=(1, 5),
                            horizons=(1, 5), start=40)
        assert len(result.rmse) == 2 * 2 * 2

    def test_fig11_intersection_not_worse(self):
        result = run_fig11(num_nodes=20, num_steps=200, horizons=(1, 5),
                           start=40)
        assert result.proposed_not_worse(tolerance=0.02) >= 0.8

    def test_fig12_proposed_beats_top_w_and_random(self):
        result = run_fig12(
            num_nodes=50, train_steps=200, test_steps=200,
            monitor_counts=(10,), datasets=("google",),
        )
        rmse = {
            scheme: evals[0].rmse
            for (d, scheme), evals in result.evaluations.items()
        }
        assert rmse["proposed"] <= rmse["top_w"] + 0.02
        assert rmse["proposed"] <= rmse["minimum_distance"] + 0.02

    def test_fig12_top_w_update_slowest(self):
        result = run_fig12(
            num_nodes=40, train_steps=150, test_steps=150,
            monitor_counts=(8,), datasets=("alibaba",),
        )
        timing = result.timing_table("alibaba")
        assert timing["top_w_update"] > timing["proposed"]
        assert timing["top_w_update"] > timing["top_w"]
