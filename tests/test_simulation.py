"""Tests for the simulation substrate: nodes, store, transport, engines."""

import numpy as np
import pytest

from repro.core.config import TransmissionConfig
from repro.core.types import Measurement
from repro.exceptions import ConfigurationError, DataError, SimulationError
from repro.simulation.collection import (
    CollectionSimulation,
    simulate_adaptive_collection,
    simulate_uniform_collection,
)
from repro.simulation.controller import CentralStore
from repro.simulation.node import LocalNode
from repro.simulation.transport import Channel
from repro.transmission.adaptive import AdaptiveTransmissionPolicy
from repro.transmission.uniform import UniformTransmissionPolicy


class TestLocalNode:
    def test_first_observation_always_transmits(self):
        node = LocalNode(0, AdaptiveTransmissionPolicy())
        message = node.observe(np.array([0.5]))
        assert message is not None
        assert message.node == 0
        assert message.time == 0

    def test_stored_value_mirrors_transmissions(self):
        node = LocalNode(1, UniformTransmissionPolicy(1.0))
        node.observe(np.array([0.5]))
        node.observe(np.array([0.7]))
        assert node.stored_value[0] == 0.7

    def test_stored_value_stale_when_silent(self):
        # Budget so small the node stays silent after the first send.
        node = LocalNode(0, UniformTransmissionPolicy(0.01))
        node.observe(np.array([0.5]))
        for _ in range(5):
            node.observe(np.array([0.9]))
        assert node.stored_value[0] == 0.5

    def test_non_finite_rejected(self):
        node = LocalNode(0, UniformTransmissionPolicy(1.0))
        with pytest.raises(DataError):
            node.observe(np.array([np.nan]))

    def test_stored_before_observe_raises(self):
        node = LocalNode(0, UniformTransmissionPolicy(1.0))
        with pytest.raises(SimulationError):
            node.stored_value

    def test_reset(self):
        node = LocalNode(0, UniformTransmissionPolicy(1.0))
        node.observe(np.array([0.5]))
        node.reset()
        assert node.time == 0
        assert node.policy.decisions.size == 0


class TestChannel:
    def test_counts_messages_and_payload(self):
        channel = Channel()
        channel.send(Measurement(node=0, time=0, value=np.zeros(2)))
        channel.send(Measurement(node=1, time=0, value=np.zeros(2)))
        channel.send(Measurement(node=0, time=1, value=np.zeros(2)))
        assert channel.stats.messages == 3
        assert channel.stats.payload_floats == 6
        assert channel.stats.per_node_messages == {0: 2, 1: 1}
        assert channel.stats.payload_bytes() == 48

    def test_drain_empties_inbox(self):
        channel = Channel()
        channel.send(Measurement(node=0, time=0, value=np.zeros(1)))
        assert channel.pending == 1
        drained = channel.drain()
        assert len(drained) == 1
        assert channel.pending == 0
        assert channel.drain() == []


class TestCentralStore:
    def test_staleness_rule(self):
        store = CentralStore(2, 1)
        store.apply([Measurement(node=0, time=0, value=np.array([0.1])),
                     Measurement(node=1, time=0, value=np.array([0.2]))], 0)
        store.apply([Measurement(node=0, time=1, value=np.array([0.3]))], 1)
        values = store.values
        assert values[0, 0] == 0.3
        assert values[1, 0] == 0.2  # z_{1,1} = x_{1,0}
        np.testing.assert_array_equal(store.staleness(1), [0, 1])

    def test_initialized_flag(self):
        store = CentralStore(2, 1)
        assert not store.initialized
        store.apply([Measurement(node=0, time=0, value=np.array([0.1]))], 0)
        assert not store.initialized
        store.apply([Measurement(node=1, time=1, value=np.array([0.1]))], 1)
        assert store.initialized

    def test_staleness_before_initialized(self):
        store = CentralStore(2, 1)
        with pytest.raises(SimulationError):
            store.staleness(0)

    def test_time_monotonicity(self):
        store = CentralStore(1, 1)
        store.apply([], 5)
        with pytest.raises(SimulationError):
            store.apply([], 3)

    def test_unknown_node(self):
        store = CentralStore(1, 1)
        with pytest.raises(SimulationError):
            store.apply([Measurement(node=5, time=0, value=np.zeros(1))], 0)

    def test_dimension_mismatch(self):
        store = CentralStore(1, 2)
        with pytest.raises(SimulationError):
            store.apply([Measurement(node=0, time=0, value=np.zeros(1))], 0)

    def test_invalid_construction(self):
        with pytest.raises(SimulationError):
            CentralStore(0, 1)


class TestCollectionSimulation:
    def _trace(self, steps=60, nodes=8, seed=0):
        return np.random.default_rng(seed).random((steps, nodes))

    def test_object_engine_runs(self):
        trace = self._trace()
        sim = CollectionSimulation(
            8, lambda i: AdaptiveTransmissionPolicy(TransmissionConfig())
        )
        result = sim.run(trace)
        assert result.stored.shape == (60, 8, 1)
        assert result.decisions[0].sum() == 8  # forced initial sends
        assert result.stats.messages == result.decisions.sum()

    def test_node_count_mismatch(self):
        sim = CollectionSimulation(
            4, lambda i: UniformTransmissionPolicy(0.5)
        )
        with pytest.raises(ConfigurationError):
            sim.run(self._trace(nodes=5))

    def test_vectorized_adaptive_matches_object_engine(self):
        trace = self._trace(steps=120, nodes=6, seed=1)
        config = TransmissionConfig(budget=0.3)
        vectorized = simulate_adaptive_collection(trace, config)
        sim = CollectionSimulation(
            6, lambda i: AdaptiveTransmissionPolicy(config)
        )
        object_level = sim.run(trace)
        np.testing.assert_array_equal(
            vectorized.decisions, object_level.decisions
        )
        np.testing.assert_allclose(
            vectorized.stored, object_level.stored
        )

    def test_vectorized_uniform_matches_object_engine(self):
        trace = self._trace(steps=80, nodes=5, seed=2)
        vectorized = simulate_uniform_collection(
            trace, 0.25, stagger=False
        )
        sim = CollectionSimulation(
            5, lambda i: UniformTransmissionPolicy(0.25, phase=0.0)
        )
        object_level = sim.run(trace)
        np.testing.assert_array_equal(
            vectorized.decisions, object_level.decisions
        )
        np.testing.assert_allclose(vectorized.stored, object_level.stored)

    def test_adaptive_frequency_tracks_budget(self):
        rng = np.random.default_rng(3)
        # Smooth random-walk per node so there is always some drift.
        steps = np.cumsum(rng.normal(0, 0.02, size=(2000, 10)), axis=0)
        trace = np.clip(0.5 + steps, 0, 1)
        for budget in (0.1, 0.3, 0.5):
            result = simulate_adaptive_collection(
                trace, TransmissionConfig(budget=budget)
            )
            assert result.empirical_frequency == pytest.approx(
                budget, abs=0.01
            )

    def test_uniform_frequency_exact(self):
        trace = self._trace(steps=1000, nodes=4)
        result = simulate_uniform_collection(trace, 0.2, stagger=True)
        assert result.empirical_frequency == pytest.approx(0.2, abs=0.01)

    def test_adaptive_stored_error_bounded_by_staleness(self):
        trace = self._trace(steps=200, nodes=6, seed=4)
        result = simulate_adaptive_collection(trace, TransmissionConfig())
        # Wherever a transmission happened, stored == truth.
        sent = result.decisions.astype(bool)
        for t in range(200):
            np.testing.assert_allclose(
                result.stored[t, sent[t], 0], trace[t, sent[t]]
            )

    def test_budget_one_stores_everything(self):
        trace = self._trace(steps=50, nodes=4)
        result = simulate_adaptive_collection(
            trace, TransmissionConfig(budget=1.0)
        )
        np.testing.assert_allclose(result.stored[:, :, 0], trace)

    def test_per_node_frequency_shape(self):
        trace = self._trace()
        result = simulate_uniform_collection(trace, 0.5)
        assert result.per_node_frequency().shape == (8,)

    def test_uniform_invalid_budget(self):
        with pytest.raises(ConfigurationError):
            simulate_uniform_collection(self._trace(), 0.0)
