"""Cross-engine equivalence and determinism properties.

The library has two ways to run everything (streaming MonitoringSystem
vs batch run_pipeline) and two collection engines (object-level vs
vectorized).  These tests pin them together: a refactor that changes any
engine's semantics relative to the others fails here.

The vectorized hot-path kernels (α-clipped offsets, contingency-based
similarity re-indexing, membership forecasting, the batched collection
fast path) are additionally pinned **bit-identical** to the
pre-vectorization loop implementations kept in `repro.reference_impl`,
on randomized traces.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    ClusteringConfig,
    ForecastingConfig,
    PipelineConfig,
    TransmissionConfig,
)
from repro.core.pipeline import OnlinePipeline, run_pipeline
from repro.clustering.similarity import (
    persistent_labels,
    similarity_matrix_from_labels,
)
from repro.forecasting.membership import forecast_membership
from repro.forecasting.offsets import (
    alpha_clip,
    alpha_clip_batch,
    estimate_offsets,
)
from repro.reference_impl import (
    alpha_clip_reference,
    estimate_offsets_reference,
    forecast_membership_reference,
    reindex_weights_reference,
)
from repro.simulation.collection import (
    CollectionSimulation,
    simulate_adaptive_collection,
    simulate_uniform_collection,
)
from repro.simulation.system import MonitoringSystem
from repro.transmission.adaptive import AdaptiveTransmissionPolicy
from repro.transmission.uniform import UniformTransmissionPolicy


def config(budget=0.3, initial=20, horizon=2):
    return PipelineConfig(
        transmission=TransmissionConfig(budget=budget),
        clustering=ClusteringConfig(num_clusters=2, seed=0),
        forecasting=ForecastingConfig(
            model="sample_hold",
            max_horizon=horizon,
            initial_collection=initial,
            retrain_interval=initial,
        ),
    )


def walk_trace(steps=60, nodes=6, seed=0):
    rng = np.random.default_rng(seed)
    return np.clip(
        0.5 + np.cumsum(rng.normal(0, 0.03, (steps, nodes)), axis=0), 0, 1
    )


class TestStreamingVsBatch:
    def test_stored_values_identical(self):
        trace = walk_trace()
        cfg = config()
        batch = simulate_adaptive_collection(trace, cfg.transmission)
        system = MonitoringSystem(6, 1, cfg)
        for t in range(60):
            output = system.tick(trace[t])
            np.testing.assert_allclose(
                output.stored, batch.stored[t],
                err_msg=f"slot {t}",
            )

    def test_forecasts_identical(self):
        trace = walk_trace(seed=1)
        cfg = config(initial=15, horizon=2)
        # Batch path.
        batch_collect = simulate_adaptive_collection(trace, cfg.transmission)
        batch_pipeline = OnlinePipeline(6, 1, cfg)
        batch_outputs = [
            batch_pipeline.step(batch_collect.stored[t]) for t in range(60)
        ]
        # Streaming path.
        system = MonitoringSystem(6, 1, cfg)
        for t in range(60):
            stream_output = system.tick(trace[t])
            batch_output = batch_outputs[t]
            if batch_output.node_forecasts is None:
                assert stream_output.node_forecasts is None
            else:
                for h in batch_output.node_forecasts:
                    np.testing.assert_allclose(
                        stream_output.node_forecasts[h],
                        batch_output.node_forecasts[h],
                        err_msg=f"slot {t} horizon {h}",
                    )

    def test_transmission_counts_identical(self):
        trace = walk_trace(seed=2)
        cfg = config()
        batch = simulate_adaptive_collection(trace, cfg.transmission)
        system = MonitoringSystem(6, 1, cfg)
        for t in range(60):
            system.tick(trace[t])
        assert system.transport_stats.messages == int(batch.decisions.sum())


class TestDeterminism:
    def test_run_pipeline_deterministic(self):
        trace = walk_trace(seed=3)
        a = run_pipeline(trace, config())
        b = run_pipeline(trace, config())
        assert a.rmse_by_horizon == b.rmse_by_horizon
        np.testing.assert_array_equal(a.decisions, b.decisions)

    def test_lstm_pipeline_deterministic_with_seed(self):
        trace = walk_trace(steps=50, seed=4)
        cfg = PipelineConfig(
            clustering=ClusteringConfig(num_clusters=2, seed=0),
            forecasting=ForecastingConfig(
                model="lstm", max_horizon=1,
                initial_collection=25, retrain_interval=25,
                lstm_hidden=4, lstm_lookback=5, lstm_epochs=2, seed=11,
            ),
        )
        a = run_pipeline(trace, cfg)
        b = run_pipeline(trace, cfg)
        assert a.rmse_by_horizon == b.rmse_by_horizon

    @given(st.floats(0.1, 0.9), st.integers(0, 5))
    @settings(max_examples=10, deadline=None)
    def test_adaptive_budget_property(self, budget, seed):
        trace = walk_trace(steps=500, nodes=4, seed=seed)
        result = simulate_adaptive_collection(
            trace, TransmissionConfig(budget=budget)
        )
        # Long-run frequency converges to the budget from below-ish;
        # allow a small finite-horizon tolerance.
        assert result.empirical_frequency <= budget + 0.02
        assert result.empirical_frequency >= budget * 0.8 - 0.02

    @given(st.integers(0, 5))
    @settings(max_examples=10, deadline=None)
    def test_stored_is_some_past_truth(self, seed):
        # Staleness rule: z_{i,t} must equal x_{i,t-p} for some p >= 0.
        trace = walk_trace(steps=80, nodes=5, seed=seed)
        result = simulate_adaptive_collection(trace, TransmissionConfig())
        for t in range(80):
            for i in range(5):
                past = trace[: t + 1, i]
                assert np.isclose(past, result.stored[t, i, 0]).any(), (
                    t, i,
                )


class TestVectorizedOffsetsEquivalence:
    """Vectorized Eq. 12 kernels vs the reference per-node loops."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_alpha_clip_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        num_clusters = int(rng.integers(1, 8))
        dim = int(rng.integers(1, 5))
        centroids = rng.normal(size=(num_clusters, dim))
        value = rng.normal(size=dim)
        cluster = int(rng.integers(0, num_clusters))
        assert alpha_clip(value, centroids, cluster) == (
            alpha_clip_reference(value, centroids, cluster)
        )

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_alpha_clip_batch_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        num_nodes = int(rng.integers(1, 40))
        num_clusters = int(rng.integers(1, 8))
        dim = int(rng.integers(1, 5))
        values = rng.normal(size=(num_nodes, dim))
        centroids = rng.normal(size=(num_clusters, dim))
        clusters = rng.integers(0, num_clusters, size=num_nodes)
        batched = alpha_clip_batch(values, centroids, clusters)
        for i in range(num_nodes):
            assert batched[i] == alpha_clip_reference(
                values[i], centroids, int(clusters[i])
            )

    @given(st.integers(0, 10_000), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_estimate_offsets_bit_identical(self, seed, clip):
        rng = np.random.default_rng(seed)
        num_nodes = int(rng.integers(1, 30))
        num_clusters = int(rng.integers(1, 6))
        dim = int(rng.integers(1, 4))
        history = int(rng.integers(1, 6))
        lookback = int(rng.integers(0, 7))
        stored = [rng.normal(size=(num_nodes, dim)) for _ in range(history)]
        cents = [rng.normal(size=(num_clusters, dim)) for _ in range(history)]
        memberships = rng.integers(0, num_clusters, size=num_nodes)
        reference = estimate_offsets_reference(
            stored, cents, memberships, lookback, clip=clip
        )
        vectorized = estimate_offsets(
            stored, cents, memberships, lookback, clip=clip
        )
        np.testing.assert_array_equal(reference, vectorized)

    def test_offsets_on_clustered_trace(self):
        # A realistic case: values near their own centroid, some nodes
        # drifting across the boundary (exercising α < 1).
        rng = np.random.default_rng(0)
        centroids = np.array([[0.2], [0.8]])
        labels = np.repeat([0, 1], 10)
        stored, cents = [], []
        for _ in range(4):
            jitter = rng.normal(0, 0.25, size=(20, 1))
            stored.append(centroids[labels] + jitter)
            cents.append(centroids + rng.normal(0, 0.02, size=(2, 1)))
        reference = estimate_offsets_reference(stored, cents, labels, 3)
        vectorized = estimate_offsets(stored, cents, labels, 3)
        np.testing.assert_array_equal(reference, vectorized)


class TestVectorizedSimilarityEquivalence:
    """Contingency-based similarity vs the set-based Eq. 10 transcript."""

    @given(st.integers(0, 10_000), st.sampled_from(["intersection", "jaccard"]))
    @settings(max_examples=60, deadline=None)
    def test_similarity_matrix_bit_identical(self, seed, kind):
        rng = np.random.default_rng(seed)
        num_nodes = int(rng.integers(1, 50))
        num_clusters = int(rng.integers(1, 8))
        depth = int(rng.integers(1, 5))
        new_labels = rng.integers(0, num_clusters, size=num_nodes)
        history = [
            rng.integers(0, num_clusters, size=num_nodes)
            for _ in range(depth)
        ]
        reference = reindex_weights_reference(
            kind, new_labels, history, num_clusters
        )
        vectorized = similarity_matrix_from_labels(
            kind, new_labels, history, num_clusters
        )
        np.testing.assert_array_equal(reference, vectorized)

    @given(st.integers(0, 10_000), st.sampled_from(["intersection", "jaccard"]))
    @settings(max_examples=40, deadline=None)
    def test_similarity_ragged_fleet_sizes_bit_identical(self, seed, kind):
        # The fleet may grow or shrink between slots; the label-array
        # path must keep the set semantics (absent ids intersect empty).
        rng = np.random.default_rng(seed)
        num_clusters = int(rng.integers(1, 6))
        depth = int(rng.integers(1, 5))
        new_labels = rng.integers(
            0, num_clusters, size=int(rng.integers(1, 40))
        )
        history = [
            rng.integers(0, num_clusters, size=int(rng.integers(1, 40)))
            for _ in range(depth)
        ]
        reference = reindex_weights_reference(
            kind, new_labels, history, num_clusters
        )
        vectorized = similarity_matrix_from_labels(
            kind, new_labels, history, num_clusters
        )
        np.testing.assert_array_equal(reference, vectorized)

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_persistent_labels_match_set_intersection(self, seed):
        rng = np.random.default_rng(seed)
        num_nodes = int(rng.integers(1, 40))
        num_clusters = int(rng.integers(1, 6))
        depth = int(rng.integers(1, 5))
        history = [
            rng.integers(0, num_clusters, size=num_nodes)
            for _ in range(depth)
        ]
        persistent = persistent_labels(history)
        for j in range(num_clusters):
            expected = set(np.flatnonzero(history[0] == j).tolist())
            for labels in history[1:]:
                expected &= set(np.flatnonzero(labels == j).tolist())
            assert set(np.flatnonzero(persistent == j).tolist()) == expected


class TestVectorizedMembershipEquivalence:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_forecast_membership_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        num_nodes = int(rng.integers(1, 40))
        num_clusters = int(rng.integers(1, 6))
        depth = int(rng.integers(1, 8))
        lookback = int(rng.integers(0, 9))
        history = [
            rng.integers(0, num_clusters, size=num_nodes)
            for _ in range(depth)
        ]
        np.testing.assert_array_equal(
            forecast_membership_reference(history, lookback),
            forecast_membership(history, lookback),
        )


class TestBatchedCollectionEquivalence:
    """CollectionSimulation's vectorized fast path vs its object loop."""

    def _object_result(self, sim, trace):
        data = np.asarray(trace, dtype=float)[:, :, np.newaxis]
        return sim._run_object_loop(data)

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_adaptive_fast_path_identical(self, seed):
        trace = walk_trace(steps=60, nodes=5, seed=seed)

        def factory(i):
            return AdaptiveTransmissionPolicy(
                TransmissionConfig(budget=0.15 + 0.1 * (i % 3))
            )

        fast_sim = CollectionSimulation(5, factory)
        assert fast_sim._batchable()
        fast = fast_sim.run(trace)
        slow_sim = CollectionSimulation(5, factory)
        slow = self._object_result(slow_sim, trace)
        np.testing.assert_array_equal(fast.decisions, slow.decisions)
        np.testing.assert_array_equal(fast.stored, slow.stored)
        assert fast.stats.messages == slow.stats.messages
        assert fast.stats.per_node_messages == slow.stats.per_node_messages
        for fast_node, slow_node in zip(fast_sim.nodes, slow_sim.nodes):
            assert fast_node.time == slow_node.time
            np.testing.assert_array_equal(
                fast_node.stored_value, slow_node.stored_value
            )
            assert fast_node.policy.queue_length == (
                slow_node.policy.queue_length
            )
            np.testing.assert_array_equal(
                fast_node.policy.queue_history,
                slow_node.policy.queue_history,
            )
            np.testing.assert_array_equal(
                fast_node.policy.decisions, slow_node.policy.decisions
            )

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_uniform_fast_path_identical(self, seed):
        trace = walk_trace(steps=60, nodes=6, seed=seed)

        def factory(i):
            return UniformTransmissionPolicy(0.3, phase=(0.17 * i) % 1.0)

        fast_sim = CollectionSimulation(6, factory)
        assert fast_sim._batchable()
        fast = fast_sim.run(trace)
        slow_sim = CollectionSimulation(6, factory)
        slow = self._object_result(slow_sim, trace)
        np.testing.assert_array_equal(fast.decisions, slow.decisions)
        np.testing.assert_array_equal(fast.stored, slow.stored)
        for fast_node, slow_node in zip(fast_sim.nodes, slow_sim.nodes):
            np.testing.assert_array_equal(
                fast_node.policy.decisions, slow_node.policy.decisions
            )

    def test_heterogeneous_policies_fall_back(self):
        def factory(i):
            if i % 2:
                return UniformTransmissionPolicy(0.3)
            return AdaptiveTransmissionPolicy(TransmissionConfig())

        sim = CollectionSimulation(4, factory)
        assert not sim._batchable()
        result = sim.run(walk_trace(steps=30, nodes=4, seed=0))
        assert result.decisions[0].sum() == 4

    def test_second_run_falls_back_and_continues(self):
        # After a batched run the nodes are mid-stream; a second run must
        # take the object loop (no forced re-transmission semantics).
        sim = CollectionSimulation(
            3, lambda i: AdaptiveTransmissionPolicy(TransmissionConfig())
        )
        first = sim.run(walk_trace(steps=20, nodes=3, seed=1))
        assert first.decisions[0].sum() == 3
        assert not sim._batchable()
        second = sim.run(walk_trace(steps=20, nodes=3, seed=2))
        assert second.stored.shape == (20, 3, 1)
        assert sim.nodes[0].time == 40

    def test_second_run_keeps_last_transmitted_value(self):
        # Silent nodes early in a continuation run must report the value
        # carried over from the previous run, not the store's zeros.
        sim = CollectionSimulation(
            2, lambda i: UniformTransmissionPolicy(0.25)
        )
        first = sim.run(np.full((10, 2), 5.0))
        assert first.decisions[0].sum() == 2
        second = sim.run(np.full((10, 2), 7.0))
        assert second.decisions[0].sum() == 0  # accumulator mid-cycle
        np.testing.assert_array_equal(second.stored[0], [[5.0], [5.0]])

    def test_uniform_module_function_matches_object_engine(self):
        trace = walk_trace(steps=50, nodes=4, seed=3)
        vectorized = simulate_uniform_collection(trace, 0.4, stagger=False)
        sim = CollectionSimulation(
            4, lambda i: UniformTransmissionPolicy(0.4, phase=0.0)
        )
        object_level = self._object_result(sim, trace)
        np.testing.assert_array_equal(
            vectorized.decisions, object_level.decisions
        )
        np.testing.assert_array_equal(
            vectorized.stored, object_level.stored
        )
