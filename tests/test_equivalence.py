"""Cross-engine equivalence and determinism properties.

The library has two ways to run everything (streaming MonitoringSystem
vs batch run_pipeline) and two collection engines (object-level vs
vectorized).  These tests pin them together: a refactor that changes any
engine's semantics relative to the others fails here.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    ClusteringConfig,
    ForecastingConfig,
    PipelineConfig,
    TransmissionConfig,
)
from repro.core.pipeline import OnlinePipeline, run_pipeline
from repro.simulation.collection import simulate_adaptive_collection
from repro.simulation.system import MonitoringSystem


def config(budget=0.3, initial=20, horizon=2):
    return PipelineConfig(
        transmission=TransmissionConfig(budget=budget),
        clustering=ClusteringConfig(num_clusters=2, seed=0),
        forecasting=ForecastingConfig(
            model="sample_hold",
            max_horizon=horizon,
            initial_collection=initial,
            retrain_interval=initial,
        ),
    )


def walk_trace(steps=60, nodes=6, seed=0):
    rng = np.random.default_rng(seed)
    return np.clip(
        0.5 + np.cumsum(rng.normal(0, 0.03, (steps, nodes)), axis=0), 0, 1
    )


class TestStreamingVsBatch:
    def test_stored_values_identical(self):
        trace = walk_trace()
        cfg = config()
        batch = simulate_adaptive_collection(trace, cfg.transmission)
        system = MonitoringSystem(6, 1, cfg)
        for t in range(60):
            output = system.tick(trace[t])
            np.testing.assert_allclose(
                output.stored, batch.stored[t],
                err_msg=f"slot {t}",
            )

    def test_forecasts_identical(self):
        trace = walk_trace(seed=1)
        cfg = config(initial=15, horizon=2)
        # Batch path.
        batch_collect = simulate_adaptive_collection(trace, cfg.transmission)
        batch_pipeline = OnlinePipeline(6, 1, cfg)
        batch_outputs = [
            batch_pipeline.step(batch_collect.stored[t]) for t in range(60)
        ]
        # Streaming path.
        system = MonitoringSystem(6, 1, cfg)
        for t in range(60):
            stream_output = system.tick(trace[t])
            batch_output = batch_outputs[t]
            if batch_output.node_forecasts is None:
                assert stream_output.node_forecasts is None
            else:
                for h in batch_output.node_forecasts:
                    np.testing.assert_allclose(
                        stream_output.node_forecasts[h],
                        batch_output.node_forecasts[h],
                        err_msg=f"slot {t} horizon {h}",
                    )

    def test_transmission_counts_identical(self):
        trace = walk_trace(seed=2)
        cfg = config()
        batch = simulate_adaptive_collection(trace, cfg.transmission)
        system = MonitoringSystem(6, 1, cfg)
        for t in range(60):
            system.tick(trace[t])
        assert system.transport_stats.messages == int(batch.decisions.sum())


class TestDeterminism:
    def test_run_pipeline_deterministic(self):
        trace = walk_trace(seed=3)
        a = run_pipeline(trace, config())
        b = run_pipeline(trace, config())
        assert a.rmse_by_horizon == b.rmse_by_horizon
        np.testing.assert_array_equal(a.decisions, b.decisions)

    def test_lstm_pipeline_deterministic_with_seed(self):
        trace = walk_trace(steps=50, seed=4)
        cfg = PipelineConfig(
            clustering=ClusteringConfig(num_clusters=2, seed=0),
            forecasting=ForecastingConfig(
                model="lstm", max_horizon=1,
                initial_collection=25, retrain_interval=25,
                lstm_hidden=4, lstm_lookback=5, lstm_epochs=2, seed=11,
            ),
        )
        a = run_pipeline(trace, cfg)
        b = run_pipeline(trace, cfg)
        assert a.rmse_by_horizon == b.rmse_by_horizon

    @given(st.floats(0.1, 0.9), st.integers(0, 5))
    @settings(max_examples=10, deadline=None)
    def test_adaptive_budget_property(self, budget, seed):
        trace = walk_trace(steps=500, nodes=4, seed=seed)
        result = simulate_adaptive_collection(
            trace, TransmissionConfig(budget=budget)
        )
        # Long-run frequency converges to the budget from below-ish;
        # allow a small finite-horizon tolerance.
        assert result.empirical_frequency <= budget + 0.02
        assert result.empirical_frequency >= budget * 0.8 - 0.02

    @given(st.integers(0, 5))
    @settings(max_examples=10, deadline=None)
    def test_stored_is_some_past_truth(self, seed):
        # Staleness rule: z_{i,t} must equal x_{i,t-p} for some p >= 0.
        trace = walk_trace(steps=80, nodes=5, seed=seed)
        result = simulate_adaptive_collection(trace, TransmissionConfig())
        for t in range(80):
            for i in range(5):
                past = trace[: t + 1, i]
                assert np.isclose(past, result.stored[t, i, 0]).any(), (
                    t, i,
                )
