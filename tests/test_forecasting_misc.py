"""Tests for sample-and-hold, membership forecasting, and offsets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.forecasting.membership import (
    forecast_membership,
    membership_stability,
)
from repro.forecasting.offsets import alpha_clip, estimate_offsets
from repro.forecasting.sample_hold import MeanForecaster, SampleHoldForecaster


class TestSampleHold:
    def test_holds_last_value(self):
        model = SampleHoldForecaster().fit([0.1, 0.5, 0.7])
        np.testing.assert_array_equal(model.forecast(3), [0.7, 0.7, 0.7])

    def test_update_changes_forecast(self):
        model = SampleHoldForecaster().fit([0.1])
        model.update(0.9)
        assert model.forecast(1)[0] == 0.9

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            SampleHoldForecaster().forecast(1)

    def test_bad_horizon(self):
        model = SampleHoldForecaster().fit([0.5])
        with pytest.raises(DataError):
            model.forecast(0)

    def test_rejects_nan_update(self):
        model = SampleHoldForecaster().fit([0.5])
        with pytest.raises(DataError):
            model.update(float("nan"))

    def test_rejects_empty_fit(self):
        with pytest.raises(DataError):
            SampleHoldForecaster().fit([])


class TestMeanForecaster:
    def test_predicts_mean(self):
        model = MeanForecaster().fit([0.0, 1.0])
        assert model.forecast(2)[0] == pytest.approx(0.5)

    def test_update_adjusts_mean(self):
        model = MeanForecaster().fit([0.0, 1.0])
        model.update(2.0)
        assert model.forecast(1)[0] == pytest.approx(1.0)


class TestForecastMembership:
    def test_majority_vote(self):
        history = [
            np.array([0, 1]),
            np.array([0, 1]),
            np.array([1, 1]),
        ]
        out = forecast_membership(history, lookback=2)
        np.testing.assert_array_equal(out, [0, 1])

    def test_window_limits_lookback(self):
        history = [np.array([0])] * 5 + [np.array([1])] * 3
        # With lookback 2 (window of 3), cluster 1 dominates.
        out = forecast_membership(history, lookback=2)
        assert out[0] == 1
        # With lookback 7 (window of 8), cluster 0 dominates (5 vs 3).
        out = forecast_membership(history, lookback=7)
        assert out[0] == 0

    def test_tie_breaks_to_most_recent(self):
        history = [np.array([0]), np.array([1])]
        out = forecast_membership(history, lookback=1)
        assert out[0] == 1

    def test_short_history_ok(self):
        out = forecast_membership([np.array([2, 0])], lookback=5)
        np.testing.assert_array_equal(out, [2, 0])

    def test_empty_history_raises(self):
        with pytest.raises(DataError):
            forecast_membership([], 1)

    def test_inconsistent_shapes_raise(self):
        with pytest.raises(DataError):
            forecast_membership([np.array([0]), np.array([0, 1])], 1)

    def test_negative_lookback(self):
        with pytest.raises(ConfigurationError):
            forecast_membership([np.array([0])], -1)

    @given(
        st.lists(
            arrays(int, 5, elements=st.integers(0, 2)),
            min_size=1, max_size=8,
        ),
        st.integers(0, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_forecast_is_observed_label(self, history, lookback):
        out = forecast_membership(history, lookback)
        window = np.stack(history[-(lookback + 1):])
        for i in range(5):
            assert out[i] in window[:, i]


class TestMembershipStability:
    def test_fully_stable(self):
        history = [np.array([0, 1, 2])] * 4
        assert membership_stability(history) == 1.0

    def test_partial(self):
        history = [np.array([0, 1]), np.array([0, 0])]
        assert membership_stability(history) == 0.5

    def test_single_step(self):
        assert membership_stability([np.array([0])]) == 1.0


class TestAlphaClip:
    def test_alpha_one_when_in_cluster(self):
        centroids = np.array([[0.0], [1.0]])
        # 0.2 is closest to centroid 0.
        assert alpha_clip(np.array([0.2]), centroids, 0) == 1.0

    def test_alpha_one_on_centroid(self):
        centroids = np.array([[0.0], [1.0]])
        assert alpha_clip(np.array([0.0]), centroids, 0) == 1.0

    def test_clips_to_boundary(self):
        centroids = np.array([[0.0], [1.0]])
        # z = 0.8 belongs to cluster 1; clipped toward cluster 0 the
        # scaled point must stay at or inside the midpoint 0.5:
        # alpha = 0.5 / 0.8 = 0.625.
        alpha = alpha_clip(np.array([0.8]), centroids, 0)
        assert alpha == pytest.approx(0.5 / 0.8)

    def test_multidimensional(self):
        centroids = np.array([[0.0, 0.0], [1.0, 0.0]])
        alpha = alpha_clip(np.array([0.8, 0.0]), centroids, 0)
        assert alpha == pytest.approx(0.625)

    def test_orthogonal_direction_unclipped(self):
        centroids = np.array([[0.0, 0.0], [1.0, 0.0]])
        # Moving along y never approaches cluster 1.
        alpha = alpha_clip(np.array([0.0, 5.0]), centroids, 0)
        assert alpha == 1.0

    def test_invalid_cluster(self):
        with pytest.raises(ConfigurationError):
            alpha_clip(np.array([0.5]), np.array([[0.0]]), 2)

    @given(
        st.floats(-2, 2), st.integers(0, 1)
    )
    @settings(max_examples=50, deadline=None)
    def test_clipped_point_stays_in_cluster(self, z, cluster):
        centroids = np.array([[0.0], [1.0]])
        alpha = alpha_clip(np.array([z]), centroids, cluster)
        assert 0 < alpha <= 1.0
        point = centroids[cluster, 0] + alpha * (z - centroids[cluster, 0])
        own = abs(point - centroids[cluster, 0])
        other = abs(point - centroids[1 - cluster, 0])
        assert own <= other + 1e-9


class TestEstimateOffsets:
    def test_single_step_offset(self):
        stored = [np.array([[0.3], [0.9]])]
        cents = [np.array([[0.2], [0.8]])]
        memberships = np.array([0, 1])
        offsets = estimate_offsets(stored, cents, memberships, lookback=0)
        np.testing.assert_allclose(offsets[:, 0], [0.1, 0.1], atol=1e-12)

    def test_eq12_averages_over_window(self):
        stored = [np.array([[0.3]]), np.array([[0.25]])]
        cents = [np.array([[0.2]]), np.array([[0.2]])]
        memberships = np.array([0])
        offsets = estimate_offsets(stored, cents, memberships, lookback=1)
        assert offsets[0, 0] == pytest.approx((0.1 + 0.05) / 2)

    def test_window_limited_by_history(self):
        stored = [np.array([[0.4]])]
        cents = [np.array([[0.2]])]
        offsets = estimate_offsets(stored, cents, np.array([0]), lookback=10)
        assert offsets[0, 0] == pytest.approx(0.2)

    def test_alpha_clipping_applied(self):
        # Node's value sits in the other cluster: the offset must be
        # scaled down so centroid+offset stays in the target cluster.
        stored = [np.array([[0.8], [0.1]])]
        cents = [np.array([[0.0], [1.0]])]
        memberships = np.array([0, 1])
        offsets = estimate_offsets(stored, cents, memberships, lookback=0)
        assert offsets[0, 0] == pytest.approx(0.5)  # clipped from 0.8
        # reconstructed value stays on node 0's target side
        assert 0.0 + offsets[0, 0] <= 0.5 + 1e-9

    def test_length_mismatch(self):
        with pytest.raises(DataError):
            estimate_offsets(
                [np.zeros((2, 1))], [], np.zeros(2, dtype=int), 0
            )

    def test_membership_shape_check(self):
        with pytest.raises(DataError):
            estimate_offsets(
                [np.zeros((2, 1))],
                [np.zeros((1, 1))],
                np.zeros(3, dtype=int),
                0,
            )
