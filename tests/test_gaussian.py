"""Tests for the Gaussian monitoring baseline substrate (Sec. VI-E)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.gaussian.covariance import estimate_gaussian
from repro.gaussian.inference import infer_unobserved, posterior_variance
from repro.gaussian.monitor import (
    BatchSelectionScheme,
    MinimumDistanceScheme,
    ProposedMonitorScheme,
    TopWScheme,
    TopWUpdateScheme,
    evaluate_scheme,
)
from repro.gaussian.selection import (
    batch_selection,
    random_selection,
    top_w_selection,
)


def correlated_samples(seed=0, steps=400, groups=((0, 1, 2), (3, 4))):
    """Two latent factors drive two groups of nodes."""
    rng = np.random.default_rng(seed)
    num_nodes = max(max(g) for g in groups) + 1
    data = np.zeros((steps, num_nodes))
    for group in groups:
        factor = np.cumsum(rng.normal(0, 0.05, steps))
        for node in group:
            data[:, node] = factor + rng.normal(0, 0.01, steps)
    return data


class TestEstimateGaussian:
    def test_mean_and_covariance(self):
        rng = np.random.default_rng(0)
        data = rng.multivariate_normal(
            [1.0, -1.0], [[1.0, 0.5], [0.5, 2.0]], size=20000
        )
        model = estimate_gaussian(data, shrinkage=0.0)
        np.testing.assert_allclose(model.mean, [1.0, -1.0], atol=0.05)
        np.testing.assert_allclose(
            model.covariance, [[1.0, 0.5], [0.5, 2.0]], atol=0.08
        )

    def test_shrinkage_preserves_diagonal(self):
        data = correlated_samples()
        raw = estimate_gaussian(data, shrinkage=0.0)
        shrunk = estimate_gaussian(data, shrinkage=0.5)
        np.testing.assert_allclose(
            np.diag(shrunk.covariance), np.diag(raw.covariance), rtol=1e-6
        )
        assert abs(shrunk.covariance[0, 1]) < abs(raw.covariance[0, 1])

    def test_correlation_unit_diagonal(self):
        model = estimate_gaussian(correlated_samples())
        np.testing.assert_allclose(
            np.diag(model.correlation()), 1.0, rtol=1e-6
        )

    def test_too_few_samples(self):
        with pytest.raises(DataError):
            estimate_gaussian(np.zeros((1, 3)))

    def test_invalid_shrinkage(self):
        with pytest.raises(DataError):
            estimate_gaussian(np.zeros((5, 2)), shrinkage=1.5)


class TestInference:
    def test_monitors_pass_through(self):
        model = estimate_gaussian(correlated_samples())
        row = np.random.default_rng(1).random(5)
        out = infer_unobserved(model, [0, 3], row[[0, 3]])
        assert out[0] == row[0]
        assert out[3] == row[3]

    def test_correlated_nodes_inferred(self):
        data = correlated_samples(steps=2000)
        model = estimate_gaussian(data, shrinkage=0.01)
        # Node 1 is in the same group as node 0: observing node 0 high
        # should pull node 1's estimate up.
        truth = data[-1]
        out = infer_unobserved(model, [0, 3], truth[[0, 3]])
        assert abs(out[1] - truth[1]) < 0.1

    def test_no_monitors_returns_mean(self):
        model = estimate_gaussian(correlated_samples())
        out = infer_unobserved(model, [], np.array([]))
        np.testing.assert_allclose(out, model.mean)

    def test_all_monitors(self):
        model = estimate_gaussian(correlated_samples())
        row = np.random.default_rng(2).random(5)
        out = infer_unobserved(model, list(range(5)), row)
        np.testing.assert_allclose(out, row)

    def test_duplicate_monitor_rejected(self):
        model = estimate_gaussian(correlated_samples())
        with pytest.raises(DataError):
            infer_unobserved(model, [0, 0], np.zeros(2))

    def test_out_of_range_monitor(self):
        model = estimate_gaussian(correlated_samples())
        with pytest.raises(DataError):
            infer_unobserved(model, [9], np.zeros(1))


class TestPosteriorVariance:
    def test_monitors_have_zero_variance(self):
        model = estimate_gaussian(correlated_samples())
        var = posterior_variance(model, [0, 3])
        assert var[0] == 0.0
        assert var[3] == 0.0

    def test_variance_reduced_not_increased(self):
        model = estimate_gaussian(correlated_samples())
        prior = np.diag(model.covariance)
        post = posterior_variance(model, [0])
        assert (post <= prior + 1e-9).all()

    def test_correlated_node_reduced_most(self):
        data = correlated_samples(steps=2000)
        model = estimate_gaussian(data, shrinkage=0.01)
        prior = np.diag(model.covariance)
        post = posterior_variance(model, [0])
        # Node 1 (same group as monitor 0) gains more than node 3.
        gain_same = (prior[1] - post[1]) / prior[1]
        gain_other = (prior[3] - post[3]) / prior[3]
        assert gain_same > gain_other


class TestSelection:
    def test_top_w_count_and_range(self):
        model = estimate_gaussian(correlated_samples())
        monitors = top_w_selection(model, 2)
        assert len(monitors) == 2
        assert all(0 <= m < 5 for m in monitors)

    def test_top_w_prefers_big_group(self):
        # Nodes 0-2 are mutually correlated; the single most informative
        # node must come from that group.
        data = correlated_samples(steps=2000)
        model = estimate_gaussian(data, shrinkage=0.01)
        monitors = top_w_selection(model, 1)
        assert monitors[0] in (0, 1, 2)

    def test_batch_selection_covers_groups(self):
        data = correlated_samples(steps=2000)
        model = estimate_gaussian(data, shrinkage=0.01)
        monitors = batch_selection(model, 2)
        groups = [{0, 1, 2}, {3, 4}]
        hit = [any(m in g for m in monitors) for g in groups]
        assert all(hit), f"monitors {monitors} miss a group"

    def test_batch_selection_avoids_redundancy_vs_top_w(self):
        # Top-W may pick two nodes from the dominant group; batch
        # selection should spread.  (Both must still return K valid ids.)
        data = correlated_samples(steps=2000)
        model = estimate_gaussian(data, shrinkage=0.01)
        batch = batch_selection(model, 2)
        assert len(set(batch)) == 2

    def test_random_selection_respects_seed(self):
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        assert random_selection(10, 3, rng1) == random_selection(10, 3, rng2)

    def test_too_many_monitors(self):
        model = estimate_gaussian(correlated_samples())
        with pytest.raises(ConfigurationError):
            top_w_selection(model, 9)
        with pytest.raises(ConfigurationError):
            batch_selection(model, 9)


class TestMonitoringSchemes:
    def _split(self):
        data = correlated_samples(steps=600, seed=3)
        return data[:400], data[400:]

    @pytest.mark.parametrize(
        "scheme_cls", [
            ProposedMonitorScheme,
            MinimumDistanceScheme,
            TopWScheme,
            BatchSelectionScheme,
        ],
    )
    def test_train_then_estimate(self, scheme_cls):
        train, test = self._split()
        scheme = scheme_cls(2)
        scheme.train(train)
        assert len(scheme.monitors) == 2
        out = scheme.estimate_step(test[0])
        assert out.shape == (5,)
        for m in scheme.monitors:
            assert out[m] == test[0][m]

    def test_untrained_raises(self):
        scheme = TopWScheme(2)
        with pytest.raises(NotFittedError):
            scheme.estimate_step(np.zeros(5))
        with pytest.raises(NotFittedError):
            ProposedMonitorScheme(2).estimate_step(np.zeros(5))

    def test_proposed_groups_by_series(self):
        train, test = self._split()
        scheme = ProposedMonitorScheme(2, seed=0)
        scheme.train(train)
        # Nodes 0-2 share a monitor, nodes 3-4 share the other.
        assignment = scheme._assignment
        assert assignment[0] == assignment[1] == assignment[2]
        assert assignment[3] == assignment[4]
        assert assignment[0] != assignment[3]

    def test_top_w_update_changes_model(self):
        train, test = self._split()
        scheme = TopWUpdateScheme(2, update_interval=5)
        scheme.train(train)
        model_before = scheme._model
        for t in range(10):
            scheme.estimate_step(test[t])
        assert scheme._model is not model_before

    def test_top_w_update_interval_validation(self):
        with pytest.raises(ConfigurationError):
            TopWUpdateScheme(2, update_interval=0)

    def test_evaluate_scheme_outputs(self):
        train, test = self._split()
        evaluation = evaluate_scheme(ProposedMonitorScheme(2, seed=0), train, test)
        assert evaluation.scheme == "proposed"
        assert evaluation.rmse >= 0
        assert evaluation.train_seconds >= 0
        assert evaluation.total_seconds >= evaluation.test_seconds

    def test_evaluate_scheme_shape_check(self):
        with pytest.raises(DataError):
            evaluate_scheme(
                TopWScheme(1), np.zeros((10, 3)), np.zeros((10, 4))
            )

    def test_more_monitors_not_worse(self):
        train, test = self._split()
        few = evaluate_scheme(ProposedMonitorScheme(1, seed=0), train, test)
        many = evaluate_scheme(ProposedMonitorScheme(4, seed=0), train, test)
        assert many.rmse <= few.rmse + 0.05
