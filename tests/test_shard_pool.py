"""ShardPool: persistent shared-memory workers are bit-identical.

The pool replaces the pickle-per-call process pool for sharded
collection; its contract is that pooled results match the in-process
single-shard run bit for bit, for every registered backend and both
column dtypes, across pool reuse (including fleets that grow or shrink
between requests while the same workers keep running).
"""

import numpy as np
import pytest

from repro.api import Engine
from repro.core.config import PipelineConfig, TransmissionConfig
from repro.core.types import validate_trace
from repro.exceptions import ConfigurationError, SimulationError
from repro.registry import COLLECTION_BACKENDS
from repro.simulation.collection import collect
from repro.simulation.fleet import shard_slices
from repro.simulation.shard_pool import ShardPool, shard_aware_kwargs

BACKENDS = ("adaptive", "uniform", "deadband", "perfect")


def walk_trace(steps=30, nodes=11, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    walk = np.clip(
        0.5 + np.cumsum(rng.normal(0, 0.03, (steps, nodes)), axis=0), 0, 1
    )
    return walk.astype(dtype)


def pool_collect(pool, backend, trace, shards=3, budget=0.3):
    config = TransmissionConfig(budget=budget)
    data = validate_trace(trace, dtype=trace.dtype)
    ranges = shard_slices(data.shape[1], shards)
    return pool.collect(backend, data, config, ranges)


class TestBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_matches_in_process(self, backend, dtype):
        trace = walk_trace(dtype=dtype)
        expected = collect(trace, TransmissionConfig(budget=0.3),
                           backend=backend)
        with ShardPool(workers=2) as pool:
            stored, decisions = pool_collect(pool, backend, trace)
        assert stored.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(expected.stored, stored)
        np.testing.assert_array_equal(expected.decisions, decisions)

    def test_more_shards_than_workers(self):
        trace = walk_trace(nodes=13, seed=3)
        expected = collect(trace, TransmissionConfig(budget=0.3))
        with ShardPool(workers=2) as pool:
            stored, _ = pool_collect(pool, "adaptive", trace, shards=7)
        np.testing.assert_array_equal(expected.stored, stored)

    def test_single_worker_single_shard(self):
        trace = walk_trace(seed=5)
        expected = collect(trace, TransmissionConfig(budget=0.3))
        with ShardPool(workers=1) as pool:
            stored, decisions = pool_collect(
                pool, "adaptive", trace, shards=1
            )
        np.testing.assert_array_equal(expected.stored, stored)
        np.testing.assert_array_equal(expected.decisions, decisions)


class TestReuseAndChurn:
    def test_pool_survives_fleet_growth_and_compaction(self):
        """One pool services fleets of changing size, request by request.

        The segments are re-published per collect, so the same workers
        must track a fleet that grows and then compacts — the shapes
        they attached last time are gone.
        """
        with ShardPool(workers=2) as pool:
            for seed, nodes in ((1, 8), (2, 20), (3, 6), (4, 20)):
                trace = walk_trace(nodes=nodes, seed=seed)
                expected = collect(trace, TransmissionConfig(budget=0.3))
                stored, decisions = pool_collect(
                    pool, "adaptive", trace, shards=min(3, nodes)
                )
                np.testing.assert_array_equal(expected.stored, stored)
                np.testing.assert_array_equal(
                    expected.decisions, decisions
                )

    def test_pool_switches_backend_between_requests(self):
        trace = walk_trace(seed=7)
        with ShardPool(workers=2) as pool:
            for backend in BACKENDS:
                expected = collect(
                    trace, TransmissionConfig(budget=0.3), backend=backend
                )
                stored, _ = pool_collect(pool, backend, trace)
                np.testing.assert_array_equal(expected.stored, stored)

    def test_pool_switches_dtype_between_requests(self):
        with ShardPool(workers=2) as pool:
            for dtype in (np.float64, np.float32, np.float64):
                trace = walk_trace(seed=9, dtype=dtype)
                expected = collect(trace, TransmissionConfig(budget=0.3))
                stored, _ = pool_collect(pool, "adaptive", trace)
                assert stored.dtype == np.dtype(dtype)
                np.testing.assert_array_equal(expected.stored, stored)


class TestErrorsAndLifecycle:
    def test_unknown_backend_fails_fast_and_pool_survives(self):
        trace = walk_trace(seed=11)
        with ShardPool(workers=2) as pool:
            with pytest.raises(ConfigurationError, match="unknown"):
                pool_collect(pool, "no_such_backend", trace)
            # The failed request never reached the workers; the pool
            # keeps servicing.
            expected = collect(trace, TransmissionConfig(budget=0.3))
            stored, _ = pool_collect(pool, "adaptive", trace)
            np.testing.assert_array_equal(expected.stored, stored)

    def test_worker_error_is_reported_and_pool_survives(self):
        def exploding_backend(trace, config):
            raise ValueError("boom in the worker")

        COLLECTION_BACKENDS.register("_test_exploding", exploding_backend)
        try:
            trace = walk_trace(seed=13)
            # The pool forks after registration, so workers see the
            # backend and fail *inside* collect, not at lookup.
            with ShardPool(workers=2) as pool:
                with pytest.raises(SimulationError, match="boom"):
                    pool_collect(pool, "_test_exploding", trace)
                expected = collect(trace, TransmissionConfig(budget=0.3))
                stored, _ = pool_collect(pool, "adaptive", trace)
                np.testing.assert_array_equal(expected.stored, stored)
        finally:
            del COLLECTION_BACKENDS._entries["_test_exploding"]

    def test_close_is_idempotent_and_collect_after_close_raises(self):
        pool = ShardPool(workers=1)
        pool.close()
        pool.close()
        with pytest.raises(SimulationError, match="closed"):
            pool_collect(pool, "adaptive", walk_trace(steps=5, nodes=3))

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError, match="workers"):
            ShardPool(workers=0)

    def test_non_3d_trace_rejected(self):
        with ShardPool(workers=1) as pool:
            with pytest.raises(SimulationError, match=r"\(T, N, d\)"):
                pool.collect(
                    "adaptive",
                    np.zeros((4, 3)),
                    TransmissionConfig(),
                    [(0, 3)],
                )


class TestShardAwareKwargs:
    def test_opt_in_signature(self):
        def fleet_aware(trace, config, node_offset=0, total_nodes=None):
            pass

        def per_node(trace, config):
            pass

        assert shard_aware_kwargs(fleet_aware, 5, 20) == {
            "node_offset": 5,
            "total_nodes": 20,
        }
        assert shard_aware_kwargs(per_node, 5, 20) == {}
        assert shard_aware_kwargs(len, 0, 1) == {}


class TestEngineIntegration:
    def _config(self):
        return PipelineConfig.small(
            num_clusters=2, initial_collection=20, retrain_interval=20
        )

    def test_shared_pool_run_matches_serial_and_pickle(self):
        trace = walk_trace(steps=60, nodes=9, seed=17)
        cfg = self._config()
        serial = Engine(cfg).run(trace, shards=3)
        shared = Engine(cfg).run(trace, shards=3, workers=2)
        pickled = Engine(cfg).run(
            trace, shards=3, workers=2, pool="pickle"
        )
        np.testing.assert_array_equal(serial.stored, shared.stored)
        np.testing.assert_array_equal(serial.decisions, shared.decisions)
        np.testing.assert_array_equal(serial.stored, pickled.stored)
        assert serial.rmse_by_horizon == shared.rmse_by_horizon
        assert serial.rmse_by_horizon == pickled.rmse_by_horizon

    def test_invalid_pool_name(self):
        with pytest.raises(ConfigurationError, match="pool"):
            Engine(self._config()).run(
                walk_trace(steps=20, nodes=4),
                shards=2,
                workers=2,
                pool="carrier_pigeon",
            )
