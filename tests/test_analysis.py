"""Tests for correlation analysis and reporting helpers."""

import numpy as np
import pytest

from repro.analysis.correlation import (
    cdf_at,
    empirical_cdf,
    fraction_above,
    median_absolute_correlation,
    pairwise_correlations,
)
from repro.analysis.reporting import format_mapping, format_series, format_table
from repro.exceptions import DataError


class TestPairwiseCorrelations:
    def test_perfectly_correlated(self):
        base = np.random.default_rng(0).random(100)
        trace = np.stack([base, base * 2 + 1], axis=1)
        corr = pairwise_correlations(trace)
        assert corr.shape == (1,)
        assert corr[0] == pytest.approx(1.0)

    def test_anticorrelated(self):
        base = np.random.default_rng(1).random(100)
        trace = np.stack([base, -base], axis=1)
        assert pairwise_correlations(trace)[0] == pytest.approx(-1.0)

    def test_pair_count(self):
        trace = np.random.default_rng(2).random((50, 6))
        assert pairwise_correlations(trace).shape == (15,)

    def test_constant_nodes_excluded(self):
        rng = np.random.default_rng(3)
        trace = np.stack(
            [rng.random(50), np.full(50, 0.5), rng.random(50)], axis=1
        )
        corr = pairwise_correlations(trace)
        assert corr.shape == (1,)  # only the two varying nodes pair up

    def test_too_few_varying_nodes(self):
        trace = np.stack([np.full(50, 0.5), np.full(50, 0.7)], axis=1)
        with pytest.raises(DataError):
            pairwise_correlations(trace)

    def test_single_step_rejected(self):
        with pytest.raises(DataError):
            pairwise_correlations(np.zeros((1, 5)))


class TestEmpiricalCdf:
    def test_monotone_to_one(self):
        values = np.random.default_rng(4).random(100)
        x, probabilities = empirical_cdf(values)
        assert (np.diff(x) >= 0).all()
        assert (np.diff(probabilities) >= 0).all()
        assert probabilities[-1] == pytest.approx(1.0)

    def test_cdf_at_known_points(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        out = cdf_at(values, np.array([0.0, 2.5, 10.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            empirical_cdf(np.array([]))


class TestSummaries:
    def test_fraction_above(self):
        base = np.random.default_rng(5).random(200)
        trace = np.stack([base, base, -base], axis=1)
        # pairs: (0,1)=+1, (0,2)=-1, (1,2)=-1 -> one of three above 0.5
        assert fraction_above(trace, 0.5) == pytest.approx(1 / 3)

    def test_median_absolute(self):
        base = np.random.default_rng(6).random(200)
        trace = np.stack([base, base], axis=1)
        assert median_absolute_correlation(trace) == pytest.approx(1.0)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1.23456], ["long-name", 2]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.2346" in text
        assert lines[0].startswith("name")

    def test_format_table_precision(self):
        text = format_table(["v"], [[0.123456]], precision=2)
        assert "0.12" in text

    def test_format_series(self):
        text = format_series("rmse", [1, 2], [0.5, 0.25])
        assert text.startswith("rmse:")
        assert "(1, 0.5000)" in text

    def test_format_mapping(self):
        text = format_mapping("results", {"a": 0.1, "b": 2})
        assert "results" in text
        assert "0.1000" in text
        assert "b" in text
