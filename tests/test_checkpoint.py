"""Checkpoint/resume tests (repro.checkpoint + Engine.resume).

The core property, enforced across every registered transmission policy
and every forecaster bank (object bank included): snapshot a session at
an arbitrary slot, resume it in a fresh engine, and every future output
— forecasts, cluster assignments, transport counters — is bit-identical
to the session that never stopped.
"""

import json
import zipfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine
from repro.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    Checkpoint,
    as_checkpoint,
    config_mismatch,
)
from repro.core.config import (
    ClusteringConfig,
    ForecastingConfig,
    PipelineConfig,
    TransmissionConfig,
)
from repro.exceptions import CheckpointError
from repro.forecasting.base import Forecaster

POLICIES = ("adaptive", "uniform", "deadband", "perfect")
#: (model, bank) pairs covering every vectorized bank plus the object
#: bank adapter (sample_hold forced through ObjectBank, and holt which
#: has no vectorized bank at all).
BANKS = (
    ("sample_hold", "auto"),
    ("mean", "auto"),
    ("ses", "auto"),
    ("ar", "auto"),
    ("sample_hold", "object"),
    ("holt", "auto"),
)


def config(model="sample_hold", bank="auto", initial=12, horizon=2):
    return PipelineConfig(
        transmission=TransmissionConfig(budget=0.3),
        clustering=ClusteringConfig(num_clusters=2, seed=0),
        forecasting=ForecastingConfig(
            model=model,
            bank=bank,
            max_horizon=horizon,
            initial_collection=initial,
            retrain_interval=initial,
        ),
    )


def walk_trace(steps=36, nodes=6, seed=0):
    rng = np.random.default_rng(seed)
    return np.clip(
        0.5 + np.cumsum(rng.normal(0, 0.04, (steps, nodes)), axis=0), 0, 1
    )


def assert_outputs_equal(a, b):
    np.testing.assert_array_equal(a.stored, b.stored)
    for x, y in zip(a.assignments, b.assignments):
        np.testing.assert_array_equal(x.labels, y.labels)
        np.testing.assert_array_equal(x.centroids, y.centroids)
    assert (a.node_forecasts is None) == (b.node_forecasts is None)
    if a.node_forecasts is not None:
        for h in a.node_forecasts:
            np.testing.assert_array_equal(
                a.node_forecasts[h], b.node_forecasts[h]
            )
    assert a.transport.messages == b.transport.messages


def roundtrip_is_bit_identical(cfg, trace, cut, tmp_path, **session_kwargs):
    """Run uninterrupted vs snapshot-at-cut + resume; compare bitwise."""
    steps = trace.shape[0]
    baseline = Engine(cfg, **session_kwargs).session(trace.shape[1], 1)
    outputs = [baseline.ingest(trace[t]) for t in range(steps)]

    interrupted = Engine(cfg, **session_kwargs).session(trace.shape[1], 1)
    for t in range(cut):
        interrupted.ingest(trace[t])
    path = interrupted.save(tmp_path / "session.ckpt")
    resumed = Engine(cfg, **session_kwargs).resume(path)
    assert resumed.time == cut
    for t in range(cut, steps):
        assert_outputs_equal(outputs[t], resumed.ingest(trace[t]))
    assert (
        baseline.transport_stats.messages
        == resumed.transport_stats.messages
    )
    assert (
        baseline.transport_stats.payload_floats
        == resumed.transport_stats.payload_floats
    )
    np.testing.assert_array_equal(
        baseline.fleet.policy_state, resumed.fleet.policy_state
    )
    np.testing.assert_array_equal(
        baseline.fleet.message_counts, resumed.fleet.message_counts
    )


class TestRoundTripBitIdentity:
    @pytest.mark.parametrize("policy", POLICIES)
    @given(seed=st.integers(0, 10_000), cut=st.integers(1, 35))
    @settings(max_examples=6, deadline=None)
    def test_every_policy(self, policy, tmp_path_factory, seed, cut):
        tmp_path = tmp_path_factory.mktemp("ck")
        cfg = config()
        trace = walk_trace(seed=seed)
        roundtrip_is_bit_identical(cfg, trace, cut, tmp_path, policy=policy)

    @pytest.mark.parametrize("model,bank", BANKS)
    @given(seed=st.integers(0, 10_000), cut=st.integers(5, 30))
    @settings(max_examples=4, deadline=None)
    def test_every_bank(self, model, bank, tmp_path_factory, seed, cut):
        tmp_path = tmp_path_factory.mktemp("ck")
        cfg = config(model=model, bank=bank)
        trace = walk_trace(seed=seed)
        roundtrip_is_bit_identical(cfg, trace, cut, tmp_path)

    def test_object_loop_session_roundtrip(self, tmp_path):
        """Non-vectorized sessions checkpoint their policy objects."""
        cfg = config()
        trace = walk_trace(seed=4)
        baseline = Engine(cfg).session(6, 1, vectorized=False)
        outputs = [baseline.ingest(trace[t]) for t in range(36)]

        interrupted = Engine(cfg).session(6, 1, vectorized=False)
        for t in range(17):
            interrupted.ingest(trace[t])
        path = interrupted.save(tmp_path / "obj.ckpt")
        resumed = Engine(cfg).resume(path)
        assert not resumed.vectorized
        for t in range(17, 36):
            assert_outputs_equal(outputs[t], resumed.ingest(trace[t]))

    def test_roundtrip_preserves_late_counters(self, tmp_path):
        cfg = config()
        session = Engine(cfg).session(4, 1, reorder_window=2)
        trace = walk_trace(steps=6, nodes=4, seed=1)
        session.ingest(trace[0])
        session.ingest(trace[1][:2], node_ids=[0, 1])
        session.ingest(trace[1][3:], node_ids=[3], t=1)
        session.ingest(trace[0][:1], node_ids=[0], t=0)
        resumed = Engine(cfg).resume(session.save(tmp_path / "late.ckpt"))
        assert resumed.reorder_window == 2
        assert resumed.late_applied == session.late_applied == 1
        assert resumed.late_dropped == session.late_dropped == 1

    def test_resumed_session_serves_forecasts_immediately(self, tmp_path):
        """forecast() works right after resume, before any new ingest."""
        cfg = config(initial=10)
        session = Engine(cfg).session(6, 1)
        trace = walk_trace(steps=20, seed=11)
        for t in range(20):
            session.ingest(trace[t])
        expected = session.forecast()
        resumed = Engine(cfg).resume(session.save(tmp_path / "f.ckpt"))
        restored = resumed.forecast()
        assert set(restored) == set(expected)
        for h in expected:
            np.testing.assert_array_equal(expected[h], restored[h])

    def test_resume_before_forecasting_still_raises(self, tmp_path):
        from repro.exceptions import NotFittedError

        cfg = config(initial=50)
        session = Engine(cfg).session(4, 1)
        session.ingest(walk_trace(steps=1, nodes=4)[0])
        resumed = Engine(cfg).resume(session.save(tmp_path / "e.ckpt"))
        with pytest.raises(NotFittedError):
            resumed.forecast()

    def test_save_is_atomic_over_existing_checkpoint(self, tmp_path):
        """A failed save never destroys the previous good artifact."""
        cfg = config()
        session = Engine(cfg).session(4, 1)
        session.ingest(walk_trace(steps=1, nodes=4)[0])
        path = tmp_path / "stable.ckpt"
        session.save(path)
        good = path.read_bytes()
        # Sabotage the next snapshot so save() fails mid-assembly.
        checkpoint = session.snapshot()
        checkpoint.state["poison"] = object()
        with pytest.raises(CheckpointError):
            checkpoint.save(path)
        assert path.read_bytes() == good
        assert list(tmp_path.glob("*.tmp-*")) == []

    def test_in_memory_checkpoint_resume(self):
        """Engine.resume accepts a live Checkpoint, not only a path."""
        cfg = config()
        trace = walk_trace(seed=2)
        session = Engine(cfg).session(6, 1)
        for t in range(10):
            session.ingest(trace[t])
        resumed = Engine(cfg).resume(session.snapshot())
        assert_outputs_equal(
            session.ingest(trace[10]), resumed.ingest(trace[10])
        )


class TestCustomForecasters:
    def test_custom_model_with_protocol_roundtrips(self, tmp_path):
        class Anchored(Forecaster):
            """Holds the first fitted value plus an updatable offset."""

            def __init__(self):
                super().__init__()
                self._anchor = 0.0

            def _fit(self, series):
                self._anchor = float(series[0])

            def _forecast(self, horizon):
                return np.full(horizon, self._anchor + len(self._history))

            def _state(self):
                return {"anchor": self._anchor}

            def _load_state(self, state):
                self._anchor = float(state["anchor"])

        cfg = config()
        factory = lambda cluster, group: Anchored()  # noqa: E731
        trace = walk_trace(seed=8)
        baseline = Engine(cfg, forecaster_factory=factory).session(6, 1)
        outputs = [baseline.ingest(trace[t]) for t in range(30)]

        interrupted = Engine(cfg, forecaster_factory=factory).session(6, 1)
        for t in range(20):
            interrupted.ingest(trace[t])
        path = interrupted.save(tmp_path / "custom.ckpt")
        resumed = Engine(cfg, forecaster_factory=factory).resume(path)
        for t in range(20, 30):
            assert_outputs_equal(outputs[t], resumed.ingest(trace[t]))

    def test_custom_model_without_protocol_fails_loudly(self):
        class Opaque:
            def fit(self, series):
                return self

            def update(self, value):
                pass

            def forecast(self, horizon):
                return np.zeros(horizon)

        cfg = config()
        session = Engine(
            cfg, forecaster_factory=lambda c, g: Opaque()
        ).session(4, 1)
        trace = walk_trace(steps=14, nodes=4, seed=3)
        for t in range(14):
            session.ingest(trace[t])
        with pytest.raises(CheckpointError, match="get_state"):
            session.snapshot()

    def test_resume_without_custom_factory_rejected(self, tmp_path):
        cfg = config()
        factory = lambda c, g: None  # never called before ingest  # noqa: E731
        session = Engine(cfg, forecaster_factory=factory)
        with pytest.raises(CheckpointError, match="forecaster_factory"):
            plain = Engine(cfg).session(4, 1)
            plain._custom_forecaster_factory = True
            Engine(cfg).resume(plain.snapshot())


class TestScalarForecasterProtocol:
    """Unit round-trips of the documented get_state/set_state protocol."""

    def series(self, length=60, seed=0):
        rng = np.random.default_rng(seed)
        return 0.5 + np.cumsum(rng.normal(0, 0.02, length))

    def roundtrip(self, make):
        series = self.series()
        original = make().fit(series[:50])
        for value in series[50:55]:
            original.update(value)
        clone = make()
        clone.set_state(original.get_state())
        np.testing.assert_array_equal(
            original.forecast(4), clone.forecast(4)
        )
        # The restored model keeps evolving identically.
        original.update(series[55])
        clone.update(series[55])
        np.testing.assert_array_equal(
            original.forecast(4), clone.forecast(4)
        )

    def test_sample_hold(self):
        from repro.forecasting.sample_hold import SampleHoldForecaster

        self.roundtrip(SampleHoldForecaster)

    def test_mean(self):
        from repro.forecasting.sample_hold import MeanForecaster

        self.roundtrip(MeanForecaster)

    def test_ses(self):
        from repro.forecasting.exponential import SimpleExponentialSmoothing

        self.roundtrip(SimpleExponentialSmoothing)

    def test_holt(self):
        from repro.forecasting.exponential import HoltLinear

        self.roundtrip(HoltLinear)

    def test_holt_winters(self):
        from repro.forecasting.exponential import HoltWinters

        self.roundtrip(lambda: HoltWinters(period=12))

    def test_yule_walker(self):
        from repro.forecasting.yule_walker import YuleWalkerAR

        self.roundtrip(lambda: YuleWalkerAR(order=2))

    def test_auto_arima(self):
        from repro.forecasting.arima.grid_search import AutoArima

        self.roundtrip(
            lambda: AutoArima(max_p=1, max_d=1, max_q=0)
        )

    def test_lstm(self):
        from repro.forecasting.lstm.forecaster import LstmForecaster

        self.roundtrip(
            lambda: LstmForecaster(
                hidden_dim=4, lookback=4, epochs=1, seed=0
            )
        )


class TestArtifactFormat:
    def make_checkpoint(self, tmp_path, cut=10):
        cfg = config()
        session = Engine(cfg).session(5, 1)
        trace = walk_trace(steps=cut, nodes=5, seed=5)
        for t in range(cut):
            session.ingest(trace[t])
        return cfg, session, session.save(tmp_path / "artifact.ckpt")

    def test_artifact_is_npz_plus_manifest(self, tmp_path):
        _, _, path = self.make_checkpoint(tmp_path)
        with zipfile.ZipFile(path) as archive:
            names = archive.namelist()
            assert "manifest.json" in names
            assert any(name.endswith(".npy") for name in names)
            manifest = json.loads(archive.read("manifest.json"))
        assert manifest["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert manifest["config"]["transmission"]["budget"] == 0.3
        assert manifest["session"]["num_nodes"] == 5

    def test_version_mismatch_rejected(self, tmp_path):
        cfg, session, _ = self.make_checkpoint(tmp_path)
        checkpoint = session.snapshot()
        checkpoint.version = CHECKPOINT_FORMAT_VERSION + 1
        future = checkpoint.save(tmp_path / "future.ckpt")
        with pytest.raises(CheckpointError, match="format version"):
            Checkpoint.load(future)

    def test_config_mismatch_rejected_with_detail(self, tmp_path):
        _, _, path = self.make_checkpoint(tmp_path)
        other = Engine(config(initial=13))
        with pytest.raises(
            CheckpointError, match="initial_collection"
        ) as excinfo:
            other.resume(path)
        assert "12" in str(excinfo.value)
        assert "13" in str(excinfo.value)

    def test_policy_mismatch_rejected(self, tmp_path):
        cfg, _, path = self.make_checkpoint(tmp_path)
        with pytest.raises(CheckpointError, match="policy"):
            Engine(cfg, policy="uniform").resume(path)

    def test_fleet_shape_mismatch_rejected(self, tmp_path):
        cfg, _, path = self.make_checkpoint(tmp_path)
        engine = Engine(cfg)
        checkpoint = as_checkpoint(path)
        session = engine.session(5, 1)
        checkpoint.session["num_nodes"] = 7
        with pytest.raises(CheckpointError, match="fleet"):
            session.restore(checkpoint)

    def test_non_checkpoint_file_rejected(self, tmp_path):
        garbage = tmp_path / "garbage.ckpt"
        garbage.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            Checkpoint.load(garbage)

    def test_zip_without_manifest_rejected(self, tmp_path):
        path = tmp_path / "empty.ckpt"
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("a0.npy", b"")
        with pytest.raises(CheckpointError, match="manifest"):
            Checkpoint.load(path)

    def test_from_checkpoint_builds_matching_engine(self, tmp_path):
        cfg, session, path = self.make_checkpoint(tmp_path)
        engine = Engine.from_checkpoint(path, collection="uniform")
        assert engine.config == cfg
        assert engine.collection == "uniform"
        assert engine.time == 10
        trace = walk_trace(steps=12, nodes=5, seed=5)
        a = session.ingest(trace[10])
        b = engine.step(trace[10])
        np.testing.assert_array_equal(a.stored, b.stored)

    def test_config_mismatch_helper(self):
        diffs = config_mismatch(
            {"a": {"b": 1, "c": 2}}, {"a": {"b": 1, "c": 3}}
        )
        assert diffs == [("a.c", 2, 3)]
        assert config_mismatch({"a": 1}, {"a": 1}) == []


class TestMmapResume:
    """Zero-copy resume: array members map copy-on-write and are
    adopted as the session's live columns instead of being copied."""

    def make_checkpoint(self, tmp_path, cut=12, policy="adaptive"):
        cfg = config()
        session = Engine(cfg, policy=policy).session(6, 1)
        trace = walk_trace(steps=36, seed=21)
        for t in range(cut):
            session.ingest(trace[t])
        return cfg, trace, session.save(tmp_path / f"{policy}.ckpt")

    def test_array_members_are_stored_uncompressed(self, tmp_path):
        # mmap needs byte-addressable members: arrays are ZIP_STORED,
        # only the manifest stays deflated.
        _, _, path = self.make_checkpoint(tmp_path)
        with zipfile.ZipFile(path) as archive:
            for info in archive.infolist():
                if info.filename.endswith(".npy"):
                    assert info.compress_type == zipfile.ZIP_STORED
                else:
                    assert info.compress_type == zipfile.ZIP_DEFLATED

    def test_claim_adoption_is_one_shot_and_mmap_only(self, tmp_path):
        _, _, path = self.make_checkpoint(tmp_path)
        mapped = Checkpoint.load(path, mmap=True)
        assert mapped.claim_adoption()
        assert not mapped.claim_adoption()  # second claimant copies
        plain = Checkpoint.load(path)
        assert not plain.claim_adoption()

    def test_snapshot_is_never_adoptable(self, tmp_path):
        cfg = config()
        session = Engine(cfg).session(4, 1)
        session.ingest(walk_trace(steps=1, nodes=4)[0])
        # Adopting a snapshot would alias the live session's columns.
        assert not session.snapshot().claim_adoption()

    def test_resume_adopts_mapped_columns(self, tmp_path):
        cfg, _, path = self.make_checkpoint(tmp_path)
        resumed = Engine(cfg).resume(path)  # mmap=True is the default
        assert isinstance(resumed.fleet.stored, np.memmap)
        copied = Engine(cfg).resume(path, mmap=False)
        assert not isinstance(copied.fleet.stored, np.memmap)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_mmap_continuation_matches_in_memory(self, tmp_path, policy):
        cfg, trace, path = self.make_checkpoint(tmp_path, policy=policy)
        mapped = Engine(cfg, policy=policy).resume(path, mmap=True)
        copied = Engine(cfg, policy=policy).resume(path, mmap=False)
        for t in range(12, 36):
            assert_outputs_equal(
                mapped.ingest(trace[t]), copied.ingest(trace[t])
            )
        np.testing.assert_array_equal(
            mapped.fleet.policy_state, copied.fleet.policy_state
        )
        assert (
            mapped.transport_stats.messages
            == copied.transport_stats.messages
        )

    def test_mapped_columns_are_copy_on_write(self, tmp_path):
        # Ingesting into an adopted session must never write through to
        # the checkpoint file on disk.
        cfg, trace, path = self.make_checkpoint(tmp_path)
        before = path.read_bytes()
        resumed = Engine(cfg).resume(path)
        for t in range(12, 36):
            resumed.ingest(trace[t])
        assert path.read_bytes() == before

    def test_legacy_deflated_archive_falls_back(self, tmp_path):
        # Checkpoints written before the ZIP_STORED layout deflate every
        # member; mmap=True silently degrades to an in-memory load.
        cfg, trace, path = self.make_checkpoint(tmp_path)
        legacy = tmp_path / "legacy.ckpt"
        with zipfile.ZipFile(path) as src, zipfile.ZipFile(
            legacy, "w", zipfile.ZIP_DEFLATED
        ) as dst:
            for name in src.namelist():
                dst.writestr(name, src.read(name))
        resumed = Engine(cfg).resume(legacy, mmap=True)
        assert not isinstance(resumed.fleet.stored, np.memmap)
        reference = Engine(cfg).resume(path, mmap=False)
        for t in range(12, 36):
            assert_outputs_equal(
                resumed.ingest(trace[t]), reference.ingest(trace[t])
            )
