"""Tests for the dataset container and synthetic trace generators."""

import numpy as np
import pytest

from repro.analysis.correlation import fraction_above
from repro.datasets import (
    CLUSTER_DATASETS,
    ProfileTraceSpec,
    TraceDataset,
    generate_memberships,
    generate_profile_paths,
    generate_resource_trace,
    load_alibaba_like,
    load_bitbrains_like,
    load_google_like,
    load_sensor_like,
    load_trace_csv,
    read_matrix_csv,
)
from repro.datasets.synthetic import draw_regime_events, generate_bursts
from repro.exceptions import ConfigurationError, DataError


class TestTraceDataset:
    def test_properties(self):
        data = np.random.default_rng(0).random((10, 4, 2))
        ds = TraceDataset("x", data)
        assert ds.num_steps == 10
        assert ds.num_nodes == 4
        assert ds.num_resources == 2

    def test_resource_lookup(self):
        data = np.random.default_rng(1).random((5, 3, 2))
        ds = TraceDataset("x", data)
        np.testing.assert_array_equal(ds.resource("cpu"), data[:, :, 0])
        np.testing.assert_array_equal(ds.resource("memory"), data[:, :, 1])

    def test_unknown_resource(self):
        ds = TraceDataset("x", np.zeros((2, 2, 2)))
        with pytest.raises(DataError):
            ds.resource("gpu")

    def test_resource_name_count_mismatch(self):
        with pytest.raises(DataError):
            TraceDataset("x", np.zeros((2, 2, 1)))

    def test_slice(self):
        ds = TraceDataset("x", np.random.default_rng(2).random((10, 6, 2)))
        sub = ds.slice(steps=slice(0, 5), nodes=slice(0, 3))
        assert sub.num_steps == 5
        assert sub.num_nodes == 3

    def test_subsample_nodes(self):
        ds = TraceDataset("x", np.random.default_rng(3).random((10, 8, 2)))
        sub = ds.subsample_nodes(4, seed=1)
        assert sub.num_nodes == 4
        repeat = ds.subsample_nodes(4, seed=1)
        np.testing.assert_array_equal(sub.data, repeat.data)

    def test_subsample_too_many(self):
        ds = TraceDataset("x", np.zeros((2, 3, 2)))
        with pytest.raises(DataError):
            ds.subsample_nodes(5)


class TestProfileTraceSpec:
    def test_defaults_valid(self):
        ProfileTraceSpec()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_profiles": 0},
            {"ar_coefficient": 1.0},
            {"churn": 1.5},
            {"steps_per_day": 0},
            {"burst_duration": 0.0},
            {"regime_rate": -0.1},
            {"regime_node_fraction": 2.0},
            {"idle_fraction": 1.5},
            {"idle_noise": -1.0},
            {"replica_fraction": -0.1},
            {"replica_noise": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ProfileTraceSpec(**kwargs)


class TestGenerators:
    def test_profile_paths_shape(self):
        spec = ProfileTraceSpec(num_profiles=4)
        paths = generate_profile_paths(spec, 100, np.random.default_rng(0))
        assert paths.shape == (100, 4)

    def test_memberships_in_range(self):
        spec = ProfileTraceSpec(num_profiles=3, churn=0.1)
        members = generate_memberships(spec, 50, 20, np.random.default_rng(0))
        assert members.min() >= 0
        assert members.max() < 3

    def test_zero_churn_static_membership(self):
        spec = ProfileTraceSpec(num_profiles=3, churn=0.0)
        members = generate_memberships(spec, 50, 20, np.random.default_rng(0))
        assert (members == members[0]).all()

    def test_high_churn_changes_membership(self):
        spec = ProfileTraceSpec(num_profiles=3, churn=0.5)
        members = generate_memberships(spec, 50, 20, np.random.default_rng(0))
        assert not (members == members[0]).all()

    def test_bursts_zero_rate(self):
        spec = ProfileTraceSpec(burst_rate=0.0)
        bursts = generate_bursts(spec, 30, 10, np.random.default_rng(0))
        assert (bursts == 0).all()

    def test_bursts_positive_rate(self):
        spec = ProfileTraceSpec(
            burst_rate=0.2, burst_magnitude=0.5, burst_duration=3.0
        )
        bursts = generate_bursts(spec, 200, 10, np.random.default_rng(0))
        assert bursts.max() > 0
        assert (bursts >= 0).all()

    def test_regime_events_disabled(self):
        spec = ProfileTraceSpec(regime_rate=0.0)
        events = draw_regime_events(spec, 100, np.random.default_rng(0))
        assert not events.any()

    def test_regime_events_shift_levels(self):
        spec = ProfileTraceSpec(regime_rate=0.0, ar_scale=0.0,
                                diurnal_amplitude=0.0)
        rng = np.random.default_rng(0)
        events = np.zeros(100, dtype=bool)
        events[50] = True
        paths = generate_profile_paths(spec, 100, rng, events)
        # Constant before and after the event, different levels (w.h.p.).
        assert np.allclose(paths[:50], paths[0])
        assert np.allclose(paths[50:], paths[50])

    def test_trace_in_unit_range(self):
        spec = ProfileTraceSpec(burst_rate=0.05)
        trace = generate_resource_trace(spec, 100, 20, np.random.default_rng(0))
        assert trace.min() >= 0.0
        assert trace.max() <= 1.0

    def test_trace_reproducible(self):
        spec = ProfileTraceSpec()
        a = generate_resource_trace(spec, 50, 10, np.random.default_rng(5))
        b = generate_resource_trace(spec, 50, 10, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_idle_fraction_produces_low_variance_nodes(self):
        spec = ProfileTraceSpec(idle_fraction=0.5, idle_level=0.02)
        trace = generate_resource_trace(spec, 200, 20, np.random.default_rng(1))
        stds = trace.std(axis=0)
        assert (stds < 0.01).sum() >= 8

    def test_replica_fraction_produces_correlated_pairs(self):
        spec = ProfileTraceSpec(
            replica_fraction=1.0, churn=0.0, num_profiles=1,
            noise_scale=0.05, diurnal_amplitude=0.2,
        )
        trace = generate_resource_trace(spec, 300, 6, np.random.default_rng(2))
        corr = np.corrcoef(trace, rowvar=False)
        # All replicas of one profile: essentially perfectly correlated.
        assert np.min(corr) > 0.99


class TestDatasetLoaders:
    @pytest.mark.parametrize("loader", [
        load_alibaba_like, load_bitbrains_like, load_google_like,
    ])
    def test_cluster_loader_contract(self, loader):
        ds = loader(num_nodes=20, num_steps=100)
        assert ds.num_nodes == 20
        assert ds.num_steps == 100
        assert ds.resource_names == ("cpu", "memory")
        assert ds.data.min() >= 0.0
        assert ds.data.max() <= 1.0

    def test_registry_names(self):
        assert set(CLUSTER_DATASETS) == {"alibaba", "bitbrains", "google"}

    def test_sensor_loader(self):
        ds = load_sensor_like(num_nodes=10, num_steps=100)
        assert ds.resource_names == ("temperature", "humidity")

    def test_sensor_strongly_correlated_vs_cluster(self):
        sensor = load_sensor_like(num_nodes=20, num_steps=600)
        cluster = load_google_like(num_nodes=20, num_steps=600)
        sensor_frac = fraction_above(sensor.resource("temperature"), 0.5)
        cluster_frac = fraction_above(cluster.resource("cpu"), 0.5)
        assert sensor_frac > 0.9
        assert cluster_frac < 0.5

    def test_reproducible_by_seed(self):
        a = load_alibaba_like(num_nodes=10, num_steps=50, seed=3)
        b = load_alibaba_like(num_nodes=10, num_steps=50, seed=3)
        np.testing.assert_array_equal(a.data, b.data)
        c = load_alibaba_like(num_nodes=10, num_steps=50, seed=4)
        assert not np.array_equal(a.data, c.data)


class TestCsvLoader:
    def test_round_trip(self, tmp_path):
        data = np.random.default_rng(0).random((6, 4)).round(4)
        path = tmp_path / "cpu.csv"
        np.savetxt(path, data, delimiter=",")
        loaded = read_matrix_csv(str(path))
        np.testing.assert_allclose(loaded, data)

    def test_header_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1.0,2.0\n3.0,4.0\n")
        loaded = read_matrix_csv(str(path))
        np.testing.assert_array_equal(loaded, [[1, 2], [3, 4]])

    def test_bad_value_mid_file(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1.0,2.0\nxx,4.0\n")
        with pytest.raises(DataError):
            read_matrix_csv(str(path))

    def test_missing_file(self):
        with pytest.raises(DataError):
            read_matrix_csv("/nonexistent/file.csv")

    def test_inconsistent_columns(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1.0,2.0\n3.0\n")
        with pytest.raises(DataError):
            read_matrix_csv(str(path))

    def test_load_trace_csv_stacks(self, tmp_path):
        cpu = np.random.default_rng(1).random((5, 3)).round(3)
        mem = np.random.default_rng(2).random((5, 3)).round(3)
        p1, p2 = tmp_path / "cpu.csv", tmp_path / "mem.csv"
        np.savetxt(p1, cpu, delimiter=",")
        np.savetxt(p2, mem, delimiter=",")
        ds = load_trace_csv(
            [str(p1), str(p2)], ("cpu", "memory"), name="real"
        )
        assert ds.num_resources == 2
        np.testing.assert_allclose(ds.resource("cpu"), cpu)

    def test_load_trace_csv_shape_mismatch(self, tmp_path):
        p1, p2 = tmp_path / "a.csv", tmp_path / "b.csv"
        np.savetxt(p1, np.zeros((3, 2)), delimiter=",")
        np.savetxt(p2, np.zeros((4, 2)), delimiter=",")
        with pytest.raises(DataError):
            load_trace_csv([str(p1), str(p2)], ("cpu", "memory"))

    def test_load_trace_csv_clips(self, tmp_path):
        path = tmp_path / "a.csv"
        path.write_text("1.5,-0.5\n0.5,0.5\n")
        ds = load_trace_csv([str(path)], ("cpu",))
        assert ds.data.max() <= 1.0
        assert ds.data.min() >= 0.0


class TestDescribe:
    def test_summary_fields_in_range(self):
        from repro.datasets import describe, load_google_like

        summaries = describe(load_google_like(num_nodes=25, num_steps=200))
        for summary in summaries.values():
            assert 0.0 <= summary.mean <= 1.0
            assert summary.std >= 0.0
            assert -1.0 <= summary.lag1_autocorrelation <= 1.0
            assert 0.0 <= summary.median_abs_correlation <= 1.0
            assert 0.0 <= summary.idle_fraction <= 1.0

    def test_idle_fraction_detected(self):
        from repro.datasets import describe_resource

        rng = np.random.default_rng(0)
        active = rng.random((100, 5))
        idle = np.full((100, 5), 0.02) + rng.normal(0, 0.001, (100, 5))
        summary = describe_resource(np.concatenate([active, idle], axis=1))
        assert summary.idle_fraction == pytest.approx(0.5)

    def test_smooth_vs_noisy_autocorrelation(self):
        from repro.datasets import describe_resource

        rng = np.random.default_rng(1)
        smooth = np.cumsum(rng.normal(0, 0.01, (300, 4)), axis=0)
        noisy = rng.normal(0, 0.1, (300, 4))
        assert (
            describe_resource(smooth).lag1_autocorrelation
            > describe_resource(noisy).lag1_autocorrelation + 0.5
        )

    def test_format_description(self):
        from repro.datasets import format_description, load_sensor_like

        text = format_description(load_sensor_like(num_nodes=10, num_steps=100))
        assert "sensor-like" in text
        assert "temperature" in text

    def test_too_short_rejected(self):
        from repro.datasets import describe_resource

        with pytest.raises(DataError):
            describe_resource(np.zeros((2, 3)))
