"""Tests for the Hungarian assignment implementation (vs scipy)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays
from scipy.optimize import linear_sum_assignment

from repro.clustering.matching import (
    assignment_total,
    maximum_weight_assignment,
    minimum_cost_assignment,
)
from repro.exceptions import DataError


def brute_force_min(cost):
    n = cost.shape[0]
    best, best_perm = float("inf"), None
    for perm in itertools.permutations(range(n)):
        total = sum(cost[i, perm[i]] for i in range(n))
        if total < best:
            best, best_perm = total, perm
    return best, best_perm


class TestMinimumCost:
    def test_identity_case(self):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        np.testing.assert_array_equal(
            minimum_cost_assignment(cost), [0, 1]
        )

    def test_swap_case(self):
        cost = np.array([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_array_equal(
            minimum_cost_assignment(cost), [1, 0]
        )

    def test_empty(self):
        assert minimum_cost_assignment(np.zeros((0, 0))).size == 0

    def test_single(self):
        np.testing.assert_array_equal(
            minimum_cost_assignment(np.array([[5.0]])), [0]
        )

    def test_matches_brute_force_small(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            n = int(rng.integers(2, 6))
            cost = rng.random((n, n))
            assignment = minimum_cost_assignment(cost)
            total = assignment_total(cost, assignment)
            best, _ = brute_force_min(cost)
            assert total == pytest.approx(best)

    def test_matches_scipy_medium(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            n = int(rng.integers(5, 25))
            cost = rng.random((n, n)) * 10
            ours = assignment_total(cost, minimum_cost_assignment(cost))
            rows, cols = linear_sum_assignment(cost)
            theirs = cost[rows, cols].sum()
            assert ours == pytest.approx(theirs)

    def test_negative_costs(self):
        cost = np.array([[-5.0, 1.0], [2.0, -3.0]])
        assignment = minimum_cost_assignment(cost)
        assert assignment_total(cost, assignment) == pytest.approx(-8.0)

    def test_non_square_rejected(self):
        with pytest.raises(DataError):
            minimum_cost_assignment(np.zeros((2, 3)))

    def test_nan_rejected(self):
        cost = np.array([[np.nan, 1.0], [1.0, 0.0]])
        with pytest.raises(DataError):
            minimum_cost_assignment(cost)

    @given(
        arrays(
            float, st.tuples(st.integers(1, 8), st.integers(1, 8)),
            elements=st.floats(-100, 100, allow_nan=False),
        ).filter(lambda a: a.shape[0] == a.shape[1])
    )
    @settings(max_examples=50, deadline=None)
    def test_property_permutation_and_optimal(self, cost):
        assignment = minimum_cost_assignment(cost)
        # Valid permutation.
        assert sorted(assignment.tolist()) == list(range(cost.shape[0]))
        # Optimal vs scipy.
        rows, cols = linear_sum_assignment(cost)
        assert assignment_total(cost, assignment) == pytest.approx(
            cost[rows, cols].sum(), rel=1e-9, abs=1e-9
        )


class TestMaximumWeight:
    def test_eq11_semantics(self):
        # w[k, j]: new cluster k matched to historical index j.
        weights = np.array(
            [[10.0, 0.0, 0.0], [0.0, 0.0, 9.0], [0.0, 8.0, 0.0]]
        )
        phi = maximum_weight_assignment(weights)
        np.testing.assert_array_equal(phi, [0, 2, 1])

    def test_matches_scipy_maximize(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            n = int(rng.integers(2, 12))
            weights = rng.random((n, n)) * 5
            phi = maximum_weight_assignment(weights)
            rows, cols = linear_sum_assignment(weights, maximize=True)
            assert assignment_total(weights, phi) == pytest.approx(
                weights[rows, cols].sum()
            )

    def test_tie_still_valid_permutation(self):
        weights = np.ones((4, 4))
        phi = maximum_weight_assignment(weights)
        assert sorted(phi.tolist()) == [0, 1, 2, 3]

    def test_integer_counts(self):
        # Similarity measures are integer node counts (Eq. 10).
        weights = np.array([[3, 1], [2, 2]], dtype=float)
        phi = maximum_weight_assignment(weights)
        assert assignment_total(weights, phi) == 5.0
