"""Tests for the unified Engine API (repro.api) and config round-trips.

The deprecated entry points (`run_pipeline`, `MonitoringSystem`) are
pinned bit-identical to `Engine.run` / `Engine.step` here.
"""

import json

import numpy as np
import pytest

from repro.api import Engine, RunResult
from repro.core.config import (
    ClusteringConfig,
    ForecastingConfig,
    PipelineConfig,
    TransmissionConfig,
)
from repro.core.pipeline import PipelineResult, run_pipeline
from repro.exceptions import ConfigurationError, DataError
from repro.simulation.system import MonitoringSystem


def config(budget=0.3, initial=20, horizon=2, clusters=2):
    return PipelineConfig(
        transmission=TransmissionConfig(budget=budget),
        clustering=ClusteringConfig(num_clusters=clusters, seed=0),
        forecasting=ForecastingConfig(
            model="sample_hold",
            max_horizon=horizon,
            initial_collection=initial,
            retrain_interval=initial,
        ),
    )


def walk_trace(steps=60, nodes=6, seed=0):
    rng = np.random.default_rng(seed)
    return np.clip(
        0.5 + np.cumsum(rng.normal(0, 0.03, (steps, nodes)), axis=0), 0, 1
    )


class TestEngineBatchEquivalence:
    """Engine.run reproduces the deprecated run_pipeline bit-identically."""

    @pytest.mark.parametrize(
        "collection", ["adaptive", "uniform", "perfect"]
    )
    def test_run_matches_run_pipeline(self, collection):
        trace = walk_trace(seed=7)
        cfg = config()
        with pytest.deprecated_call():
            old = run_pipeline(trace, cfg, collection=collection)
        new = Engine(cfg, collection=collection).run(trace)
        assert old.rmse_by_horizon == new.rmse_by_horizon
        assert old.intermediate_rmse == new.intermediate_rmse
        assert old.forecast_start == new.forecast_start
        np.testing.assert_array_equal(old.stored, new.stored)
        np.testing.assert_array_equal(old.decisions, new.decisions)

    def test_run_pipeline_returns_runresult(self):
        trace = walk_trace(steps=30)
        with pytest.deprecated_call():
            result = run_pipeline(trace, config())
        assert isinstance(result, RunResult)
        assert isinstance(result, PipelineResult)

    def test_run_with_horizons_subset(self):
        trace = walk_trace(seed=1)
        cfg = config(horizon=3)
        result = Engine(cfg).run(trace, horizons=[0, 2])
        assert set(result.rmse_by_horizon) == {0, 2}

    def test_run_horizon_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Engine(config(horizon=2)).run(walk_trace(), horizons=[5])

    def test_perfect_collection_zero_staleness(self):
        result = Engine(config(), collection="perfect").run(walk_trace())
        assert result.rmse_by_horizon[0] == 0.0

    def test_unknown_collection_fails_fast_with_suggestion(self):
        with pytest.raises(ConfigurationError, match="adaptive"):
            Engine(config(), collection="adaptve")

    def test_runs_are_independent(self):
        engine = Engine(config())
        trace = walk_trace(seed=2)
        a = engine.run(trace)
        b = engine.run(trace)
        assert a.rmse_by_horizon == b.rmse_by_horizon


class TestRunResult:
    def test_carries_provenance(self):
        cfg = config()
        result = Engine(cfg, collection="uniform").run(walk_trace())
        assert result.config is cfg
        assert result.collection == "uniform"
        # Vectorized backends do not account transport themselves; the
        # engine derives the counters from the decision matrix.
        assert result.transport is not None
        assert result.transport.messages == int(result.decisions.sum())
        assert result.fleet is not None
        assert result.shards == 1

    def test_timings_cover_all_stages(self):
        result = Engine(config()).run(walk_trace())
        for stage in (
            "collection", "clustering", "training", "forecasting",
            "metrics", "total",
        ):
            assert stage in result.timings
            assert result.timings[stage] >= 0.0
        assert result.timings["total"] >= result.timings["collection"]

    def test_summary_is_printable(self):
        result = Engine(config()).run(walk_trace())
        text = result.summary()
        assert "RMSE" in text
        assert "timings" in text


class TestEngineStreamingEquivalence:
    """Engine.step reproduces the deprecated MonitoringSystem.tick."""

    def test_step_matches_tick(self):
        trace = walk_trace(seed=3)
        cfg = config(initial=15)
        with pytest.deprecated_call():
            system = MonitoringSystem(6, 1, cfg)
        engine = Engine(cfg, num_nodes=6, num_resources=1)
        for t in range(60):
            old = system.tick(trace[t])
            new = engine.step(trace[t])
            np.testing.assert_array_equal(old.stored, new.stored)
            if old.node_forecasts is None:
                assert new.node_forecasts is None
            else:
                for h in old.node_forecasts:
                    np.testing.assert_array_equal(
                        old.node_forecasts[h], new.node_forecasts[h]
                    )
        assert system.transport_stats.messages == (
            engine.transport_stats.messages
        )
        assert system.empirical_frequency == engine.empirical_frequency

    def test_monitoring_system_delegates_to_engine(self):
        with pytest.deprecated_call():
            system = MonitoringSystem(4, 1, config())
        assert system.pipeline is system.engine.pipeline
        assert system.store is system.engine.store
        assert len(system.nodes) == 4

    def test_dimensions_inferred_from_first_step(self):
        engine = Engine(config())
        assert engine.pipeline is None
        engine.step(np.zeros(5))
        assert len(engine.nodes) == 5
        assert engine.store.dimension == 1
        assert engine.time == 1

    def test_wrong_shape_rejected(self):
        engine = Engine(config(), num_nodes=4, num_resources=1)
        with pytest.raises(DataError):
            engine.step(np.zeros(3))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            Engine(config(), num_nodes=0, num_resources=1)
        with pytest.raises(ConfigurationError):
            Engine(config(), num_nodes=4)  # one of the pair missing

    def test_streaming_policy_by_name(self):
        from repro.transmission.uniform import UniformTransmissionPolicy

        engine = Engine(
            config(), policy="uniform", num_nodes=3, num_resources=1
        )
        assert all(
            isinstance(node.policy, UniformTransmissionPolicy)
            for node in engine.nodes
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="transmission policy"):
            Engine(config(), policy="morse")


class TestConfigRoundTrip:
    def test_to_dict_from_dict_identity(self):
        cfg = PipelineConfig.small(num_clusters=4, budget=0.2)
        assert PipelineConfig.from_dict(cfg.to_dict()) == cfg

    def test_json_round_trip(self):
        cfg = PipelineConfig(
            forecasting=ForecastingConfig(model="ar", seed=3),
        )
        payload = json.dumps(cfg.to_dict())
        assert PipelineConfig.from_dict(json.loads(payload)) == cfg

    def test_missing_sections_use_defaults(self):
        cfg = PipelineConfig.from_dict({"transmission": {"budget": 0.5}})
        assert cfg.transmission.budget == 0.5
        assert cfg.clustering == ClusteringConfig()
        assert cfg.forecasting == ForecastingConfig()

    def test_unknown_section_rejected_with_suggestion(self):
        with pytest.raises(ConfigurationError, match="forecasting"):
            PipelineConfig.from_dict({"forecastng": {}})

    def test_unknown_option_rejected_with_suggestion(self):
        with pytest.raises(ConfigurationError, match="budget"):
            PipelineConfig.from_dict({"transmission": {"budgett": 0.1}})

    def test_invalid_values_still_validated(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig.from_dict({"transmission": {"budget": 2.0}})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig.from_dict([1, 2, 3])
        with pytest.raises(ConfigurationError):
            PipelineConfig.from_dict({"transmission": 7})


class TestEngineFromConfig:
    def test_from_pipeline_config(self):
        cfg = config()
        assert Engine.from_config(cfg).config is cfg

    def test_from_mapping(self):
        engine = Engine.from_config(
            {"forecasting": {"model": "ses"}}, collection="perfect"
        )
        assert engine.config.forecasting.model == "ses"
        assert engine.collection == "perfect"

    def test_from_json_file(self, tmp_path):
        cfg = PipelineConfig.small(initial_collection=25, retrain_interval=25)
        path = tmp_path / "config.json"
        path.write_text(json.dumps(cfg.to_dict()))
        engine = Engine.from_config(path)
        assert engine.config == cfg
        result = engine.run(walk_trace(steps=40, nodes=5))
        assert 0 in result.rmse_by_horizon

    def test_bad_config_type_rejected(self):
        with pytest.raises(ConfigurationError):
            Engine(42)


class TestPipelineGroups:
    def test_groups_scalar_clustering(self):
        from repro.core.pipeline import OnlinePipeline

        pipeline = OnlinePipeline(5, 3, config())
        assert pipeline.groups == ((0,), (1,), (2,))

    def test_groups_joint_clustering(self):
        from repro.core.pipeline import OnlinePipeline

        cfg = PipelineConfig(
            clustering=ClusteringConfig(
                num_clusters=2, scalar_per_resource=False, seed=0
            ),
            forecasting=ForecastingConfig(
                model="sample_hold", initial_collection=10,
                retrain_interval=10,
            ),
        )
        pipeline = OnlinePipeline(5, 3, cfg)
        assert pipeline.groups == ((0, 1, 2),)

    def test_groups_is_read_only_copy(self):
        from repro.core.pipeline import OnlinePipeline

        pipeline = OnlinePipeline(5, 2, config())
        groups = pipeline.groups
        assert isinstance(groups, tuple)
        # Mutating the returned value cannot corrupt pipeline state.
        assert pipeline.groups == ((0,), (1,))
