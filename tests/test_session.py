"""Tests for the stateful serving API (repro.session.StreamSession).

Pins the vectorized slot-kernel hot path **bit-identical** to the
faithful per-node object loop on randomized traces (hypothesis), and
covers the documented partial-slot and late-arrival semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine
from repro.core.config import (
    ClusteringConfig,
    ForecastingConfig,
    PipelineConfig,
    TransmissionConfig,
)
from repro.exceptions import (
    ConfigurationError,
    DataError,
    NotFittedError,
)
from repro.session import StreamSession
from repro.simulation.transport import TransportStats

POLICIES = ("adaptive", "uniform", "deadband", "perfect")


def config(budget=0.3, initial=15, horizon=2, clusters=2, model="sample_hold"):
    return PipelineConfig(
        transmission=TransmissionConfig(budget=budget),
        clustering=ClusteringConfig(num_clusters=clusters, seed=0),
        forecasting=ForecastingConfig(
            model=model,
            max_horizon=horizon,
            initial_collection=initial,
            retrain_interval=initial,
        ),
    )


def walk_trace(steps=40, nodes=6, dims=1, seed=0):
    rng = np.random.default_rng(seed)
    trace = np.clip(
        0.5 + np.cumsum(rng.normal(0, 0.04, (steps, nodes, dims)), axis=0),
        0, 1,
    )
    return trace[:, :, 0] if dims == 1 else trace


def assert_outputs_equal(a, b):
    np.testing.assert_array_equal(a.stored, b.stored)
    assert len(a.assignments) == len(b.assignments)
    for x, y in zip(a.assignments, b.assignments):
        np.testing.assert_array_equal(x.labels, y.labels)
        np.testing.assert_array_equal(x.centroids, y.centroids)
    assert (a.node_forecasts is None) == (b.node_forecasts is None)
    if a.node_forecasts is not None:
        assert set(a.node_forecasts) == set(b.node_forecasts)
        for h in a.node_forecasts:
            np.testing.assert_array_equal(
                a.node_forecasts[h], b.node_forecasts[h]
            )


class TestVectorizedObjectEquivalence:
    """The slot-kernel path is bit-identical to the per-node loop."""

    @pytest.mark.parametrize("policy", POLICIES)
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_full_slots_bit_identical(self, policy, seed):
        cfg = config()
        trace = walk_trace(steps=30, seed=seed)
        fast = StreamSession(cfg, 6, 1, policy=policy, vectorized=True)
        slow = StreamSession(cfg, 6, 1, policy=policy, vectorized=False)
        assert fast.vectorized and not slow.vectorized
        for t in range(trace.shape[0]):
            assert_outputs_equal(fast.ingest(trace[t]), slow.ingest(trace[t]))
        assert fast.transport_stats.messages == slow.transport_stats.messages
        assert (
            fast.transport_stats.payload_floats
            == slow.transport_stats.payload_floats
        )
        np.testing.assert_array_equal(
            fast.fleet.message_counts, slow.fleet.message_counts
        )
        np.testing.assert_array_equal(
            fast.fleet.last_update, slow.fleet.last_update
        )
        np.testing.assert_array_equal(fast.fleet.times, slow.fleet.times)
        if policy in ("adaptive", "uniform"):
            np.testing.assert_array_equal(
                fast.fleet.policy_state,
                [node.policy.fleet_scalar_state for node in slow.nodes],
            )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_partial_slots_bit_identical(self, seed):
        cfg = config()
        rng = np.random.default_rng(seed)
        trace = walk_trace(steps=25, nodes=8, seed=seed)
        fast = StreamSession(cfg, 8, 1, vectorized=True)
        slow = StreamSession(cfg, 8, 1, vectorized=False)
        for t in range(trace.shape[0]):
            present = rng.random(8) < 0.7
            ids = np.flatnonzero(present)
            if ids.size == 0:
                ids = np.asarray([int(rng.integers(8))])
            a = fast.ingest(trace[t][ids], node_ids=ids)
            b = slow.ingest(trace[t][ids], node_ids=ids)
            assert_outputs_equal(a, b)
        assert fast.transport_stats.messages == slow.transport_stats.messages
        np.testing.assert_array_equal(fast.fleet.times, slow.fleet.times)
        np.testing.assert_array_equal(
            fast.fleet.policy_state,
            [node.policy.fleet_scalar_state for node in slow.nodes],
        )

    def test_multiresource_bit_identical(self):
        cfg = config()
        trace = walk_trace(steps=25, nodes=5, dims=3, seed=3)
        fast = StreamSession(cfg, 5, 3, vectorized=True)
        slow = StreamSession(cfg, 5, 3, vectorized=False)
        for t in range(trace.shape[0]):
            assert_outputs_equal(fast.ingest(trace[t]), slow.ingest(trace[t]))


class TestEngineStepShim:
    def test_step_is_a_session_slot(self):
        cfg = config()
        trace = walk_trace(seed=5)
        engine = Engine(cfg, num_nodes=6, num_resources=1)
        session = Engine(cfg).session(6, 1)
        for t in range(trace.shape[0]):
            assert_outputs_equal(
                engine.step(trace[t]), session.ingest(trace[t])
            )
        assert engine.time == session.time
        assert engine.transport_stats.messages == (
            session.transport_stats.messages
        )
        assert engine.empirical_frequency == session.empirical_frequency

    def test_step_uses_vectorized_default_session(self):
        engine = Engine(config())
        engine.step(np.zeros(4))
        assert engine._session.vectorized

    def test_resume_becomes_default_session(self, tmp_path):
        cfg = config()
        trace = walk_trace(seed=6)
        engine = Engine(cfg, num_nodes=6, num_resources=1)
        for t in range(20):
            engine.step(trace[t])
        path = engine._session.save(tmp_path / "ck.npz")
        other = Engine(cfg)
        resumed = other.resume(path)
        assert other._session is resumed
        assert other.time == 20
        reference = Engine(cfg, num_nodes=6, num_resources=1)
        for t in range(20):
            reference.step(trace[t])
        assert_outputs_equal(other.step(trace[20]), reference.step(trace[20]))


class TestStepOutputAlignment:
    """StepOutput carries per-slot transport deltas and timings."""

    def test_transport_delta_and_timings(self):
        session = Engine(config()).session(6, 1)
        trace = walk_trace(seed=7)
        total_messages = 0
        for t in range(20):
            output = session.ingest(trace[t])
            assert isinstance(output.transport, TransportStats)
            assert output.transport.messages <= 6  # this slot only
            total_messages += output.transport.messages
            assert output.transport.payload_floats == (
                output.transport.messages * 1
            )
            for stage in (
                "collection", "clustering", "training", "forecasting",
                "total",
            ):
                assert stage in output.timings
                assert output.timings[stage] >= 0.0
            assert output.timings["total"] >= output.timings["collection"]
        assert total_messages == session.transport_stats.messages

    def test_pipeline_only_step_leaves_fields_none(self):
        from repro.core.pipeline import OnlinePipeline

        pipeline = OnlinePipeline(4, 1, config())
        output = pipeline.step(np.zeros(4))
        assert output.transport is None
        assert output.timings is None


class TestPartialIngestion:
    def test_absent_nodes_keep_stored_values(self):
        session = Engine(config()).session(4, 1)
        session.ingest(np.asarray([0.1, 0.2, 0.3, 0.4]))
        before = session.fleet.stored.copy()
        output = session.ingest(np.asarray([0.9]), node_ids=[0])
        # Nodes 1..3 did not report: staleness keeps their values.
        np.testing.assert_array_equal(output.stored[1:], before[1:])
        assert session.time == 2

    def test_only_active_nodes_advance_clocks(self):
        session = Engine(config()).session(4, 1)
        session.ingest(np.asarray([0.1, 0.2, 0.3, 0.4]))
        session.ingest(np.asarray([0.5, 0.6]), node_ids=[1, 3])
        np.testing.assert_array_equal(
            session.fleet.times, np.asarray([1, 2, 1, 2])
        )

    def test_never_reporting_node_stays_zero(self):
        session = Engine(config()).session(3, 1)
        output = session.ingest(np.asarray([0.7, 0.8]), node_ids=[0, 1])
        assert output.stored[2, 0] == 0.0
        assert not session.fleet.observed[2]

    def test_duplicate_ids_rejected(self):
        session = Engine(config()).session(4, 1)
        with pytest.raises(DataError, match="duplicate"):
            session.ingest(np.asarray([0.1, 0.2]), node_ids=[1, 1])

    def test_out_of_range_ids_rejected(self):
        session = Engine(config()).session(4, 1)
        with pytest.raises(DataError, match="node_ids"):
            session.ingest(np.asarray([0.1]), node_ids=[4])

    def test_row_count_mismatch_rejected(self):
        session = Engine(config()).session(4, 1)
        with pytest.raises(DataError, match="node_ids"):
            session.ingest(np.asarray([0.1, 0.2]), node_ids=[1])

    def test_partial_without_ids_rejected(self):
        session = Engine(config()).session(4, 1)
        with pytest.raises(DataError, match="full slot"):
            session.ingest(np.asarray([0.1, 0.2]))

    def test_non_finite_rejected(self):
        session = Engine(config()).session(2, 1)
        with pytest.raises(DataError, match="finite"):
            session.ingest(np.asarray([0.1, np.nan]))


class TestLateArrivals:
    def make(self, reorder_window=2):
        session = Engine(config()).session(4, 1, reorder_window=reorder_window)
        session.ingest(np.asarray([0.1, 0.2, 0.3, 0.4]))
        session.ingest(np.asarray([0.5, 0.6]), node_ids=[0, 1])
        return session  # frontier at 2; nodes 2,3 last heard at slot 0

    def test_late_within_window_applied(self):
        session = self.make()
        messages = session.transport_stats.messages
        result = session.ingest(np.asarray([0.9]), node_ids=[2], t=1)
        assert result is None  # late arrivals close no slot
        assert session.late_applied == 1
        assert session.late_dropped == 0
        assert session.fleet.stored[2, 0] == 0.9
        assert session.fleet.last_update[2] == 1
        assert session.transport_stats.messages == messages + 1
        # The applied value is what the next frontier slot clusters on.
        output = session.ingest(np.asarray([0.7]), node_ids=[0])
        assert output.stored[2, 0] == 0.9

    def test_late_superseded_dropped(self):
        session = self.make()
        # The store last heard from node 0 at slot >= 0, so slot-0 data
        # is not newer: dropped, store untouched.
        before = session.fleet.stored[0, 0]
        session.ingest(np.asarray([0.99]), node_ids=[0], t=0)
        assert session.late_applied == 0
        assert session.late_dropped == 1
        assert session.fleet.stored[0, 0] == before

    def test_late_outside_window_dropped(self):
        session = self.make(reorder_window=1)
        session.ingest(np.asarray([0.9]), node_ids=[2], t=0)
        assert session.late_applied == 0
        assert session.late_dropped == 1
        assert session.fleet.stored[2, 0] == 0.3

    def test_default_window_drops_everything_late(self):
        session = Engine(config()).session(2, 1)
        session.ingest(np.asarray([0.1, 0.2]))
        session.ingest(np.asarray([0.3, 0.4]))
        session.ingest(np.asarray([0.9]), node_ids=[0], t=1)
        assert session.late_applied == 0
        assert session.late_dropped == 1

    def test_future_slot_rejected(self):
        session = Engine(config()).session(2, 1)
        with pytest.raises(DataError, match="frontier"):
            session.ingest(np.asarray([0.1]), node_ids=[0], t=3)

    def test_late_policy_state_untouched(self):
        session = self.make()
        state = session.fleet.policy_state.copy()
        times = session.fleet.times.copy()
        session.ingest(np.asarray([0.9]), node_ids=[2], t=1)
        np.testing.assert_array_equal(session.fleet.policy_state, state)
        np.testing.assert_array_equal(session.fleet.times, times)


class TestForecastOnDemand:
    def test_before_forecasting_raises(self):
        session = Engine(config(initial=50)).session(3, 1)
        session.ingest(np.asarray([0.1, 0.2, 0.3]))
        with pytest.raises(NotFittedError, match="collection phase"):
            session.forecast()

    def test_horizon_selection(self):
        cfg = config(initial=10, horizon=3)
        session = Engine(cfg).session(4, 1)
        trace = walk_trace(steps=15, nodes=4, seed=9)
        for t in range(15):
            session.ingest(trace[t])
        everything = session.forecast()
        assert set(everything) == {1, 2, 3}
        subset = session.forecast(horizons=[2])
        assert set(subset) == {2}
        np.testing.assert_array_equal(subset[2], everything[2])
        assert subset[2].shape == (4, 1)
        with pytest.raises(DataError, match="horizon"):
            session.forecast(horizons=[7])


class TestSessionConstruction:
    def test_vectorized_needs_kernel(self):
        from repro.transmission.uniform import UniformTransmissionPolicy

        with pytest.raises(ConfigurationError, match="slot kernel"):
            StreamSession(
                config(), 3, 1,
                policy_factory=lambda i: UniformTransmissionPolicy(0.3),
                vectorized=True,
            )

    def test_custom_policy_factory_falls_back_to_objects(self):
        from repro.transmission.uniform import UniformTransmissionPolicy

        session = StreamSession(
            config(), 3, 1,
            policy_factory=lambda i: UniformTransmissionPolicy(
                0.5, phase=i / 3
            ),
        )
        assert not session.vectorized
        session.ingest(np.asarray([0.1, 0.2, 0.3]))
        assert session.transport_stats.messages == 3

    def test_nodes_are_column_views(self):
        session = Engine(config()).session(3, 1)
        session.ingest(np.asarray([0.1, 0.2, 0.3]))
        nodes = session.nodes
        assert len(nodes) == 3
        assert nodes[1].fleet is session.fleet
        assert nodes[1].stored_value[0] == 0.2

    def test_sessions_are_independent(self):
        engine = Engine(config())
        a = engine.session(3, 1)
        b = engine.session(3, 1)
        a.ingest(np.asarray([0.1, 0.2, 0.3]))
        assert a.time == 1
        assert b.time == 0
        assert b.transport_stats.messages == 0

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamSession(config(), 0, 1)
        with pytest.raises(ConfigurationError):
            StreamSession(config(), 3, 1, reorder_window=-1)

    def test_engine_session_requires_dims(self):
        with pytest.raises(ConfigurationError, match="num_nodes"):
            Engine(config()).session()

    def test_engine_session_inherits_dims(self):
        engine = Engine(config(), num_nodes=5, num_resources=2)
        session = engine.session()
        assert (session.num_nodes, session.num_resources) == (5, 2)
