"""Sharded-execution equivalence: shards>1 is bit-identical to one shard.

The collection stage partitions the fleet into contiguous node shards
(optionally across a process pool); clustering and forecasting run on
the merged ``z_t`` matrix, so every downstream number must be exactly
the single-shard run's.
"""

import json

import numpy as np
import pytest

from repro.api import Engine
from repro.cli import main as cli_main
from repro.core.config import PipelineConfig
from repro.exceptions import ConfigurationError


def small_config(**overrides):
    params = dict(
        num_clusters=2,
        budget=0.3,
        max_horizon=2,
        initial_collection=25,
        retrain_interval=25,
    )
    params.update(overrides)
    return PipelineConfig.small(**params)


def walk_trace(steps=90, nodes=13, seed=0, dim=None):
    rng = np.random.default_rng(seed)
    shape = (steps, nodes) if dim is None else (steps, nodes, dim)
    return np.clip(0.5 + np.cumsum(rng.normal(0, 0.03, shape), axis=0), 0, 1)


class TestShardedEquivalence:
    @pytest.mark.parametrize(
        "backend", ["adaptive", "uniform", "perfect", "deadband"]
    )
    @pytest.mark.parametrize("shards", [2, 5])
    def test_bit_identical_to_single_shard(self, backend, shards):
        trace = walk_trace(seed=3)
        cfg = small_config()
        single = Engine(cfg, collection=backend).run(trace)
        sharded = Engine(cfg, collection=backend).run(trace, shards=shards)
        np.testing.assert_array_equal(single.stored, sharded.stored)
        np.testing.assert_array_equal(single.decisions, sharded.decisions)
        assert single.rmse_by_horizon == sharded.rmse_by_horizon
        assert single.intermediate_rmse == sharded.intermediate_rmse
        assert single.forecast_start == sharded.forecast_start
        assert sharded.shards == shards

    def test_multiresource_sharding(self):
        trace = walk_trace(steps=60, nodes=9, seed=5, dim=2)
        cfg = small_config()
        single = Engine(cfg).run(trace)
        sharded = Engine(cfg).run(trace, shards=4)
        np.testing.assert_array_equal(single.stored, sharded.stored)
        assert single.rmse_by_horizon == sharded.rmse_by_horizon

    def test_process_pool_matches_serial(self):
        trace = walk_trace(steps=60, nodes=8, seed=7)
        cfg = small_config()
        serial = Engine(cfg).run(trace, shards=4)
        pooled = Engine(cfg).run(trace, shards=4, workers=2)
        np.testing.assert_array_equal(serial.stored, pooled.stored)
        np.testing.assert_array_equal(serial.decisions, pooled.decisions)
        assert serial.rmse_by_horizon == pooled.rmse_by_horizon

    def test_shards_equal_to_fleet_size(self):
        trace = walk_trace(steps=40, nodes=5, seed=9)
        cfg = small_config()
        single = Engine(cfg).run(trace)
        sharded = Engine(cfg).run(trace, shards=5)
        np.testing.assert_array_equal(single.stored, sharded.stored)


class TestShardedProvenance:
    def test_transport_reduction_matches_decisions(self):
        trace = walk_trace(seed=11)
        result = Engine(small_config()).run(trace, shards=3)
        assert result.transport is not None
        assert result.transport.messages == int(result.decisions.sum())
        assert result.transport.payload_floats == int(result.decisions.sum())
        per_node = result.decisions.sum(axis=0)
        assert result.transport.per_node_messages == {
            i: int(c) for i, c in enumerate(per_node) if c
        }

    def test_fleet_snapshot_single_and_sharded(self):
        trace = walk_trace(seed=13)
        for shards in (1, 4):
            result = Engine(small_config()).run(trace, shards=shards)
            # Transport provenance is populated whether or not the run
            # was sharded (derived from the decisions either way).
            assert result.transport.messages == int(result.decisions.sum())
            fleet = result.fleet
            assert fleet is not None
            assert fleet.num_nodes == trace.shape[1]
            np.testing.assert_array_equal(
                fleet.stored, result.stored[-1]
            )
            np.testing.assert_array_equal(
                fleet.message_counts, result.decisions.sum(axis=0)
            )
            np.testing.assert_array_equal(
                fleet.times, np.full(trace.shape[1], trace.shape[0])
            )
            # Policy accumulators are explicitly untracked in
            # trace-level snapshots — NaN, never stale zeros.
            assert np.isnan(fleet.policy_state).all()
            # last_update is each node's last transmitting slot.
            for i in range(trace.shape[1]):
                sent = np.flatnonzero(result.decisions[:, i])
                expected = sent[-1] if sent.size else -1
                assert fleet.last_update[i] == expected

    def test_sharded_fleet_counts_share_transport_array(self):
        result = Engine(small_config()).run(walk_trace(seed=17), shards=2)
        assert (
            result.transport.per_node_messages
            == {
                i: int(c)
                for i, c in enumerate(result.fleet.message_counts)
                if c
            }
        )


class TestShardingValidation:
    def test_invalid_shards(self):
        trace = walk_trace(steps=20, nodes=4)
        with pytest.raises(ConfigurationError):
            Engine(small_config()).run(trace, shards=0)
        with pytest.raises(ConfigurationError):
            Engine(small_config()).run(trace, shards=5)  # > num_nodes

    def test_invalid_workers(self):
        trace = walk_trace(steps=20, nodes=4)
        with pytest.raises(ConfigurationError):
            Engine(small_config()).run(trace, shards=2, workers=0)

    def test_workers_require_sharding(self):
        # workers without shards would otherwise be silently ignored.
        trace = walk_trace(steps=20, nodes=4)
        with pytest.raises(ConfigurationError, match="shards"):
            Engine(small_config()).run(trace, workers=4)


class TestShardedCli:
    def _config_path(self, tmp_path):
        path = tmp_path / "config.json"
        cfg = small_config()
        path.write_text(json.dumps(cfg.to_dict()))
        return str(path)

    def test_run_config_with_shards(self, tmp_path, capsys):
        code = cli_main([
            "run", "--config", self._config_path(tmp_path),
            "--nodes", "8", "--steps", "80", "--shards", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 shards" in out
        assert "RMSE" in out

    def test_shards_require_config_mode(self, tmp_path, capsys):
        code = cli_main(["run", "fig3_transmission", "--shards", "2"])
        assert code == 2
        assert "--config" in capsys.readouterr().err

    def test_invalid_shards_is_a_clean_error(self, tmp_path, capsys):
        code = cli_main([
            "run", "--config", self._config_path(tmp_path),
            "--nodes", "4", "--steps", "40", "--shards", "9",
        ])
        assert code == 2
        assert "shards" in capsys.readouterr().err
