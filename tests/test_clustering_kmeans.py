"""Tests for the from-scratch K-means implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.clustering.kmeans import kmeans, kmeans_plus_plus_init
from repro.exceptions import ConfigurationError, DataError


def well_separated(rng, centers, per_cluster=20, spread=0.02):
    points = []
    for c in centers:
        points.append(rng.normal(c, spread, size=(per_cluster, len(c))))
    return np.vstack(points)


class TestKMeans:
    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(0)
        data = well_separated(rng, [[0.1], [0.5], [0.9]])
        result = kmeans(data, 3, rng=rng)
        recovered = np.sort(result.centroids[:, 0])
        np.testing.assert_allclose(recovered, [0.1, 0.5, 0.9], atol=0.02)

    def test_labels_match_nearest_centroid(self):
        rng = np.random.default_rng(1)
        data = rng.random((40, 2))
        result = kmeans(data, 4, rng=rng)
        dist = np.linalg.norm(
            data[:, None, :] - result.centroids[None, :, :], axis=2
        )
        np.testing.assert_array_equal(result.labels, np.argmin(dist, axis=1))

    def test_inertia_matches_labels(self):
        rng = np.random.default_rng(2)
        data = rng.random((30, 2))
        result = kmeans(data, 3, rng=rng)
        manual = sum(
            np.sum((data[i] - result.centroids[result.labels[i]]) ** 2)
            for i in range(30)
        )
        assert result.inertia == pytest.approx(manual)

    def test_k_equals_n(self):
        rng = np.random.default_rng(3)
        data = rng.random((6, 1))
        result = kmeans(data, 6, rng=rng)
        # Every point is its own cluster => zero inertia.
        assert result.inertia == pytest.approx(0.0, abs=1e-12)
        assert len(set(result.labels.tolist())) == 6

    def test_k_one(self):
        rng = np.random.default_rng(4)
        data = rng.random((20, 3))
        result = kmeans(data, 1, rng=rng)
        np.testing.assert_allclose(result.centroids[0], data.mean(axis=0))

    def test_identical_points(self):
        data = np.full((10, 2), 0.5)
        result = kmeans(data, 3, rng=np.random.default_rng(5))
        assert result.inertia == pytest.approx(0.0)
        assert result.centroids.shape == (3, 2)

    def test_1d_input_promoted(self):
        result = kmeans(np.array([0.1, 0.11, 0.9, 0.91]), 2,
                        rng=np.random.default_rng(6))
        assert result.centroids.shape == (2, 1)

    def test_k_greater_than_n_rejected(self):
        with pytest.raises(ConfigurationError):
            kmeans(np.zeros((3, 1)), 4)

    def test_k_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            kmeans(np.zeros((3, 1)), 0)

    def test_3d_input_rejected(self):
        with pytest.raises(DataError):
            kmeans(np.zeros((3, 2, 2)), 2)

    def test_warm_start_shape_check(self):
        with pytest.raises(ConfigurationError):
            kmeans(
                np.zeros((5, 2)), 2,
                initial_centroids=np.zeros((3, 2)),
                rng=np.random.default_rng(0),
            )

    def test_warm_start_converges(self):
        rng = np.random.default_rng(7)
        data = well_separated(rng, [[0.2], [0.8]])
        warm = np.array([[0.25], [0.75]])
        result = kmeans(data, 2, initial_centroids=warm, rng=rng)
        np.testing.assert_allclose(
            np.sort(result.centroids[:, 0]), [0.2, 0.8], atol=0.02
        )

    def test_deterministic_given_rng(self):
        data = np.random.default_rng(8).random((30, 2))
        r1 = kmeans(data, 3, rng=np.random.default_rng(42))
        r2 = kmeans(data, 3, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(r1.labels, r2.labels)

    @given(
        arrays(
            float, st.tuples(st.integers(5, 25), st.integers(1, 3)),
            elements=st.floats(0, 1, allow_nan=False),
        ),
        st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_invariants(self, data, k):
        k = min(k, data.shape[0])
        result = kmeans(data, k, rng=np.random.default_rng(0))
        # Every cluster id in range; no empty clusters after repair when
        # there are at least k distinct points.
        assert result.labels.min() >= 0
        assert result.labels.max() < k
        assert result.centroids.shape == (k, data.shape[1])
        assert result.inertia >= 0
        if len(np.unique(data, axis=0)) >= k:
            assert len(set(result.labels.tolist())) == k


class TestKMeansPlusPlus:
    def test_selects_k_points(self):
        rng = np.random.default_rng(0)
        data = rng.random((20, 2))
        centroids = kmeans_plus_plus_init(data, 5, rng)
        assert centroids.shape == (5, 2)

    def test_duplicate_data_does_not_crash(self):
        data = np.full((8, 1), 0.3)
        centroids = kmeans_plus_plus_init(data, 3, np.random.default_rng(0))
        assert centroids.shape == (3, 1)

    def test_spread_selection_prefers_far_points(self):
        # Two tight blobs far apart: with K=2 the two seeds should land
        # in different blobs almost surely.
        rng = np.random.default_rng(1)
        data = np.vstack([
            rng.normal(0.0, 0.001, size=(50, 1)),
            rng.normal(1.0, 0.001, size=(50, 1)),
        ])
        hits = 0
        for seed in range(20):
            seeds = kmeans_plus_plus_init(data, 2, np.random.default_rng(seed))
            if abs(seeds[0, 0] - seeds[1, 0]) > 0.5:
                hits += 1
        assert hits >= 18
