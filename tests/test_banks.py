"""The columnar model layer: banks vs loops of scalar forecasters.

Every vectorized bank is pinned **bit-identical** to a loop of the
existing scalar forecasters over random ``(T, M, d)`` centroid tensors
— fit, transient updates and multi-horizon forecasts — via hypothesis.
The ObjectBank adapter, the pipeline's hold-last-centroid fallback and
the registry/config resolution rules are covered alongside.
"""

import logging

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import (
    ClusteringConfig,
    ForecastingConfig,
    PipelineConfig,
)
from repro.core.pipeline import OnlinePipeline
from repro.exceptions import (
    ConfigurationError,
    DataError,
    NotFittedError,
    ReproError,
)
from repro.forecasting.bank import (
    BankForecastError,
    ExponentialBank,
    ForecasterBank,
    MeanBank,
    ObjectBank,
    SampleHoldBank,
    YuleWalkerBank,
    default_forecaster_factory,
    resolve_bank,
    resolved_bank_name,
)
from repro.forecasting.exponential import SimpleExponentialSmoothing
from repro.forecasting.sample_hold import MeanForecaster, SampleHoldForecaster
from repro.forecasting.yule_walker import YuleWalkerAR
from repro.registry import FORECASTER_BANKS


def centroid_tensor(seed, steps, clusters, dim):
    """A random-walk centroid tensor, the shape banks consume."""
    rng = np.random.default_rng(seed)
    walk = np.cumsum(rng.normal(0, 0.05, size=(steps, clusters, dim)), axis=0)
    return 0.5 + walk


def scalar_loop(make_forecaster, series, updates, horizon):
    """Drive one scalar forecaster per (cluster, dim) series.

    Returns the ``(H, M, d)`` forecasts of the object path — the
    pre-bank reference the vectorized banks must match bitwise.
    """
    steps, clusters, dim = series.shape
    out = np.empty((horizon, clusters, dim))
    for j in range(clusters):
        for r in range(dim):
            model = make_forecaster()
            model.fit(series[:, j, r])
            for values in updates:
                model.update(float(values[j, r]))
            out[:, j, r] = model.forecast(horizon)
    return out


def drive_bank(bank, series, updates, horizon):
    bank.fit(series)
    for values in updates:
        bank.update(values)
    return bank.forecast(horizon)


class TestVectorizedBankEquivalence:
    """Vectorized banks are bit-identical to scalar-forecaster loops."""

    @given(st.integers(0, 10_000), st.integers(1, 5), st.integers(1, 3),
           st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_sample_hold(self, seed, clusters, dim, num_updates):
        series = centroid_tensor(seed, 6, clusters, dim)
        updates = centroid_tensor(seed + 1, max(num_updates, 1), clusters,
                                  dim)[:num_updates]
        expected = scalar_loop(SampleHoldForecaster, series, updates, 4)
        actual = drive_bank(SampleHoldBank(clusters, dim), series, updates, 4)
        np.testing.assert_array_equal(actual, expected)

    @given(st.integers(0, 10_000), st.integers(1, 5), st.integers(1, 3),
           st.integers(0, 4), st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_mean(self, seed, clusters, dim, num_updates, steps):
        series = centroid_tensor(seed, steps, clusters, dim)
        updates = centroid_tensor(seed + 1, max(num_updates, 1), clusters,
                                  dim)[:num_updates]
        expected = scalar_loop(MeanForecaster, series, updates, 3)
        actual = drive_bank(MeanBank(clusters, dim), series, updates, 3)
        np.testing.assert_array_equal(actual, expected)

    @given(st.integers(0, 10_000), st.integers(1, 3), st.integers(1, 2),
           st.integers(0, 3), st.integers(1, 12))
    @settings(max_examples=15, deadline=None)
    def test_ses_fitted_alpha(self, seed, clusters, dim, num_updates, steps):
        # Covers both the short-series path (T < 3 keeps the default
        # weight) and the per-series optimizer path.
        series = centroid_tensor(seed, steps, clusters, dim)
        updates = centroid_tensor(seed + 1, max(num_updates, 1), clusters,
                                  dim)[:num_updates]
        expected = scalar_loop(
            SimpleExponentialSmoothing, series, updates, 3
        )
        actual = drive_bank(ExponentialBank(clusters, dim), series, updates, 3)
        np.testing.assert_array_equal(actual, expected)

    @given(st.integers(0, 10_000), st.integers(1, 5), st.integers(1, 3),
           st.integers(0, 4), st.integers(1, 4), st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_yule_walker(self, seed, clusters, dim, num_updates, order,
                         extra_steps):
        steps = order + 2 + extra_steps
        series = centroid_tensor(seed, steps, clusters, dim)
        updates = centroid_tensor(seed + 1, max(num_updates, 1), clusters,
                                  dim)[:num_updates]
        expected = scalar_loop(
            lambda: YuleWalkerAR(order=order), series, updates, 5
        )
        actual = drive_bank(
            YuleWalkerBank(clusters, dim, order=order), series, updates, 5
        )
        np.testing.assert_array_equal(actual, expected)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_yule_walker_constant_series_zero_coefficients(self, seed):
        # Constant columns take the zero-coefficient convention while
        # the rest of the batch is solved normally.
        series = centroid_tensor(seed, 12, 3, 1)
        series[:, 1, 0] = 0.25
        expected = scalar_loop(YuleWalkerAR, series, [], 3)
        bank = YuleWalkerBank(3, 1)
        actual = drive_bank(bank, series, [], 3)
        np.testing.assert_array_equal(actual, expected)
        np.testing.assert_array_equal(bank.coefficients[:, 1], 0.0)

    @given(st.integers(0, 10_000), st.integers(1, 4), st.integers(1, 2))
    @settings(max_examples=25, deadline=None)
    def test_refit_replaces_history(self, seed, clusters, dim):
        # A second fit must reset state exactly like scalar refits do.
        first = centroid_tensor(seed, 8, clusters, dim)
        second = centroid_tensor(seed + 1, 11, clusters, dim)

        def refit_loop(make):
            out = np.empty((2, clusters, dim))
            for j in range(clusters):
                for r in range(dim):
                    model = make()
                    model.fit(first[:, j, r])
                    model.fit(second[:, j, r])
                    out[:, j, r] = model.forecast(2)
            return out

        for make, bank in [
            (SampleHoldForecaster, SampleHoldBank(clusters, dim)),
            (MeanForecaster, MeanBank(clusters, dim)),
            (YuleWalkerAR, YuleWalkerBank(clusters, dim)),
        ]:
            bank.fit(first)
            bank.fit(second)
            np.testing.assert_array_equal(
                bank.forecast(2), refit_loop(make)
            )


class TestObjectBank:
    def test_matches_vectorized_bank(self):
        series = centroid_tensor(3, 10, 4, 2)
        updates = centroid_tensor(4, 3, 4, 2)
        factory = default_forecaster_factory(
            ForecastingConfig(model="sample_hold")
        )
        object_forecast = drive_bank(
            ObjectBank(factory, 4, 2), series, updates, 3
        )
        vector_forecast = drive_bank(
            SampleHoldBank(4, 2), series, updates, 3
        )
        np.testing.assert_array_equal(object_forecast, vector_forecast)

    def test_factory_receives_cluster_and_group(self):
        calls = []

        def factory(cluster, group):
            calls.append((cluster, group))
            return SampleHoldForecaster()

        ObjectBank(factory, 3, 2, group=7)
        assert calls == [(j, 7) for j in range(3) for _ in range(2)]

    def test_partial_failure_raises_bank_forecast_error(self):
        class Failing(SampleHoldForecaster):
            def _forecast(self, horizon):
                raise DataError("boom")

        def factory(cluster, group):
            return Failing() if cluster == 1 else SampleHoldForecaster()

        bank = ObjectBank(factory, 3, 1)
        series = centroid_tensor(0, 6, 3, 1)
        bank.fit(series)
        with pytest.raises(BankForecastError) as excinfo:
            bank.forecast(2)
        error = excinfo.value
        assert set(error.failures) == {1}
        assert error.forecasts.shape == (2, 3, 1)
        # Non-failed clusters carry their real forecasts.
        np.testing.assert_array_equal(
            error.forecasts[:, 0, 0], np.full(2, series[-1, 0, 0])
        )
        np.testing.assert_array_equal(
            error.forecasts[:, 2, 0], np.full(2, series[-1, 2, 0])
        )

    def test_models_property_shape(self):
        factory = default_forecaster_factory(ForecastingConfig())
        bank = ObjectBank(factory, 2, 3)
        models = bank.models
        assert len(models) == 2 and all(len(m) == 3 for m in models)


class TestBankValidation:
    def test_forecast_before_fit(self):
        with pytest.raises(NotFittedError):
            SampleHoldBank(2, 1).forecast(3)

    def test_bad_fit_shape(self):
        with pytest.raises(DataError):
            SampleHoldBank(2, 1).fit(np.zeros((5, 3, 1)))

    def test_empty_series(self):
        with pytest.raises(DataError):
            SampleHoldBank(2, 1).fit(np.zeros((0, 2, 1)))

    def test_non_finite_series(self):
        tensor = np.zeros((4, 2, 1))
        tensor[1, 0, 0] = np.nan
        with pytest.raises(DataError):
            SampleHoldBank(2, 1).fit(tensor)

    def test_bad_update_shape(self):
        bank = SampleHoldBank(2, 1)
        bank.fit(np.zeros((4, 2, 1)))
        with pytest.raises(DataError):
            bank.update(np.zeros((3, 1)))

    def test_bad_horizon(self):
        bank = SampleHoldBank(2, 1)
        bank.fit(np.zeros((4, 2, 1)))
        with pytest.raises(DataError):
            bank.forecast(0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            SampleHoldBank(0, 1)
        with pytest.raises(ConfigurationError):
            YuleWalkerBank(2, 1, order=0)
        with pytest.raises(ConfigurationError):
            ExponentialBank(2, 1, alpha=1.5)

    def test_yule_walker_too_short(self):
        with pytest.raises(DataError):
            YuleWalkerBank(2, 1, order=3).fit(np.zeros((4, 2, 1)))


class TestResolution:
    def test_auto_picks_vectorized_bank(self):
        config = ForecastingConfig(model="sample_hold")
        assert resolved_bank_name(config) == "sample_hold"
        bank = resolve_bank(config, num_clusters=3, dim=1)
        assert isinstance(bank, SampleHoldBank)

    def test_auto_falls_back_to_object_bank(self):
        config = ForecastingConfig(model="arima")
        assert resolved_bank_name(config) == "object"
        bank = resolve_bank(config, num_clusters=2, dim=1)
        assert isinstance(bank, ObjectBank)

    def test_object_forced(self):
        config = ForecastingConfig(model="sample_hold", bank="object")
        bank = resolve_bank(config, num_clusters=2, dim=1)
        assert isinstance(bank, ObjectBank)

    def test_bank_requiring_vectorized_path(self):
        config = ForecastingConfig(model="ar", bank="ar")
        bank = resolve_bank(config, num_clusters=2, dim=1)
        assert isinstance(bank, YuleWalkerBank)

    def test_bank_contradicting_model_rejected(self):
        # The bank selects an execution path, never a different model.
        with pytest.raises(ConfigurationError, match="contradicts"):
            ForecastingConfig(model="arima", bank="sample_hold")

    def test_bank_requirement_fails_without_vectorized_bank(self):
        with pytest.raises(ConfigurationError, match="no vectorized"):
            ForecastingConfig(model="arima", bank="arima")

    def test_custom_factory_forces_object_bank(self):
        config = ForecastingConfig(model="sample_hold")
        bank = resolve_bank(
            config,
            num_clusters=2,
            dim=1,
            factory=lambda cluster, group: SampleHoldForecaster(),
        )
        assert isinstance(bank, ObjectBank)

    def test_custom_factory_with_required_vectorized_bank_rejected(self):
        # bank == model means "require the vectorized path"; a custom
        # factory cannot satisfy that, so it must not silently fall
        # back to the object path.
        config = ForecastingConfig(model="ar", bank="ar")
        with pytest.raises(ConfigurationError, match="vectorized path"):
            resolve_bank(
                config,
                num_clusters=2,
                dim=1,
                factory=lambda cluster, group: SampleHoldForecaster(),
            )

    def test_unknown_bank_rejected_by_config(self):
        with pytest.raises(ConfigurationError, match="contradicts model"):
            ForecastingConfig(bank="nope")

    def test_bank_round_trips_through_dict(self):
        config = PipelineConfig(
            forecasting=ForecastingConfig(model="ar", bank="object")
        )
        rebuilt = PipelineConfig.from_dict(config.to_dict())
        assert rebuilt.forecasting.bank == "object"

    def test_expected_banks_registered(self):
        for name in ("sample_hold", "mean", "ses", "ar"):
            assert name in FORECASTER_BANKS


class TestEngineUnchanged:
    """Bank choice never changes Engine.run numbers."""

    @pytest.mark.parametrize("model", ["sample_hold", "mean", "ses", "ar"])
    def test_run_identical_auto_vs_object(self, model):
        from repro.api import Engine

        rng = np.random.default_rng(7)
        trace = np.clip(
            0.5 + np.cumsum(rng.normal(0, 0.02, (60, 6, 2)), axis=0), 0, 1
        )
        results = {}
        for bank in ("auto", "object"):
            config = PipelineConfig(
                clustering=ClusteringConfig(num_clusters=2, seed=0),
                forecasting=ForecastingConfig(
                    model=model,
                    bank=bank,
                    max_horizon=2,
                    initial_collection=20,
                    retrain_interval=20,
                ),
            )
            results[bank] = Engine(config).run(trace)
        auto, obj = results["auto"], results["object"]
        assert auto.rmse_by_horizon == obj.rmse_by_horizon
        assert auto.intermediate_rmse == obj.intermediate_rmse


def failing_pipeline_config(num_clusters=3):
    return PipelineConfig(
        clustering=ClusteringConfig(num_clusters=num_clusters, seed=0),
        forecasting=ForecastingConfig(
            model="sample_hold",
            max_horizon=2,
            initial_collection=10,
            retrain_interval=10,
        ),
    )


def walk(steps=20, nodes=6, seed=0):
    rng = np.random.default_rng(seed)
    return np.clip(
        0.5 + np.cumsum(rng.normal(0, 0.03, (steps, nodes)), axis=0), 0, 1
    )


class TestForecastFailureFallback:
    """The ReproError → hold-last-centroid branch of ``_forecast_into``."""

    def test_partial_failure_holds_failed_clusters_only(self, caplog):
        class FailsForCluster(SampleHoldForecaster):
            def _forecast(self, horizon):
                raise DataError("cluster down")

        def factory(cluster, group):
            return FailsForCluster() if cluster == 1 else SampleHoldForecaster()

        pipeline = OnlinePipeline(
            6, 1, failing_pipeline_config(), forecaster_factory=factory
        )
        trace = walk()
        with caplog.at_level(logging.WARNING, logger="repro.core.pipeline"):
            for t in range(20):
                output = pipeline.step(trace[t])
        assignment = output.assignments[0]
        for h in (1, 2):
            # Failed cluster 1 holds its latest centroid at every
            # horizon; the others forecast normally (sample-and-hold of
            # the centroid series — which differs from the last
            # centroid only by the model, so just pin cluster 1).
            np.testing.assert_array_equal(
                output.centroid_forecasts[h][1], assignment.centroids[1]
            )
        messages = [r.message for r in caplog.records]
        assert any(
            "forecast failed for group 0 cluster 1" in m
            and "holding last centroid" in m
            for m in messages
        )
        # Only cluster 1 failed — no warnings about other clusters.
        assert not any("cluster 0" in m or "cluster 2" in m for m in messages)

    def test_whole_bank_failure_holds_all_centroids(self, caplog):
        class ExplodingBank(ForecasterBank):
            def _fit(self, matrix):
                pass

            def _forecast(self, horizon):
                raise ReproError("bank down")

        pipeline = OnlinePipeline(6, 1, failing_pipeline_config())
        pipeline._banks[0] = ExplodingBank(3, 1)
        trace = walk(seed=1)
        with caplog.at_level(logging.WARNING, logger="repro.core.pipeline"):
            for t in range(20):
                output = pipeline.step(trace[t])
        assignment = output.assignments[0]
        for h in (1, 2):
            np.testing.assert_array_equal(
                output.centroid_forecasts[h], assignment.centroids
            )
        assert any(
            "forecast failed for group 0" in r.message
            and "holding last centroids" in r.message
            for r in caplog.records
        )

    def test_node_forecasts_use_held_centroid(self):
        class AlwaysFails(SampleHoldForecaster):
            def _forecast(self, horizon):
                raise DataError("down")

        pipeline = OnlinePipeline(
            6,
            1,
            failing_pipeline_config(),
            forecaster_factory=lambda cluster, group: AlwaysFails(),
        )
        trace = walk(seed=2)
        for t in range(20):
            output = pipeline.step(trace[t])
        # With every cluster held, node forecasts are the held centroid
        # plus the per-node offsets — finite and shaped.
        assert output.node_forecasts[1].shape == (6, 1)
        assert np.isfinite(output.node_forecasts[1]).all()
