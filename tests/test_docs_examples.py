"""Documentation and packaging sanity checks.

Keeps README code snippets, the example scripts, and the public API
surface from drifting apart.
"""

import ast
import os

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(REPO_ROOT, "examples")


class TestReadmeSnippet:
    def test_quickstart_snippet_runs(self):
        # The exact code block from README.md §Quickstart, at tiny scale.
        from repro import Engine, PipelineConfig
        from repro.datasets import load_alibaba_like

        dataset = load_alibaba_like(num_nodes=12, num_steps=120)
        engine = Engine(PipelineConfig.small(
            num_clusters=3, budget=0.3, max_horizon=2,
            initial_collection=40, retrain_interval=40,
        ))
        result = engine.run(dataset.resource("cpu"))
        assert 0 in result.rmse_by_horizon
        assert 1 in result.rmse_by_horizon
        assert 0 <= result.intermediate_rmse < 1
        assert 0 < result.decisions.mean() <= 1
        assert result.timings["total"] > 0

    def test_scaling_snippet_runs(self):
        # The code block from README.md §Scaling quickstart, at tiny
        # scale (the README uses 10k nodes; the invariants are the same).
        from repro import Engine, PipelineConfig
        from repro.datasets import load_alibaba_like

        dataset = load_alibaba_like(num_nodes=16, num_steps=100)
        engine = Engine(PipelineConfig.small(
            initial_collection=30, retrain_interval=30,
        ))
        result = engine.run(dataset.resource("cpu"), shards=4)
        assert result.transport.messages == int(result.decisions.sum())
        assert result.fleet.message_counts.shape == (16,)
        assert result.fleet.last_update.shape == (16,)
        pooled = engine.run(
            dataset.resource("cpu"), shards=4, workers=2
        )
        assert pooled.rmse_by_horizon == result.rmse_by_horizon

    def test_sessions_snippet_runs(self, tmp_path):
        # The code block from README.md §Sessions and checkpoints, at
        # tiny scale.
        import numpy as np

        from repro import Engine, PipelineConfig

        config = PipelineConfig.small(
            initial_collection=20, retrain_interval=20, max_horizon=3,
        )
        engine = Engine(config)
        session = engine.session(
            num_nodes=12, num_resources=1, reorder_window=2
        )
        rng = np.random.default_rng(0)
        trace = np.clip(
            0.5 + np.cumsum(rng.normal(0, 0.04, (30, 12)), axis=0), 0, 1
        )
        for t in range(30):
            session.ingest(trace[t])
        session.ingest(trace[29][[3]], node_ids=[3])
        session.ingest(trace[28][[9]], node_ids=[9], t=29)
        forecasts = session.forecast(horizons=[1, 3])
        assert forecasts[1].shape == (12, 1)
        path = session.save(tmp_path / "monitor.ckpt")
        resumed = Engine(config).resume(path)
        assert resumed.time == session.time
        assert resumed.late_applied + resumed.late_dropped == 1

    def test_scenarios_snippet_runs(self):
        # The code block from README.md §Scenarios, at tiny scale.
        from repro.scenarios import (
            ChurnEvent,
            ChurnSchedule,
            LinkConfig,
            ScenarioSpec,
            run_scenario,
        )

        report = run_scenario(ScenarioSpec(
            name="mine", source="google", num_steps=80,
            total_nodes=12, initial_nodes=9,
            link=LinkConfig(
                loss=0.05, latency=2, uplinks=2, uplink_capacity=8, seed=1
            ),
            churn=ChurnSchedule([
                ChurnEvent(slot=40, kind="join", count=2),
                ChurnEvent(slot=60, kind="crash", count=1),
            ]),
        ))
        assert report.conserved
        assert "conserved" in report.summary()
        assert report.final_nodes == 11

    def test_readme_migration_table_mentions_old_entry_points(self):
        with open(os.path.join(REPO_ROOT, "README.md")) as handle:
            text = handle.read()
        for name in ("run_pipeline", "MonitoringSystem", "Engine",
                     "from_config", "registry", "session.ingest",
                     "resume"):
            assert name in text, name


class TestExamples:
    def test_all_examples_exist_and_parse(self):
        expected = {
            "quickstart.py",
            "capacity_planning.py",
            "anomaly_detection.py",
            "bandwidth_budgeting.py",
            "reproduce_paper.py",
        }
        present = {
            name for name in os.listdir(EXAMPLES) if name.endswith(".py")
        }
        assert expected <= present
        for name in expected:
            with open(os.path.join(EXAMPLES, name)) as handle:
                source = handle.read()
            tree = ast.parse(source)
            # Every example is runnable (has a main guard) and documented.
            assert ast.get_docstring(tree), name
            assert "__main__" in source, name

    def test_examples_import_only_public_api(self):
        # Examples must not reach into underscore-private modules.
        for name in os.listdir(EXAMPLES):
            if not name.endswith(".py"):
                continue
            with open(os.path.join(EXAMPLES, name)) as handle:
                tree = ast.parse(handle.read())
            for node in ast.walk(tree):
                if isinstance(node, ast.ImportFrom) and node.module:
                    assert not any(
                        part.startswith("_")
                        for part in node.module.split(".")
                    ), (name, node.module)


class TestPublicApi:
    def test_top_level_exports_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_importable(self):
        import repro.analysis
        import repro.clustering
        import repro.datasets
        import repro.forecasting
        import repro.gaussian
        import repro.transmission

        for module in (
            repro.analysis, repro.clustering, repro.datasets,
            repro.forecasting, repro.gaussian, repro.transmission,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_simulation_lazy_export(self):
        import repro.simulation

        assert repro.simulation.MonitoringSystem is not None
        with pytest.raises(AttributeError):
            repro.simulation.DoesNotExist

    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)


class TestDocumentationFiles:
    @pytest.mark.parametrize(
        "filename", ["README.md", "DESIGN.md"]
    )
    def test_docs_exist_and_mention_paper(self, filename):
        path = os.path.join(REPO_ROOT, filename)
        assert os.path.exists(path)
        with open(path) as handle:
            text = handle.read()
        assert "ICDCS" in text or "Tuor" in text

    def test_design_maps_every_experiment(self):
        with open(os.path.join(REPO_ROOT, "DESIGN.md")) as handle:
            text = handle.read()
        for artifact in (
            "Fig. 1", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7",
            "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12",
            "Table I", "Table II", "Table III", "Table IV",
        ):
            assert artifact in text, artifact
