"""Tests for repro.core.metrics (Eq. 3–4 semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.metrics import (
    horizon_averaged_rmse,
    instantaneous_rmse,
    intermediate_rmse,
    standard_deviation_bound,
    time_averaged_rmse,
    transmission_frequency,
)
from repro.exceptions import DataError


class TestInstantaneousRmse:
    def test_zero_for_exact(self):
        x = np.random.default_rng(0).random((5, 2))
        assert instantaneous_rmse(x, x) == 0.0

    def test_known_value_multidim(self):
        # Two nodes, d=2: errors (1,0) and (0,1) -> sqrt((1+1)/2) = 1.
        est = np.array([[1.0, 0.0], [0.0, 1.0]])
        tru = np.zeros((2, 2))
        assert instantaneous_rmse(est, tru) == pytest.approx(1.0)

    def test_scalar_nodes(self):
        # Eq. 3 with d=1: sqrt(mean of squared errors).
        est = np.array([1.0, 2.0, 3.0])
        tru = np.array([0.0, 0.0, 0.0])
        expected = np.sqrt((1 + 4 + 9) / 3)
        assert instantaneous_rmse(est, tru) == pytest.approx(expected)

    def test_shape_mismatch(self):
        with pytest.raises(DataError):
            instantaneous_rmse(np.zeros(3), np.zeros(4))

    def test_single_vector_node_not_transposed(self):
        # Regression: a genuine (1, d) input is ONE node with a d-vector
        # measurement — the error must be normalized by N=1, not by d.
        est = np.array([[1.0, 0.0, 0.0, 0.0]])
        tru = np.zeros((1, 4))
        assert instantaneous_rmse(est, tru) == pytest.approx(1.0)

    def test_single_vector_node_matches_fleet_row(self):
        # One (1, d) node must contribute the same squared error as that
        # row does inside a larger (N, d) fleet computation.
        rng = np.random.default_rng(5)
        est = rng.random((3, 4))
        tru = rng.random((3, 4))
        fleet_sq = instantaneous_rmse(est, tru) ** 2 * 3
        rows_sq = sum(
            instantaneous_rmse(est[i : i + 1], tru[i : i + 1]) ** 2
            for i in range(3)
        )
        assert rows_sq == pytest.approx(fleet_sq)

    def test_batch_matches_per_slot(self):
        from repro.core.metrics import instantaneous_rmse_batch

        rng = np.random.default_rng(6)
        est = rng.random((7, 5, 3))
        tru = rng.random((7, 5, 3))
        batched = instantaneous_rmse_batch(est, tru)
        assert batched.shape == (7,)
        for t in range(7):
            assert batched[t] == instantaneous_rmse(est[t], tru[t])

    def test_batch_scalar_nodes(self):
        from repro.core.metrics import instantaneous_rmse_batch

        rng = np.random.default_rng(7)
        est = rng.random((4, 6))
        tru = rng.random((4, 6))
        batched = instantaneous_rmse_batch(est, tru)
        for t in range(4):
            assert batched[t] == instantaneous_rmse(est[t], tru[t])

    def test_batch_shape_errors(self):
        from repro.core.metrics import instantaneous_rmse_batch

        with pytest.raises(DataError):
            instantaneous_rmse_batch(np.zeros((3, 2)), np.zeros((3, 3)))
        with pytest.raises(DataError):
            instantaneous_rmse_batch(np.zeros(3), np.zeros(3))

    @given(
        arrays(float, (6,), elements=st.floats(-1, 1)),
        arrays(float, (6,), elements=st.floats(-1, 1)),
    )
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, a, b):
        assert instantaneous_rmse(a, b) == pytest.approx(
            instantaneous_rmse(b, a)
        )

    @given(arrays(float, (6,), elements=st.floats(-1, 1)))
    @settings(max_examples=50, deadline=None)
    def test_non_negative(self, a):
        assert instantaneous_rmse(a, np.zeros(6)) >= 0.0


class TestTimeAveragedRmse:
    def test_squares_then_roots(self):
        # Eq. 4: sqrt(mean of squares), not mean of values.
        values = [3.0, 4.0]
        expected = np.sqrt((9 + 16) / 2)
        assert time_averaged_rmse(values) == pytest.approx(expected)

    def test_single_value_identity(self):
        assert time_averaged_rmse([0.7]) == pytest.approx(0.7)

    def test_empty_raises(self):
        with pytest.raises(DataError):
            time_averaged_rmse([])

    @given(st.lists(st.floats(0, 10), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_at_least_mean(self, values):
        # Quadratic mean >= arithmetic mean.
        assert time_averaged_rmse(values) >= np.mean(values) - 1e-9


class TestHorizonAveragedRmse:
    def test_matches_objective_form(self):
        per_h = [0.1, 0.2, 0.3]
        expected = np.sqrt(np.mean(np.square(per_h)))
        assert horizon_averaged_rmse(per_h) == pytest.approx(expected)

    def test_empty_raises(self):
        with pytest.raises(DataError):
            horizon_averaged_rmse([])


class TestIntermediateRmse:
    def test_zero_when_on_centroids(self):
        centroids = np.array([[0.2], [0.8]])
        data = np.array([0.2, 0.8, 0.2])
        labels = np.array([0, 1, 0])
        assert intermediate_rmse(data, labels, centroids) == 0.0

    def test_known_value(self):
        centroids = np.array([[0.0], [1.0]])
        data = np.array([0.5, 0.5])
        labels = np.array([0, 1])
        assert intermediate_rmse(data, labels, centroids) == pytest.approx(0.5)

    def test_label_count_mismatch(self):
        with pytest.raises(DataError):
            intermediate_rmse(np.zeros(3), np.zeros(2, dtype=int), np.zeros((1, 1)))


class TestTransmissionFrequency:
    def test_mean_of_matrix(self):
        decisions = np.array([[1, 0], [0, 0]])
        assert transmission_frequency(decisions) == pytest.approx(0.25)

    def test_empty_raises(self):
        with pytest.raises(DataError):
            transmission_frequency(np.array([]))


class TestStandardDeviationBound:
    def test_constant_trace_zero(self):
        assert standard_deviation_bound(np.full((10, 4), 0.5)) == 0.0

    def test_matches_manual(self):
        rng = np.random.default_rng(1)
        trace = rng.random((50, 6))
        expected = np.sqrt(trace.var(axis=0).mean())
        assert standard_deviation_bound(trace) == pytest.approx(expected)

    def test_is_rmse_of_mean_predictor(self):
        rng = np.random.default_rng(2)
        trace = rng.random((40, 5))
        means = trace.mean(axis=0)
        sq = np.mean((trace - means) ** 2)
        assert standard_deviation_bound(trace) == pytest.approx(np.sqrt(sq))

    def test_rejects_3d(self):
        with pytest.raises(DataError):
            standard_deviation_bound(np.zeros((2, 2, 2)))
