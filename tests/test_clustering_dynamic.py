"""Tests for the dynamic cluster tracker (Sec. V-B)."""

import numpy as np
import pytest

from repro.clustering.dynamic import DynamicClusterTracker
from repro.exceptions import ConfigurationError, DataError


def two_group_slot(rng, low=0.1, high=0.9, n_per=10, spread=0.01):
    values = np.concatenate([
        rng.normal(low, spread, n_per), rng.normal(high, spread, n_per)
    ])
    return values


class TestDynamicClusterTracker:
    def test_first_step_produces_assignment(self):
        tracker = DynamicClusterTracker(2, seed=0)
        rng = np.random.default_rng(0)
        assignment = tracker.update(two_group_slot(rng))
        assert assignment.num_clusters == 2
        assert assignment.num_nodes == 20
        assert tracker.time == 1

    def test_identity_persists_across_steps(self):
        # Cluster ids must stay attached to the same node groups even
        # though K-means ordering is random each step.
        tracker = DynamicClusterTracker(2, seed=0)
        rng = np.random.default_rng(1)
        first = tracker.update(two_group_slot(rng))
        low_cluster = first.labels[0]
        for _ in range(10):
            assignment = tracker.update(two_group_slot(rng))
            assert assignment.labels[0] == low_cluster
            assert (assignment.labels[:10] == low_cluster).all()

    def test_centroid_series_tracks_group_means(self):
        tracker = DynamicClusterTracker(2, seed=0)
        rng = np.random.default_rng(2)
        for _ in range(5):
            tracker.update(two_group_slot(rng, low=0.2, high=0.7))
        first = tracker.assignments[0]
        low_cluster = int(first.labels[0])
        series = tracker.centroid_series(low_cluster)
        assert series.shape == (5, 1)
        np.testing.assert_allclose(series[:, 0], 0.2, atol=0.02)

    def test_migration_followed(self):
        # A node that moves from the low to the high group should be
        # re-assigned, while cluster identities stay put.
        tracker = DynamicClusterTracker(2, seed=0)
        rng = np.random.default_rng(3)
        values = two_group_slot(rng)
        a0 = tracker.update(values)
        low_cluster = int(a0.labels[0])
        high_cluster = 1 - low_cluster
        values2 = values.copy()
        values2[0] = 0.9  # node 0 migrates
        a1 = tracker.update(values2)
        assert a1.labels[0] == high_cluster
        assert (a1.labels[1:10] == low_cluster).all()

    def test_history_depth_parameter(self):
        tracker = DynamicClusterTracker(2, history_depth=3, seed=0)
        rng = np.random.default_rng(4)
        for _ in range(6):
            tracker.update(two_group_slot(rng))
        assert len(tracker._partition_history) == 3

    def test_jaccard_similarity_mode(self):
        tracker = DynamicClusterTracker(2, similarity="jaccard", seed=0)
        rng = np.random.default_rng(5)
        first = tracker.update(two_group_slot(rng))
        low = first.labels[0]
        for _ in range(5):
            assignment = tracker.update(two_group_slot(rng))
            assert assignment.labels[0] == low

    def test_k_equals_n_identity(self):
        tracker = DynamicClusterTracker(5, seed=0)
        values = np.array([0.1, 0.2, 0.3, 0.4, 0.5])
        assignment = tracker.update(values)
        np.testing.assert_array_equal(assignment.labels, np.arange(5))
        np.testing.assert_allclose(assignment.centroids[:, 0], values)

    def test_k_greater_than_n(self):
        tracker = DynamicClusterTracker(7, seed=0)
        values = np.array([0.1, 0.2, 0.3])
        assignment = tracker.update(values)
        assert assignment.num_clusters == 7
        np.testing.assert_array_equal(assignment.labels, np.arange(3))

    def test_features_override(self):
        # Clustering on features while centroids come from values.
        tracker = DynamicClusterTracker(2, seed=0)
        values = np.array([0.5, 0.5, 0.5, 0.5])
        features = np.array([[0.0], [0.0], [1.0], [1.0]])
        assignment = tracker.update(values, features=features)
        assert assignment.labels[0] == assignment.labels[1]
        assert assignment.labels[2] == assignment.labels[3]
        assert assignment.labels[0] != assignment.labels[2]
        np.testing.assert_allclose(assignment.centroids[:, 0], 0.5)

    def test_feature_row_mismatch(self):
        tracker = DynamicClusterTracker(2, seed=0)
        with pytest.raises(DataError):
            tracker.update(np.zeros(4), features=np.zeros((3, 1)))

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            DynamicClusterTracker(0)
        with pytest.raises(ConfigurationError):
            DynamicClusterTracker(2, history_depth=0)

    def test_centroid_series_bad_cluster(self):
        tracker = DynamicClusterTracker(2, seed=0)
        with pytest.raises(ConfigurationError):
            tracker.centroid_series(5)

    def test_centroid_series_empty_before_updates(self):
        tracker = DynamicClusterTracker(2, seed=0)
        series = tracker.centroid_series(0)
        assert series.size == 0
        # Regression: the empty series must keep the (t, d) layout so
        # downstream code can index series[:, 0] / stack it untouched.
        assert series.ndim == 2
        assert series.shape == (0, 1)

    def test_centroid_series_empty_shape_consistent_after_update(self):
        # Once data has been seen the dimensionality is known; shapes of
        # empty and non-empty series must agree on d.
        tracker = DynamicClusterTracker(2, seed=0)
        rng = np.random.default_rng(8)
        values = np.vstack([
            rng.normal([0.1, 0.2, 0.3], 0.01, (6, 3)),
            rng.normal([0.8, 0.9, 0.7], 0.01, (6, 3)),
        ])
        tracker.update(values)
        assert tracker.centroid_series(0).shape == (1, 3)

    def test_fleet_size_change_between_updates(self):
        # A node joining or leaving the fleet must not break re-indexing
        # (absent ids simply drop out of the Eq. 10 intersection).
        tracker = DynamicClusterTracker(2, seed=0)
        rng = np.random.default_rng(10)
        first = tracker.update(two_group_slot(rng, n_per=10))
        low_cluster = int(first.labels[0])
        shrunk = tracker.update(two_group_slot(rng, n_per=8))
        assert shrunk.labels.shape == (16,)
        assert shrunk.labels[0] == low_cluster
        grown = tracker.update(two_group_slot(rng, n_per=12))
        assert grown.labels.shape == (24,)
        assert grown.labels[0] == low_cluster

    def test_partition_history_compatibility_view(self):
        # The set-of-sets view must stay consistent with the labels.
        tracker = DynamicClusterTracker(2, history_depth=2, seed=0)
        rng = np.random.default_rng(9)
        for _ in range(4):
            assignment = tracker.update(two_group_slot(rng))
        partitions = tracker._partition_history
        assert len(partitions) == 2
        newest = partitions[-1]
        for j in range(2):
            assert newest[j] == set(
                np.flatnonzero(assignment.labels == j).tolist()
            )

    def test_multidimensional_values(self):
        tracker = DynamicClusterTracker(2, seed=0)
        rng = np.random.default_rng(6)
        values = np.vstack([
            rng.normal([0.1, 0.2], 0.01, (8, 2)),
            rng.normal([0.8, 0.9], 0.01, (8, 2)),
        ])
        assignment = tracker.update(values)
        assert assignment.centroids.shape == (2, 2)

    def test_warm_start_mode(self):
        tracker = DynamicClusterTracker(2, seed=0, warm_start=True)
        rng = np.random.default_rng(7)
        for _ in range(4):
            assignment = tracker.update(two_group_slot(rng))
        assert assignment.num_clusters == 2
