"""Tests for exponential-smoothing forecasters and Yule–Walker AR."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataError
from repro.forecasting.exponential import (
    HoltLinear,
    HoltWinters,
    SimpleExponentialSmoothing,
)
from repro.forecasting.yule_walker import YuleWalkerAR, fit_yule_walker


class TestSimpleExponentialSmoothing:
    def test_constant_series(self):
        model = SimpleExponentialSmoothing().fit(np.full(50, 0.4))
        np.testing.assert_allclose(model.forecast(3), 0.4, atol=1e-9)

    def test_alpha_one_is_sample_hold(self):
        series = np.random.default_rng(0).random(30)
        model = SimpleExponentialSmoothing(alpha=1.0).fit(series)
        assert model.forecast(2)[0] == pytest.approx(series[-1])

    def test_alpha_fitted_for_noisy_level(self):
        # Pure noise around a level: optimal alpha should be small.
        rng = np.random.default_rng(1)
        series = 0.5 + rng.normal(0, 0.1, 400)
        model = SimpleExponentialSmoothing().fit(series)
        assert model.alpha < 0.3
        assert model.forecast(1)[0] == pytest.approx(0.5, abs=0.05)

    def test_alpha_fitted_for_random_walk(self):
        rng = np.random.default_rng(2)
        series = np.cumsum(rng.normal(0, 0.1, 400))
        model = SimpleExponentialSmoothing().fit(series)
        assert model.alpha > 0.7

    def test_update_moves_level(self):
        model = SimpleExponentialSmoothing(alpha=0.5).fit([0.0, 0.0])
        model.update(1.0)
        assert model.forecast(1)[0] == pytest.approx(0.5)

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            SimpleExponentialSmoothing(alpha=0.0)


class TestHoltLinear:
    def test_extrapolates_trend(self):
        series = 0.01 * np.arange(100) + 0.2
        model = HoltLinear(damping=1.0).fit(series)
        forecast = model.forecast(5)
        expected = series[-1] + 0.01 * np.arange(1, 6)
        np.testing.assert_allclose(forecast, expected, atol=0.01)

    def test_damping_flattens_long_horizon(self):
        series = 0.01 * np.arange(100) + 0.2
        damped = HoltLinear(damping=0.8).fit(series).forecast(50)
        undamped = HoltLinear(damping=1.0).fit(series).forecast(50)
        assert damped[-1] < undamped[-1]

    def test_update_tracks_level_shift(self):
        series = np.full(60, 0.3)
        model = HoltLinear().fit(series)
        for _ in range(30):
            model.update(0.8)
        assert model.forecast(1)[0] == pytest.approx(0.8, abs=0.1)

    def test_too_short(self):
        with pytest.raises(DataError):
            HoltLinear().fit([0.5])

    def test_invalid_damping(self):
        with pytest.raises(ConfigurationError):
            HoltLinear(damping=0.0)


class TestHoltWinters:
    def _seasonal_series(self, periods=12, cycles=20, noise=0.0, seed=0):
        rng = np.random.default_rng(seed)
        t = np.arange(periods * cycles)
        return (
            0.5
            + 0.2 * np.sin(2 * np.pi * t / periods)
            + rng.normal(0, noise, t.size)
        )

    def test_learns_seasonal_pattern(self):
        series = self._seasonal_series()
        model = HoltWinters(period=12).fit(series)
        forecast = model.forecast(12)
        t_future = np.arange(series.size, series.size + 12)
        expected = 0.5 + 0.2 * np.sin(2 * np.pi * t_future / 12)
        np.testing.assert_allclose(forecast, expected, atol=0.03)

    def test_noisy_seasonal_beats_sample_hold(self):
        series = self._seasonal_series(noise=0.02, seed=3)
        model = HoltWinters(period=12).fit(series[:-12])
        forecast = model.forecast(12)
        hold = np.full(12, series[-13])
        truth = series[-12:]
        assert np.abs(forecast - truth).mean() < np.abs(hold - truth).mean()

    def test_update_advances_season_index(self):
        series = self._seasonal_series()
        model = HoltWinters(period=12).fit(series)
        before = model._season_index
        model.update(float(series[-1]))
        assert model._season_index == (before + 1) % 12

    def test_requires_two_seasons(self):
        with pytest.raises(DataError):
            HoltWinters(period=12).fit(np.zeros(20))

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            HoltWinters(period=1)


class TestYuleWalker:
    def _ar_series(self, coeffs, n=5000, seed=0):
        rng = np.random.default_rng(seed)
        x = np.zeros(n)
        p = len(coeffs)
        for t in range(p, n):
            x[t] = sum(coeffs[i] * x[t - 1 - i] for i in range(p))
            x[t] += rng.normal(0, 0.1)
        return x

    def test_recovers_ar1(self):
        series = self._ar_series([0.7])
        phi = fit_yule_walker(series, 1)
        assert phi[0] == pytest.approx(0.7, abs=0.03)

    def test_recovers_ar2(self):
        series = self._ar_series([0.5, 0.3])
        phi = fit_yule_walker(series, 2)
        assert phi[0] == pytest.approx(0.5, abs=0.05)
        assert phi[1] == pytest.approx(0.3, abs=0.05)

    def test_constant_series_zero_coefficients(self):
        phi = fit_yule_walker(np.full(100, 0.5), 2)
        np.testing.assert_allclose(phi, 0.0)

    def test_forecaster_decays_to_mean(self):
        series = self._ar_series([0.8]) + 0.5
        model = YuleWalkerAR(order=1).fit(series)
        forecast = model.forecast(200)
        assert forecast[-1] == pytest.approx(series.mean(), abs=0.05)

    def test_forecaster_one_step(self):
        series = self._ar_series([0.7])
        model = YuleWalkerAR(order=1).fit(series)
        expected = model.mean + model.coefficients[0] * (
            series[-1] - model.mean
        )
        assert model.forecast(1)[0] == pytest.approx(expected)

    def test_update_shifts_forecast(self):
        series = self._ar_series([0.9])
        model = YuleWalkerAR(order=1).fit(series)
        f1 = model.forecast(1)[0]
        model.update(series[-1] + 1.0)
        assert model.forecast(1)[0] > f1

    def test_invalid_order(self):
        with pytest.raises(ConfigurationError):
            YuleWalkerAR(order=0)
        with pytest.raises(ConfigurationError):
            fit_yule_walker(np.zeros(50), 0)

    def test_series_too_short(self):
        with pytest.raises(DataError):
            fit_yule_walker(np.zeros(3), 3)


class TestPipelineIntegrationOfNewModels:
    @pytest.mark.parametrize("model", ["ses", "holt", "ar"])
    def test_model_runs_in_pipeline(self, model):
        from repro.core.config import (
            ClusteringConfig,
            ForecastingConfig,
            PipelineConfig,
        )
        from repro.core.pipeline import run_pipeline

        rng = np.random.default_rng(4)
        trace = np.clip(
            0.5 + np.cumsum(rng.normal(0, 0.01, (80, 6)), axis=0), 0, 1
        )
        config = PipelineConfig(
            clustering=ClusteringConfig(num_clusters=2, seed=0),
            forecasting=ForecastingConfig(
                model=model, max_horizon=2,
                initial_collection=30, retrain_interval=30,
            ),
        )
        result = run_pipeline(trace, config)
        assert result.rmse_by_horizon[1] < 0.2

    def test_holt_winters_runs_in_pipeline(self):
        from repro.core.config import (
            ClusteringConfig,
            ForecastingConfig,
            PipelineConfig,
        )
        from repro.core.pipeline import run_pipeline

        t = np.arange(120)
        base = 0.5 + 0.2 * np.sin(2 * np.pi * t / 12)
        rng = np.random.default_rng(5)
        trace = np.clip(
            base[:, None] + rng.normal(0, 0.02, (120, 6)), 0, 1
        )
        config = PipelineConfig(
            clustering=ClusteringConfig(num_clusters=2, seed=0),
            forecasting=ForecastingConfig(
                model="holt_winters", hw_period=12, max_horizon=2,
                initial_collection=40, retrain_interval=40,
            ),
        )
        result = run_pipeline(trace, config)
        assert result.rmse_by_horizon[1] < 0.15
