"""Tests for ``repro lint`` — the AST-based invariant checker.

Each rule family gets a seeded-violation fixture (proving ``repro
lint`` exits non-zero on it) and a clean fixture (proving no false
positive), plus waiver semantics, the JSON/GitHub reporter schemas,
the incremental result cache, the runtime contract verifier, the shm
sanitizer, and the meta-test that the shipped tree itself lints clean.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    LINT_RULES,
    build_context,
    default_target,
    lint_paths,
    parse_waivers,
    render_github,
    render_json,
    render_text,
    run_runtime_checks,
    run_sanitize_checks,
)
from repro.lint.runner import LintResult


def write_pkg(root: Path, files: dict) -> Path:
    """Materialize ``{relative/path.py: source}`` as a package tree."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        for parent in path.relative_to(root).parents:
            if str(parent) != ".":
                init = root / parent / "__init__.py"
                if not init.exists():
                    init.write_text("")
        path.write_text(source)
    return root


def rule_ids(result: LintResult):
    return sorted({f.rule_id for f in result.findings})


# ---------------------------------------------------------------------------
# State-contract family
# ---------------------------------------------------------------------------


def test_state_001_missing_setter_fails(tmp_path):
    write_pkg(tmp_path, {
        "pkg/comp.py": (
            "class Broken:\n"
            "    def get_state(self):\n"
            "        return {'a': 1}\n"
        ),
    })
    result = lint_paths([tmp_path])
    assert "STATE-001" in rule_ids(result)
    assert result.exit_code == 1


def test_state_001_hook_pair_also_checked(tmp_path):
    write_pkg(tmp_path, {
        "pkg/comp.py": (
            "class Broken:\n"
            "    def _state(self):\n"
            "        return {'w': 2.0}\n"
        ),
    })
    result = lint_paths([tmp_path])
    assert "STATE-001" in rule_ids(result)


def test_state_002_key_read_but_never_written(tmp_path):
    write_pkg(tmp_path, {
        "pkg/comp.py": (
            "class Mismatch:\n"
            "    def get_state(self):\n"
            "        return {'a': self.a}\n"
            "    def set_state(self, state):\n"
            "        self.a = state['b']\n"
        ),
    })
    result = lint_paths([tmp_path])
    findings = [f for f in result.findings if f.rule_id == "STATE-002"]
    assert len(findings) == 2  # 'b' never written, 'a' never read
    assert any("'b'" in f.message for f in findings)


def test_state_002_symmetric_keys_pass(tmp_path):
    write_pkg(tmp_path, {
        "pkg/comp.py": (
            "class Good:\n"
            "    def get_state(self):\n"
            "        return {'a': self.a, 'b': self.b}\n"
            "    def set_state(self, state):\n"
            "        self.a = state['a']\n"
            "        self.b = state.get('b')\n"
        ),
    })
    assert lint_paths([tmp_path]).ok


def test_state_002_open_sets_never_flag(tmp_path):
    # Spread on the write side, forwarding on the read side: both
    # sides open, so dynamic composition is never a false positive.
    write_pkg(tmp_path, {
        "pkg/comp.py": (
            "class Dynamic:\n"
            "    def get_state(self):\n"
            "        return {'a': 1, **self._state()}\n"
            "    def set_state(self, state):\n"
            "        self._load_state(state)\n"
            "    def _state(self):\n"
            "        return {}\n"
            "    def _load_state(self, state):\n"
            "        pass\n"
        ),
    })
    assert lint_paths([tmp_path]).ok


def test_state_002_build_then_return_idiom(tmp_path):
    write_pkg(tmp_path, {
        "pkg/comp.py": (
            "class Builder:\n"
            "    def get_state(self):\n"
            "        state = {'a': 1}\n"
            "        if self.extra is not None:\n"
            "            state['extra'] = self.extra\n"
            "        return state\n"
            "    def set_state(self, state):\n"
            "        self.a = state['a']\n"
            "        self.extra = state.get('extra')\n"
        ),
    })
    assert lint_paths([tmp_path]).ok


# ---------------------------------------------------------------------------
# Registry family
# ---------------------------------------------------------------------------

_REGISTRY_FIXTURE = {
    "pkg/reg.py": (
        "from repro.registry import Registry\n"
        "THINGS = Registry('thing', modules=('pkg.impl',))\n"
        "def register_thing(name, *, override=False):\n"
        "    return THINGS.register(name, override=override)\n"
    ),
    "pkg/impl.py": (
        "from pkg.reg import register_thing\n"
        "@register_thing('alpha')\n"
        "def build_alpha():\n"
        "    return object()\n"
    ),
}


def test_registry_in_sync_passes(tmp_path):
    write_pkg(tmp_path, dict(_REGISTRY_FIXTURE))
    assert lint_paths([tmp_path]).ok


def test_reg_001_dead_lazy_load_entry(tmp_path):
    files = dict(_REGISTRY_FIXTURE)
    files["pkg/reg.py"] = files["pkg/reg.py"].replace(
        "'pkg.impl'", "'pkg.gone'"
    )
    write_pkg(tmp_path, files)
    result = lint_paths([tmp_path])
    assert "REG-001" in rule_ids(result)
    # The orphaned registration in pkg/impl.py is also reported.
    assert "REG-002" in rule_ids(result)
    assert result.exit_code == 1


def test_reg_001_entry_without_registration(tmp_path):
    files = dict(_REGISTRY_FIXTURE)
    files["pkg/impl.py"] = "def build_alpha():\n    return object()\n"
    write_pkg(tmp_path, files)
    result = lint_paths([tmp_path])
    assert rule_ids(result) == ["REG-001"]


def test_reg_002_orphan_registration(tmp_path):
    files = dict(_REGISTRY_FIXTURE)
    files["pkg/orphan.py"] = (
        "from pkg.reg import register_thing\n"
        "@register_thing('beta')\n"
        "def build_beta():\n"
        "    return object()\n"
    )
    write_pkg(tmp_path, files)
    result = lint_paths([tmp_path])
    assert rule_ids(result) == ["REG-002"]
    assert any("pkg.orphan" in f.message for f in result.findings)


def test_reg_002_reachable_through_package_init(tmp_path):
    # Seeding the package makes everything its __init__ imports
    # reachable — the idiom repro.forecasting uses.
    files = dict(_REGISTRY_FIXTURE)
    files["pkg/reg.py"] = files["pkg/reg.py"].replace(
        "modules=('pkg.impl',)", "modules=('pkg.sub',)"
    )
    files["pkg/sub/__init__.py"] = "from pkg.sub import impl\n"
    files["pkg/sub/impl.py"] = (
        "from pkg.reg import register_thing\n"
        "@register_thing('gamma')\n"
        "def build_gamma():\n"
        "    return object()\n"
    )
    del files["pkg/impl.py"]
    write_pkg(tmp_path, files)
    assert lint_paths([tmp_path]).ok


# ---------------------------------------------------------------------------
# Kernel-purity family
# ---------------------------------------------------------------------------

_KERNEL_HEADER = (
    "import numpy as np\n"
    "from repro.registry import Registry\n"
    "SLOT_KERNELS = Registry('slot kernel', modules=('kpkg.kern',))\n"
)


def _kernel_fixture(body: str) -> dict:
    return {"kpkg/kern.py": _KERNEL_HEADER + body}


def test_ker_001_rng_in_kernel_module(tmp_path):
    write_pkg(tmp_path, _kernel_fixture(
        "def kernel(x):\n"
        "    return x + np.random.default_rng(0).uniform()\n"
        "SLOT_KERNELS.register('bad', kernel)\n"
    ))
    result = lint_paths([tmp_path])
    assert "KER-001" in rule_ids(result)
    assert result.exit_code == 1


def test_ker_002_undocumented_param_mutation(tmp_path):
    write_pkg(tmp_path, _kernel_fixture(
        "def kernel(x, queues):\n"
        "    queues += 1.0\n"
        "    return x\n"
        "SLOT_KERNELS.register('bad', kernel)\n"
    ))
    result = lint_paths([tmp_path])
    assert "KER-002" in rule_ids(result)
    assert result.exit_code == 1


def test_ker_002_documented_mutation_passes(tmp_path):
    write_pkg(tmp_path, _kernel_fixture(
        "def kernel(x, queues):\n"
        '    """Advance queues in place."""\n'
        "    queues += 1.0\n"
        "    return x\n"
        "SLOT_KERNELS.register('ok', kernel)\n"
    ))
    assert lint_paths([tmp_path]).ok


def test_ker_002_out_param_passes(tmp_path):
    write_pkg(tmp_path, _kernel_fixture(
        "def kernel(x, out):\n"
        "    out[:] = x * 2\n"
        "    return out\n"
        "SLOT_KERNELS.register('ok', kernel)\n"
    ))
    assert lint_paths([tmp_path]).ok


def test_ker_003_axis_loop_in_kernel_module(tmp_path):
    write_pkg(tmp_path, _kernel_fixture(
        "def kernel(x, num_nodes):\n"
        "    total = 0.0\n"
        "    for i in range(num_nodes):\n"
        "        total += x[i]\n"
        "    return total\n"
        "SLOT_KERNELS.register('bad', kernel)\n"
    ))
    result = lint_paths([tmp_path])
    assert "KER-003" in rule_ids(result)
    assert result.exit_code == 1


def test_kernel_rules_ignore_non_kernel_modules(tmp_path):
    # Same code, but nothing registers into a kernel registry: the
    # kernel-purity rules must not apply.
    write_pkg(tmp_path, {"mpkg/metrics.py": (
        "import numpy as np\n"
        "def shuffle(values, num_nodes):\n"
        "    for i in range(num_nodes):\n"
        "        values[i] = np.random.default_rng(i).uniform()\n"
    )})
    assert lint_paths([tmp_path]).ok


# ---------------------------------------------------------------------------
# Dtype-discipline family
# ---------------------------------------------------------------------------


def test_dt_001_dtypeless_allocation(tmp_path):
    write_pkg(tmp_path, {"cpkg/core/ring.py": (
        "import numpy as np\n"
        "def make_buffer(n):\n"
        "    return np.zeros((n, 4))\n"
    )})
    result = lint_paths([tmp_path])
    assert rule_ids(result) == ["DT-001"]
    assert result.exit_code == 1


def test_dt_001_explicit_dtype_passes(tmp_path):
    write_pkg(tmp_path, {"cpkg/core/ring.py": (
        "import numpy as np\n"
        "def make_buffer(n):\n"
        "    a = np.zeros((n, 4), dtype=float)\n"
        "    b = np.asarray(a, dtype=np.float32)\n"
        "    c = np.full((n,), 0.0, float)\n"
        "    return a, b, c\n"
    )})
    assert lint_paths([tmp_path]).ok


def test_dt_001_scoped_to_fleet_scale_modules(tmp_path):
    write_pkg(tmp_path, {"cpkg/metrics/report.py": (
        "import numpy as np\n"
        "def make_buffer(n):\n"
        "    return np.zeros((n, 4))\n"
    )})
    assert lint_paths([tmp_path]).ok


# ---------------------------------------------------------------------------
# Dtype-dataflow family (DT-002)
# ---------------------------------------------------------------------------


def test_dt_002_bare_literal_mixed_with_state_dtype(tmp_path):
    write_pkg(tmp_path, {"fpkg/transmission/kern.py": (
        "import numpy as np\n"
        "def kernel(dtype):\n"
        "    col = np.zeros(4, dtype=dtype)\n"
        "    return col * 1.5\n"
    )})
    result = lint_paths([tmp_path])
    assert rule_ids(result) == ["DT-002"]
    assert result.findings[0].line == 4


def test_dt_002_sanctioned_cast_idioms_pass(tmp_path):
    write_pkg(tmp_path, {"fpkg/transmission/kern.py": (
        "import numpy as np\n"
        "def kernel(dtype, values):\n"
        "    col = np.zeros(4, dtype=dtype)\n"
        "    d = col.dtype\n"
        "    scaled = col * (np.asarray(values, dtype=d) + d.type(1.5))\n"
        "    col += 0.5\n"  # in-place never changes the target dtype
        "    return scaled\n"
    )})
    assert lint_paths([tmp_path]).ok


def test_dt_002_float64_value_mixed_with_state_dtype(tmp_path):
    write_pkg(tmp_path, {"fpkg/transmission/kern.py": (
        "import numpy as np\n"
        "def kernel(dtype):\n"
        "    col = np.zeros(4, dtype=dtype)\n"
        "    bias = np.zeros(4, dtype=np.float64)\n"
        "    return col + bias\n"
    )})
    result = lint_paths([tmp_path])
    assert rule_ids(result) == ["DT-002"]


def test_dt_002_propagates_through_calls(tmp_path):
    # The call-graph summary layer tags helper's parameter state-dtype
    # from its call site; the literal mix inside helper is flagged
    # without any annotation.
    write_pkg(tmp_path, {"fpkg/transmission/kern.py": (
        "import numpy as np\n"
        "def helper(column):\n"
        "    return column - 0.25\n"
        "def kernel(dtype):\n"
        "    col = np.zeros(4, dtype=dtype)\n"
        "    return helper(col)\n"
    )})
    result = lint_paths([tmp_path])
    assert rule_ids(result) == ["DT-002"]
    assert result.findings[0].line == 3


def test_dt_002_scoped_to_dataflow_modules(tmp_path):
    write_pkg(tmp_path, {"fpkg/metrics/report.py": (
        "import numpy as np\n"
        "def kernel(dtype):\n"
        "    col = np.zeros(4, dtype=dtype)\n"
        "    return col * 1.5\n"
    )})
    assert lint_paths([tmp_path]).ok


# ---------------------------------------------------------------------------
# Checkpoint coverage (STATE-003)
# ---------------------------------------------------------------------------


def test_state_003_runtime_mutation_not_in_state(tmp_path):
    write_pkg(tmp_path, {"pkg/comp.py": (
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self.count = 0\n"
        "        self.label = 'x'\n"
        "    def step(self):\n"
        "        self.count += 1\n"
        "    def get_state(self):\n"
        "        return {'label': self.label}\n"
        "    def set_state(self, state):\n"
        "        self.label = state['label']\n"
    )})
    result = lint_paths([tmp_path])
    assert rule_ids(result) == ["STATE-003"]
    (finding,) = result.findings
    assert "count" in finding.message
    assert finding.line == 6


def test_state_003_covered_by_getter_key_modulo_underscores(tmp_path):
    write_pkg(tmp_path, {"pkg/comp.py": (
        "class Good:\n"
        "    def step(self):\n"
        "        self._count += 1\n"
        "    def get_state(self):\n"
        "        return {'count': self._count}\n"
        "    def set_state(self, state):\n"
        "        self._count = state['count']\n"
    )})
    assert lint_paths([tmp_path]).ok


def test_state_003_covered_by_setter_assignment(tmp_path):
    # The key spelling differs from the attribute name, but the setter
    # restores the attribute — that is coverage.
    write_pkg(tmp_path, {"pkg/comp.py": (
        "class Alias:\n"
        "    def step(self):\n"
        "        self.steps_done += 1\n"
        "    def get_state(self):\n"
        "        return {'progress': self.steps_done}\n"
        "    def set_state(self, state):\n"
        "        self.steps_done = state['progress']\n"
    )})
    assert lint_paths([tmp_path]).ok


def test_state_003_open_state_sets_are_skipped(tmp_path):
    write_pkg(tmp_path, {"pkg/comp.py": (
        "class Dynamic:\n"
        "    def step(self):\n"
        "        self.cursor += 1\n"
        "    def get_state(self):\n"
        "        return {'a': 1, **self.extra()}\n"
        "    def set_state(self, state):\n"
        "        self.apply(state)\n"
        "    def extra(self):\n"
        "        return {}\n"
        "    def apply(self, state):\n"
        "        pass\n"
    )})
    assert lint_paths([tmp_path]).ok


def test_state_003_constructor_only_attrs_pass(tmp_path):
    write_pkg(tmp_path, {"pkg/comp.py": (
        "class Config:\n"
        "    def __init__(self, n):\n"
        "        self.n = n\n"
        "    def reset(self):\n"
        "        self.n = 0\n"
        "    def get_state(self):\n"
        "        return {'n': self.n}\n"
        "    def set_state(self, state):\n"
        "        self.n = state['n']\n"
    )})
    assert lint_paths([tmp_path]).ok


# ---------------------------------------------------------------------------
# Shared-memory family (SHM-001/2/3)
# ---------------------------------------------------------------------------

_SHM_HEADER = (
    "import numpy as np\n"
    "from multiprocessing import shared_memory\n"
)


def test_shm_001_segment_never_unlinked(tmp_path):
    write_pkg(tmp_path, {"spkg/pool.py": _SHM_HEADER + (
        "def leaky(nbytes):\n"
        "    seg = shared_memory.SharedMemory(create=True, size=nbytes)\n"
        "    seg.close()\n"
    )})
    result = lint_paths([tmp_path])
    assert "SHM-001" in rule_ids(result)
    assert any("unlink" in f.message for f in result.findings)


def test_shm_001_happy_path_only_cleanup_flagged(tmp_path):
    write_pkg(tmp_path, {"spkg/pool.py": _SHM_HEADER + (
        "def fragile(nbytes, work):\n"
        "    seg = shared_memory.SharedMemory(create=True, size=nbytes)\n"
        "    work(seg)\n"
        "    seg.close()\n"
        "    seg.unlink()\n"
    )})
    result = lint_paths([tmp_path])
    assert "SHM-001" in rule_ids(result)
    assert any("happy path" in f.message for f in result.findings)


def test_shm_001_finally_protected_cleanup_passes(tmp_path):
    write_pkg(tmp_path, {"spkg/pool.py": _SHM_HEADER + (
        "def safe(nbytes, work):\n"
        "    seg = shared_memory.SharedMemory(create=True, size=nbytes)\n"
        "    try:\n"
        "        work(seg)\n"
        "    finally:\n"
        "        seg.close()\n"
        "        seg.unlink()\n"
    )})
    assert lint_paths([tmp_path]).ok


def test_shm_001_collection_cleanup_in_finally_passes(tmp_path):
    write_pkg(tmp_path, {"spkg/pool.py": _SHM_HEADER + (
        "def safe(sizes, work):\n"
        "    segments = []\n"
        "    try:\n"
        "        for size in sizes:\n"
        "            segments.append(\n"
        "                shared_memory.SharedMemory(create=True, size=size)\n"
        "            )\n"
        "        work(segments)\n"
        "    finally:\n"
        "        for segment in segments:\n"
        "            segment.close()\n"
        "            segment.unlink()\n"
    )})
    assert lint_paths([tmp_path]).ok


def test_shm_001_escaping_segment_needs_ownership(tmp_path):
    write_pkg(tmp_path, {"spkg/pool.py": _SHM_HEADER + (
        "class Pool:\n"
        "    def make(self, nbytes):\n"
        "        seg = shared_memory.SharedMemory(create=True, size=nbytes)\n"
        "        self._seg = seg\n"
        "        return seg\n"
    )})
    result = lint_paths([tmp_path])
    assert "SHM-001" in rule_ids(result)
    assert any("escapes" in f.message for f in result.findings)


def test_shm_001_declared_ownership_passes(tmp_path):
    write_pkg(tmp_path, {"spkg/pool.py": _SHM_HEADER + (
        "class Pool:\n"
        "    def make(self, nbytes):\n"
        "        # repro: shm-owner(pool frees the segment on close)\n"
        "        seg = shared_memory.SharedMemory(create=True, size=nbytes)\n"
        "        self._seg = seg\n"
        "        return seg\n"
    )})
    assert lint_paths([tmp_path]).ok


def test_shm_002_view_write_without_owner(tmp_path):
    write_pkg(tmp_path, {"spkg/pool.py": _SHM_HEADER + (
        "def writer(seg, lo, hi):\n"
        "    view = np.ndarray((8,), dtype=np.float32, buffer=seg.buf)\n"
        "    view[lo:hi] = 1\n"
    )})
    result = lint_paths([tmp_path])
    assert rule_ids(result) == ["SHM-002"]


def test_shm_002_decorated_range_owner_passes(tmp_path):
    write_pkg(tmp_path, {"spkg/pool.py": _SHM_HEADER + (
        "def shm_range_owner(ranges):\n"
        "    def mark(func):\n"
        "        return func\n"
        "    return mark\n"
        "@shm_range_owner('writes only its assigned [lo, hi)')\n"
        "def writer(seg, lo, hi):\n"
        "    view = np.ndarray((8,), dtype=np.float32, buffer=seg.buf)\n"
        "    view[lo:hi] = 1\n"
    )})
    assert lint_paths([tmp_path]).ok


def test_shm_002_owner_comment_on_write_line_passes(tmp_path):
    write_pkg(tmp_path, {"spkg/pool.py": _SHM_HEADER + (
        "def writer(seg, lo, hi):\n"
        "    view = np.ndarray((8,), dtype=np.float32, buffer=seg.buf)\n"
        "    # repro: shm-owner(single writer before workers spawn)\n"
        "    view[lo:hi] = 1\n"
    )})
    assert lint_paths([tmp_path]).ok


def test_shm_002_view_through_helper_is_tracked(tmp_path):
    # The helper returns an shm-backed view; the dataflow layer tags
    # the caller's local VIEW through the call summary.
    write_pkg(tmp_path, {"spkg/pool.py": _SHM_HEADER + (
        "def as_view(seg, shape):\n"
        "    return np.ndarray(shape, dtype=np.float32, buffer=seg.buf)\n"
        "def writer(seg):\n"
        "    out = as_view(seg, (8,))\n"
        "    out[:] = 0\n"
    )})
    result = lint_paths([tmp_path])
    assert rule_ids(result) == ["SHM-002"]


def test_shm_003_ndarray_in_pipe_payload(tmp_path):
    write_pkg(tmp_path, {"spkg/pool.py": _SHM_HEADER + (
        "def request(conn, dtype):\n"
        "    arr = np.zeros(4, dtype=dtype)\n"
        "    conn.send(('data', arr))\n"
    )})
    result = lint_paths([tmp_path])
    assert rule_ids(result) == ["SHM-003"]
    assert "arr" in result.findings[0].message


def test_shm_003_range_payloads_pass(tmp_path):
    write_pkg(tmp_path, {"spkg/pool.py": _SHM_HEADER + (
        "def request(conn, ranges):\n"
        "    conn.send(('collect', [(int(lo), int(hi)) "
        "for lo, hi in ranges]))\n"
    )})
    assert lint_paths([tmp_path]).ok


def test_shm_rules_ignore_modules_without_shm_import(tmp_path):
    write_pkg(tmp_path, {"spkg/other.py": (
        "import numpy as np\n"
        "def writer(buf):\n"
        "    view = np.ndarray((8,), dtype=np.float32, buffer=buf)\n"
        "    view[:] = 1\n"
    )})
    assert lint_paths([tmp_path]).ok


# ---------------------------------------------------------------------------
# Waivers
# ---------------------------------------------------------------------------

_DT_VIOLATION = (
    "import numpy as np\n"
    "def make_buffer(n):\n"
    "    return np.zeros((n, 4))\n"
)


def test_trailing_waiver_with_reason_suppresses(tmp_path):
    write_pkg(tmp_path, {"cpkg/core/ring.py": _DT_VIOLATION.replace(
        "np.zeros((n, 4))",
        "np.zeros((n, 4))  # repro: noqa DT-001(fixture says so)",
    )})
    result = lint_paths([tmp_path])
    assert result.ok
    assert len(result.waived) == 1
    assert result.waived[0].waive_reason == "fixture says so"


def test_own_line_waiver_applies_to_next_line(tmp_path):
    write_pkg(tmp_path, {"cpkg/core/ring.py": _DT_VIOLATION.replace(
        "    return np.zeros((n, 4))",
        "    # repro: noqa DT-001(next-line form)\n"
        "    return np.zeros((n, 4))",
    )})
    result = lint_paths([tmp_path])
    assert result.ok
    assert result.waived[0].waive_reason == "next-line form"


def test_bare_waiver_suppresses_nothing_and_is_flagged(tmp_path):
    write_pkg(tmp_path, {"cpkg/core/ring.py": _DT_VIOLATION.replace(
        "np.zeros((n, 4))",
        "np.zeros((n, 4))  # repro: noqa DT-001",
    )})
    result = lint_paths([tmp_path])
    assert sorted(rule_ids(result)) == ["DT-001", "WAIVE-001"]
    assert result.exit_code == 1


def test_waiver_for_other_rule_does_not_suppress(tmp_path):
    write_pkg(tmp_path, {"cpkg/core/ring.py": _DT_VIOLATION.replace(
        "np.zeros((n, 4))",
        "np.zeros((n, 4))  # repro: noqa KER-001(wrong rule)",
    )})
    result = lint_paths([tmp_path])
    assert rule_ids(result) == ["DT-001"]


def test_parse_waivers_multiple_entries(tmp_path):
    write_pkg(tmp_path, {"pkg/mod.py": (
        "x = 1  # repro: noqa DT-001(first) KER-003(second)\n"
    )})
    context = build_context([tmp_path])
    waivers, problems = parse_waivers(context.modules["pkg.mod"])
    assert waivers[1] == {"DT-001": "first", "KER-003": "second"}
    assert problems == []


def test_waiver_inside_string_literal_is_not_a_waiver(tmp_path):
    write_pkg(tmp_path, {"pkg/mod.py": (
        "TEXT = '# repro: noqa DT-001'\n"
    )})
    result = lint_paths([tmp_path])
    assert result.ok  # no WAIVE-001: it's a string, not a comment


_DECORATED_STATE_VIOLATION = (
    "def register(cls):\n"
    "    return cls\n"
    "@register\n"
    "class Broken:\n"
    "    def get_state(self):{waiver}\n"
    "        return {{'a': 1}}\n"
)


def test_trailing_waiver_on_decorated_def_suppresses(tmp_path):
    # STATE-001 anchors at the ``def`` line, so a trailing waiver
    # there covers it even when the class carries decorators.
    write_pkg(tmp_path, {"pkg/comp.py": _DECORATED_STATE_VIOLATION.format(
        waiver="  # repro: noqa STATE-001(fixture)",
    )})
    result = lint_paths([tmp_path])
    assert result.ok
    assert result.waived[0].rule_id == "STATE-001"


def test_own_line_waiver_above_decorator_misses_def_line(tmp_path):
    # An own-line waiver covers only the *next* line — placed above
    # the decorator it waives the decorator line, not the def.
    write_pkg(tmp_path, {"pkg/comp.py": (
        "def register(cls):\n"
        "    return cls\n"
        "# repro: noqa STATE-001(wrong line)\n"
        "@register\n"
        "class Broken:\n"
        "    def get_state(self):\n"
        "        return {'a': 1}\n"
    )})
    result = lint_paths([tmp_path])
    assert "STATE-001" in rule_ids(result)


def test_multi_rule_waiver_on_single_line(tmp_path):
    # One expression that fires two rules on the same line; one
    # own-line waiver naming both suppresses both.
    write_pkg(tmp_path, {"cpkg/transmission/kern.py": (
        "import numpy as np\n"
        "def kernel(dtype):\n"
        "    col = np.zeros(4, dtype=dtype)\n"
        "    # repro: noqa DT-001(fixture) DT-002(fixture)\n"
        "    return col + np.zeros(4)\n"
    )})
    result = lint_paths([tmp_path])
    assert result.ok
    assert sorted(f.rule_id for f in result.waived) == ["DT-001", "DT-002"]


def test_waivers_apply_to_new_rules_in_fixture_packages(tmp_path):
    write_pkg(tmp_path, {"spkg/pool.py": (
        "import numpy as np\n"
        "from multiprocessing import shared_memory\n"
        "def writer(seg, lo, hi):\n"
        "    view = np.ndarray((8,), dtype=np.float32, buffer=seg.buf)\n"
        "    view[lo:hi] = 1  # repro: noqa SHM-002(fixture waiver)\n"
    )})
    result = lint_paths([tmp_path])
    assert result.ok
    assert result.waived[0].rule_id == "SHM-002"
    assert result.waived[0].waive_reason == "fixture waiver"


# ---------------------------------------------------------------------------
# Incremental cache and --changed filtering
# ---------------------------------------------------------------------------


_CLEAN_MOD = "import numpy as np\ndef ok():\n    return np.float32(0)\n"


def _cache_pkg(tmp_path):
    return write_pkg(tmp_path, {
        "ipkg/a.py": _CLEAN_MOD,
        "ipkg/b.py": _CLEAN_MOD,
    })


def test_cache_reuses_unchanged_files(tmp_path):
    pkg = _cache_pkg(tmp_path)
    cache = tmp_path / "lint-cache.json"
    first = lint_paths([pkg], cache_path=cache)
    assert first.files_reused == 0
    assert first.files_relinted > 0
    second = lint_paths([pkg], cache_path=cache)
    assert second.files_relinted == 0
    assert second.files_reused == first.files_relinted
    assert [str(f) for f in second.findings] == [
        str(f) for f in first.findings
    ]


def test_cache_relints_only_the_changed_file(tmp_path):
    pkg = _cache_pkg(tmp_path)
    cache = tmp_path / "lint-cache.json"
    lint_paths([pkg], cache_path=cache)
    target = pkg / "ipkg" / "a.py"
    target.write_text(target.read_text() + "# trailing comment\n")
    result = lint_paths([pkg], cache_path=cache)
    assert result.files_relinted == 1


def test_cache_preserves_cached_findings_and_waivers(tmp_path):
    pkg = write_pkg(tmp_path, {
        "cpkg/core/ring.py": (
            "import numpy as np\n"
            "def make_buffer(n):\n"
            "    return np.zeros((n, 4))\n"
        ),
        "cpkg/transmission/other.py": (
            "import numpy as np\n"
            "def make(n):\n"
            "    return np.zeros(n)  # repro: noqa DT-001(fixture)\n"
        ),
    })
    cache = tmp_path / "lint-cache.json"
    first = lint_paths([pkg], cache_path=cache)
    second = lint_paths([pkg], cache_path=cache)
    assert second.files_relinted == 0
    assert rule_ids(second) == rule_ids(first) == ["DT-001"]
    assert len(second.waived) == len(first.waived) == 1


def test_changed_filter_restricts_findings(tmp_path):
    pkg = write_pkg(tmp_path, {
        "cpkg/core/ring.py": (
            "import numpy as np\n"
            "def make_buffer(n):\n"
            "    return np.zeros((n, 4))\n"
        ),
        "cpkg/transmission/slab.py": (
            "import numpy as np\n"
            "def make_slab(n):\n"
            "    return np.zeros((n, 2))\n"
        ),
    })
    changed = {(pkg / "cpkg" / "transmission" / "slab.py").resolve()}
    result = lint_paths([pkg], changed=changed)
    assert rule_ids(result) == ["DT-001"]
    assert all(f.path.endswith("slab.py") for f in result.findings)


# ---------------------------------------------------------------------------
# Framework: parse failures, reporters, CLI
# ---------------------------------------------------------------------------


def test_parse_001_on_syntax_error(tmp_path):
    write_pkg(tmp_path, {"pkg/broken.py": "def oops(:\n"})
    result = lint_paths([tmp_path])
    assert rule_ids(result) == ["PARSE-001"]
    assert result.exit_code == 1


def test_json_report_schema(tmp_path):
    write_pkg(tmp_path, {"cpkg/core/ring.py": _DT_VIOLATION})
    result = lint_paths([tmp_path])
    payload = json.loads(render_json(result))
    assert payload["version"] == 1
    assert payload["ok"] is False
    assert isinstance(payload["files"], int)
    assert "DT-001" in payload["rules"]
    (finding,) = payload["findings"]
    assert finding["rule"] == "DT-001"
    assert finding["path"].endswith("ring.py")
    assert finding["line"] == 3
    assert "dtype" in finding["message"]
    assert payload["waived"] == []


def test_text_report_format(tmp_path):
    write_pkg(tmp_path, {"cpkg/core/ring.py": _DT_VIOLATION})
    text = render_text(lint_paths([tmp_path]))
    assert "ring.py:3: DT-001" in text
    assert text.strip().endswith("(0 waived, 15 rules)")


def test_rules_filter_restricts_scope(tmp_path):
    write_pkg(tmp_path, {
        "cpkg/core/ring.py": _DT_VIOLATION,
        "pkg/comp.py": (
            "class Broken:\n"
            "    def get_state(self):\n"
            "        return {}\n"
        ),
    })
    result = lint_paths([tmp_path], rules=["STATE-001"])
    assert rule_ids(result) == ["STATE-001"]
    assert result.rules_run == ("STATE-001",)


def test_cli_lint_exits_nonzero_on_violation(tmp_path, capsys):
    write_pkg(tmp_path, {"cpkg/core/ring.py": _DT_VIOLATION})
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DT-001" in out


def test_cli_lint_clean_tree_exits_zero(tmp_path, capsys):
    write_pkg(tmp_path, {"pkg/mod.py": "x = 1\n"})
    assert main(["lint", str(tmp_path)]) == 0


def test_cli_lint_json_format(tmp_path, capsys):
    write_pkg(tmp_path, {"pkg/mod.py": "x = 1\n"})
    assert main(["lint", str(tmp_path), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True


def test_cli_lint_unknown_rule_exits_two(tmp_path, capsys):
    write_pkg(tmp_path, {"pkg/mod.py": "x = 1\n"})
    assert main(["lint", str(tmp_path), "--rules", "NOPE-999"]) == 2
    assert "NOPE-999" in capsys.readouterr().err


def test_cli_list_shows_lint_rules(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "lint rules (repro lint):" in out
    for rule_id in ("STATE-001", "REG-001", "KER-001", "DT-001", "RT-001"):
        assert rule_id in out


def test_github_report_format(tmp_path):
    write_pkg(tmp_path, {"cpkg/core/ring.py": (
        "import numpy as np\n"
        "def make_buffer(n):\n"
        "    return np.zeros((n, 4))\n"
    )})
    result = lint_paths([tmp_path])
    out = render_github(result)
    assert out.startswith("::error file=")
    assert "title=DT-001" in out
    assert ",line=3," in out


def test_github_report_escapes_newlines():
    from repro.lint.findings import Finding

    result = LintResult(
        findings=[
            Finding(
                path="pkg/mod.py",
                line=2,
                rule_id="DT-001",
                message="bad%\nmessage",
            )
        ],
        files=1,
        rules_run=("DT-001",),
    )
    out = render_github(result)
    assert "%0A" in out and "%25" in out
    assert "\n" not in out.split("::error", 2)[-1].rstrip("\n")


def test_cli_lint_cache_and_changed_flags(tmp_path, capsys):
    write_pkg(tmp_path, {"ipkg/a.py": _CLEAN_MOD})
    cache = tmp_path / "cache.json"
    assert main(["lint", str(tmp_path), "--cache", str(cache)]) == 0
    assert cache.exists()
    assert main(["lint", str(tmp_path), "--cache", str(cache)]) == 0
    capsys.readouterr()


def test_cli_lint_changed_bad_ref_exits_two(tmp_path, capsys):
    write_pkg(tmp_path, {"ipkg/a.py": _CLEAN_MOD})
    code = main([
        "lint", str(tmp_path), "--changed", "no-such-ref-xyzzy",
    ])
    assert code == 2
    assert "no-such-ref-xyzzy" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Guard canaries and the shm sanitizer
# ---------------------------------------------------------------------------


def test_guard_canary_tear_detected():
    from multiprocessing import shared_memory

    import numpy as np

    import repro.simulation.shard_pool as sp
    from repro.exceptions import SimulationError

    seg = shared_memory.SharedMemory(
        create=True, size=64 + 2 * sp._GUARD_NBYTES
    )
    try:
        head, tail = sp._guard_views(seg, 64)
        head[:] = sp._canary(3)
        tail[:] = sp._canary(3)
        pool = object.__new__(sp.ShardPool)
        sp.ShardPool._verify_guards(pool, [seg], [64], 3)  # intact
        tail[0] ^= np.uint64(1)
        with pytest.raises(SimulationError, match="canary torn"):
            sp.ShardPool._verify_guards(pool, [seg], [64], 3)
    finally:
        seg.close()
        seg.unlink()


def test_guard_canary_is_generation_specific():
    import numpy as np

    import repro.simulation.shard_pool as sp

    assert not np.array_equal(sp._canary(1), sp._canary(2))
    assert np.array_equal(sp._canary(7), sp._canary(7))


@pytest.mark.slow
def test_sanitizer_detects_seeded_segment_leak(monkeypatch):
    from multiprocessing import shared_memory

    import repro.simulation.shard_pool as sp
    from repro.lint import sanitize

    real_collect = sp.ShardPool.collect
    leaked = []

    def leaky_collect(self, *args, **kwargs):
        seg = shared_memory.SharedMemory(create=True, size=64)
        leaked.append(seg)
        return real_collect(self, *args, **kwargs)

    monkeypatch.setattr(sp.ShardPool, "collect", leaky_collect)
    try:
        findings = sanitize._check_leak_accounting()
    finally:
        for seg in leaked:
            seg.close()
            seg.unlink()
    assert any(
        f.rule_id == "RT-004" and "/dev/shm" in f.message
        for f in findings
    )


@pytest.mark.slow
def test_sanitizer_reports_torn_canary_as_rt_005(monkeypatch):
    import repro.simulation.shard_pool as sp
    from repro.exceptions import SimulationError
    from repro.lint import sanitize

    def torn_collect(self, *args, **kwargs):
        raise SimulationError(
            "shard pool guard canary torn after collect generation 1"
        )

    monkeypatch.setattr(sp.ShardPool, "collect", torn_collect)
    findings = sanitize._check_guard_stress()
    assert [f.rule_id for f in findings] == ["RT-005"]
    assert "tore a canary" in findings[0].message


@pytest.mark.slow
def test_sanitize_checks_pass_on_shipped_pool():
    findings = run_sanitize_checks()
    assert findings == [], "\n".join(str(f) for f in findings)


@pytest.mark.slow
def test_cli_lint_sanitize_flag(capsys):
    assert main(["lint", "--sanitize"]) == 0
    out = capsys.readouterr().out
    assert "17 rules" in out


# ---------------------------------------------------------------------------
# The shipped tree and the runtime contracts
# ---------------------------------------------------------------------------


def test_shipped_tree_lints_clean():
    result = lint_paths([default_target()])
    assert result.findings == [], "\n".join(
        str(f) for f in result.findings
    )
    # Every shipped waiver carries a written reason.
    assert result.waived, "expected the tree to document some waivers"
    for finding in result.waived:
        assert finding.waive_reason


def test_every_rule_has_id_family_description():
    for rule_id in LINT_RULES.available():
        rule = LINT_RULES.get(rule_id)
        assert rule.rule_id == rule_id
        assert rule.family
        assert rule.description
        assert rule.scope in ("static", "runtime", "sanitize")
        assert rule.granularity in ("file", "tree")


@pytest.mark.slow
def test_runtime_contracts_hold_for_all_components():
    findings = run_runtime_checks()
    assert findings == [], "\n".join(str(f) for f in findings)


@pytest.mark.slow
def test_cli_lint_runtime_flag(capsys):
    assert main(["lint", "--runtime"]) == 0
    out = capsys.readouterr().out
    assert "18 rules" in out
