"""Tests for ``repro lint`` — the AST-based invariant checker.

Each rule family gets a seeded-violation fixture (proving ``repro
lint`` exits non-zero on it) and a clean fixture (proving no false
positive), plus waiver semantics, the JSON reporter schema, the
runtime contract verifier, and the meta-test that the shipped tree
itself lints clean.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    LINT_RULES,
    build_context,
    default_target,
    lint_paths,
    parse_waivers,
    render_json,
    render_text,
    run_runtime_checks,
)
from repro.lint.runner import LintResult


def write_pkg(root: Path, files: dict) -> Path:
    """Materialize ``{relative/path.py: source}`` as a package tree."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        for parent in path.relative_to(root).parents:
            if str(parent) != ".":
                init = root / parent / "__init__.py"
                if not init.exists():
                    init.write_text("")
        path.write_text(source)
    return root


def rule_ids(result: LintResult):
    return sorted({f.rule_id for f in result.findings})


# ---------------------------------------------------------------------------
# State-contract family
# ---------------------------------------------------------------------------


def test_state_001_missing_setter_fails(tmp_path):
    write_pkg(tmp_path, {
        "pkg/comp.py": (
            "class Broken:\n"
            "    def get_state(self):\n"
            "        return {'a': 1}\n"
        ),
    })
    result = lint_paths([tmp_path])
    assert "STATE-001" in rule_ids(result)
    assert result.exit_code == 1


def test_state_001_hook_pair_also_checked(tmp_path):
    write_pkg(tmp_path, {
        "pkg/comp.py": (
            "class Broken:\n"
            "    def _state(self):\n"
            "        return {'w': 2.0}\n"
        ),
    })
    result = lint_paths([tmp_path])
    assert "STATE-001" in rule_ids(result)


def test_state_002_key_read_but_never_written(tmp_path):
    write_pkg(tmp_path, {
        "pkg/comp.py": (
            "class Mismatch:\n"
            "    def get_state(self):\n"
            "        return {'a': self.a}\n"
            "    def set_state(self, state):\n"
            "        self.a = state['b']\n"
        ),
    })
    result = lint_paths([tmp_path])
    findings = [f for f in result.findings if f.rule_id == "STATE-002"]
    assert len(findings) == 2  # 'b' never written, 'a' never read
    assert any("'b'" in f.message for f in findings)


def test_state_002_symmetric_keys_pass(tmp_path):
    write_pkg(tmp_path, {
        "pkg/comp.py": (
            "class Good:\n"
            "    def get_state(self):\n"
            "        return {'a': self.a, 'b': self.b}\n"
            "    def set_state(self, state):\n"
            "        self.a = state['a']\n"
            "        self.b = state.get('b')\n"
        ),
    })
    assert lint_paths([tmp_path]).ok


def test_state_002_open_sets_never_flag(tmp_path):
    # Spread on the write side, forwarding on the read side: both
    # sides open, so dynamic composition is never a false positive.
    write_pkg(tmp_path, {
        "pkg/comp.py": (
            "class Dynamic:\n"
            "    def get_state(self):\n"
            "        return {'a': 1, **self._state()}\n"
            "    def set_state(self, state):\n"
            "        self._load_state(state)\n"
            "    def _state(self):\n"
            "        return {}\n"
            "    def _load_state(self, state):\n"
            "        pass\n"
        ),
    })
    assert lint_paths([tmp_path]).ok


def test_state_002_build_then_return_idiom(tmp_path):
    write_pkg(tmp_path, {
        "pkg/comp.py": (
            "class Builder:\n"
            "    def get_state(self):\n"
            "        state = {'a': 1}\n"
            "        if self.extra is not None:\n"
            "            state['extra'] = self.extra\n"
            "        return state\n"
            "    def set_state(self, state):\n"
            "        self.a = state['a']\n"
            "        self.extra = state.get('extra')\n"
        ),
    })
    assert lint_paths([tmp_path]).ok


# ---------------------------------------------------------------------------
# Registry family
# ---------------------------------------------------------------------------

_REGISTRY_FIXTURE = {
    "pkg/reg.py": (
        "from repro.registry import Registry\n"
        "THINGS = Registry('thing', modules=('pkg.impl',))\n"
        "def register_thing(name, *, override=False):\n"
        "    return THINGS.register(name, override=override)\n"
    ),
    "pkg/impl.py": (
        "from pkg.reg import register_thing\n"
        "@register_thing('alpha')\n"
        "def build_alpha():\n"
        "    return object()\n"
    ),
}


def test_registry_in_sync_passes(tmp_path):
    write_pkg(tmp_path, dict(_REGISTRY_FIXTURE))
    assert lint_paths([tmp_path]).ok


def test_reg_001_dead_lazy_load_entry(tmp_path):
    files = dict(_REGISTRY_FIXTURE)
    files["pkg/reg.py"] = files["pkg/reg.py"].replace(
        "'pkg.impl'", "'pkg.gone'"
    )
    write_pkg(tmp_path, files)
    result = lint_paths([tmp_path])
    assert "REG-001" in rule_ids(result)
    # The orphaned registration in pkg/impl.py is also reported.
    assert "REG-002" in rule_ids(result)
    assert result.exit_code == 1


def test_reg_001_entry_without_registration(tmp_path):
    files = dict(_REGISTRY_FIXTURE)
    files["pkg/impl.py"] = "def build_alpha():\n    return object()\n"
    write_pkg(tmp_path, files)
    result = lint_paths([tmp_path])
    assert rule_ids(result) == ["REG-001"]


def test_reg_002_orphan_registration(tmp_path):
    files = dict(_REGISTRY_FIXTURE)
    files["pkg/orphan.py"] = (
        "from pkg.reg import register_thing\n"
        "@register_thing('beta')\n"
        "def build_beta():\n"
        "    return object()\n"
    )
    write_pkg(tmp_path, files)
    result = lint_paths([tmp_path])
    assert rule_ids(result) == ["REG-002"]
    assert any("pkg.orphan" in f.message for f in result.findings)


def test_reg_002_reachable_through_package_init(tmp_path):
    # Seeding the package makes everything its __init__ imports
    # reachable — the idiom repro.forecasting uses.
    files = dict(_REGISTRY_FIXTURE)
    files["pkg/reg.py"] = files["pkg/reg.py"].replace(
        "modules=('pkg.impl',)", "modules=('pkg.sub',)"
    )
    files["pkg/sub/__init__.py"] = "from pkg.sub import impl\n"
    files["pkg/sub/impl.py"] = (
        "from pkg.reg import register_thing\n"
        "@register_thing('gamma')\n"
        "def build_gamma():\n"
        "    return object()\n"
    )
    del files["pkg/impl.py"]
    write_pkg(tmp_path, files)
    assert lint_paths([tmp_path]).ok


# ---------------------------------------------------------------------------
# Kernel-purity family
# ---------------------------------------------------------------------------

_KERNEL_HEADER = (
    "import numpy as np\n"
    "from repro.registry import Registry\n"
    "SLOT_KERNELS = Registry('slot kernel', modules=('kpkg.kern',))\n"
)


def _kernel_fixture(body: str) -> dict:
    return {"kpkg/kern.py": _KERNEL_HEADER + body}


def test_ker_001_rng_in_kernel_module(tmp_path):
    write_pkg(tmp_path, _kernel_fixture(
        "def kernel(x):\n"
        "    return x + np.random.default_rng(0).uniform()\n"
        "SLOT_KERNELS.register('bad', kernel)\n"
    ))
    result = lint_paths([tmp_path])
    assert "KER-001" in rule_ids(result)
    assert result.exit_code == 1


def test_ker_002_undocumented_param_mutation(tmp_path):
    write_pkg(tmp_path, _kernel_fixture(
        "def kernel(x, queues):\n"
        "    queues += 1.0\n"
        "    return x\n"
        "SLOT_KERNELS.register('bad', kernel)\n"
    ))
    result = lint_paths([tmp_path])
    assert "KER-002" in rule_ids(result)
    assert result.exit_code == 1


def test_ker_002_documented_mutation_passes(tmp_path):
    write_pkg(tmp_path, _kernel_fixture(
        "def kernel(x, queues):\n"
        '    """Advance queues in place."""\n'
        "    queues += 1.0\n"
        "    return x\n"
        "SLOT_KERNELS.register('ok', kernel)\n"
    ))
    assert lint_paths([tmp_path]).ok


def test_ker_002_out_param_passes(tmp_path):
    write_pkg(tmp_path, _kernel_fixture(
        "def kernel(x, out):\n"
        "    out[:] = x * 2\n"
        "    return out\n"
        "SLOT_KERNELS.register('ok', kernel)\n"
    ))
    assert lint_paths([tmp_path]).ok


def test_ker_003_axis_loop_in_kernel_module(tmp_path):
    write_pkg(tmp_path, _kernel_fixture(
        "def kernel(x, num_nodes):\n"
        "    total = 0.0\n"
        "    for i in range(num_nodes):\n"
        "        total += x[i]\n"
        "    return total\n"
        "SLOT_KERNELS.register('bad', kernel)\n"
    ))
    result = lint_paths([tmp_path])
    assert "KER-003" in rule_ids(result)
    assert result.exit_code == 1


def test_kernel_rules_ignore_non_kernel_modules(tmp_path):
    # Same code, but nothing registers into a kernel registry: the
    # kernel-purity rules must not apply.
    write_pkg(tmp_path, {"mpkg/metrics.py": (
        "import numpy as np\n"
        "def shuffle(values, num_nodes):\n"
        "    for i in range(num_nodes):\n"
        "        values[i] = np.random.default_rng(i).uniform()\n"
    )})
    assert lint_paths([tmp_path]).ok


# ---------------------------------------------------------------------------
# Dtype-discipline family
# ---------------------------------------------------------------------------


def test_dt_001_dtypeless_allocation(tmp_path):
    write_pkg(tmp_path, {"cpkg/core/ring.py": (
        "import numpy as np\n"
        "def make_buffer(n):\n"
        "    return np.zeros((n, 4))\n"
    )})
    result = lint_paths([tmp_path])
    assert rule_ids(result) == ["DT-001"]
    assert result.exit_code == 1


def test_dt_001_explicit_dtype_passes(tmp_path):
    write_pkg(tmp_path, {"cpkg/core/ring.py": (
        "import numpy as np\n"
        "def make_buffer(n):\n"
        "    a = np.zeros((n, 4), dtype=float)\n"
        "    b = np.asarray(a, dtype=np.float32)\n"
        "    c = np.full((n,), 0.0, float)\n"
        "    return a, b, c\n"
    )})
    assert lint_paths([tmp_path]).ok


def test_dt_001_scoped_to_fleet_scale_modules(tmp_path):
    write_pkg(tmp_path, {"cpkg/metrics/report.py": (
        "import numpy as np\n"
        "def make_buffer(n):\n"
        "    return np.zeros((n, 4))\n"
    )})
    assert lint_paths([tmp_path]).ok


# ---------------------------------------------------------------------------
# Waivers
# ---------------------------------------------------------------------------

_DT_VIOLATION = (
    "import numpy as np\n"
    "def make_buffer(n):\n"
    "    return np.zeros((n, 4))\n"
)


def test_trailing_waiver_with_reason_suppresses(tmp_path):
    write_pkg(tmp_path, {"cpkg/core/ring.py": _DT_VIOLATION.replace(
        "np.zeros((n, 4))",
        "np.zeros((n, 4))  # repro: noqa DT-001(fixture says so)",
    )})
    result = lint_paths([tmp_path])
    assert result.ok
    assert len(result.waived) == 1
    assert result.waived[0].waive_reason == "fixture says so"


def test_own_line_waiver_applies_to_next_line(tmp_path):
    write_pkg(tmp_path, {"cpkg/core/ring.py": _DT_VIOLATION.replace(
        "    return np.zeros((n, 4))",
        "    # repro: noqa DT-001(next-line form)\n"
        "    return np.zeros((n, 4))",
    )})
    result = lint_paths([tmp_path])
    assert result.ok
    assert result.waived[0].waive_reason == "next-line form"


def test_bare_waiver_suppresses_nothing_and_is_flagged(tmp_path):
    write_pkg(tmp_path, {"cpkg/core/ring.py": _DT_VIOLATION.replace(
        "np.zeros((n, 4))",
        "np.zeros((n, 4))  # repro: noqa DT-001",
    )})
    result = lint_paths([tmp_path])
    assert sorted(rule_ids(result)) == ["DT-001", "WAIVE-001"]
    assert result.exit_code == 1


def test_waiver_for_other_rule_does_not_suppress(tmp_path):
    write_pkg(tmp_path, {"cpkg/core/ring.py": _DT_VIOLATION.replace(
        "np.zeros((n, 4))",
        "np.zeros((n, 4))  # repro: noqa KER-001(wrong rule)",
    )})
    result = lint_paths([tmp_path])
    assert rule_ids(result) == ["DT-001"]


def test_parse_waivers_multiple_entries(tmp_path):
    write_pkg(tmp_path, {"pkg/mod.py": (
        "x = 1  # repro: noqa DT-001(first) KER-003(second)\n"
    )})
    context = build_context([tmp_path])
    waivers, problems = parse_waivers(context.modules["pkg.mod"])
    assert waivers[1] == {"DT-001": "first", "KER-003": "second"}
    assert problems == []


def test_waiver_inside_string_literal_is_not_a_waiver(tmp_path):
    write_pkg(tmp_path, {"pkg/mod.py": (
        "TEXT = '# repro: noqa DT-001'\n"
    )})
    result = lint_paths([tmp_path])
    assert result.ok  # no WAIVE-001: it's a string, not a comment


# ---------------------------------------------------------------------------
# Framework: parse failures, reporters, CLI
# ---------------------------------------------------------------------------


def test_parse_001_on_syntax_error(tmp_path):
    write_pkg(tmp_path, {"pkg/broken.py": "def oops(:\n"})
    result = lint_paths([tmp_path])
    assert rule_ids(result) == ["PARSE-001"]
    assert result.exit_code == 1


def test_json_report_schema(tmp_path):
    write_pkg(tmp_path, {"cpkg/core/ring.py": _DT_VIOLATION})
    result = lint_paths([tmp_path])
    payload = json.loads(render_json(result))
    assert payload["version"] == 1
    assert payload["ok"] is False
    assert isinstance(payload["files"], int)
    assert "DT-001" in payload["rules"]
    (finding,) = payload["findings"]
    assert finding["rule"] == "DT-001"
    assert finding["path"].endswith("ring.py")
    assert finding["line"] == 3
    assert "dtype" in finding["message"]
    assert payload["waived"] == []


def test_text_report_format(tmp_path):
    write_pkg(tmp_path, {"cpkg/core/ring.py": _DT_VIOLATION})
    text = render_text(lint_paths([tmp_path]))
    assert "ring.py:3: DT-001" in text
    assert text.strip().endswith("(0 waived, 10 rules)")


def test_rules_filter_restricts_scope(tmp_path):
    write_pkg(tmp_path, {
        "cpkg/core/ring.py": _DT_VIOLATION,
        "pkg/comp.py": (
            "class Broken:\n"
            "    def get_state(self):\n"
            "        return {}\n"
        ),
    })
    result = lint_paths([tmp_path], rules=["STATE-001"])
    assert rule_ids(result) == ["STATE-001"]
    assert result.rules_run == ("STATE-001",)


def test_cli_lint_exits_nonzero_on_violation(tmp_path, capsys):
    write_pkg(tmp_path, {"cpkg/core/ring.py": _DT_VIOLATION})
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DT-001" in out


def test_cli_lint_clean_tree_exits_zero(tmp_path, capsys):
    write_pkg(tmp_path, {"pkg/mod.py": "x = 1\n"})
    assert main(["lint", str(tmp_path)]) == 0


def test_cli_lint_json_format(tmp_path, capsys):
    write_pkg(tmp_path, {"pkg/mod.py": "x = 1\n"})
    assert main(["lint", str(tmp_path), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True


def test_cli_lint_unknown_rule_exits_two(tmp_path, capsys):
    write_pkg(tmp_path, {"pkg/mod.py": "x = 1\n"})
    assert main(["lint", str(tmp_path), "--rules", "NOPE-999"]) == 2
    assert "NOPE-999" in capsys.readouterr().err


def test_cli_list_shows_lint_rules(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "lint rules (repro lint):" in out
    for rule_id in ("STATE-001", "REG-001", "KER-001", "DT-001", "RT-001"):
        assert rule_id in out


# ---------------------------------------------------------------------------
# The shipped tree and the runtime contracts
# ---------------------------------------------------------------------------


def test_shipped_tree_lints_clean():
    result = lint_paths([default_target()])
    assert result.findings == [], "\n".join(
        str(f) for f in result.findings
    )
    # Every shipped waiver carries a written reason.
    assert result.waived, "expected the tree to document some waivers"
    for finding in result.waived:
        assert finding.waive_reason


def test_every_rule_has_id_family_description():
    for rule_id in LINT_RULES.available():
        rule = LINT_RULES.get(rule_id)
        assert rule.rule_id == rule_id
        assert rule.family
        assert rule.description
        assert rule.scope in ("static", "runtime")


@pytest.mark.slow
def test_runtime_contracts_hold_for_all_components():
    findings = run_runtime_checks()
    assert findings == [], "\n".join(str(f) for f in findings)


@pytest.mark.slow
def test_cli_lint_runtime_flag(capsys):
    assert main(["lint", "--runtime"]) == 0
    out = capsys.readouterr().out
    assert "13 rules" in out
