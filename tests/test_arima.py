"""Tests for the from-scratch SARIMA model and AICc grid search."""

import numpy as np
import pytest

from repro.exceptions import (
    ConfigurationError,
    DataError,
    NotFittedError,
    ReproError,
)
from repro.forecasting.arima import (
    ArimaModel,
    ArimaOrder,
    AutoArima,
    candidate_orders,
    grid_search,
)


def ar_process(coeffs, n, sigma=0.1, seed=0, mean=0.0):
    rng = np.random.default_rng(seed)
    p = len(coeffs)
    x = np.zeros(n)
    for t in range(p, n):
        x[t] = mean + sum(
            coeffs[i] * (x[t - 1 - i] - mean) for i in range(p)
        ) + rng.normal(0, sigma)
    return x


class TestArimaOrder:
    def test_defaults(self):
        order = ArimaOrder()
        assert (order.p, order.d, order.q) == (1, 0, 0)

    def test_parameter_counts(self):
        order = ArimaOrder(p=2, q=1, P=1, Q=1, s=12)
        assert order.num_coefficients == 5
        assert order.num_parameters == 7  # + mean + sigma^2

    def test_differencing_lag(self):
        assert ArimaOrder(d=1, D=1, s=12).differencing_lag == 13

    def test_seasonal_requires_period(self):
        with pytest.raises(ConfigurationError):
            ArimaOrder(P=1)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ArimaOrder(p=-1)

    def test_str(self):
        assert "ARIMA(1,0,0)" in str(ArimaOrder())
        assert "[12]" in str(ArimaOrder(P=1, s=12))


class TestArimaFit:
    def test_recovers_ar1(self):
        x = ar_process([0.7], 2000, seed=1)
        model = ArimaModel(ArimaOrder(p=1)).fit(x)
        assert model.params[0] == pytest.approx(0.7, abs=0.05)

    def test_recovers_ar2(self):
        x = ar_process([0.6, 0.25], 3000, seed=2)
        model = ArimaModel(ArimaOrder(p=2)).fit(x)
        assert model.params[0] == pytest.approx(0.6, abs=0.07)
        assert model.params[1] == pytest.approx(0.25, abs=0.07)

    def test_recovers_ma1(self):
        rng = np.random.default_rng(3)
        e = rng.normal(0, 0.1, 3000)
        x = np.zeros(3000)
        for t in range(1, 3000):
            x[t] = e[t] + 0.6 * e[t - 1]
        model = ArimaModel(ArimaOrder(p=0, q=1)).fit(x)
        assert model.params[0] == pytest.approx(0.6, abs=0.07)

    def test_recovers_mean(self):
        # The model parametrizes the *series mean* (not the intercept):
        # the generator recenters around `mean`, so μ̂ ≈ 2.0.
        x = ar_process([0.5], 2000, seed=4, mean=2.0)
        model = ArimaModel(ArimaOrder(p=1)).fit(x)
        assert model.mean == pytest.approx(2.0, abs=0.1)

    def test_recovers_seasonal_ar(self):
        rng = np.random.default_rng(5)
        s = 12
        x = np.zeros(3000)
        for t in range(s, 3000):
            x[t] = 0.8 * x[t - s] + rng.normal(0, 0.1)
        model = ArimaModel(ArimaOrder(p=0, P=1, s=s)).fit(x)
        assert model.params[0] == pytest.approx(0.8, abs=0.07)

    def test_white_noise_order_zero(self):
        x = np.random.default_rng(6).normal(0.5, 0.1, 500)
        model = ArimaModel(ArimaOrder(p=0, q=0)).fit(x)
        assert model.mean == pytest.approx(0.5, abs=0.02)
        assert model.sigma2 == pytest.approx(0.01, rel=0.3)

    def test_too_short_series(self):
        with pytest.raises(DataError):
            ArimaModel(ArimaOrder(p=2)).fit(np.zeros(5))

    def test_sse_positive(self):
        x = ar_process([0.5], 300, seed=7)
        model = ArimaModel(ArimaOrder(p=1)).fit(x)
        assert model.sse > 0
        assert np.isfinite(model.aicc)

    def test_diagnostics_require_fit(self):
        model = ArimaModel()
        with pytest.raises(NotFittedError):
            model.sse
        with pytest.raises(NotFittedError):
            model.aicc
        with pytest.raises(NotFittedError):
            model.params


class TestArimaForecast:
    def test_ar1_forecast_decays_to_mean(self):
        x = ar_process([0.8], 2000, seed=8, mean=0.5)
        model = ArimaModel(ArimaOrder(p=1)).fit(x)
        forecast = model.forecast(100)
        series_mean = x.mean()
        assert abs(forecast[-1] - series_mean) < abs(forecast[0] - series_mean) + 0.05

    def test_random_walk_holds_last(self):
        rng = np.random.default_rng(9)
        x = np.cumsum(rng.normal(0, 0.1, 500))
        model = ArimaModel(ArimaOrder(p=0, d=1, q=0)).fit(x)
        forecast = model.forecast(5)
        drift = np.diff(x).mean()
        expected = x[-1] + drift * np.arange(1, 6)
        np.testing.assert_allclose(forecast, expected, atol=0.05)

    def test_linear_trend_extrapolated_with_d1(self):
        x = 0.01 * np.arange(300) + 1.0
        model = ArimaModel(ArimaOrder(p=0, d=1, q=0)).fit(x)
        forecast = model.forecast(10)
        expected = x[-1] + 0.01 * np.arange(1, 11)
        np.testing.assert_allclose(forecast, expected, atol=1e-6)

    def test_seasonal_pattern_repeated(self):
        t = np.arange(600)
        x = 0.5 + 0.2 * np.sin(2 * np.pi * t / 12)
        model = ArimaModel(ArimaOrder(p=0, d=0, q=0, P=0, D=1, Q=0, s=12)).fit(x)
        forecast = model.forecast(12)
        expected = 0.5 + 0.2 * np.sin(2 * np.pi * (t[-1] + np.arange(1, 13)) / 12)
        np.testing.assert_allclose(forecast, expected, atol=0.02)

    def test_update_shifts_forecast(self):
        x = ar_process([0.9], 800, seed=10)
        model = ArimaModel(ArimaOrder(p=1)).fit(x)
        f1 = model.forecast(1)[0]
        model.update(x[-1] + 0.5)
        f2 = model.forecast(1)[0]
        assert f2 > f1

    def test_forecast_before_fit(self):
        with pytest.raises(NotFittedError):
            ArimaModel().forecast(3)

    def test_invalid_horizon(self):
        x = ar_process([0.5], 300, seed=11)
        model = ArimaModel(ArimaOrder(p=1)).fit(x)
        with pytest.raises(DataError):
            model.forecast(0)

    def test_forecast_finite_and_bounded(self):
        x = ar_process([0.7], 500, seed=12, mean=0.5)
        model = ArimaModel(ArimaOrder(p=1, d=1, q=1)).fit(x)
        forecast = model.forecast(50)
        assert np.isfinite(forecast).all()
        assert np.abs(forecast).max() < 10


class TestGridSearch:
    def test_candidate_count(self):
        orders = candidate_orders(2, 1, 2, 0, 0, 0, 0)
        assert len(orders) == 3 * 2 * 3

    def test_seasonal_candidates(self):
        orders = candidate_orders(1, 0, 1, 1, 1, 1, 12)
        assert len(orders) == 2 * 1 * 2 * 2 * 2 * 2
        assert all(o.s == 12 for o in orders)

    def test_selects_reasonable_order_for_ar2(self):
        x = ar_process([0.5, 0.3], 1500, seed=13)
        result = grid_search(x, max_p=3, max_d=1, max_q=1)
        assert result.best_order.p >= 1
        assert result.best_order.d == 0

    def test_prefers_differencing_for_random_walk(self):
        rng = np.random.default_rng(14)
        x = np.cumsum(rng.normal(0, 0.2, 800))
        result = grid_search(x, max_p=2, max_d=1, max_q=1)
        assert result.best_order.d == 1

    def test_scores_recorded_for_all_orders(self):
        x = ar_process([0.5], 300, seed=15)
        result = grid_search(x, max_p=1, max_d=1, max_q=1)
        assert len(result.scores) == 2 * 2 * 2

    def test_empty_orders_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_search(np.zeros(100), orders=[])

    def test_unfittable_series_raises(self):
        with pytest.raises(ReproError):
            grid_search(
                np.zeros(4), orders=[ArimaOrder(p=3, q=3)]
            )


class TestAutoArima:
    def test_forecaster_protocol(self):
        x = ar_process([0.6], 500, seed=16, mean=0.5)
        auto = AutoArima(max_p=2, max_d=1, max_q=1)
        auto.fit(x)
        assert auto.is_fitted
        forecast = auto.forecast(5)
        assert forecast.shape == (5,)
        auto.update(0.5)
        assert auto.history.size == 501

    def test_unfitted_access(self):
        with pytest.raises(ReproError):
            AutoArima().model
