"""Dtype-parameterized columns: float32 fleets track float64 closely.

The pipeline's ``dtype`` knob threads one floating dtype through the
fleet columns, slot kernels and forecaster banks.  float64 is the
default and stays bit-identical to the pre-knob pipeline (covered by
the equivalence/checkpoint suites); float32 halves the state footprint
and is pinned here to *tolerances*: transmit decisions agree except for
rare near-tie flips, and every surviving number tracks float64 to
single-precision accuracy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine
from repro.core.config import (
    SUPPORTED_DTYPES,
    ForecastingConfig,
    PipelineConfig,
)
from repro.core.types import validate_trace
from repro.exceptions import CheckpointError, ConfigurationError
from repro.forecasting.bank import resolve_bank
from repro.simulation.collection import collect
from repro.simulation.fleet import FleetState

BACKENDS = ("adaptive", "uniform", "deadband", "perfect")
#: Forecaster models with vectorized closed-form banks.
BANK_MODELS = ("sample_hold", "mean", "ses", "ar")
#: Measured float32-vs-float64 decision disagreement is 0.0 over 60
#: seeds x 4 backends; near-tie threshold flips are possible in
#: principle, so the pin allows a small fraction rather than zero.
MAX_DECISION_DISAGREEMENT = 0.02


def walk_trace(steps=40, nodes=10, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    walk = np.clip(
        0.5 + np.cumsum(rng.normal(0, 0.03, (steps, nodes)), axis=0), 0, 1
    )
    return walk.astype(dtype)


class TestConfigSurface:
    def test_supported_dtypes(self):
        assert SUPPORTED_DTYPES == ("float64", "float32")
        assert PipelineConfig().dtype == "float64"
        assert PipelineConfig().np_dtype == np.dtype(np.float64)
        assert PipelineConfig(dtype="float32").np_dtype == np.dtype(
            np.float32
        )

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ConfigurationError, match="dtype"):
            PipelineConfig(dtype="float16")
        with pytest.raises(ConfigurationError, match="dtype"):
            PipelineConfig(dtype="int64")

    def test_dtype_roundtrips_through_dict(self):
        cfg = PipelineConfig.small(dtype="float32")
        assert cfg.to_dict()["dtype"] == "float32"
        assert PipelineConfig.from_dict(cfg.to_dict()).dtype == "float32"

    def test_missing_dtype_defaults_to_float64(self):
        # Checkpoints and configs written before the knob existed carry
        # no dtype key; they must resolve to the historical float64.
        payload = PipelineConfig.small().to_dict()
        del payload["dtype"]
        assert PipelineConfig.from_dict(payload).dtype == "float64"

    def test_non_string_dtype_rejected(self):
        payload = PipelineConfig.small().to_dict()
        payload["dtype"] = np.float32
        with pytest.raises(ConfigurationError, match="string"):
            PipelineConfig.from_dict(payload)


class TestColumnDtypes:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_validate_trace_preserves_requested_dtype(self, dtype):
        trace = walk_trace(dtype=dtype)
        data = validate_trace(trace, dtype=dtype)
        assert data.dtype == np.dtype(dtype)

    @pytest.mark.parametrize("name", ["float64", "float32"])
    def test_fleet_state_allocates_in_dtype(self, name):
        fleet = FleetState(5, dim=2, dtype=np.dtype(name))
        assert fleet.stored.dtype == np.dtype(name)
        assert fleet.policy_state.dtype == np.dtype(name)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_collection_computes_in_trace_dtype(self, backend):
        trace = walk_trace(dtype=np.float32)
        result = collect(trace, backend=backend)
        assert result.stored.dtype == np.dtype(np.float32)

    def test_engine_run_carries_config_dtype(self):
        cfg = PipelineConfig.small(
            initial_collection=20, retrain_interval=20, dtype="float32"
        )
        result = Engine(cfg).run(walk_trace(seed=2))
        assert result.stored.dtype == np.dtype(np.float32)


class TestFloat32TracksFloat64:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None, derandomize=True)
    def test_collection_decisions_and_stored(self, backend, seed):
        trace = walk_trace(seed=seed)
        r64 = collect(trace, backend=backend)
        r32 = collect(trace.astype(np.float32), backend=backend)

        disagree = np.mean(r64.decisions != r32.decisions)
        assert disagree <= MAX_DECISION_DISAGREEMENT, (
            f"{backend}: {disagree:.3%} of transmit decisions flipped "
            f"between float32 and float64"
        )
        # Where the policies agreed, the stored values are the same
        # measurements up to single-precision representation.
        agree = r64.decisions == r32.decisions
        np.testing.assert_allclose(
            r64.stored[agree],
            r32.stored[agree].astype(np.float64),
            atol=1e-5,
            rtol=1e-5,
        )

    @pytest.mark.parametrize("model", BANK_MODELS)
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None, derandomize=True)
    def test_closed_form_banks(self, model, seed):
        rng = np.random.default_rng(seed)
        series = rng.normal(0.5, 0.2, size=(30, 3, 2))

        def bank(dtype):
            built = resolve_bank(
                ForecastingConfig(model=model),
                num_clusters=3,
                dim=2,
                dtype=dtype,
            )
            return built.fit(series.astype(dtype))

        f64 = bank(np.float64).forecast(4)
        f32 = bank(np.float32).forecast(4)
        assert f64.dtype == np.dtype(np.float64)
        assert f32.dtype == np.dtype(np.float32)
        # Measured max gap is ~1e-7 across all four banks; the pin
        # leaves an order of magnitude of slack.
        np.testing.assert_allclose(
            f64, f32.astype(np.float64), atol=1e-5, rtol=1e-4
        )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=4, deadline=None, derandomize=True)
    def test_end_to_end_rmse_tracks(self, seed):
        trace = walk_trace(steps=60, nodes=8, seed=seed)
        kwargs = dict(
            num_clusters=2, initial_collection=25, retrain_interval=25
        )
        r64 = Engine(PipelineConfig.small(**kwargs)).run(trace)
        r32 = Engine(
            PipelineConfig.small(dtype="float32", **kwargs)
        ).run(trace)
        for h in r64.rmse_by_horizon:
            assert r64.rmse_by_horizon[h] == pytest.approx(
                r32.rmse_by_horizon[h], abs=1e-3
            )


class TestDtypeCheckpointGuard:
    def test_resume_across_dtypes_raises(self, tmp_path):
        cfg32 = PipelineConfig.small(
            initial_collection=10, retrain_interval=10, dtype="float32"
        )
        session = Engine(cfg32).session(4, 1)
        trace = walk_trace(steps=5, nodes=4, dtype=np.float32)
        for row in trace:
            session.ingest(row)
        path = session.save(tmp_path / "f32.ckpt")

        cfg64 = PipelineConfig.small(
            initial_collection=10, retrain_interval=10
        )
        with pytest.raises(CheckpointError, match="dtype"):
            Engine(cfg64).resume(path)

    def test_same_dtype_resume_is_allowed(self, tmp_path):
        cfg = PipelineConfig.small(
            initial_collection=10, retrain_interval=10, dtype="float32"
        )
        session = Engine(cfg).session(4, 1)
        for row in walk_trace(steps=5, nodes=4, dtype=np.float32):
            session.ingest(row)
        path = session.save(tmp_path / "ok.ckpt")
        resumed = Engine(cfg).resume(path)
        assert resumed.time == 5
        assert resumed.fleet.stored.dtype == np.dtype(np.float32)
