"""Tests for the ablation experiments (design-choice validation)."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    run_ablation_offsets,
    run_ablation_reindexing,
    run_ablation_warm_start,
)
from repro.experiments.common import sample_hold_forecast_rmse, run_clustering
from repro.exceptions import ConfigurationError


@pytest.mark.slow
class TestReindexingAblation:
    def test_matching_essential_for_forecasting(self):
        result = run_ablation_reindexing(
            num_nodes=25, num_steps=200, start=40, horizons=(1, 5)
        )
        # Without Hungarian re-indexing the centroid series are permuted
        # arbitrarily each step; forecasting degrades badly.
        assert result.reindexing_helps(1)
        assert result.reindexing_helps(5)
        assert (
            result.rmse["unmatched"][1] > 1.3 * result.rmse["matched"][1]
        )


@pytest.mark.slow
class TestOffsetAblation:
    def test_offsets_improve_over_centroid_only(self):
        result = run_ablation_offsets(
            num_nodes=25, num_steps=200, start=40, horizons=(1, 5)
        )
        assert result.offsets_help(1)
        # Clipped and raw offsets should be close; both beat none at h=1.
        assert (
            abs(result.rmse["clipped"][1] - result.rmse["raw"][1]) < 0.02
        )


@pytest.mark.slow
class TestWarmStartAblation:
    def test_warm_start_same_quality(self):
        result = run_ablation_warm_start(num_nodes=30, num_steps=200)
        assert result.quality_gap() < 0.01
        # Warm start should not be slower (usually much faster).
        assert result.seconds["warm"] <= result.seconds["cold"] * 1.2


class TestOffsetModeParameter:
    def test_invalid_mode_rejected(self):
        rng = np.random.default_rng(0)
        truth = rng.random((20, 5))
        assignments = run_clustering(truth, "proposed", 2, seed=0)
        with pytest.raises(ConfigurationError):
            sample_hold_forecast_rmse(
                truth, truth, assignments, (1,), offset_mode="bogus"
            )

    def test_none_mode_matches_centroid_estimate(self):
        rng = np.random.default_rng(1)
        truth = rng.random((30, 6))
        assignments = run_clustering(truth, "proposed", 2, seed=0)
        none = sample_hold_forecast_rmse(
            truth, truth, assignments, (1,), offset_mode="none", start=5
        )
        clipped = sample_hold_forecast_rmse(
            truth, truth, assignments, (1,), offset_mode="clipped", start=5
        )
        assert none[1] != pytest.approx(clipped[1])
