"""Tests for the Eq. 10 similarity measure and the Jaccard variant."""

import numpy as np
import pytest

from repro.clustering.similarity import (
    history_intersection,
    intersection_similarity_matrix,
    jaccard_similarity_matrix,
    similarity_matrix,
)
from repro.exceptions import ConfigurationError, DataError


class TestHistoryIntersection:
    def test_single_step(self):
        history = [[{1, 2, 3}, {4, 5}]]
        assert history_intersection(history, 0) == {1, 2, 3}

    def test_multi_step_intersects(self):
        history = [[{1, 2, 3}, {4}], [{2, 3, 5}, {4}]]
        assert history_intersection(history, 0) == {2, 3}
        assert history_intersection(history, 1) == {4}

    def test_empty_history_raises(self):
        with pytest.raises(DataError):
            history_intersection([], 0)


class TestIntersectionSimilarity:
    def test_eq10_counts(self):
        # New clusters from K-means vs one historical partition.
        new = [{0, 1, 2}, {3, 4}]
        history = [[{0, 1}, {2, 3, 4}]]
        weights = intersection_similarity_matrix(new, history)
        # w[k, j] = |new_k ∩ hist_j|
        np.testing.assert_array_equal(weights, [[2, 1], [0, 2]])

    def test_lookback_multiple_steps(self):
        # Node 1 was in historical cluster 0 at both steps; node 2 only
        # at the most recent.  Eq. 10 intersects across steps first.
        new = [{1, 2}, {3}]
        history = [
            [{1, 3}, {2}],   # older
            [{1, 2}, {3}],   # newer
        ]
        weights = intersection_similarity_matrix(new, history)
        np.testing.assert_array_equal(weights, [[1, 0], [0, 0]])

    def test_unnormalized(self):
        # Doubling cluster sizes doubles the similarity (not normalized).
        new_small = [{0}, {1}]
        hist_small = [[{0}, {1}]]
        new_big = [{0, 2}, {1, 3}]
        hist_big = [[{0, 2}, {1, 3}]]
        small = intersection_similarity_matrix(new_small, hist_small)
        big = intersection_similarity_matrix(new_big, hist_big)
        assert big[0, 0] == 2 * small[0, 0]

    def test_inconsistent_cluster_counts(self):
        with pytest.raises(DataError):
            intersection_similarity_matrix([{0}], [[{0}, {1}]])


class TestJaccardSimilarity:
    def test_normalized_to_unit(self):
        new = [{0, 1}, {2}]
        history = [[{0, 1}, {2}]]
        weights = jaccard_similarity_matrix(new, history)
        assert weights[0, 0] == pytest.approx(1.0)
        assert weights[1, 1] == pytest.approx(1.0)
        assert weights[0, 1] == 0.0

    def test_partial_overlap(self):
        new = [{0, 1, 2}, {3}]
        history = [[{0, 1, 3}, {2}]]
        weights = jaccard_similarity_matrix(new, history)
        # |{0,1}| / |{0,1,2,3}| = 0.5
        assert weights[0, 0] == pytest.approx(0.5)

    def test_empty_union_gives_zero(self):
        new = [set(), {0}]
        history = [[set(), {0}]]
        weights = jaccard_similarity_matrix(new, history)
        assert weights[0, 0] == 0.0

    def test_scale_invariant_unlike_intersection(self):
        new_small = [{0}, {1}]
        hist_small = [[{0}, {1}]]
        new_big = [{0, 2}, {1, 3}]
        hist_big = [[{0, 2}, {1, 3}]]
        small = jaccard_similarity_matrix(new_small, hist_small)
        big = jaccard_similarity_matrix(new_big, hist_big)
        assert big[0, 0] == small[0, 0]


class TestDispatch:
    def test_intersection_dispatch(self):
        new = [{0}, {1}]
        history = [[{0}, {1}]]
        np.testing.assert_array_equal(
            similarity_matrix("intersection", new, history),
            intersection_similarity_matrix(new, history),
        )

    def test_jaccard_dispatch(self):
        new = [{0}, {1}]
        history = [[{0}, {1}]]
        np.testing.assert_array_equal(
            similarity_matrix("jaccard", new, history),
            jaccard_similarity_matrix(new, history),
        )

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            similarity_matrix("cosine", [{0}], [[{0}]])
