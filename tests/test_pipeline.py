"""Tests for the end-to-end online pipeline (Fig. 2)."""

import numpy as np
import pytest

from repro.core.config import (
    ClusteringConfig,
    ForecastingConfig,
    PipelineConfig,
    TransmissionConfig,
)
from repro.core.pipeline import (
    OnlinePipeline,
    default_forecaster_factory,
    run_pipeline,
)
from repro.exceptions import ConfigurationError, DataError
from repro.forecasting.arima import AutoArima
from repro.forecasting.lstm import LstmForecaster
from repro.forecasting.sample_hold import SampleHoldForecaster


def small_config(model="sample_hold", num_clusters=2, horizon=3,
                 initial=20, retrain=20, budget=0.3):
    return PipelineConfig(
        transmission=TransmissionConfig(budget=budget),
        clustering=ClusteringConfig(num_clusters=num_clusters, seed=0),
        forecasting=ForecastingConfig(
            model=model,
            max_horizon=horizon,
            initial_collection=initial,
            retrain_interval=retrain,
            arima_max_p=1,
            arima_max_d=1,
            arima_max_q=0,
            lstm_hidden=4,
            lstm_lookback=5,
            lstm_epochs=2,
            seed=0,
        ),
    )


def grouped_trace(steps=80, seed=0):
    """Two groups of nodes around slowly drifting levels."""
    rng = np.random.default_rng(seed)
    t = np.arange(steps)
    low = 0.2 + 0.05 * np.sin(2 * np.pi * t / 40)
    high = 0.7 + 0.05 * np.cos(2 * np.pi * t / 40)
    trace = np.empty((steps, 8))
    for i in range(4):
        trace[:, i] = low + rng.normal(0, 0.01, steps)
    for i in range(4, 8):
        trace[:, i] = high + rng.normal(0, 0.01, steps)
    return np.clip(trace, 0, 1)


class TestDefaultForecasterFactory:
    def test_sample_hold(self):
        factory = default_forecaster_factory(ForecastingConfig())
        assert isinstance(factory(0, 0), SampleHoldForecaster)

    def test_arima(self):
        factory = default_forecaster_factory(
            ForecastingConfig(model="arima")
        )
        assert isinstance(factory(0, 0), AutoArima)

    def test_lstm_distinct_seeds(self):
        factory = default_forecaster_factory(
            ForecastingConfig(model="lstm", seed=1)
        )
        a = factory(0, 0)
        b = factory(1, 0)
        assert isinstance(a, LstmForecaster)
        assert a._rng.bit_generator.state != b._rng.bit_generator.state


class TestOnlinePipeline:
    def test_no_forecast_before_initial_collection(self):
        pipeline = OnlinePipeline(8, 1, small_config(initial=30))
        trace = grouped_trace()
        for t in range(29):
            output = pipeline.step(trace[t])
            assert output.node_forecasts is None

    def test_forecasts_after_initial_collection(self):
        pipeline = OnlinePipeline(8, 1, small_config(initial=20, horizon=3))
        trace = grouped_trace()
        last = None
        for t in range(40):
            last = pipeline.step(trace[t])
        assert last.node_forecasts is not None
        assert set(last.node_forecasts) == {1, 2, 3}
        assert last.node_forecasts[1].shape == (8, 1)
        assert last.centroid_forecasts[1].shape == (2, 1)
        assert last.memberships.shape == (1, 8)

    def test_forecast_accuracy_on_grouped_data(self):
        # Sample-and-hold + offsets should track the two groups well.
        pipeline = OnlinePipeline(8, 1, small_config(initial=20, horizon=1))
        trace = grouped_trace()
        errors = []
        outputs = []
        for t in range(80):
            outputs.append(pipeline.step(trace[t]))
        for t in range(20, 79):
            prediction = outputs[t].node_forecasts[1][:, 0]
            errors.append(np.abs(prediction - trace[t + 1]).mean())
        assert np.mean(errors) < 0.05

    def test_scalar_groups_per_resource(self):
        pipeline = OnlinePipeline(5, 2, small_config())
        assert pipeline.num_groups == 2

    def test_joint_clustering_single_group(self):
        config = PipelineConfig(
            clustering=ClusteringConfig(
                num_clusters=2, scalar_per_resource=False, seed=0
            ),
            forecasting=ForecastingConfig(
                model="sample_hold", max_horizon=2,
                initial_collection=10, retrain_interval=10,
            ),
        )
        pipeline = OnlinePipeline(6, 2, config)
        assert pipeline.num_groups == 1
        rng = np.random.default_rng(0)
        last = None
        for t in range(25):
            last = pipeline.step(rng.random((6, 2)))
        assert last.node_forecasts[1].shape == (6, 2)

    def test_wrong_shape_rejected(self):
        pipeline = OnlinePipeline(4, 1, small_config())
        with pytest.raises(DataError):
            pipeline.step(np.zeros((5, 1)))

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            OnlinePipeline(0, 1)

    def test_custom_forecaster_factory(self):
        calls = []

        def factory(cluster, group):
            calls.append((cluster, group))
            return SampleHoldForecaster()

        OnlinePipeline(4, 2, small_config(), forecaster_factory=factory)
        assert len(calls) == 4  # 2 clusters x 2 resource groups

    def test_retraining_happens(self):
        config = small_config(initial=10, retrain=5)
        pipeline = OnlinePipeline(8, 1, config)
        trace = grouped_trace()
        trains = []
        for t in range(30):
            pipeline.step(trace[t])
            trains.append(pipeline._last_train)
        assert trains[9] == 9
        assert trains[14] == 14
        assert trains[19] == 19


class TestRunPipeline:
    def test_h0_is_collection_error(self):
        trace = grouped_trace()
        result = run_pipeline(trace, small_config(budget=1.0))
        assert result.rmse_by_horizon[0] == pytest.approx(0.0, abs=1e-12)

    def test_rmse_increases_with_horizon_on_drifting_data(self):
        rng = np.random.default_rng(1)
        walk = np.clip(
            0.5 + np.cumsum(rng.normal(0, 0.02, size=(120, 6)), axis=0), 0, 1
        )
        result = run_pipeline(walk, small_config(horizon=5, initial=30))
        assert result.rmse_by_horizon[5] >= result.rmse_by_horizon[1] - 0.01

    def test_uniform_collection_mode(self):
        trace = grouped_trace()
        result = run_pipeline(trace, small_config(), collection="uniform")
        assert 0 in result.rmse_by_horizon

    def test_perfect_collection_mode(self):
        trace = grouped_trace()
        result = run_pipeline(trace, small_config(), collection="perfect")
        assert result.decisions.all()
        assert result.rmse_by_horizon[0] == 0.0

    def test_unknown_collection_mode(self):
        with pytest.raises(ConfigurationError):
            run_pipeline(grouped_trace(), small_config(), collection="xyz")

    def test_horizon_subset(self):
        trace = grouped_trace()
        result = run_pipeline(
            trace, small_config(horizon=3), horizons=[1, 3]
        )
        assert set(result.rmse_by_horizon) == {1, 3}

    def test_bad_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            run_pipeline(grouped_trace(), small_config(horizon=3),
                         horizons=[7])

    def test_intermediate_rmse_reported(self):
        result = run_pipeline(grouped_trace(), small_config())
        assert 0 <= result.intermediate_rmse < 0.5

    def test_forecast_start_recorded(self):
        result = run_pipeline(grouped_trace(), small_config(initial=20))
        assert result.forecast_start == 19

    def test_arima_model_end_to_end(self):
        trace = grouped_trace()
        result = run_pipeline(
            trace, small_config(model="arima", initial=30, horizon=2)
        )
        assert result.rmse_by_horizon[1] < 0.2

    def test_lstm_model_end_to_end(self):
        trace = grouped_trace()
        result = run_pipeline(
            trace, small_config(model="lstm", initial=30, horizon=2)
        )
        assert result.rmse_by_horizon[1] < 0.3

    def test_multiresource_trace(self):
        rng = np.random.default_rng(2)
        trace = rng.random((60, 5, 2))
        result = run_pipeline(trace, small_config(initial=20, horizon=2))
        assert 1 in result.rmse_by_horizon
