"""Tests for the scenario engine (repro.scenarios).

Pins the subsystem's three contracts:

* an **ideal link is invisible** — a session run over ``IdealLink`` is
  bit-identical to one with no link at all, across every transmission
  policy (hypothesis);
* **message conservation** — every sent message is delivered now,
  delivered late, dropped to loss, dropped to churn, or still in
  flight, under any mix of adversities;
* **checkpoint/resume is bit-identical** mid-scenario — including
  mid-churn, with link queues and generators in flight — excluding
  only wall-clock stage timings.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine
from repro.core.config import (
    ClusteringConfig,
    ForecastingConfig,
    PipelineConfig,
    TransmissionConfig,
)
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    SimulationError,
)
from repro.registry import SCENARIOS
from repro.scenarios import (
    ChurnEvent,
    ChurnSchedule,
    IdealLink,
    LinkConfig,
    MembershipTrack,
    NetworkLink,
    ScenarioSpec,
    build_link,
    run_scenario,
)
from repro.scenarios.harness import resolve_scenario
from repro.simulation.transport import Channel, TransportStats

POLICIES = ("adaptive", "uniform", "deadband", "perfect")


def config(budget=0.3, initial=12, horizon=2, clusters=2):
    return PipelineConfig(
        transmission=TransmissionConfig(budget=budget),
        clustering=ClusteringConfig(num_clusters=clusters, seed=0),
        forecasting=ForecastingConfig(
            model="sample_hold",
            max_horizon=horizon,
            initial_collection=initial,
            retrain_interval=initial,
        ),
    )


def walk_trace(steps=40, nodes=8, seed=0):
    rng = np.random.default_rng(seed)
    return np.clip(
        0.5 + np.cumsum(rng.normal(0, 0.04, (steps, nodes)), axis=0), 0, 1
    )


def strip_timings(state):
    """Stage wall-clock timings are non-deterministic by nature."""
    if isinstance(state, dict):
        return {
            k: strip_timings(v)
            for k, v in state.items()
            if k != "stage_seconds"
        }
    if isinstance(state, list):
        return [strip_timings(v) for v in state]
    return state


def assert_trees_equal(a, b, path=""):
    assert type(a) is type(b), f"{path}: {type(a)} vs {type(b)}"
    if isinstance(a, dict):
        assert sorted(a) == sorted(b), f"{path}: key mismatch"
        for k in a:
            assert_trees_equal(a[k], b[k], f"{path}/{k}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: length mismatch"
        for i, (x, y) in enumerate(zip(a, b)):
            assert_trees_equal(x, y, f"{path}[{i}]")
    elif isinstance(a, np.ndarray):
        np.testing.assert_array_equal(a, b, err_msg=path)
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


# ---------------------------------------------------------------------------
# Link configuration
# ---------------------------------------------------------------------------


class TestLinkConfig:
    def test_default_is_ideal(self):
        assert LinkConfig().is_ideal

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss": 0.1},
            {"burst_enter": 0.05},
            {"latency": 1},
            {"uplinks": 2},
        ],
    )
    def test_any_adversity_breaks_ideal(self, kwargs):
        assert not LinkConfig(**kwargs).is_ideal

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss": 1.0},
            {"loss": -0.1},
            {"burst_enter": 1.5},
            {"latency": -1},
            {"uplinks": -1},
            {"uplinks": 2, "uplink_capacity": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            LinkConfig(**kwargs)

    def test_build_link_dispatch(self):
        assert isinstance(build_link(LinkConfig(), 4), IdealLink)
        assert isinstance(build_link(LinkConfig(loss=0.1), 4), NetworkLink)

    def test_ideal_link_rejects_adverse_config(self):
        with pytest.raises(ConfigurationError):
            IdealLink(4, LinkConfig(latency=1))


# ---------------------------------------------------------------------------
# The ideal link is invisible (satellite 3, first pin)
# ---------------------------------------------------------------------------


class TestIdealLinkInvisible:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_bit_identical_to_linkless_all_policies(self, seed):
        trace = walk_trace(steps=36, nodes=8, seed=seed)
        for policy in POLICIES:
            bare = Engine(config(), policy=policy).session(8, 1)
            linked = Engine(config(), policy=policy).session(
                8, 1, link=IdealLink(8)
            )
            for t in range(trace.shape[0]):
                a = bare.ingest(trace[t][:, np.newaxis])
                b = linked.ingest(trace[t][:, np.newaxis])
                np.testing.assert_array_equal(a.stored, b.stored)
                assert a.transport.messages == b.transport.messages
                assert (a.node_forecasts is None) == (
                    b.node_forecasts is None
                )
                if a.node_forecasts is not None:
                    for h in a.node_forecasts:
                        np.testing.assert_array_equal(
                            a.node_forecasts[h], b.node_forecasts[h]
                        )
            np.testing.assert_array_equal(
                bare.fleet.stored, linked.fleet.stored
            )

    def test_object_path_bit_identical(self):
        trace = walk_trace(steps=30, nodes=6, seed=3)
        bare = Engine(config(), policy="adaptive").session(
            6, 1, vectorized=False
        )
        linked = Engine(config(), policy="adaptive").session(
            6, 1, vectorized=False, link=IdealLink(6)
        )
        for t in range(trace.shape[0]):
            a = bare.ingest(trace[t][:, np.newaxis])
            b = linked.ingest(trace[t][:, np.newaxis])
            np.testing.assert_array_equal(a.stored, b.stored)
            assert a.transport.messages == b.transport.messages

    def test_ideal_link_counts_sent(self):
        link = IdealLink(5)
        session = Engine(config(), policy="uniform").session(5, 1, link=link)
        trace = walk_trace(steps=20, nodes=5, seed=1)
        for t in range(trace.shape[0]):
            session.ingest(trace[t][:, np.newaxis])
        totals = link.counters()
        assert totals["sent"] == session.transport_stats.messages
        assert totals["sent"] == totals["delivered_now"]
        assert link.is_conserved


# ---------------------------------------------------------------------------
# NetworkLink mechanics and conservation (tentpole a, satellite 2)
# ---------------------------------------------------------------------------


class TestNetworkLink:
    def payload(self, n):
        return np.arange(n, dtype=float)[:, np.newaxis]

    def test_session_num_nodes_must_match_link(self):
        with pytest.raises(ConfigurationError):
            Engine(config(), policy="uniform").session(
                6, 1, link=IdealLink(5)
            )

    def test_pure_latency_delivers_late(self):
        link = NetworkLink(4, LinkConfig(latency=2, seed=0))
        ids = np.arange(4)
        assert link.transfer(0, ids, self.payload(4)).size == 0
        assert link.in_flight == 4
        assert link.due(1) == []
        matured = link.due(2)
        assert len(matured) == 1
        origin, out_ids, values = matured[0]
        assert origin == 0
        np.testing.assert_array_equal(out_ids, ids)
        np.testing.assert_array_equal(values, self.payload(4))
        assert link.in_flight == 0
        assert link.is_conserved

    def test_latency_one_never_delivers_same_slot(self):
        link = NetworkLink(3, LinkConfig(latency=1, seed=0))
        assert link.transfer(5, np.arange(3), self.payload(3)).size == 0
        assert len(link.due(6)) == 1
        assert link.is_conserved

    def test_iid_loss_conserves(self):
        link = NetworkLink(10, LinkConfig(loss=0.5, seed=42))
        total_kept = 0
        for slot in range(50):
            kept = link.transfer(slot, np.arange(10), self.payload(10))
            total_kept += kept.size
        totals = link.counters()
        assert totals["sent"] == 500
        assert totals["delivered_now"] == total_kept
        assert 0 < totals["dropped_loss"] < 500
        assert link.is_conserved

    def test_burst_chain_conserves_and_drops(self):
        link = NetworkLink(
            8,
            LinkConfig(
                burst_enter=0.3, burst_exit=0.2, burst_loss=1.0, seed=7
            ),
        )
        for slot in range(60):
            link.transfer(slot, np.arange(8), self.payload(8))
        totals = link.counters()
        assert totals["dropped_loss"] > 0
        assert link.is_conserved

    def test_contention_backlog_fifo(self):
        # One uplink, capacity 1: 3 senders/slot build a backlog; the
        # oldest origin always drains first.
        link = NetworkLink(
            3, LinkConfig(uplinks=1, uplink_capacity=1, seed=0)
        )
        delivered_now = link.transfer(0, np.arange(3), self.payload(3))
        # capacity 1, zero latency: exactly one message arrives now.
        assert delivered_now.size == 1
        assert link.in_flight == 2
        # Nothing new sent at slot 1: due(1) is empty (the backlog only
        # drains when transfer runs), and the next transfer drains the
        # oldest queued message into the pending tray for slot 2.
        assert link.due(1) == []
        link.transfer(1, np.empty(0, dtype=np.int64), np.empty((0, 1)))
        matured = link.due(2)
        assert [m[0] for m in matured] == [0]
        assert link.is_conserved

    def test_contention_drain_capacity(self):
        link = NetworkLink(
            8, LinkConfig(uplinks=2, uplink_capacity=2, seed=0)
        )
        now = link.transfer(0, np.arange(8), self.payload(8))
        # 2 uplinks x capacity 2 drain immediately at zero latency.
        assert now.size == 4
        assert link.in_flight == 4
        assert link.is_conserved

    def test_grow_extends_burst_state(self):
        link = NetworkLink(4, LinkConfig(burst_enter=0.2, seed=0))
        link.grow(3)
        assert link.num_nodes == 7
        assert link._bad.shape == (7,)
        assert not link._bad[4:].any()

    def test_compact_drops_departed_traffic_as_churn(self):
        link = NetworkLink(4, LinkConfig(latency=3, seed=0))
        link.transfer(0, np.arange(4), self.payload(4))
        assert link.in_flight == 4
        link.compact(np.asarray([0, 2]))  # nodes 1 and 3 leave
        assert link.num_nodes == 2
        assert link.in_flight == 2
        assert link.counters()["dropped_churn"] == 2
        # Survivors were renumbered: old node 2 is now node 1.
        matured = link.due(3)
        np.testing.assert_array_equal(matured[0][1], [0, 1])
        assert link.is_conserved

    def test_compact_rebuckets_queued_traffic(self):
        link = NetworkLink(
            4, LinkConfig(uplinks=2, uplink_capacity=1, latency=1, seed=0)
        )
        link.transfer(0, np.arange(4), self.payload(4))
        # 2 drained into pending, 2 still queued.
        assert link.in_flight == 4
        link.compact(np.asarray([1, 2, 3]))
        assert link.is_conserved
        for queue_index, queue in enumerate(link._queues):
            for _, node, _ in queue:
                assert node % 2 == queue_index

    def test_fail_nodes_drops_in_flight(self):
        link = NetworkLink(4, LinkConfig(latency=3, seed=0))
        link.transfer(0, np.arange(4), self.payload(4))
        link.fail_nodes(np.asarray([1, 2]))
        assert link.in_flight == 2
        assert link.counters()["dropped_churn"] == 2
        assert not link._bad[[1, 2]].any()
        assert link.is_conserved

    def test_state_roundtrip_continues_identically(self):
        cfg = LinkConfig(
            loss=0.1, burst_enter=0.1, burst_exit=0.4, latency=2,
            uplinks=2, uplink_capacity=2, seed=9,
        )
        a = NetworkLink(6, cfg)
        for slot in range(10):
            a.transfer(slot, np.arange(6), self.payload(6))
            a.due(slot)
        b = NetworkLink(6, cfg)
        b.set_state(a.get_state())
        for slot in range(10, 20):
            ka = a.transfer(slot, np.arange(6), self.payload(6))
            kb = b.transfer(slot, np.arange(6), self.payload(6))
            np.testing.assert_array_equal(ka, kb)
            da, db = a.due(slot), b.due(slot)
            assert len(da) == len(db)
            for (oa, ia, va), (ob, ib, vb) in zip(da, db):
                assert oa == ob
                np.testing.assert_array_equal(ia, ib)
                np.testing.assert_array_equal(va, vb)
        assert a.counters() == b.counters()

    def test_set_state_rejects_wrong_kind(self):
        link = NetworkLink(3, LinkConfig(loss=0.1))
        with pytest.raises(SimulationError):
            link.set_state(IdealLink(3).get_state())
        with pytest.raises(SimulationError):
            IdealLink(3).set_state(link.get_state())


# ---------------------------------------------------------------------------
# Channel.record_deliveries choke point (satellite 2)
# ---------------------------------------------------------------------------


class TestRecordDeliveries:
    def test_counts_match_manual_record_batch(self):
        a, b = Channel(), Channel()
        ids = np.asarray([0, 2, 5])
        counts = a.record_deliveries(ids, num_nodes=6, floats_per_message=3)
        manual = np.bincount(ids, minlength=6)
        b.record_batch(manual, floats_per_message=3)
        np.testing.assert_array_equal(counts, manual)
        assert a.stats.messages == b.stats.messages == 3
        assert a.stats.payload_floats == b.stats.payload_floats == 9
        np.testing.assert_array_equal(
            a.stats.per_node_messages.as_array(),
            b.stats.per_node_messages.as_array(),
        )

    def test_empty_delivery(self):
        channel = Channel()
        counts = channel.record_deliveries(
            np.empty(0, dtype=np.int64), num_nodes=4, floats_per_message=2
        )
        np.testing.assert_array_equal(counts, np.zeros(4, dtype=np.int64))
        assert channel.stats.messages == 0

    def test_session_conservation_sent_equals_sum(self):
        # End-to-end: the channel's delivered count plus the link's
        # losses and in-flight backlog reconstruct every decision.
        cfg = LinkConfig(loss=0.2, latency=1, seed=5)
        link = NetworkLink(6, cfg)
        session = Engine(config(), policy="uniform").session(
            6, 1, link=link, reorder_window=4
        )
        trace = walk_trace(steps=30, nodes=6, seed=2)
        for t in range(trace.shape[0]):
            for origin, ids, values in link.due(t):
                session.ingest(values, ids, t=origin)
            session.ingest(trace[t][:, np.newaxis])
        totals = link.counters()
        assert totals["sent"] == (
            totals["delivered_now"]
            + totals["delivered_late"]
            + totals["dropped_loss"]
            + totals["dropped_churn"]
            + link.in_flight
        )
        # Every link delivery flowed through the session's late-arrival
        # contract and then the channel choke point: the link's late
        # count splits exactly into applied + contract-dropped, and only
        # counted-if-applied messages reach the transport stats.
        assert totals["delivered_late"] == (
            session.late_applied + session.late_dropped
        )
        assert session.transport_stats.messages == (
            totals["delivered_now"] + session.late_applied
        )


# ---------------------------------------------------------------------------
# Churn schedule and membership track (tentpole b)
# ---------------------------------------------------------------------------


class TestChurnSchedule:
    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnEvent(slot=-1, kind="join")
        with pytest.raises(ConfigurationError):
            ChurnEvent(slot=0, kind="explode")
        with pytest.raises(ConfigurationError):
            ChurnEvent(slot=0, kind="join", count=0)

    def test_sorted_at_before(self):
        schedule = ChurnSchedule([
            ChurnEvent(slot=9, kind="leave"),
            ChurnEvent(slot=3, kind="join", count=2),
            ChurnEvent(slot=3, kind="crash"),
        ])
        assert [e.slot for e in schedule] == [3, 3, 9]
        assert len(schedule.at(3)) == 2
        assert schedule.at(4) == ()
        assert [e.slot for e in schedule.before(9)] == [3, 3]

    def test_periodic_and_merge(self):
        joins = ChurnSchedule.periodic(
            "join", every=10, start=10, until=40, count=2
        )
        crashes = ChurnSchedule.periodic("crash", every=15, start=15, until=31)
        merged = ChurnSchedule.merge(joins, crashes)
        assert [e.slot for e in joins] == [10, 20, 30]
        assert len(merged) == 5
        assert [e.slot for e in merged] == sorted(e.slot for e in merged)


class TestMembershipTrack:
    def test_joins_consume_fresh_columns_in_order(self):
        track = MembershipTrack(10, 4, seed=0)
        np.testing.assert_array_equal(track.join(3), [4, 5, 6])
        np.testing.assert_array_equal(track.members, np.arange(7))
        # Columns are never reused, so a join clamps to what's left.
        np.testing.assert_array_equal(track.join(5), [7, 8, 9])
        assert track.join(1).size == 0
        assert track.columns_remaining == 0

    def test_leave_keeps_at_least_one(self):
        track = MembershipTrack(5, 3, seed=1)
        keep, removed = track.leave(10)
        assert removed.size == 2
        assert track.num_members == 1
        keep, removed = track.leave(1)
        assert removed.size == 0
        np.testing.assert_array_equal(keep, [0])

    def test_leave_returns_compact_argument(self):
        track = MembershipTrack(8, 6, seed=2)
        keep, removed = track.leave(2)
        assert keep.size == 4
        assert np.all(np.diff(keep) > 0)
        assert np.intersect1d(keep, removed).size == 0

    def test_crash_preserves_membership(self):
        track = MembershipTrack(6, 5, seed=3)
        before = track.members.copy()
        victims = track.crash(2)
        assert victims.size == 2
        np.testing.assert_array_equal(track.members, before)

    def test_replay_reproduces_membership_and_draws(self):
        events = [
            ChurnEvent(slot=5, kind="join", count=2),
            ChurnEvent(slot=8, kind="crash", count=1),
            ChurnEvent(slot=12, kind="leave", count=2),
        ]
        live = MembershipTrack(12, 6, seed=9)
        for event in events:
            getattr(live, event.kind)(event.count)
        replayed = MembershipTrack(12, 6, seed=9)
        replayed.replay(events)
        np.testing.assert_array_equal(live.members, replayed.members)
        # The next random decision also matches: the generators are in
        # the same state.
        np.testing.assert_array_equal(live.crash(2), replayed.crash(2))


# ---------------------------------------------------------------------------
# Session churn: grow / compact / restart (tentpole b)
# ---------------------------------------------------------------------------


class TestSessionChurn:
    def run_slots(self, session, trace, start, end):
        for t in range(start, end):
            session.ingest(trace[t, : session.num_nodes][:, np.newaxis])

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_grow_then_compact_roundtrip(self, vectorized):
        trace = walk_trace(steps=40, nodes=12, seed=4)
        session = Engine(config(), policy="adaptive").session(
            8, 1, vectorized=vectorized
        )
        self.run_slots(session, trace, 0, 15)
        session.grow(4)
        assert session.num_nodes == 12
        self.run_slots(session, trace, 15, 25)
        session.compact(np.asarray([0, 1, 2, 3, 6, 7, 8, 9, 10, 11]))
        assert session.num_nodes == 10
        self.run_slots(session, trace, 25, 40)
        state = session.snapshot()
        assert state.session["num_nodes"] == 10

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_restart_nodes_resets_state(self, vectorized):
        trace = walk_trace(steps=30, nodes=6, seed=5)
        session = Engine(config(), policy="adaptive").session(
            6, 1, vectorized=vectorized
        )
        self.run_slots(session, trace, 0, 20)
        session.restart_nodes(np.asarray([1, 4]))
        assert not session.fleet.observed[[1, 4]].any()
        self.run_slots(session, trace, 20, 30)
        assert session.fleet.observed[[1, 4]].all()

    def test_restart_validates_ids(self):
        from repro.exceptions import DataError

        session = Engine(config(), policy="uniform").session(4, 1)
        with pytest.raises(DataError):
            session.restart_nodes(np.asarray([4]))
        with pytest.raises(DataError):
            session.restart_nodes(np.asarray([1, 1]))

    def test_transport_retired_invariant_through_churn(self):
        trace = walk_trace(steps=40, nodes=12, seed=6)
        session = Engine(config(), policy="uniform").session(8, 1)
        self.run_slots(session, trace, 0, 15)
        before = session.transport_stats.messages
        session.compact(np.asarray([0, 1, 2, 5, 6, 7]))
        stats = session.transport_stats
        # Cumulative totals never shrink; the departed nodes' counts
        # moved into the retired bucket.
        assert stats.messages == before
        assert stats.retired_messages > 0
        assert stats.messages == (
            int(stats.per_node_messages.as_array().sum())
            + stats.retired_messages
        )
        session.grow(3)
        self.run_slots(session, trace, 15, 40)
        stats = session.transport_stats
        assert stats.messages == (
            int(stats.per_node_messages.as_array().sum())
            + stats.retired_messages
        )

    def test_adopt_column_direct(self):
        stats = TransportStats(np.zeros(4, dtype=np.int64))
        stats._count_batch(np.asarray([3, 1, 0, 2]), 2)
        assert stats.messages == 6
        stats.adopt_column(np.asarray([3, 2], dtype=np.int64))
        assert stats.messages == 6
        assert stats.retired_messages == 1
        np.testing.assert_array_equal(
            stats.per_node_messages.as_array(), [3, 2]
        )


# ---------------------------------------------------------------------------
# Scenario specs and registry (tentpole c)
# ---------------------------------------------------------------------------


class TestScenarioSpec:
    def test_builtins_registered(self):
        names = SCENARIOS.available()
        for name in (
            "ideal", "lossy", "bursty", "contended", "churny", "lossy_churn"
        ):
            assert name in names

    def test_builders_return_fresh_validated_specs(self):
        a = SCENARIOS.create("lossy_churn")
        b = SCENARIOS.create("lossy_churn")
        assert a is not b
        a.validate()

    def test_resolve_by_name_and_instance(self):
        spec = resolve_scenario("ideal")
        assert isinstance(spec, ScenarioSpec)
        assert resolve_scenario(spec) is spec
        with pytest.raises(ConfigurationError):
            resolve_scenario("no_such_scenario")
        with pytest.raises(ConfigurationError):
            resolve_scenario(42)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", source="nope").validate()
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", initial_nodes=10, total_nodes=5).validate()
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="x",
                num_steps=50,
                churn=ChurnSchedule([ChurnEvent(slot=50, kind="join")]),
            ).validate()

    def test_with_steps_drops_out_of_range_churn(self):
        spec = SCENARIOS.create("lossy_churn")
        short = spec.with_steps(80)
        assert short.num_steps == 80
        assert all(e.slot < 80 for e in short.churn)
        short.validate()

    def test_effective_reorder_window_covers_latency(self):
        spec = ScenarioSpec(name="x", link=LinkConfig(latency=5))
        assert spec.effective_reorder_window > 5
        pinned = ScenarioSpec(name="x", reorder_window=3)
        assert pinned.effective_reorder_window == 3


# ---------------------------------------------------------------------------
# The trace-replay harness, end to end (tentpole c, acceptance)
# ---------------------------------------------------------------------------


def quick_lossy_churn(num_steps=90):
    """The acceptance scenario, shortened for test wall-clock."""
    return ScenarioSpec(
        name="quick_lossy_churn",
        source="alibaba",
        num_steps=num_steps,
        total_nodes=16,
        initial_nodes=12,
        seed=11,
        link=LinkConfig(
            loss=0.05, burst_enter=0.05, burst_exit=0.35, burst_loss=0.8,
            latency=1, uplinks=2, uplink_capacity=3, seed=104,
        ),
        churn=ChurnSchedule([
            ChurnEvent(slot=30, kind="join", count=2),
            ChurnEvent(slot=45, kind="crash", count=2),
            ChurnEvent(slot=60, kind="leave", count=2),
            ChurnEvent(slot=75, kind="join", count=1),
        ]),
    )


class TestHarness:
    def test_lossy_contended_churny_run_conserves(self):
        report = run_scenario(quick_lossy_churn())
        assert report.conserved
        totals = report.link_totals
        assert totals["sent"] == (
            totals["delivered_now"]
            + totals["delivered_late"]
            + totals["dropped_loss"]
            + totals["dropped_churn"]
            + report.in_flight
        )
        # With latency=1 everything delivered arrives late, through the
        # session's reorder-window contract.
        assert totals["delivered_now"] == 0
        assert totals["delivered_late"] > 0
        assert report.late_applied + report.late_dropped == (
            totals["delivered_late"]
        )
        assert report.late_applied > 0
        # All three churn kinds actually fired.
        kinds = {kind for _, kind, _ in report.events}
        assert kinds == {"join", "crash", "leave"}
        assert report.slots == 90
        assert report.final_nodes == 13
        assert len(report.per_slot["fleet_size"]) == 90
        assert report.per_slot["fleet_size"][0] == 12
        # Per-slot link deltas sum back to the cumulative totals.
        for key in (
            "delivered_now", "delivered_late", "dropped_loss", "dropped_churn"
        ):
            assert int(report.per_slot[key].sum()) == totals[key]
        assert report.rmse_by_horizon
        assert "conserved" in report.summary()

    def test_ideal_scenario_report(self):
        spec = ScenarioSpec(
            name="tiny_ideal", source="sensor", resource="temperature",
            num_steps=60, total_nodes=8, initial_nodes=8,
        )
        report = run_scenario(spec)
        assert report.conserved
        assert report.link_totals["sent"] == (
            report.link_totals["delivered_now"]
        )
        assert report.late_applied == 0
        assert report.transport_messages == report.link_totals["sent"]
        assert 0 < report.empirical_frequency <= 1

    def test_until_truncates(self):
        report = run_scenario(quick_lossy_churn(), until=40)
        assert report.slots == 40
        assert all(slot < 40 for slot, _, _ in report.events)


# ---------------------------------------------------------------------------
# Checkpoint/resume mid-scenario, mid-churn (satellite 3, second pin)
# ---------------------------------------------------------------------------


class TestScenarioCheckpointResume:
    def compare_full_vs_resumed(self, spec, stop, tmp_path):
        full_path = tmp_path / "full.ckpt"
        run_scenario(spec, checkpoint_path=full_path)

        staged_path = tmp_path / "staged.ckpt"
        run_scenario(spec, until=stop, checkpoint_path=staged_path)
        resumed_path = tmp_path / "resumed.ckpt"
        tail = run_scenario(
            spec, resume_from=staged_path, checkpoint_path=resumed_path
        )
        assert tail.slots == spec.num_steps - stop

        from repro.checkpoint import as_checkpoint

        full = as_checkpoint(full_path)
        resumed = as_checkpoint(resumed_path)
        assert_trees_equal(full.session, resumed.session)
        assert_trees_equal(
            strip_timings(full.state), strip_timings(resumed.state)
        )

    def test_resume_mid_scenario(self, tmp_path):
        # Stop between churn events, with latency traffic in flight.
        self.compare_full_vs_resumed(quick_lossy_churn(), 40, tmp_path)

    def test_resume_immediately_after_churn(self, tmp_path):
        # Stop right after a compact: geometry just changed.
        self.compare_full_vs_resumed(quick_lossy_churn(), 61, tmp_path)

    def test_resume_rejects_mismatched_membership(self, tmp_path):
        spec = quick_lossy_churn()
        path = tmp_path / "staged.ckpt"
        run_scenario(spec, until=70, checkpoint_path=path)
        import dataclasses

        other = dataclasses.replace(spec, initial_nodes=13)
        with pytest.raises(SimulationError):
            run_scenario(other, resume_from=path)

    def test_linked_checkpoint_requires_link(self, tmp_path):
        link = NetworkLink(5, LinkConfig(loss=0.1, seed=3))
        engine = Engine(config(), policy="uniform")
        session = engine.session(5, 1, link=link)
        trace = walk_trace(steps=20, nodes=5, seed=8)
        for t in range(trace.shape[0]):
            session.ingest(trace[t][:, np.newaxis])
        path = tmp_path / "linked.ckpt"
        session.save(path)
        with pytest.raises(CheckpointError):
            Engine(config(), policy="uniform").resume(path)
        fresh = NetworkLink(5, LinkConfig(loss=0.1, seed=3))
        resumed = Engine(config(), policy="uniform").resume(path, link=fresh)
        assert resumed.time == 20
        assert fresh.counters() == link.counters()
