"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "table2" in out
        assert "ablation_reindexing" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown" in err

    def test_run_small_experiment(self, capsys):
        code = main(["run", "fig3", "--nodes", "10", "--steps", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "alibaba" in out

    def test_run_fig12_ignores_steps_override(self, capsys):
        # fig12 takes train_steps/test_steps, not num_steps; the CLI
        # should drop the inapplicable override instead of crashing.
        code = main(["run", "fig12", "--nodes", "30", "--steps", "100"])
        assert code == 0

    def test_demo(self, capsys):
        code = main(
            ["demo", "--nodes", "10", "--steps", "120", "--clusters", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RMSE(h=0)" in out
        assert "transmission frequency" in out
