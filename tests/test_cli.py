"""Tests for the command-line interface."""

import json

from repro.cli import main
from repro.core.config import PipelineConfig


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "table2" in out
        assert "ablation_reindexing" in out

    def test_list_shows_components(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "forecasters" in out
        assert "sample_hold" in out
        assert "collection backends" in out
        assert "perfect" in out
        assert "similarity measures" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown" in err

    def test_run_small_experiment(self, capsys):
        code = main(["run", "fig3", "--nodes", "10", "--steps", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "alibaba" in out

    def test_run_fig12_ignores_steps_override(self, capsys):
        # fig12 takes train_steps/test_steps, not num_steps; the CLI
        # should drop the inapplicable override instead of crashing.
        code = main(["run", "fig12", "--nodes", "30", "--steps", "100"])
        assert code == 0

    def test_run_nothing_given(self, capsys):
        assert main(["run"]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_run_config_file(self, capsys, tmp_path):
        config = PipelineConfig.small(
            initial_collection=30, retrain_interval=30, max_horizon=2
        )
        path = tmp_path / "config.json"
        path.write_text(json.dumps(config.to_dict()))
        code = main([
            "run", "--config", str(path), "--nodes", "8", "--steps", "90",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "RMSE(h=0)" in out
        assert "timings" in out
        assert "model=sample_hold" in out

    def test_run_config_missing_file(self, capsys, tmp_path):
        assert main(["run", "--config", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_run_config_invalid_contents(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"forecasting": {"model": "nope"}}))
        assert main(["run", "--config", str(path)]) == 2
        assert "invalid configuration" in capsys.readouterr().err

    def test_run_config_and_experiments_exclusive(self, capsys, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(json.dumps(PipelineConfig().to_dict()))
        assert main(["run", "fig3", "--config", str(path)]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_demo(self, capsys):
        code = main(
            ["demo", "--nodes", "10", "--steps", "120", "--clusters", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RMSE(h=0)" in out
        assert "transmission frequency" in out
