"""Tests for static, minimum-distance, and windowed clustering."""

import numpy as np
import pytest

from repro.clustering.minimum_distance import MinimumDistanceClustering
from repro.clustering.static import StaticClustering
from repro.clustering.windowing import WindowedFeatureBuilder, windowed_features
from repro.exceptions import ConfigurationError, DataError, NotFittedError


class TestStaticClustering:
    def _trace(self):
        rng = np.random.default_rng(0)
        t = np.arange(50)
        low = 0.2 + 0.01 * rng.standard_normal((50, 10))
        high = 0.8 + 0.01 * rng.standard_normal((50, 10))
        return np.concatenate([low, high], axis=1)

    def test_fixed_partition(self):
        trace = self._trace()
        static = StaticClustering(2, seed=0).fit(trace)
        labels = static.labels
        assert (labels[:10] == labels[0]).all()
        assert (labels[10:] == labels[10]).all()
        assert labels[0] != labels[10]

    def test_assign_uses_current_values(self):
        trace = self._trace()
        static = StaticClustering(2, seed=0).fit(trace)
        values = trace[7]
        assignment = static.assign(values, time=7)
        assert assignment.time == 7
        low_cluster = int(static.labels[0])
        assert assignment.centroids[low_cluster, 0] == pytest.approx(
            values[:10].mean()
        )

    def test_labels_before_fit_raise(self):
        with pytest.raises(NotFittedError):
            StaticClustering(2).labels

    def test_assign_wrong_node_count(self):
        static = StaticClustering(2, seed=0).fit(self._trace())
        with pytest.raises(DataError):
            static.assign(np.zeros(5))

    def test_3d_trace_accepted(self):
        trace = self._trace()[:, :, np.newaxis]
        static = StaticClustering(2, seed=0).fit(trace)
        assert static.labels.shape == (20,)


class TestMinimumDistanceClustering:
    def test_representatives_are_centroids(self):
        clusterer = MinimumDistanceClustering(3, seed=0)
        values = np.random.default_rng(0).random(12)
        assignment = clusterer.update(values)
        # Each centroid equals the measurement of some node.
        for j in range(3):
            assert any(
                np.isclose(assignment.centroids[j, 0], values[i])
                for i in range(12)
            )

    def test_nodes_map_to_nearest_representative(self):
        clusterer = MinimumDistanceClustering(2, seed=1)
        values = np.array([0.0, 0.01, 0.99, 1.0, 0.02, 0.98])
        assignment = clusterer.update(values)
        centers = assignment.centroids[:, 0]
        for i, v in enumerate(values):
            chosen = assignment.labels[i]
            dist_chosen = abs(v - centers[chosen])
            assert all(
                dist_chosen <= abs(v - centers[j]) + 1e-12 for j in range(2)
            )

    def test_redraw_every_step(self):
        clusterer = MinimumDistanceClustering(2, seed=2)
        values = np.random.default_rng(3).random(30)
        a0 = clusterer.update(values)
        seen_different = False
        for _ in range(10):
            a1 = clusterer.update(values)
            if not np.allclose(a0.centroids, a1.centroids):
                seen_different = True
        assert seen_different

    def test_k_greater_than_n(self):
        clusterer = MinimumDistanceClustering(5, seed=0)
        with pytest.raises(ConfigurationError):
            clusterer.update(np.zeros(3))

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            MinimumDistanceClustering(0)

    def test_time_increments(self):
        clusterer = MinimumDistanceClustering(2, seed=0)
        values = np.random.default_rng(0).random(5)
        assert clusterer.update(values).time == 0
        assert clusterer.update(values).time == 1


class TestWindowing:
    def test_window_one_is_identity(self):
        builder = WindowedFeatureBuilder(1)
        values = np.random.default_rng(0).random((4, 2))
        out = builder.push(values)
        np.testing.assert_array_equal(out, values)

    def test_window_padding_before_full(self):
        builder = WindowedFeatureBuilder(3)
        v0 = np.array([[1.0], [2.0]])
        out = builder.push(v0)
        # Oldest slot repeated until the buffer fills.
        np.testing.assert_array_equal(out, [[1, 1, 1], [2, 2, 2]])

    def test_window_ordering_recent_last(self):
        builder = WindowedFeatureBuilder(2)
        builder.push(np.array([[1.0]]))
        out = builder.push(np.array([[2.0]]))
        np.testing.assert_array_equal(out, [[1.0, 2.0]])

    def test_rolling_eviction(self):
        builder = WindowedFeatureBuilder(2)
        for v in (1.0, 2.0, 3.0):
            out = builder.push(np.array([[v]]))
        np.testing.assert_array_equal(out, [[2.0, 3.0]])

    def test_reset(self):
        builder = WindowedFeatureBuilder(2)
        builder.push(np.array([[1.0]]))
        builder.reset()
        out = builder.push(np.array([[5.0]]))
        np.testing.assert_array_equal(out, [[5.0, 5.0]])

    def test_shape_change_rejected(self):
        builder = WindowedFeatureBuilder(2)
        builder.push(np.zeros((3, 1)))
        with pytest.raises(DataError):
            builder.push(np.zeros((4, 1)))

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            WindowedFeatureBuilder(0)

    def test_batch_matches_incremental(self):
        trace = np.random.default_rng(1).random((6, 3))
        batch = windowed_features(trace, 3)
        builder = WindowedFeatureBuilder(3)
        for t in range(6):
            np.testing.assert_array_equal(batch[t], builder.push(trace[t]))

    def test_batch_output_shape(self):
        trace = np.random.default_rng(2).random((5, 4, 2))
        batch = windowed_features(trace, 2)
        assert batch.shape == (5, 4, 4)
