"""Deprecated entry points: one-time warnings, unchanged results.

The shims (`run_pipeline`, `MonitoringSystem`) must (a) warn exactly
once per process, naming the Engine replacement, and (b) be the *only*
warning sources — the engine paths stay clean under
``-W error::DeprecationWarning``.
"""

import warnings

import numpy as np
import pytest

from repro._compat import reset_deprecation_warnings
from repro.api import Engine
from repro.core.config import PipelineConfig
from repro.core.pipeline import run_pipeline
from repro.simulation.system import MonitoringSystem


def config():
    return PipelineConfig.small(
        num_clusters=2,
        budget=0.3,
        max_horizon=2,
        initial_collection=20,
        retrain_interval=20,
    )


def walk_trace(steps=60, nodes=6, seed=0):
    rng = np.random.default_rng(seed)
    return np.clip(
        0.5 + np.cumsum(rng.normal(0, 0.03, (steps, nodes)), axis=0), 0, 1
    )


class TestOneTimeWarnings:
    def test_run_pipeline_warns_once_naming_engine(self):
        trace = walk_trace(steps=30)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_pipeline(trace, config())
            run_pipeline(trace, config())
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.api.Engine" in str(deprecations[0].message)

    def test_monitoring_system_warns_once_naming_engine(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            MonitoringSystem(3, 1, config())
            MonitoringSystem(3, 1, config())
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.api.Engine" in str(deprecations[0].message)

    def test_shims_warn_independently(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_pipeline(walk_trace(steps=30), config())
            MonitoringSystem(3, 1, config())
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2


class TestEnginePathsAreWarningFree:
    def test_engine_under_error_filter(self):
        trace = walk_trace()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine = Engine(config())
            engine.run(trace)
            engine.run(trace, shards=2)
            streaming = Engine(config(), num_nodes=6, num_resources=1)
            for t in range(25):
                streaming.step(trace[t])

    def test_shim_results_unchanged_by_the_once_gate(self):
        # The second (silent) shim call returns the same numbers as the
        # first (warning) call and as the engine itself.
        trace = walk_trace(seed=4)
        cfg = config()
        with pytest.deprecated_call():
            first = run_pipeline(trace, cfg)
        second = run_pipeline(trace, cfg)  # silent: already warned
        new = Engine(cfg).run(trace)
        assert first.rmse_by_horizon == second.rmse_by_horizon
        assert first.rmse_by_horizon == new.rmse_by_horizon
        np.testing.assert_array_equal(first.stored, new.stored)
        np.testing.assert_array_equal(second.stored, new.stored)

    def test_reset_hook_restores_warning(self):
        with pytest.deprecated_call():
            run_pipeline(walk_trace(steps=30), config())
        reset_deprecation_warnings()
        with pytest.deprecated_call():
            run_pipeline(walk_trace(steps=30), config())
