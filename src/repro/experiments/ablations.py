"""Ablation studies of the paper's design choices.

Not figures from the paper, but the experiments DESIGN.md commits to for
validating the pieces the paper asserts without isolating:

* **Re-indexing** — is the Hungarian cluster matching (Sec. V-B)
  actually needed, or would raw per-step K-means labels do?  Without
  re-indexing the "centroid time series" jumps between clusters whenever
  K-means permutes its output, so centroid-based forecasting should
  degrade.
* **Per-node offsets** — how much does the Eq. 12 offset ``ŝ`` buy over
  pure centroid estimation, and does the α-clipping matter versus raw
  offsets?
* **Warm-start K-means** — seeding each step's K-means with the previous
  centroids: same quality for less work?
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.exceptions import ConfigurationError
from repro.clustering.dynamic import DynamicClusterTracker
from repro.clustering.kmeans import kmeans
from repro.core.config import TransmissionConfig
from repro.core.types import ClusterAssignment
from repro.datasets import load_alibaba_like, load_google_like
from repro.experiments.common import (
    intermediate_rmse_of,
    run_clustering,
    sample_hold_forecast_rmse,
)
from repro.simulation.collection import collect


def _unmatched_assignments(
    stored: np.ndarray, num_clusters: int, seed: int
) -> List[ClusterAssignment]:
    """Per-step K-means with *no* re-indexing (raw label order)."""
    rng = np.random.default_rng(seed)
    assignments = []
    for t in range(stored.shape[0]):
        result = kmeans(stored[t][:, np.newaxis], num_clusters, rng=rng)
        assignments.append(
            ClusterAssignment(
                time=t, labels=result.labels, centroids=result.centroids
            )
        )
    return assignments


@dataclass
class ReindexingAblationResult:
    """Forecast RMSE with and without Hungarian re-indexing."""

    horizons: Sequence[int]
    rmse: Dict[str, Dict[int, float]]

    def format(self) -> str:
        rows = []
        for variant, per_h in sorted(self.rmse.items()):
            for h in self.horizons:
                rows.append([variant, h, per_h[h]])
        return format_table(["variant", "h", "RMSE"], rows)

    def reindexing_helps(self, horizon: int) -> bool:
        return (
            self.rmse["matched"][horizon]
            <= self.rmse["unmatched"][horizon] + 1e-9
        )


def run_ablation_reindexing(
    num_nodes: int = 60,
    num_steps: int = 500,
    *,
    num_clusters: int = 3,
    budget: float = 0.3,
    horizons: Sequence[int] = (1, 5, 10),
    start: int = 80,
    seed: int = 0,
) -> ReindexingAblationResult:
    """Hungarian re-indexing vs raw K-means label order."""
    dataset = load_alibaba_like(num_nodes=num_nodes, num_steps=num_steps)
    trace = dataset.resource("cpu")
    stored = collect(
        trace, TransmissionConfig(budget=budget)
    ).stored[:, :, 0]
    matched = run_clustering(stored, "proposed", num_clusters, seed=seed)
    unmatched = _unmatched_assignments(stored, num_clusters, seed)
    rmse = {
        "matched": sample_hold_forecast_rmse(
            trace, stored, matched, horizons, start=start
        ),
        "unmatched": sample_hold_forecast_rmse(
            trace, stored, unmatched, horizons, start=start
        ),
    }
    return ReindexingAblationResult(horizons=horizons, rmse=rmse)


@dataclass
class OffsetAblationResult:
    """Forecast RMSE with clipped / raw / no per-node offsets."""

    horizons: Sequence[int]
    rmse: Dict[str, Dict[int, float]]

    def format(self) -> str:
        rows = []
        for variant, per_h in sorted(self.rmse.items()):
            for h in self.horizons:
                rows.append([variant, h, per_h[h]])
        return format_table(["offset mode", "h", "RMSE"], rows)

    def offsets_help(self, horizon: int) -> bool:
        return (
            self.rmse["clipped"][horizon]
            <= self.rmse["none"][horizon] + 1e-9
        )


def run_ablation_offsets(
    num_nodes: int = 60,
    num_steps: int = 500,
    *,
    num_clusters: int = 3,
    budget: float = 0.3,
    horizons: Sequence[int] = (1, 5, 10),
    start: int = 80,
    seed: int = 0,
) -> OffsetAblationResult:
    """Eq. 12 offsets (clipped) vs raw offsets vs none."""
    dataset = load_google_like(num_nodes=num_nodes, num_steps=num_steps)
    trace = dataset.resource("cpu")
    stored = collect(
        trace, TransmissionConfig(budget=budget)
    ).stored[:, :, 0]
    assignments = run_clustering(stored, "proposed", num_clusters, seed=seed)
    rmse = {
        mode: sample_hold_forecast_rmse(
            trace, stored, assignments, horizons, start=start,
            offset_mode=mode,
        )
        for mode in ("clipped", "raw", "none")
    }
    return OffsetAblationResult(horizons=horizons, rmse=rmse)


@dataclass
class DeadbandAblationResult:
    """Why explicit frequency control matters (Sec. II's argument).

    A deadband (send-on-delta) policy is calibrated to hit the target
    frequency on ONE dataset; the same δ is then applied to the others.
    Because its frequency is only implicitly tied to data volatility, it
    misses the budget badly elsewhere, while the Lyapunov policy hits the
    target everywhere.

    Attributes:
        target: The intended transmission frequency.
        calibration_dataset: Where δ was tuned.
        delta: The calibrated deadband width.
        deadband_frequency: Achieved frequency per dataset with that δ.
        adaptive_frequency: Achieved frequency per dataset with the
            Lyapunov policy at budget = target.
    """

    target: float
    calibration_dataset: str
    delta: float
    deadband_frequency: Dict[str, float]
    adaptive_frequency: Dict[str, float]

    def format(self) -> str:
        rows = []
        for dataset in sorted(self.deadband_frequency):
            rows.append(
                [
                    dataset,
                    self.target,
                    self.deadband_frequency[dataset],
                    self.adaptive_frequency[dataset],
                ]
            )
        header = (
            f"deadband δ={self.delta:.4f} calibrated on "
            f"{self.calibration_dataset}\n"
        )
        return header + format_table(
            ["dataset", "target B", "deadband freq", "adaptive freq"], rows
        )

    def max_deadband_miss(self) -> float:
        """Largest relative budget miss of the deadband policy."""
        return max(
            abs(freq - self.target) / self.target
            for freq in self.deadband_frequency.values()
        )

    def max_adaptive_miss(self) -> float:
        return max(
            abs(freq - self.target) / self.target
            for freq in self.adaptive_frequency.values()
        )


def run_ablation_deadband(
    num_nodes: int = 60,
    num_steps: int = 800,
    *,
    target: float = 0.3,
    calibration_dataset: str = "alibaba",
    seed: int = 0,
) -> DeadbandAblationResult:
    """Calibrate a deadband on one dataset, apply it everywhere."""
    from repro.experiments.common import load_cluster_datasets
    from repro.transmission.deadband import simulate_deadband_collection

    datasets = load_cluster_datasets(num_nodes, num_steps)
    if calibration_dataset not in datasets:
        raise ConfigurationError(
            f"unknown calibration dataset {calibration_dataset!r}"
        )
    calibration_trace = datasets[calibration_dataset].resource("cpu")

    # Bisect δ to reach the target frequency on the calibration trace.
    low, high = 1e-4, 1.0
    delta = 0.05
    for _ in range(40):
        delta = 0.5 * (low + high)
        freq = simulate_deadband_collection(
            calibration_trace, delta
        ).empirical_frequency
        if freq > target:
            low = delta
        else:
            high = delta

    deadband_freq: Dict[str, float] = {}
    adaptive_freq: Dict[str, float] = {}
    for name, dataset in datasets.items():
        trace = dataset.resource("cpu")
        deadband_freq[name] = simulate_deadband_collection(
            trace, delta
        ).empirical_frequency
        adaptive_freq[name] = collect(
            trace, TransmissionConfig(budget=target)
        ).empirical_frequency
    return DeadbandAblationResult(
        target=target,
        calibration_dataset=calibration_dataset,
        delta=delta,
        deadband_frequency=deadband_freq,
        adaptive_frequency=adaptive_freq,
    )


@dataclass
class WarmStartAblationResult:
    """Quality and wall-clock with and without warm-start K-means."""

    intermediate_rmse: Dict[str, float]
    seconds: Dict[str, float]

    def format(self) -> str:
        rows = [
            [variant, self.intermediate_rmse[variant], self.seconds[variant]]
            for variant in sorted(self.intermediate_rmse)
        ]
        return format_table(
            ["variant", "intermediate RMSE", "seconds"], rows
        )

    def quality_gap(self) -> float:
        return abs(
            self.intermediate_rmse["warm"] - self.intermediate_rmse["cold"]
        )


def run_ablation_warm_start(
    num_nodes: int = 80,
    num_steps: int = 500,
    *,
    num_clusters: int = 3,
    budget: float = 0.3,
    seed: int = 0,
) -> WarmStartAblationResult:
    """Warm-started per-step K-means vs fresh k-means++ restarts."""
    dataset = load_alibaba_like(num_nodes=num_nodes, num_steps=num_steps)
    trace = dataset.resource("cpu")
    stored = collect(
        trace, TransmissionConfig(budget=budget)
    ).stored[:, :, 0]
    intermediate: Dict[str, float] = {}
    seconds: Dict[str, float] = {}
    for variant, warm in (("cold", False), ("warm", True)):
        tracker = DynamicClusterTracker(
            num_clusters, seed=seed, warm_start=warm
        )
        started = time.perf_counter()
        assignments = [
            tracker.update(stored[t]) for t in range(stored.shape[0])
        ]
        seconds[variant] = time.perf_counter() - started
        intermediate[variant] = intermediate_rmse_of(stored, assignments)
    return WarmStartAblationResult(
        intermediate_rmse=intermediate, seconds=seconds
    )
