"""Fig. 12 & Table IV — comparison with the Gaussian-based method of [3].

The modified setting of Sec. VI-E: 100 randomly selected machines, a
500-step training phase where everyone transmits, then a testing phase
where only K monitors transmit and the rest are inferred.  Compares the
paper's clustering-based monitor selection against minimum-distance and
the three Gaussian schemes (Top-W, Top-W-Update, Batch Selection), in
both RMSE (Fig. 12, vs K) and computation time (Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.experiments.common import load_cluster_datasets
from repro.gaussian.monitor import (
    BatchSelectionScheme,
    MinimumDistanceScheme,
    MonitoringEvaluation,
    ProposedMonitorScheme,
    TopWScheme,
    TopWUpdateScheme,
    evaluate_scheme,
)

SCHEMES = (
    "proposed",
    "minimum_distance",
    "top_w",
    "top_w_update",
    "batch_selection",
)


def _build_scheme(name: str, num_monitors: int, seed: int):
    if name == "proposed":
        return ProposedMonitorScheme(num_monitors, seed=seed)
    if name == "minimum_distance":
        return MinimumDistanceScheme(num_monitors, seed=seed)
    if name == "top_w":
        return TopWScheme(num_monitors)
    if name == "top_w_update":
        # Per-step re-estimation, matching the cost profile the paper
        # reports in Table IV (Top-W-Update orders of magnitude slower).
        return TopWUpdateScheme(num_monitors, update_interval=1)
    if name == "batch_selection":
        return BatchSelectionScheme(num_monitors)
    raise ValueError(f"unknown scheme {name!r}")


@dataclass
class Fig12Result:
    """RMSE and timing per (dataset, scheme, K).

    Attributes:
        monitor_counts: Swept K values.
        evaluations: ``{(dataset, scheme): [evaluation per K]}``.
    """

    monitor_counts: Sequence[int]
    evaluations: Dict[Tuple[str, str], List[MonitoringEvaluation]]

    def format(self) -> str:
        rows = []
        for (dataset, scheme), evals in sorted(self.evaluations.items()):
            for count, evaluation in zip(self.monitor_counts, evals):
                rows.append(
                    [
                        dataset,
                        scheme,
                        count,
                        evaluation.rmse,
                        evaluation.total_seconds,
                    ]
                )
        return format_table(
            ["dataset", "scheme", "K", "RMSE", "seconds"], rows
        )

    def rmse_table(self, dataset: str) -> Dict[str, List[float]]:
        return {
            scheme: [e.rmse for e in evals]
            for (d, scheme), evals in self.evaluations.items()
            if d == dataset
        }

    def timing_table(self, dataset: str) -> Dict[str, float]:
        """Total seconds summed over the K sweep (Table IV flavor)."""
        return {
            scheme: float(sum(e.total_seconds for e in evals))
            for (d, scheme), evals in self.evaluations.items()
            if d == dataset
        }


def run_fig12(
    num_nodes: int = 100,
    *,
    train_steps: int = 500,
    test_steps: int = 500,
    monitor_counts: Sequence[int] = (10, 25, 50),
    datasets: Sequence[str] = ("alibaba", "bitbrains", "google"),
    resource: str = "cpu",
    schemes: Sequence[str] = SCHEMES,
    seed: int = 0,
) -> Fig12Result:
    """Regenerate the Fig. 12 / Table IV comparison."""
    # Drop monitor counts that exceed the (possibly scaled-down) fleet.
    monitor_counts = tuple(k for k in monitor_counts if k <= num_nodes)
    if not monitor_counts:
        monitor_counts = (max(1, num_nodes // 2),)
    num_steps = train_steps + test_steps
    all_data = load_cluster_datasets(num_nodes, num_steps)
    selected = {k: v for k, v in all_data.items() if k in set(datasets)}
    evaluations: Dict[Tuple[str, str], List[MonitoringEvaluation]] = {}
    for name, dataset in selected.items():
        trace = dataset.resource(resource)
        train = trace[:train_steps]
        test = trace[train_steps:]
        for scheme_name in schemes:
            evals = []
            for count in monitor_counts:
                scheme = _build_scheme(scheme_name, count, seed)
                evals.append(evaluate_scheme(scheme, train, test))
            evaluations[(name, scheme_name)] = evals
    return Fig12Result(
        monitor_counts=monitor_counts, evaluations=evaluations
    )
