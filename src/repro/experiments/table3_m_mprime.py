"""Table III — RMSE across the (M, M') parameter grid.

Sweeps the similarity look-back ``M`` and the membership/offset look-back
``M'`` on the Google-like CPU data with the sample-and-hold forecaster,
at horizons h ∈ {1, 5, 10}.  Paper findings: M = 1 is a good default
everywhere, and the best M' increases with the horizon (forecasting
farther ahead should rely on longer membership history).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.core.config import TransmissionConfig
from repro.datasets import load_google_like
from repro.experiments.common import (
    run_clustering,
    sample_hold_forecast_rmse,
)
from repro.simulation.collection import collect

DEFAULT_M = (1, 5, 12)
DEFAULT_M_PRIME = (1, 5, 12)
DEFAULT_HORIZONS = (1, 5, 10)


@dataclass
class Table3Result:
    """RMSE per (h, M, M')."""

    horizons: Sequence[int]
    m_values: Sequence[int]
    m_prime_values: Sequence[int]
    rmse: Dict[Tuple[int, int, int], float]

    def format(self) -> str:
        blocks = []
        for h in self.horizons:
            rows = []
            for m in self.m_values:
                row: list = [f"M={m}"]
                for mp in self.m_prime_values:
                    row.append(self.rmse[(h, m, mp)])
                rows.append(row)
            headers = [f"h={h}"] + [f"M'={mp}" for mp in self.m_prime_values]
            blocks.append(format_table(headers, rows))
        return "\n\n".join(blocks)

    def best_m_prime(self, h: int, m: int = 1) -> int:
        """The M' minimizing RMSE at horizon h (for fixed M)."""
        best = min(
            self.m_prime_values, key=lambda mp: self.rmse[(h, m, mp)]
        )
        return best


def run_table3(
    num_nodes: int = 60,
    num_steps: int = 700,
    *,
    m_values: Sequence[int] = DEFAULT_M,
    m_prime_values: Sequence[int] = DEFAULT_M_PRIME,
    horizons: Sequence[int] = DEFAULT_HORIZONS,
    num_clusters: int = 3,
    budget: float = 0.3,
    start: int = 100,
    seed: int = 0,
) -> Table3Result:
    """Regenerate the Table III grid."""
    dataset = load_google_like(num_nodes=num_nodes, num_steps=num_steps)
    trace = dataset.resource("cpu")
    stored = collect(
        trace, TransmissionConfig(budget=budget)
    ).stored[:, :, 0]
    rmse: Dict[Tuple[int, int, int], float] = {}
    for m in m_values:
        assignments = run_clustering(
            stored, "proposed", num_clusters, seed=seed, history_depth=m
        )
        for mp in m_prime_values:
            per_h = sample_hold_forecast_rmse(
                trace,
                stored,
                assignments,
                horizons,
                membership_lookback=mp,
                start=start,
            )
            for h, value in per_h.items():
                rmse[(h, m, mp)] = value
    return Table3Result(
        horizons=horizons,
        m_values=m_values,
        m_prime_values=m_prime_values,
        rmse=rmse,
    )
