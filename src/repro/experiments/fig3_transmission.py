"""Fig. 3 — requested vs actual transmission frequency.

Shows that the adaptive Lyapunov policy drives the empirical transmission
frequency to the requested budget ``B`` on all three datasets (with the
paper's control parameters V0 = 1e-12, γ = 0.65).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.reporting import format_table
from repro.core.config import TransmissionConfig
from repro.experiments.common import load_cluster_datasets
from repro.simulation.collection import collect

#: The paper sweeps requested frequencies on a log grid in [0.01, ~0.5].
DEFAULT_BUDGETS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5)


@dataclass
class Fig3Result:
    """Actual frequency per dataset and requested budget.

    Attributes:
        budgets: Requested frequencies B.
        actual: ``{dataset: [actual frequency per budget]}``.
    """

    budgets: Sequence[float]
    actual: Dict[str, List[float]]

    def format(self) -> str:
        rows = []
        for name, freqs in self.actual.items():
            for budget, freq in zip(self.budgets, freqs):
                rows.append([name, budget, freq, freq / budget])
        return format_table(
            ["dataset", "requested B", "actual freq", "ratio"], rows
        )


def run_fig3(
    num_nodes: int = 60,
    num_steps: int = 1500,
    *,
    budgets: Sequence[float] = DEFAULT_BUDGETS,
    resource: str = "cpu",
) -> Fig3Result:
    """Regenerate the Fig. 3 sweep.

    Args:
        num_nodes, num_steps: Scale of each synthetic dataset.
        budgets: Requested transmission frequencies.
        resource: Resource type driving the penalty.
    """
    datasets = load_cluster_datasets(num_nodes, num_steps)
    actual: Dict[str, List[float]] = {}
    for name, dataset in datasets.items():
        trace = dataset.resource(resource)
        freqs = []
        for budget in budgets:
            config = TransmissionConfig(budget=budget)
            result = collect(trace, config)
            freqs.append(result.empirical_frequency)
        actual[name] = freqs
    return Fig3Result(budgets=budgets, actual=actual)
