"""Fig. 1 — CDF of long-term spatial correlation, sensors vs clusters.

The paper's motivational claim: temperature/humidity readings at sensor
motes are strongly spatially correlated (most pairwise correlations above
0.5), whereas CPU/memory utilizations of cluster machines are weakly
correlated (most correlations in (−0.5, 0.5)).  This experiment
regenerates the four CDFs and the headline fractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.correlation import cdf_at, fraction_above, pairwise_correlations
from repro.analysis.reporting import format_table
from repro.datasets import load_google_like, load_sensor_like


@dataclass
class Fig1Result:
    """CDF summaries per data type.

    Attributes:
        grid: The correlation values at which CDFs are evaluated.
        cdfs: ``{series_name: CDF values on the grid}``.
        fraction_above_half: ``{series_name: P(corr > 0.5)}``.
    """

    grid: np.ndarray
    cdfs: Dict[str, np.ndarray]
    fraction_above_half: Dict[str, float]

    def format(self) -> str:
        rows = []
        for name in self.cdfs:
            rows.append(
                [
                    name,
                    self.fraction_above_half[name],
                    float(self.cdfs[name][np.searchsorted(self.grid, 0.5)]),
                ]
            )
        return format_table(
            ["series", "P(corr > 0.5)", "CDF(0.5)"], rows
        )


def run_fig1(
    num_nodes: int = 54,
    num_steps: int = 1500,
    *,
    cluster_nodes: int = 80,
    seed: int = 0,
) -> Fig1Result:
    """Regenerate the Fig. 1 comparison.

    Args:
        num_nodes: Sensor motes.
        num_steps: Trace length for both datasets.
        cluster_nodes: Cluster machines (Google-like trace).
        seed: Seed offset for both generators.
    """
    sensors = load_sensor_like(
        num_nodes=num_nodes, num_steps=num_steps, seed=17 + seed
    )
    cluster = load_google_like(
        num_nodes=cluster_nodes, num_steps=num_steps, seed=13 + seed
    )
    grid = np.linspace(-1.0, 1.0, 81)
    series = {
        "temperature": sensors.resource("temperature"),
        "humidity": sensors.resource("humidity"),
        "cpu": cluster.resource("cpu"),
        "memory": cluster.resource("memory"),
    }
    cdfs = {}
    above = {}
    for name, trace in series.items():
        corr = pairwise_correlations(trace)
        cdfs[name] = cdf_at(corr, grid)
        above[name] = fraction_above(trace, 0.5)
    return Fig1Result(grid=grid, cdfs=cdfs, fraction_above_half=above)
