"""Fig. 6 — intermediate RMSE vs transmission frequency B (K = 3).

Compares the proposed dynamic clustering against the minimum-distance
(random representative) baseline and the offline static baseline across
transmission budgets.  Paper findings: proposed beats minimum-distance
everywhere and is competitive with the (unfairly offline) static
baseline; curves flatten near B ≈ 0.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.core.config import TransmissionConfig
from repro.experiments.common import (
    RESOURCES,
    intermediate_rmse_of,
    load_cluster_datasets,
    run_clustering,
)
from repro.simulation.collection import collect

DEFAULT_BUDGETS = (0.05, 0.1, 0.2, 0.3, 0.5, 0.8)
METHODS = ("proposed", "minimum_distance", "static")


@dataclass
class Fig6Result:
    """Intermediate RMSE per (dataset, resource, method) across budgets."""

    budgets: Sequence[float]
    rmse: Dict[Tuple[str, str, str], List[float]]

    def format(self) -> str:
        rows = []
        for key in sorted(self.rmse):
            dataset, resource, method = key
            for budget, value in zip(self.budgets, self.rmse[key]):
                rows.append([dataset, resource, method, budget, value])
        return format_table(
            ["dataset", "resource", "method", "B", "intermediate RMSE"], rows
        )

    def proposed_beats_minimum_distance(self) -> float:
        """Fraction of sweep points where proposed ≤ minimum-distance."""
        wins, total = 0, 0
        for (dataset, resource, method), values in self.rmse.items():
            if method != "proposed":
                continue
            other = self.rmse[(dataset, resource, "minimum_distance")]
            for a, b in zip(values, other):
                total += 1
                wins += a <= b + 1e-12
        return wins / max(total, 1)


def run_fig6(
    num_nodes: int = 60,
    num_steps: int = 800,
    *,
    budgets: Sequence[float] = DEFAULT_BUDGETS,
    num_clusters: int = 3,
    resources: Sequence[str] = RESOURCES,
    seed: int = 0,
) -> Fig6Result:
    """Regenerate the Fig. 6 sweep."""
    datasets = load_cluster_datasets(num_nodes, num_steps)
    rmse: Dict[Tuple[str, str, str], List[float]] = {}
    for name, dataset in datasets.items():
        for resource in resources:
            trace = dataset.resource(resource)
            per_method: Dict[str, List[float]] = {m: [] for m in METHODS}
            for budget in budgets:
                stored = collect(
                    trace, TransmissionConfig(budget=budget)
                ).stored[:, :, 0]
                for method in METHODS:
                    assignments = run_clustering(
                        stored,
                        method,
                        num_clusters,
                        seed=seed,
                        full_trace=trace if method == "static" else None,
                    )
                    per_method[method].append(
                        intermediate_rmse_of(stored, assignments)
                    )
            for method in METHODS:
                rmse[(name, resource, method)] = per_method[method]
    return Fig6Result(budgets=budgets, rmse=rmse)
