"""Table II — aggregated forecasting-model training time per centroid.

Measures the total wall-clock spent (re)training the ARIMA grid search
and the LSTM on one cluster's centroid series over the full monitoring
duration (initial training + periodic retrainings).  The paper's numbers
(i7-6700): ARIMA ≈ 0.5–1 min, LSTM ≈ 9–14 min for ~8–12k steps — i.e.
LSTM an order of magnitude slower, both negligible against the trace
duration.  Absolute values differ on other hardware; the ordering and
smallness are the reproduced claims.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.analysis.reporting import format_table
from repro.clustering.dynamic import DynamicClusterTracker
from repro.core.config import TransmissionConfig
from repro.experiments.common import load_cluster_datasets
from repro.forecasting.arima import AutoArima
from repro.forecasting.lstm import LstmForecaster
from repro.simulation.collection import collect


@dataclass
class Table2Result:
    """Aggregate training seconds per (dataset, model).

    Attributes:
        seconds: ``{(dataset, model): total seconds}``.
        num_steps: Steps per dataset trace.
        retrainings: Number of (re)trainings performed.
    """

    seconds: Dict[str, Dict[str, float]]
    num_steps: int
    retrainings: int

    def format(self) -> str:
        rows = []
        for dataset, per_model in sorted(self.seconds.items()):
            rows.append(
                [
                    f"{dataset} ({self.num_steps} steps, "
                    f"{self.retrainings} trainings)",
                    per_model["arima"],
                    per_model["lstm"],
                ]
            )
        return format_table(["dataset", "ARIMA (s)", "LSTM (s)"], rows)

    def lstm_slower_everywhere(self) -> bool:
        return all(
            per_model["lstm"] > per_model["arima"]
            for per_model in self.seconds.values()
        )


def _centroid_series(
    trace: np.ndarray, num_clusters: int, budget: float, seed: int
) -> np.ndarray:
    stored = collect(
        trace, TransmissionConfig(budget=budget)
    ).stored[:, :, 0]
    tracker = DynamicClusterTracker(num_clusters, seed=seed)
    for t in range(stored.shape[0]):
        tracker.update(stored[t])
    return tracker.centroid_series(0)[:, 0]


def run_table2(
    num_nodes: int = 40,
    num_steps: int = 900,
    *,
    initial_collection: int = 300,
    retrain_interval: int = 200,
    num_clusters: int = 3,
    budget: float = 0.3,
    arima_bounds: Dict[str, int] = None,
    lstm_epochs: int = 30,
    seed: int = 0,
) -> Table2Result:
    """Regenerate the Table II timing measurement."""
    if arima_bounds is None:
        arima_bounds = dict(max_p=2, max_d=1, max_q=2)
    datasets = load_cluster_datasets(num_nodes, num_steps)
    seconds: Dict[str, Dict[str, float]] = {}
    train_points = list(
        range(initial_collection, num_steps, retrain_interval)
    )
    for name, dataset in datasets.items():
        series = _centroid_series(
            dataset.resource("cpu"), num_clusters, budget, seed
        )
        per_model: Dict[str, float] = {}
        factories: Dict[str, Callable[[], object]] = {
            "arima": lambda: AutoArima(**arima_bounds),
            "lstm": lambda: LstmForecaster(
                hidden_dim=32, lookback=16, epochs=lstm_epochs, seed=seed
            ),
        }
        for model_name, factory in factories.items():
            total = 0.0
            for point in train_points:
                model = factory()
                start = time.perf_counter()
                model.fit(series[:point])
                total += time.perf_counter() - start
            per_model[model_name] = total
        seconds[name] = per_model
    return Table2Result(
        seconds=seconds,
        num_steps=num_steps,
        retrainings=len(train_points),
    )
