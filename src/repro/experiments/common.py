"""Shared machinery for the per-figure/table experiment modules.

Every experiment accepts scale parameters (``num_nodes``, ``num_steps``)
so the full harness runs on a laptop; the registry's defaults are the
scaled-down configurations recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.clustering.dynamic import DynamicClusterTracker
from repro.clustering.minimum_distance import MinimumDistanceClustering
from repro.clustering.static import StaticClustering
from repro.core.metrics import instantaneous_rmse, time_averaged_rmse
from repro.core.types import ClusterAssignment
from repro.datasets import (
    TraceDataset,
    load_alibaba_like,
    load_bitbrains_like,
    load_google_like,
)
from repro.exceptions import ConfigurationError
from repro.forecasting.membership import forecast_membership
from repro.forecasting.offsets import estimate_offsets

#: Dataset loaders in paper order.
DATASET_LOADERS: Dict[str, Callable[..., TraceDataset]] = {
    "alibaba": load_alibaba_like,
    "bitbrains": load_bitbrains_like,
    "google": load_google_like,
}

#: Resource types evaluated throughout Sec. VI.
RESOURCES = ("cpu", "memory")


def load_cluster_datasets(
    num_nodes: int, num_steps: int, *, seed_offset: int = 0
) -> Dict[str, TraceDataset]:
    """Load all three cluster datasets at the requested scale."""
    return {
        name: loader(num_nodes=num_nodes, num_steps=num_steps,
                     seed=idx * 101 + 7 + seed_offset)
        for idx, (name, loader) in enumerate(DATASET_LOADERS.items())
    }


def run_clustering(
    stored: np.ndarray,
    method: str,
    num_clusters: int,
    *,
    seed: int = 0,
    history_depth: int = 1,
    similarity: str = "intersection",
    full_trace: Optional[np.ndarray] = None,
) -> List[ClusterAssignment]:
    """Produce per-slot assignments of stored measurements by one method.

    Args:
        stored: Central-store values ``(T, N)`` (single resource).
        method: ``"proposed"`` (dynamic tracker), ``"minimum_distance"``
            or ``"static"``.
        num_clusters: K.
        seed: RNG seed.
        history_depth: M (only for ``"proposed"``).
        similarity: similarity measure (only for ``"proposed"``).
        full_trace: For ``"static"`` the offline baseline clusters on the
            *true* full time series (its unfair advantage); defaults to
            ``stored`` when not given.

    Returns:
        One :class:`ClusterAssignment` per slot.
    """
    num_steps = stored.shape[0]
    if method == "proposed":
        tracker = DynamicClusterTracker(
            num_clusters,
            history_depth=history_depth,
            similarity=similarity,
            seed=seed,
        )
        return [tracker.update(stored[t]) for t in range(num_steps)]
    if method == "minimum_distance":
        clusterer = MinimumDistanceClustering(num_clusters, seed=seed)
        return [clusterer.update(stored[t]) for t in range(num_steps)]
    if method == "static":
        reference = full_trace if full_trace is not None else stored
        static = StaticClustering(num_clusters, seed=seed).fit(reference)
        return [static.assign(stored[t], time=t) for t in range(num_steps)]
    raise ConfigurationError(f"unknown clustering method {method!r}")


def intermediate_rmse_of(
    stored: np.ndarray, assignments: Sequence[ClusterAssignment]
) -> float:
    """Time-averaged centroid-vs-stored RMSE over a run (Sec. VI-C)."""
    errors = []
    for t, assignment in enumerate(assignments):
        centers = assignment.centroids[assignment.labels][:, 0]
        errors.append(instantaneous_rmse(centers, stored[t]))
    return time_averaged_rmse(errors)


def rolling_forecast(
    series: np.ndarray,
    forecaster_factory: Callable[[], object],
    *,
    start: int,
    horizon: int,
    retrain_interval: int,
) -> Dict[int, float]:
    """Walk-forward forecasting of one series (used by Fig. 8).

    A model is fitted on ``series[:start]``, refitted every
    ``retrain_interval`` observations, and updated with each new value in
    between — matching the pipeline's training regime.  At every slot
    ``t ≥ start`` the model forecasts ``series[t + horizon]``.

    Returns:
        ``{target_time: prediction}`` for targets inside the series.
    """
    values = np.asarray(series, dtype=float)
    if start < 2 or start >= values.size:
        raise ConfigurationError(
            f"start={start} must be in [2, {values.size})"
        )
    model = forecaster_factory()
    model.fit(values[:start])
    predictions: Dict[int, float] = {}
    last_train = start - 1
    for t in range(start, values.size):
        model.update(float(values[t]))
        if t - last_train >= retrain_interval:
            model = forecaster_factory()
            model.fit(values[: t + 1])
            last_train = t
        target = t + horizon
        if target < values.size:
            predictions[target] = float(model.forecast(horizon)[horizon - 1])
    return predictions


def sample_hold_forecast_rmse(
    truth: np.ndarray,
    stored: np.ndarray,
    assignments: Sequence[ClusterAssignment],
    horizons: Sequence[int],
    *,
    membership_lookback: int = 5,
    start: int = 0,
    offset_mode: str = "clipped",
) -> Dict[int, float]:
    """RMSE(T, h) of the sample-and-hold forecaster on given clusterings.

    The forecasted centroid is held at its current value
    (``ĉ_{j,t+h} = c_{j,t}``); membership is the majority vote over
    ``[t − M', t]`` and the offset is Eq. 12 — i.e. the full Sec. V-C
    machinery with the S&H temporal model.  Used by Figs. 10, 11 and
    Table III, which all fix the forecaster to sample-and-hold.

    Args:
        truth: True values ``(T, N)``.
        stored: Stored values ``(T, N)``.
        assignments: Per-slot assignments (from :func:`run_clustering`).
        horizons: Forecast steps ``h >= 1`` to evaluate.
        membership_lookback: The paper's M'.
        start: First slot to forecast from (e.g. after an initial
            collection phase).
        offset_mode: ``"clipped"`` (Eq. 12, the paper), ``"raw"``
            (offsets without α-clipping) or ``"none"`` (no per-node
            offset; pure centroid estimation as in Sec. VI-C) — used by
            the ablation experiments.

    Returns:
        ``{h: RMSE(T, h)}``.
    """
    if offset_mode not in ("clipped", "raw", "none"):
        raise ConfigurationError(
            f"offset_mode must be 'clipped', 'raw' or 'none', got "
            f"{offset_mode!r}"
        )
    num_steps = truth.shape[0]
    label_history: List[np.ndarray] = []
    sq_sums = {h: 0.0 for h in horizons}
    counts = {h: 0 for h in horizons}
    window = membership_lookback + 1
    stored_window: List[np.ndarray] = []
    centroid_window: List[np.ndarray] = []
    for t in range(num_steps):
        assignment = assignments[t]
        label_history.append(assignment.labels)
        stored_window.append(stored[t][:, np.newaxis])
        centroid_window.append(assignment.centroids)
        if len(stored_window) > window:
            stored_window.pop(0)
            centroid_window.pop(0)
        if t < start:
            continue
        memberships = forecast_membership(label_history, membership_lookback)
        if offset_mode == "none":
            offsets = np.zeros(truth.shape[1])
        else:
            offsets = estimate_offsets(
                stored_window, centroid_window, memberships,
                membership_lookback, clip=(offset_mode == "clipped"),
            )[:, 0]
        held_centroids = assignment.centroids[:, 0]
        prediction = held_centroids[memberships] + offsets
        for h in horizons:
            if t + h >= num_steps:
                continue
            err = instantaneous_rmse(prediction, truth[t + h])
            sq_sums[h] += err**2
            counts[h] += 1
    return {
        h: float(np.sqrt(sq_sums[h] / counts[h]))
        for h in horizons
        if counts[h] > 0
    }
