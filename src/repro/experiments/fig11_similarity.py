"""Fig. 11 — proposed similarity measure vs Jaccard index.

Swaps the cluster re-indexing similarity between the paper's
(unnormalized, multi-step-intersection) measure and the Jaccard index of
Greene et al., with the sample-and-hold forecaster.  Paper finding: the
proposed measure matches or beats Jaccard everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.core.config import TransmissionConfig
from repro.experiments.common import (
    load_cluster_datasets,
    run_clustering,
    sample_hold_forecast_rmse,
)
from repro.simulation.collection import collect

SIMILARITIES = ("intersection", "jaccard")


@dataclass
class Fig11Result:
    """RMSE per (dataset, resource, similarity) across horizons."""

    horizons: Sequence[int]
    rmse: Dict[Tuple[str, str, str], Dict[int, float]]

    def format(self) -> str:
        rows = []
        for key in sorted(self.rmse):
            dataset, resource, similarity = key
            for h in self.horizons:
                if h in self.rmse[key]:
                    rows.append(
                        [dataset, resource, similarity, h, self.rmse[key][h]]
                    )
        return format_table(
            ["dataset", "resource", "similarity", "h", "RMSE"], rows
        )

    def proposed_not_worse(self, tolerance: float = 0.01) -> float:
        """Fraction of points where intersection ≤ jaccard + tolerance."""
        wins, total = 0, 0
        for (dataset, resource, sim), per_h in self.rmse.items():
            if sim != "intersection":
                continue
            other = self.rmse[(dataset, resource, "jaccard")]
            for h, value in per_h.items():
                if h in other:
                    total += 1
                    wins += value <= other[h] + tolerance
        return wins / max(total, 1)


def run_fig11(
    num_nodes: int = 60,
    num_steps: int = 700,
    *,
    horizons: Sequence[int] = (1, 5, 10, 25, 50),
    num_clusters: int = 3,
    budget: float = 0.3,
    history_depth: int = 1,
    membership_lookback: int = 5,
    start: int = 100,
    resources: Sequence[str] = ("cpu",),
    seed: int = 0,
) -> Fig11Result:
    """Regenerate the Fig. 11 comparison."""
    datasets = load_cluster_datasets(num_nodes, num_steps)
    rmse: Dict[Tuple[str, str, str], Dict[int, float]] = {}
    for name, dataset in datasets.items():
        for resource in resources:
            trace = dataset.resource(resource)
            stored = collect(
                trace, TransmissionConfig(budget=budget)
            ).stored[:, :, 0]
            for similarity in SIMILARITIES:
                assignments = run_clustering(
                    stored,
                    "proposed",
                    num_clusters,
                    seed=seed,
                    history_depth=history_depth,
                    similarity=similarity,
                )
                rmse[(name, resource, similarity)] = sample_hold_forecast_rmse(
                    trace,
                    stored,
                    assignments,
                    horizons,
                    membership_lookback=membership_lookback,
                    start=start,
                )
    return Fig11Result(horizons=horizons, rmse=rmse)
