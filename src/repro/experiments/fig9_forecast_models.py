"""Fig. 9 — time-averaged RMSE vs forecast horizon per model.

Runs the full pipeline (adaptive collection + dynamic clustering +
forecasting with per-node offsets) with ARIMA, LSTM, and sample-and-hold
at K = 3, plus sample-and-hold at K = N, against the standard-deviation
bound of a long-term-statistics-only forecaster.  Paper findings: the
K = 3 cluster models beat per-node (K = N) forecasting, LSTM is best,
and every model beats the standard-deviation bound for h ≤ 50.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.api import Engine
from repro.core.config import (
    ClusteringConfig,
    ForecastingConfig,
    PipelineConfig,
    TransmissionConfig,
)
from repro.core.metrics import standard_deviation_bound
from repro.experiments.common import load_cluster_datasets


@dataclass
class Fig9Result:
    """RMSE(T, h) per model and the standard-deviation bound.

    Attributes:
        horizons: Evaluated forecast steps.
        rmse: ``{(dataset, model): {h: rmse}}``.
        stddev_bound: ``{dataset: bound}``.
    """

    horizons: Sequence[int]
    rmse: Dict[Tuple[str, str], Dict[int, float]]
    stddev_bound: Dict[str, float]

    def format(self) -> str:
        rows = []
        for (dataset, model), per_h in sorted(self.rmse.items()):
            for h in self.horizons:
                if h in per_h:
                    rows.append([dataset, model, h, per_h[h]])
        for dataset, bound in sorted(self.stddev_bound.items()):
            rows.append([dataset, "stddev-bound", "-", bound])
        return format_table(["dataset", "model", "h", "RMSE"], rows)


def _config(
    model: str, num_clusters: int, horizon: int, initial: int, retrain: int,
    budget: float, seed: int,
) -> PipelineConfig:
    return PipelineConfig(
        transmission=TransmissionConfig(budget=budget),
        clustering=ClusteringConfig(num_clusters=num_clusters, seed=seed),
        forecasting=ForecastingConfig(
            model=model,
            max_horizon=horizon,
            initial_collection=initial,
            retrain_interval=retrain,
            arima_max_p=2,
            arima_max_d=1,
            arima_max_q=1,
            lstm_hidden=16,
            lstm_lookback=12,
            lstm_epochs=10,
            seed=seed,
        ),
    )


def run_fig9(
    num_nodes: int = 40,
    num_steps: int = 600,
    *,
    horizons: Sequence[int] = (1, 5, 10, 25, 50),
    num_clusters: int = 3,
    budget: float = 0.3,
    initial_collection: int = 200,
    retrain_interval: int = 200,
    resource: str = "cpu",
    datasets: Optional[Sequence[str]] = ("alibaba",),
    models: Sequence[str] = ("sample_hold", "arima", "lstm"),
    include_per_node: bool = True,
    seed: int = 0,
) -> Fig9Result:
    """Regenerate (a configurable slice of) the Fig. 9 comparison.

    By default only the Alibaba-like dataset is run (the full 3 × 6-curve
    figure is expensive); pass ``datasets=("alibaba", "bitbrains",
    "google")`` for the complete figure.
    """
    max_h = max(horizons)
    all_data = load_cluster_datasets(num_nodes, num_steps)
    selected = {k: v for k, v in all_data.items() if k in set(datasets or [])}
    rmse: Dict[Tuple[str, str], Dict[int, float]] = {}
    stddev: Dict[str, float] = {}
    for name, dataset in selected.items():
        trace = dataset.resource(resource)
        stddev[name] = standard_deviation_bound(trace)
        for model in models:
            config = _config(
                model, num_clusters, max_h, initial_collection,
                retrain_interval, budget, seed,
            )
            result = Engine(config).run(trace, horizons=list(horizons))
            rmse[(name, model)] = result.rmse_by_horizon
        if include_per_node:
            config = _config(
                "sample_hold", num_nodes, max_h, initial_collection,
                retrain_interval, budget, seed,
            )
            result = Engine(config).run(trace, horizons=list(horizons))
            rmse[(name, "sample_hold_K=N")] = result.rmse_by_horizon
    return Fig9Result(horizons=horizons, rmse=rmse, stddev_bound=stddev)
