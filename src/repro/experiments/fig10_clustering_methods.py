"""Fig. 10 — RMSE vs horizon for the clustering methods (S&H forecaster).

Fixes the temporal model to sample-and-hold and swaps the clustering
stage: proposed dynamic clustering, offline static clustering, and the
minimum-distance baseline.  Paper findings: proposed best almost
everywhere; static (an offline method) approaches it at large h.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.core.config import TransmissionConfig
from repro.experiments.common import (
    load_cluster_datasets,
    run_clustering,
    sample_hold_forecast_rmse,
)
from repro.simulation.collection import collect

METHODS = ("proposed", "static", "minimum_distance")


@dataclass
class Fig10Result:
    """RMSE per (dataset, resource, method) across horizons."""

    horizons: Sequence[int]
    rmse: Dict[Tuple[str, str, str], Dict[int, float]]

    def format(self) -> str:
        rows = []
        for key in sorted(self.rmse):
            dataset, resource, method = key
            for h in self.horizons:
                if h in self.rmse[key]:
                    rows.append([dataset, resource, method, h, self.rmse[key][h]])
        return format_table(
            ["dataset", "resource", "method", "h", "RMSE"], rows
        )

    def proposed_wins(self, horizon: int) -> float:
        """Fraction of (dataset, resource) where proposed is best at h."""
        wins, total = 0, 0
        keys = {(d, r) for (d, r, _m) in self.rmse}
        for d, r in keys:
            values = {
                m: self.rmse[(d, r, m)].get(horizon) for m in METHODS
            }
            if any(v is None for v in values.values()):
                continue
            total += 1
            wins += values["proposed"] <= min(values.values()) + 1e-12
        return wins / max(total, 1)


def run_fig10(
    num_nodes: int = 60,
    num_steps: int = 700,
    *,
    horizons: Sequence[int] = (1, 5, 10, 25, 50),
    num_clusters: int = 3,
    budget: float = 0.3,
    membership_lookback: int = 5,
    start: int = 100,
    resources: Sequence[str] = ("cpu",),
    seed: int = 0,
) -> Fig10Result:
    """Regenerate the Fig. 10 comparison."""
    datasets = load_cluster_datasets(num_nodes, num_steps)
    rmse: Dict[Tuple[str, str, str], Dict[int, float]] = {}
    for name, dataset in datasets.items():
        for resource in resources:
            trace = dataset.resource(resource)
            stored = collect(
                trace, TransmissionConfig(budget=budget)
            ).stored[:, :, 0]
            for method in METHODS:
                assignments = run_clustering(
                    stored,
                    method,
                    num_clusters,
                    seed=seed,
                    full_trace=trace if method == "static" else None,
                )
                rmse[(name, resource, method)] = sample_hold_forecast_rmse(
                    trace,
                    stored,
                    assignments,
                    horizons,
                    membership_lookback=membership_lookback,
                    start=start,
                )
    return Fig10Result(horizons=horizons, rmse=rmse)
