"""Fig. 7 — intermediate RMSE vs number of clusters K (B = 0.3).

The paper's strong result: a handful of clusters already achieves close
to the minimum intermediate RMSE, and even K = N cannot reach zero
because the stored measurements are stale (B < 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.core.config import TransmissionConfig
from repro.experiments.common import (
    RESOURCES,
    intermediate_rmse_of,
    load_cluster_datasets,
    run_clustering,
)
from repro.simulation.collection import collect

DEFAULT_NUM_CLUSTERS = (1, 2, 3, 5, 10, 20)
METHODS = ("proposed", "minimum_distance")


@dataclass
class Fig7Result:
    """Intermediate RMSE per (dataset, resource, method) across K."""

    cluster_counts: Sequence[int]
    rmse: Dict[Tuple[str, str, str], List[float]]

    def format(self) -> str:
        rows = []
        for key in sorted(self.rmse):
            dataset, resource, method = key
            for count, value in zip(self.cluster_counts, self.rmse[key]):
                rows.append([dataset, resource, method, count, value])
        return format_table(
            ["dataset", "resource", "method", "K", "intermediate RMSE"], rows
        )

    def small_k_gap(self, dataset: str, resource: str, k_small: int = 3) -> float:
        """RMSE(K = k_small) − min over the sweep, for the proposed method.

        Near-zero values confirm the "few clusters suffice" finding.
        """
        values = self.rmse[(dataset, resource, "proposed")]
        at_small = values[list(self.cluster_counts).index(k_small)]
        return at_small - min(values)


def run_fig7(
    num_nodes: int = 60,
    num_steps: int = 600,
    *,
    cluster_counts: Sequence[int] = DEFAULT_NUM_CLUSTERS,
    budget: float = 0.3,
    resources: Sequence[str] = RESOURCES,
    seed: int = 0,
) -> Fig7Result:
    """Regenerate the Fig. 7 sweep."""
    datasets = load_cluster_datasets(num_nodes, num_steps)
    rmse: Dict[Tuple[str, str, str], List[float]] = {}
    for name, dataset in datasets.items():
        for resource in resources:
            trace = dataset.resource(resource)
            stored = collect(
                trace, TransmissionConfig(budget=budget)
            ).stored[:, :, 0]
            per_method: Dict[str, List[float]] = {m: [] for m in METHODS}
            for count in cluster_counts:
                if count > num_nodes:
                    continue
                for method in METHODS:
                    assignments = run_clustering(
                        stored, method, count, seed=seed
                    )
                    per_method[method].append(
                        intermediate_rmse_of(stored, assignments)
                    )
            for method in METHODS:
                rmse[(name, resource, method)] = per_method[method]
    return Fig7Result(cluster_counts=cluster_counts, rmse=rmse)
