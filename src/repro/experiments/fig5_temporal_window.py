"""Fig. 5 — intermediate RMSE vs temporal clustering window.

Clusters on feature vectors spanning the last ``w`` slots and measures
the intermediate RMSE (centroid vs stored value at the current slot).
The paper's finding: ``w = 1`` is best on these highly dynamic traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.clustering.dynamic import DynamicClusterTracker
from repro.clustering.windowing import WindowedFeatureBuilder
from repro.core.config import TransmissionConfig
from repro.core.metrics import instantaneous_rmse, time_averaged_rmse
from repro.experiments.common import RESOURCES, load_cluster_datasets
from repro.simulation.collection import collect

DEFAULT_WINDOWS = (1, 5, 10, 20, 30)


@dataclass
class Fig5Result:
    """Intermediate RMSE per (dataset, resource) and window length."""

    windows: Sequence[int]
    rmse: Dict[Tuple[str, str], List[float]]

    def format(self) -> str:
        rows = []
        for (dataset, resource), values in sorted(self.rmse.items()):
            for window, value in zip(self.windows, values):
                rows.append([dataset, resource, window, value])
        return format_table(
            ["dataset", "resource", "window", "intermediate RMSE"], rows
        )

    def best_window(self, dataset: str, resource: str) -> int:
        values = self.rmse[(dataset, resource)]
        return self.windows[int(np.argmin(values))]


def run_fig5(
    num_nodes: int = 60,
    num_steps: int = 800,
    *,
    windows: Sequence[int] = DEFAULT_WINDOWS,
    num_clusters: int = 3,
    budget: float = 0.3,
    resources: Sequence[str] = RESOURCES,
    seed: int = 0,
) -> Fig5Result:
    """Regenerate the Fig. 5 sweep."""
    datasets = load_cluster_datasets(num_nodes, num_steps)
    rmse: Dict[Tuple[str, str], List[float]] = {}
    for name, dataset in datasets.items():
        for resource in resources:
            trace = dataset.resource(resource)
            stored = collect(
                trace, TransmissionConfig(budget=budget)
            ).stored[:, :, 0]
            values = []
            for window in windows:
                tracker = DynamicClusterTracker(num_clusters, seed=seed)
                builder = WindowedFeatureBuilder(window)
                errors = []
                for t in range(stored.shape[0]):
                    features = builder.push(stored[t])
                    assignment = tracker.update(stored[t], features=features)
                    centers = assignment.centroids[assignment.labels][:, 0]
                    errors.append(instantaneous_rmse(centers, stored[t]))
                values.append(time_averaged_rmse(errors))
            rmse[(name, resource)] = values
    return Fig5Result(windows=windows, rmse=rmse)
