"""Table I — clustering independent scalars vs full resource vectors.

Compares the intermediate RMSE (evaluated per resource type) when the
clustering runs on each resource's scalar values independently versus on
the joint (CPU, memory) vectors.  The paper finds scalar clustering
better on all three datasets — cross-resource correlation is weak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.reporting import format_table
from repro.clustering.dynamic import DynamicClusterTracker
from repro.core.config import TransmissionConfig
from repro.core.metrics import instantaneous_rmse, time_averaged_rmse
from repro.experiments.common import RESOURCES, load_cluster_datasets
from repro.simulation.collection import collect


@dataclass
class Table1Result:
    """Intermediate RMSE per (resource, dataset) for both modes.

    Attributes:
        scalar: ``{(resource, dataset): rmse}`` for independent scalars.
        full: Same keys, joint-vector clustering.
    """

    scalar: Dict[Tuple[str, str], float]
    full: Dict[Tuple[str, str], float]

    def format(self) -> str:
        rows = []
        for key in sorted(self.scalar):
            resource, dataset = key
            rows.append(
                [f"{resource} {dataset}", self.scalar[key], self.full[key]]
            )
        return format_table(["resource & dataset", "scalar", "full"], rows)

    def scalar_wins(self) -> int:
        """Number of (resource, dataset) cells where scalar ≤ full."""
        return sum(
            1 for key in self.scalar if self.scalar[key] <= self.full[key] + 1e-12
        )


def run_table1(
    num_nodes: int = 60,
    num_steps: int = 800,
    *,
    num_clusters: int = 3,
    budget: float = 0.3,
    seed: int = 0,
) -> Table1Result:
    """Regenerate the Table I comparison."""
    datasets = load_cluster_datasets(num_nodes, num_steps)
    scalar: Dict[Tuple[str, str], float] = {}
    full: Dict[Tuple[str, str], float] = {}
    for name, dataset in datasets.items():
        stored = collect(
            dataset.data, TransmissionConfig(budget=budget)
        ).stored  # (T, N, d)
        num_steps_actual = stored.shape[0]

        # Scalar mode: one tracker per resource on 1-D values.
        for r, resource in enumerate(RESOURCES):
            tracker = DynamicClusterTracker(num_clusters, seed=seed + r)
            errors = []
            for t in range(num_steps_actual):
                assignment = tracker.update(stored[t, :, r])
                centers = assignment.centroids[assignment.labels][:, 0]
                errors.append(instantaneous_rmse(centers, stored[t, :, r]))
            scalar[(resource, name)] = time_averaged_rmse(errors)

        # Full-vector mode: one tracker on (N, d) vectors; intermediate
        # RMSE still evaluated per resource type (as the paper does).
        tracker = DynamicClusterTracker(num_clusters, seed=seed + 17)
        per_resource_errors = {resource: [] for resource in RESOURCES}
        for t in range(num_steps_actual):
            assignment = tracker.update(stored[t])
            centers = assignment.centroids[assignment.labels]
            for r, resource in enumerate(RESOURCES):
                per_resource_errors[resource].append(
                    instantaneous_rmse(centers[:, r], stored[t, :, r])
                )
        for resource in RESOURCES:
            full[(resource, name)] = time_averaged_rmse(
                per_resource_errors[resource]
            )
    return Table1Result(scalar=scalar, full=full)
