"""Fig. 4 — RMSE(h = 0) of adaptive vs uniform transmission.

For every requested frequency B, compares the time-averaged RMSE between
the central store and the truth (pure staleness error) under the adaptive
Lyapunov policy and under fixed-interval uniform sampling.  The paper's
finding: adaptive ≤ uniform at every B, with both reaching zero at B = 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.config import TransmissionConfig
from repro.core.metrics import instantaneous_rmse, time_averaged_rmse
from repro.experiments.common import RESOURCES, load_cluster_datasets
from repro.simulation.collection import (
    collect,
)

DEFAULT_BUDGETS = (0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0)


def staleness_rmse(stored: np.ndarray, truth: np.ndarray) -> float:
    """Time-averaged RMSE between store and truth (Eq. 4 with h = 0)."""
    errors = [
        instantaneous_rmse(stored[t], truth[t]) for t in range(truth.shape[0])
    ]
    return time_averaged_rmse(errors)


@dataclass
class Fig4Result:
    """RMSE per (dataset, resource, method, budget).

    Attributes:
        budgets: Swept requested frequencies.
        rmse: ``{(dataset, resource, method): [rmse per budget]}`` with
            method in {"adaptive", "uniform"}.
    """

    budgets: Sequence[float]
    rmse: Dict[Tuple[str, str, str], List[float]]

    def format(self) -> str:
        rows = []
        for (dataset, resource, method), values in sorted(self.rmse.items()):
            for budget, value in zip(self.budgets, values):
                rows.append([dataset, resource, method, budget, value])
        return format_table(
            ["dataset", "resource", "method", "B", "RMSE(h=0)"], rows
        )

    def adaptive_wins(self) -> float:
        """Fraction of sweep points where adaptive ≤ uniform."""
        wins = 0
        total = 0
        for (dataset, resource, method), values in self.rmse.items():
            if method != "adaptive":
                continue
            uniform = self.rmse[(dataset, resource, "uniform")]
            for a, u in zip(values, uniform):
                total += 1
                if a <= u + 1e-12:
                    wins += 1
        return wins / max(total, 1)


def run_fig4(
    num_nodes: int = 60,
    num_steps: int = 1500,
    *,
    budgets: Sequence[float] = DEFAULT_BUDGETS,
    resources: Sequence[str] = RESOURCES,
) -> Fig4Result:
    """Regenerate the Fig. 4 comparison."""
    datasets = load_cluster_datasets(num_nodes, num_steps)
    rmse: Dict[Tuple[str, str, str], List[float]] = {}
    for name, dataset in datasets.items():
        for resource in resources:
            trace = dataset.resource(resource)
            adaptive_values = []
            uniform_values = []
            for budget in budgets:
                adaptive = collect(
                    trace, TransmissionConfig(budget=budget)
                )
                uniform = collect(
                    trace, TransmissionConfig(budget=budget),
                    backend="uniform",
                )
                adaptive_values.append(
                    staleness_rmse(adaptive.stored[:, :, 0], trace)
                )
                uniform_values.append(
                    staleness_rmse(uniform.stored[:, :, 0], trace)
                )
            rmse[(name, resource, "adaptive")] = adaptive_values
            rmse[(name, resource, "uniform")] = uniform_values
    return Fig4Result(budgets=budgets, rmse=rmse)
