"""Fig. 8 — instantaneous true vs forecasted centroid trajectories.

On the Alibaba-like CPU data with K = 3 clusters, each forecasting model
(ARIMA, LSTM, sample-and-hold) predicts every centroid ``h = 5`` steps
ahead in walk-forward fashion; the paper shows the forecasted curves
tracking the true centroid closely.  We report the full trajectories and
a per-model tracking error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.clustering.dynamic import DynamicClusterTracker
from repro.core.config import TransmissionConfig
from repro.datasets import load_alibaba_like
from repro.experiments.common import rolling_forecast
from repro.forecasting.arima import AutoArima
from repro.forecasting.lstm import LstmForecaster
from repro.forecasting.sample_hold import SampleHoldForecaster
from repro.simulation.collection import collect


@dataclass
class Fig8Result:
    """Centroid trajectories and tracking errors.

    Attributes:
        centroids: True centroid series, shape ``(T, K)``.
        forecasts: ``{(model, cluster): {target_time: prediction}}``.
        tracking_mae: ``{(model, cluster): mean |pred − true|}``.
    """

    centroids: np.ndarray
    forecasts: Dict[Tuple[str, int], Dict[int, float]]
    tracking_mae: Dict[Tuple[str, int], float]

    def format(self) -> str:
        rows = [
            [model, cluster, mae]
            for (model, cluster), mae in sorted(self.tracking_mae.items())
        ]
        return format_table(["model", "cluster", "tracking MAE"], rows)


def _model_factories(seed: int) -> Dict[str, Callable[[], object]]:
    return {
        "sample_hold": SampleHoldForecaster,
        "arima": lambda: AutoArima(max_p=2, max_d=1, max_q=1),
        "lstm": lambda: LstmForecaster(
            hidden_dim=16, lookback=12, epochs=15, seed=seed
        ),
    }


def run_fig8(
    num_nodes: int = 60,
    num_steps: int = 900,
    *,
    num_clusters: int = 3,
    horizon: int = 5,
    start: int = 300,
    retrain_interval: int = 200,
    budget: float = 0.3,
    seed: int = 0,
) -> Fig8Result:
    """Regenerate the Fig. 8 tracking experiment."""
    dataset = load_alibaba_like(num_nodes=num_nodes, num_steps=num_steps)
    trace = dataset.resource("cpu")
    stored = collect(
        trace, TransmissionConfig(budget=budget)
    ).stored[:, :, 0]
    tracker = DynamicClusterTracker(num_clusters, seed=seed)
    for t in range(stored.shape[0]):
        tracker.update(stored[t])
    centroids = np.stack(
        [tracker.centroid_series(j)[:, 0] for j in range(num_clusters)],
        axis=1,
    )

    forecasts: Dict[Tuple[str, int], Dict[int, float]] = {}
    tracking_mae: Dict[Tuple[str, int], float] = {}
    for model_name, factory in _model_factories(seed).items():
        for j in range(num_clusters):
            series = centroids[:, j]
            predictions = rolling_forecast(
                series,
                factory,
                start=start,
                horizon=horizon,
                retrain_interval=retrain_interval,
            )
            forecasts[(model_name, j)] = predictions
            errors = [
                abs(pred - series[target])
                for target, pred in predictions.items()
            ]
            tracking_mae[(model_name, j)] = float(np.mean(errors))
    return Fig8Result(
        centroids=centroids, forecasts=forecasts, tracking_mae=tracking_mae
    )
