"""Experiment registry: one entry per table/figure of the paper.

Every ``run_*`` function accepts scale parameters so the whole harness
runs at laptop scale; the defaults are the configurations recorded in
EXPERIMENTS.md.  The ``EXPERIMENTS`` mapping is what the benchmark
modules and the ``examples/reproduce_paper.py`` driver iterate over.
"""

from typing import Callable, Dict

from repro.experiments.ablations import (
    DeadbandAblationResult,
    OffsetAblationResult,
    ReindexingAblationResult,
    WarmStartAblationResult,
    run_ablation_deadband,
    run_ablation_offsets,
    run_ablation_reindexing,
    run_ablation_warm_start,
)
from repro.experiments.fig1_correlation import Fig1Result, run_fig1
from repro.experiments.fig3_transmission import Fig3Result, run_fig3
from repro.experiments.fig4_adaptive_vs_uniform import Fig4Result, run_fig4
from repro.experiments.fig5_temporal_window import Fig5Result, run_fig5
from repro.experiments.fig6_rmse_vs_b import Fig6Result, run_fig6
from repro.experiments.fig7_rmse_vs_k import Fig7Result, run_fig7
from repro.experiments.fig8_centroid_tracking import Fig8Result, run_fig8
from repro.experiments.fig9_forecast_models import Fig9Result, run_fig9
from repro.experiments.fig10_clustering_methods import Fig10Result, run_fig10
from repro.experiments.fig11_similarity import Fig11Result, run_fig11
from repro.experiments.fig12_gaussian import Fig12Result, run_fig12
from repro.experiments.table1_scalar_vs_vector import Table1Result, run_table1
from repro.experiments.table2_training_time import Table2Result, run_table2
from repro.experiments.table3_m_mprime import Table3Result, run_table3

#: Experiment id → runner, in paper order.  Fig. 2 is the architecture
#: diagram (no data); Table IV is produced by the Fig. 12 runner.
EXPERIMENTS: Dict[str, Callable] = {
    "fig1": run_fig1,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "table1": run_table1,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "table2": run_table2,
    "table3": run_table3,
    "fig11": run_fig11,
    "fig12": run_fig12,
    # Ablations of design choices (not in the paper; see DESIGN.md).
    "ablation_reindexing": run_ablation_reindexing,
    "ablation_offsets": run_ablation_offsets,
    "ablation_warm_start": run_ablation_warm_start,
    "ablation_deadband": run_ablation_deadband,
}

__all__ = [
    "EXPERIMENTS",
    "run_ablation_deadband",
    "run_ablation_offsets",
    "run_ablation_reindexing",
    "run_ablation_warm_start",
    "OffsetAblationResult",
    "ReindexingAblationResult",
    "WarmStartAblationResult",
    "run_fig1",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_table1",
    "run_table2",
    "run_table3",
    "Fig1Result",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "Fig10Result",
    "Fig11Result",
    "Fig12Result",
    "Table1Result",
    "Table2Result",
    "Table3Result",
]
