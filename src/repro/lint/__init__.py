"""``repro lint`` — repo-specific invariant checks, importable by tests.

The engine's correctness rests on a handful of cross-cutting contracts
that ordinary tests catch late or not at all: every stateful component
round-trips through ``get_state``/``set_state`` (checkpoint/resume),
every registry's lazy-load list stays in sync with the ``@register_*``
call sites, the vectorized kernels stay pure and loop-free over the
node axis, fleet-scale array allocations state their dtype, every
shared-memory segment reaches ``close()``/``unlink()`` on all exit
paths, and state-dtype arrays never meet bare float64 arithmetic.
This package checks those contracts *statically* over the AST — the
shared-memory and dtype-flow families on a dataflow layer
(:mod:`repro.lint.dataflow`) rather than single-node syntax — plus an
optional runtime pass that drives live components and a runtime shm
*sanitizer* that stresses an instrumented, guard-canaried
:class:`~repro.simulation.shard_pool.ShardPool`.  Findings render as
``file:line: RULE-ID message`` diagnostics with inline
``# repro: noqa RULE-ID(reason)`` waivers and text/JSON/GitHub
reporters; file-granularity results cache incrementally by content
hash.

Use it from the CLI::

    repro lint                       # static rules over the installed tree
    repro lint --runtime             # plus live contract verification
    repro lint --sanitize            # plus the shm sanitizer (RT-004/5)
    repro lint src/ --format json    # machine-readable report
    repro lint --cache .lint-cache --changed origin/main   # incremental CI

or from tests::

    from repro.lint import lint_paths
    assert lint_paths([Path("src/repro")]).ok
"""

from repro.lint.cache import LintCache, cache_key, content_hash
from repro.lint.context import LintContext, build_context
from repro.lint.dataflow import ModuleSummaries, module_summaries
from repro.lint.findings import Finding
from repro.lint.report import (
    REPORT_SCHEMA_VERSION,
    render_github,
    render_json,
    render_text,
)
from repro.lint.rules import (
    LINT_RULES,
    LintRule,
    register_lint_rule,
    rules_by_id,
    runtime_rules,
    sanitize_rules,
    static_rules,
)
from repro.lint.runner import (
    LintResult,
    changed_files,
    default_target,
    lint_paths,
)
from repro.lint.runtime import run_runtime_checks
from repro.lint.sanitize import run_sanitize_checks
from repro.lint.waivers import parse_waivers

__all__ = [
    "Finding",
    "LINT_RULES",
    "LintCache",
    "LintContext",
    "LintResult",
    "LintRule",
    "ModuleSummaries",
    "REPORT_SCHEMA_VERSION",
    "build_context",
    "cache_key",
    "changed_files",
    "content_hash",
    "default_target",
    "lint_paths",
    "module_summaries",
    "parse_waivers",
    "register_lint_rule",
    "render_github",
    "render_json",
    "render_text",
    "rules_by_id",
    "run_runtime_checks",
    "run_sanitize_checks",
    "runtime_rules",
    "sanitize_rules",
    "static_rules",
]
