"""``repro lint`` — repo-specific invariant checks, importable by tests.

The engine's correctness rests on a handful of cross-cutting contracts
that ordinary tests catch late or not at all: every stateful component
round-trips through ``get_state``/``set_state`` (checkpoint/resume),
every registry's lazy-load list stays in sync with the ``@register_*``
call sites, the vectorized kernels stay pure and loop-free over the
node axis, and fleet-scale array allocations state their dtype.  This
package checks those contracts *statically* over the AST (plus an
optional runtime pass that drives live components), with findings as
``file:line: RULE-ID message`` diagnostics, inline
``# repro: noqa RULE-ID(reason)`` waivers, and text/JSON reporters.

Use it from the CLI::

    repro lint                      # static rules over the installed tree
    repro lint --runtime            # plus live contract verification
    repro lint src/ --format json   # machine-readable report

or from tests::

    from repro.lint import lint_paths
    assert lint_paths([Path("src/repro")]).ok
"""

from repro.lint.context import LintContext, build_context
from repro.lint.findings import Finding
from repro.lint.report import (
    REPORT_SCHEMA_VERSION,
    render_json,
    render_text,
)
from repro.lint.rules import (
    LINT_RULES,
    LintRule,
    register_lint_rule,
    rules_by_id,
    runtime_rules,
    static_rules,
)
from repro.lint.runner import LintResult, default_target, lint_paths
from repro.lint.runtime import run_runtime_checks
from repro.lint.waivers import parse_waivers

__all__ = [
    "Finding",
    "LINT_RULES",
    "LintContext",
    "LintResult",
    "LintRule",
    "REPORT_SCHEMA_VERSION",
    "build_context",
    "default_target",
    "lint_paths",
    "parse_waivers",
    "register_lint_rule",
    "render_json",
    "render_text",
    "rules_by_id",
    "run_runtime_checks",
    "runtime_rules",
    "static_rules",
]
