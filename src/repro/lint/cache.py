"""Incremental lint cache: per-file results keyed by content hash.

File-granularity rules derive every finding for a module from that
module's source plus the shared dataflow summary layer.  That makes
their results cacheable: an entry is valid exactly when

* the file's content hash is unchanged, **and**
* the cache *key* is unchanged — a digest over the cross-file
  :class:`~repro.lint.dataflow.ModuleSummaries` (so a callee edited in
  another file invalidates every cached result that could have
  consumed its summary) and the signature of the selected
  file-granularity rules (so adding, removing or re-selecting rules
  never serves stale verdicts).

Tree-granularity rules (the registry family) reason across files and
always re-run; runtime and sanitizer findings describe live processes
and are never cached.  Entries store the *post-waiver* split — waiver
parsing reads only the file's own comments, so it is covered by the
content hash.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding

#: Bump when the entry schema changes; old caches are discarded whole.
CACHE_VERSION = 1


def content_hash(source: str) -> str:
    """Stable hash of one file's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def cache_key(summaries_digest: str, rule_ids: Sequence[str]) -> str:
    """The run-wide validity key (summary layer + selected rules)."""
    payload = json.dumps(
        {"summaries": summaries_digest, "rules": sorted(rule_ids)},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _finding_from_dict(data: Dict[str, object]) -> Finding:
    return Finding(
        path=str(data["path"]),
        line=int(data["line"]),  # type: ignore[arg-type]
        rule_id=str(data["rule"]),
        message=str(data["message"]),
        waive_reason=(
            str(data["reason"]) if data.get("reason") is not None else None
        ),
    )


class LintCache:
    """One run's view of the on-disk cache file.

    Load with :meth:`load`, consult with :meth:`lookup`, record fresh
    results with :meth:`store`, and persist with :meth:`save` — saving
    writes only the entries touched this run, so paths that left the
    tree age out naturally.
    """

    def __init__(self, path: Path, key: str) -> None:
        self.path = Path(path)
        self.key = key
        self._entries: Dict[str, dict] = {}
        self._fresh: Dict[str, dict] = {}

    @classmethod
    def load(cls, path: Path, *, key: str) -> "LintCache":
        """Read the cache file; a stale key or version empties it."""
        cache = cls(path, key)
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if (
            not isinstance(data, dict)
            or data.get("version") != CACHE_VERSION
            or data.get("key") != key
        ):
            return cache
        entries = data.get("entries")
        if isinstance(entries, dict):
            cache._entries = entries
        return cache

    def lookup(
        self, rel_path: str, file_hash: str
    ) -> Optional[Tuple[List[Finding], List[Finding]]]:
        """Cached ``(active, waived)`` findings, or ``None`` on miss."""
        entry = self._entries.get(rel_path)
        if not isinstance(entry, dict) or entry.get("hash") != file_hash:
            return None
        try:
            active = [
                _finding_from_dict(f) for f in entry.get("findings", [])
            ]
            waived = [
                _finding_from_dict(f) for f in entry.get("waived", [])
            ]
        except (KeyError, TypeError, ValueError):
            return None
        self._fresh[rel_path] = entry
        return active, waived

    def store(
        self,
        rel_path: str,
        file_hash: str,
        active: Sequence[Finding],
        waived: Sequence[Finding],
    ) -> None:
        """Record one freshly linted file's post-waiver results."""
        self._fresh[rel_path] = {
            "hash": file_hash,
            "findings": [f.to_dict() for f in active],
            "waived": [f.to_dict() for f in waived],
        }

    def save(self) -> None:
        """Atomically persist the entries touched this run."""
        payload = {
            "version": CACHE_VERSION,
            "key": self.key,
            "entries": self._fresh,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp, self.path)


__all__ = ["CACHE_VERSION", "LintCache", "cache_key", "content_hash"]
