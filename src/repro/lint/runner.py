"""The lint driver: build the context, run the rules, apply waivers.

:func:`lint_paths` is the one entry point both the CLI (``repro
lint``) and the test suite use — tests import it directly and assert
on the returned :class:`LintResult` instead of scraping CLI output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.context import LintContext, build_context
from repro.lint.findings import Finding
from repro.lint.rules import (
    LintRule,
    rules_by_id,
    runtime_rules,
    static_rules,
)
from repro.lint.waivers import collect_waivers


@dataclass
class LintResult:
    """Outcome of one lint run.

    Attributes:
        findings: Active (non-waived) findings, sorted by location.
        waived: Findings suppressed by a reasoned inline waiver (each
            carries its ``waive_reason``).
        files: Number of files analyzed.
        rules_run: Ids of the rules that ran.
    """

    findings: List[Finding] = field(default_factory=list)
    waived: List[Finding] = field(default_factory=list)
    files: int = 0
    rules_run: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when no active findings remain."""
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def default_target() -> Path:
    """The installed ``repro`` package — what bare ``repro lint`` checks."""
    import repro

    return Path(repro.__file__).parent


def _apply_waivers(
    context: LintContext,
    waivers_by_module: Dict[str, Dict[int, Dict[str, str]]],
    findings: Iterable[Finding],
) -> Tuple[List[Finding], List[Finding]]:
    """Split raw findings into (active, waived) using inline waivers."""
    waivers_by_path: Dict[str, Dict[int, Dict[str, str]]] = {}
    for name, waivers in waivers_by_module.items():
        waivers_by_path[context.modules[name].rel_path] = waivers
    active: List[Finding] = []
    waived: List[Finding] = []
    for finding in findings:
        reason = (
            waivers_by_path.get(finding.path, {})
            .get(finding.line, {})
            .get(finding.rule_id)
        )
        if reason is None:
            active.append(finding)
        else:
            waived.append(
                Finding(
                    path=finding.path,
                    line=finding.line,
                    rule_id=finding.rule_id,
                    message=finding.message,
                    waive_reason=reason,
                )
            )
    return active, waived


def lint_paths(
    paths: Optional[Sequence] = None,
    *,
    rules: Optional[Sequence[str]] = None,
    runtime: bool = False,
) -> LintResult:
    """Run the repro invariant checks.

    Args:
        paths: Files/directories to lint; defaults to the installed
            ``repro`` package.
        rules: Restrict to these rule ids (default: all rules of the
            selected scope).
        runtime: Also run the runtime contract verifier
            (``repro lint --runtime``); runtime findings are never
            waivable — they describe live components, not source lines.

    Returns:
        A :class:`LintResult`; ``result.ok`` is the pass/fail verdict
        and ``result.exit_code`` the CLI exit status.
    """
    if paths is None:
        paths = [default_target()]
    selected: List[LintRule]
    if rules is not None:
        selected = rules_by_id(rules)
    else:
        selected = static_rules()
        if runtime:
            selected += runtime_rules()
    context = build_context(paths)
    waivers_by_module = collect_waivers(context)
    raw: List[Finding] = []
    for rule in selected:
        if rule.scope == "static":
            raw.extend(rule.check(context))
    for rel_path, lineno, message in context.parse_failures:
        raw.append(
            Finding(
                path=rel_path,
                line=lineno,
                rule_id="PARSE-001",
                message=f"file does not parse: {message}",
            )
        )
    active, waived = _apply_waivers(context, waivers_by_module, raw)
    if runtime or (
        rules is not None and any(r.scope == "runtime" for r in selected)
    ):
        from repro.lint.runtime import run_runtime_checks

        runtime_ids = tuple(
            r.rule_id for r in selected if r.scope == "runtime"
        )
        if runtime_ids:
            active.extend(run_runtime_checks(only=runtime_ids))
    active.sort(key=lambda f: f.sort_key())
    waived.sort(key=lambda f: f.sort_key())
    return LintResult(
        findings=active,
        waived=waived,
        files=len(context.modules) + len(context.parse_failures),
        rules_run=tuple(sorted(r.rule_id for r in selected)),
    )


__all__ = ["LintResult", "default_target", "lint_paths"]
