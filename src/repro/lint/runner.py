"""The lint driver: build the context, run the rules, apply waivers.

:func:`lint_paths` is the one entry point both the CLI (``repro
lint``) and the test suite use — tests import it directly and assert
on the returned :class:`LintResult` instead of scraping CLI output.

The run is staged by rule granularity:

* *file* rules run per module through the incremental cache (when a
  ``cache_path`` is given): a module whose content hash and the
  run-wide cache key both match is served from the cache, everything
  else is re-linted and stored back;
* *tree* rules (the registry family) reason across files and always
  re-run;
* *runtime* and *sanitize* rules drive live components and processes;
  their findings are appended **after** waiver filtering — they are
  never waivable and never cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.context import LintContext, build_context
from repro.lint.findings import Finding
from repro.lint.rules import (
    LintRule,
    rules_by_id,
    runtime_rules,
    sanitize_rules,
    static_rules,
)
from repro.lint.waivers import collect_waivers


@dataclass
class LintResult:
    """Outcome of one lint run.

    Attributes:
        findings: Active (non-waived) findings, sorted by location.
        waived: Findings suppressed by a reasoned inline waiver (each
            carries its ``waive_reason``).
        files: Number of files analyzed.
        rules_run: Ids of the rules that ran.
        files_reused: Files served from the incremental cache.
        files_relinted: Files actually re-analyzed this run.
    """

    findings: List[Finding] = field(default_factory=list)
    waived: List[Finding] = field(default_factory=list)
    files: int = 0
    rules_run: Tuple[str, ...] = ()
    files_reused: int = 0
    files_relinted: int = 0

    @property
    def ok(self) -> bool:
        """True when no active findings remain."""
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def default_target() -> Path:
    """The installed ``repro`` package — what bare ``repro lint`` checks."""
    import repro

    return Path(repro.__file__).parent


def _split_waived(
    waivers: Dict[int, Dict[str, str]], findings: Iterable[Finding]
) -> Tuple[List[Finding], List[Finding]]:
    """Split one file's raw findings into (active, waived)."""
    active: List[Finding] = []
    waived: List[Finding] = []
    for finding in findings:
        reason = waivers.get(finding.line, {}).get(finding.rule_id)
        if reason is None:
            active.append(finding)
        else:
            waived.append(
                Finding(
                    path=finding.path,
                    line=finding.line,
                    rule_id=finding.rule_id,
                    message=finding.message,
                    waive_reason=reason,
                )
            )
    return active, waived


def changed_files(ref: str, repo_root: Optional[Path] = None) -> Set[Path]:
    """Absolute paths of files changed relative to a git ref.

    Combines committed changes since ``ref`` with staged and unstaged
    working-tree edits, so ``repro lint --changed origin/main`` sees
    exactly what a PR diff will.
    """
    import subprocess

    root = Path(repo_root) if repo_root is not None else Path.cwd()
    top = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        cwd=root,
        capture_output=True,
        text=True,
        check=True,
    ).stdout.strip()
    names: Set[str] = set()
    for args in (["diff", "--name-only", ref], ["diff", "--name-only"]):
        out = subprocess.run(
            ["git", *args],
            cwd=top,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        names.update(line for line in out.splitlines() if line.strip())
    return {(Path(top) / name).resolve() for name in names}


def _filter_changed(
    context: LintContext,
    findings: List[Finding],
    changed: Set[Path],
) -> List[Finding]:
    """Keep findings on changed files (non-file findings always pass)."""
    abs_by_rel = {
        info.rel_path: Path(info.path).resolve()
        for info in context.iter_modules()
    }
    kept = []
    for finding in findings:
        abs_path = abs_by_rel.get(finding.path)
        if abs_path is None or abs_path in changed:
            kept.append(finding)
    return kept


def lint_paths(
    paths: Optional[Sequence] = None,
    *,
    rules: Optional[Sequence[str]] = None,
    runtime: bool = False,
    sanitize: bool = False,
    cache_path: Optional[Path] = None,
    changed: Optional[Set[Path]] = None,
) -> LintResult:
    """Run the repro invariant checks.

    Args:
        paths: Files/directories to lint; defaults to the installed
            ``repro`` package.
        rules: Restrict to these rule ids (default: all rules of the
            selected scopes).
        runtime: Also run the runtime contract verifier
            (``repro lint --runtime``); runtime findings are never
            waivable — they describe live components, not source lines.
        sanitize: Also run the shm sanitizer (``repro lint
            --sanitize``): guard-canary ShardPool rounds with fd and
            segment leak accounting.  Never waivable, like runtime.
        cache_path: Incremental cache file; file-granularity results
            are reused for files whose content hash and summary-layer
            key are unchanged.
        changed: Restrict *reported* file findings to these absolute
            paths (``repro lint --changed REF``); non-file findings
            (runtime, sanitize) always pass through.

    Returns:
        A :class:`LintResult`; ``result.ok`` is the pass/fail verdict
        and ``result.exit_code`` the CLI exit status.
    """
    if paths is None:
        paths = [default_target()]
    selected: List[LintRule]
    if rules is not None:
        selected = rules_by_id(rules)
    else:
        selected = static_rules()
        if runtime:
            selected += runtime_rules()
        if sanitize:
            selected += sanitize_rules()
    file_rules = [
        r
        for r in selected
        if r.scope == "static" and r.granularity == "file"
    ]
    tree_rules = [
        r
        for r in selected
        if r.scope == "static" and r.granularity != "file"
    ]
    context = build_context(paths)
    waivers_by_module = collect_waivers(context)

    cache = None
    if cache_path is not None:
        from repro.lint.cache import LintCache, cache_key
        from repro.lint.dataflow import module_summaries

        key = cache_key(
            module_summaries(context).digest(),
            [r.rule_id for r in file_rules],
        )
        cache = LintCache.load(Path(cache_path), key=key)

    active: List[Finding] = []
    waived: List[Finding] = []
    files_reused = 0
    files_relinted = 0
    for info in context.iter_modules():
        from repro.lint.cache import content_hash

        file_hash = content_hash(info.source)
        hit = (
            cache.lookup(info.rel_path, file_hash)
            if cache is not None
            else None
        )
        if hit is not None:
            file_active, file_waived = hit
            files_reused += 1
        else:
            raw: List[Finding] = []
            for rule in file_rules:
                raw.extend(rule.check_module(context, info))
            file_active, file_waived = _split_waived(
                waivers_by_module.get(info.name, {}), raw
            )
            if cache is not None:
                cache.store(
                    info.rel_path, file_hash, file_active, file_waived
                )
            files_relinted += 1
        active.extend(file_active)
        waived.extend(file_waived)

    tree_raw: List[Finding] = []
    for rule in tree_rules:
        tree_raw.extend(rule.check(context))
    for rel_path, lineno, message in context.parse_failures:
        tree_raw.append(
            Finding(
                path=rel_path,
                line=lineno,
                rule_id="PARSE-001",
                message=f"file does not parse: {message}",
            )
        )
    waivers_by_path: Dict[str, Dict[int, Dict[str, str]]] = {
        context.modules[name].rel_path: module_waivers
        for name, module_waivers in waivers_by_module.items()
    }
    for finding in tree_raw:
        file_active, file_waived = _split_waived(
            waivers_by_path.get(finding.path, {}), [finding]
        )
        active.extend(file_active)
        waived.extend(file_waived)

    if cache is not None:
        cache.save()
    if changed is not None:
        active = _filter_changed(context, active, changed)
        waived = _filter_changed(context, waived, changed)

    runtime_ids = tuple(r.rule_id for r in selected if r.scope == "runtime")
    if runtime_ids:
        from repro.lint.runtime import run_runtime_checks

        active.extend(run_runtime_checks(only=runtime_ids))
    sanitize_ids = tuple(
        r.rule_id for r in selected if r.scope == "sanitize"
    )
    if sanitize_ids:
        from repro.lint.sanitize import run_sanitize_checks

        active.extend(run_sanitize_checks(only=sanitize_ids))
    active.sort(key=lambda f: f.sort_key())
    waived.sort(key=lambda f: f.sort_key())
    return LintResult(
        findings=active,
        waived=waived,
        files=len(context.modules) + len(context.parse_failures),
        rules_run=tuple(sorted(r.rule_id for r in selected)),
        files_reused=files_reused,
        files_relinted=files_relinted,
    )


__all__ = ["LintResult", "changed_files", "default_target", "lint_paths"]
