"""Runtime shm sanitizer: ``repro lint --sanitize``.

The shared-memory lint rules (``SHM-001/2/3``) prove segment cleanup
and range ownership *statically*; they cannot prove the pool actually
releases kernel objects, or that workers honour their declared ranges
under a real scheduler.  The sanitizer closes that gap by driving an
instrumented :class:`~repro.simulation.shard_pool.ShardPool`
(``guard=True``: generation-counter canaries bracketing every
segment's payload) through full lifecycles and accounting for every
fd and ``/dev/shm`` entry:

* ``RT-004`` — leak and crash hygiene: repeated
  attach/collect/detach/stop cycles leave the process fd table and
  ``/dev/shm`` exactly as they were; a worker killed mid-pool turns
  into a clean :class:`~repro.exceptions.SimulationError` on the next
  collect, and the pool still tears down without segment residue.
* ``RT-005`` — range-ownership stress: uneven shard queues over a
  guarded pool never tear a canary (no out-of-range write) and stay
  bit-identical to the serial backend.

Sanitizer findings are *never waivable* — like the ``--runtime``
contracts, they are appended after waiver filtering, because a real
leak or a torn canary is a fact about the running kernel, not a style
judgement about a source line.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.rules import LintRule, register_lint_rule

#: Backend every sanitizer scenario drives (registered, per-node, and
#: exercised by the tier-1 pool tests, so failures isolate the pool).
_BACKEND = "adaptive"


class SanitizeRule(LintRule):
    """Base for rules that need a live ShardPool (``--sanitize``)."""

    scope = "sanitize"
    family = "sanitize"


class ShmHygieneRule(SanitizeRule):
    rule_id = "RT-004"
    description = (
        "ShardPool attach/collect/detach/stop cycles must leak no fds "
        "or /dev/shm segments, and a dead worker must surface as a "
        "clean SimulationError with full teardown"
    )


class ShmGuardStressRule(SanitizeRule):
    rule_id = "RT-005"
    description = (
        "under guard canaries and uneven shard queues, workers never "
        "write outside their segment payloads and pooled results stay "
        "bit-identical to the serial backend"
    )


register_lint_rule(ShmHygieneRule())
register_lint_rule(ShmGuardStressRule())


def _finding(coordinate: str, rule_id: str, message: str) -> Finding:
    return Finding(path=coordinate, line=0, rule_id=rule_id, message=message)


def _fd_count() -> int:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:  # pragma: no cover - non-procfs platform
        return -1


def _shm_entries() -> Optional[Set[str]]:
    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if not name.startswith("sem.")
        }
    except OSError:  # pragma: no cover - non-Linux shm layout
        return None


def _trace(num_nodes: int = 8) -> Any:
    import numpy as np

    steps = np.arange(
        6 * num_nodes * 2, dtype=np.float32
    ).reshape(6, num_nodes, 2)
    return (0.5 + 0.4 * np.sin(steps / 5.0)).astype(np.float32)


def _ranges(num_nodes: int, width: int) -> List[Tuple[int, int]]:
    return [
        (lo, min(lo + width, num_nodes))
        for lo in range(0, num_nodes, width)
    ]


def _check_leak_accounting() -> List[Finding]:
    """RT-004 half one: fd/segment balance across full lifecycles."""
    from repro.core.config import TransmissionConfig
    from repro.simulation.shard_pool import ShardPool

    findings: List[Finding] = []
    trace = _trace()
    config = TransmissionConfig()
    ranges = _ranges(trace.shape[1], 3)
    # Warm-up pool: the first spawn starts the multiprocessing resource
    # tracker, whose fd legitimately persists for the process lifetime.
    # Steady state is measured after it exists.
    with ShardPool(workers=2) as pool:
        pool.collect(_BACKEND, trace, config, ranges)
    fds_before = _fd_count()
    shm_before = _shm_entries()
    with ShardPool(workers=2, guard=True) as pool:
        for _ in range(3):
            pool.collect(_BACKEND, trace, config, ranges)
    fds_after = _fd_count()
    shm_after = _shm_entries()
    if shm_before is not None and shm_after is not None:
        leaked = sorted(shm_after - shm_before)
        if leaked:
            findings.append(
                _finding(
                    "shard pool",
                    "RT-004",
                    f"/dev/shm segments leaked across "
                    f"attach/collect/detach/stop: {leaked[:4]}",
                )
            )
    if 0 <= fds_before < fds_after:
        findings.append(
            _finding(
                "shard pool",
                "RT-004",
                f"fd table grew {fds_before} -> {fds_after} across a "
                "full pool lifecycle (pipe or segment fd leak)",
            )
        )
    return findings


def _check_crash_recovery() -> List[Finding]:
    """RT-004 half two: a dead worker fails loud and tears down clean."""
    from repro.core.config import TransmissionConfig
    from repro.exceptions import SimulationError
    from repro.simulation.shard_pool import ShardPool

    findings: List[Finding] = []
    trace = _trace()
    config = TransmissionConfig()
    shm_before = _shm_entries()
    pool = ShardPool(workers=2, guard=True)
    try:
        victim = pool._procs[0]
        victim.terminate()
        victim.join(timeout=5)
        try:
            pool.collect(
                _BACKEND, trace, config, _ranges(trace.shape[1], 4)
            )
        except SimulationError:
            pass
        else:
            findings.append(
                _finding(
                    "shard pool",
                    "RT-004",
                    "collect over a dead worker returned instead of "
                    "raising SimulationError",
                )
            )
    finally:
        pool.close()
    shm_after = _shm_entries()
    if shm_before is not None and shm_after is not None:
        residue = sorted(shm_after - shm_before)
        if residue:
            findings.append(
                _finding(
                    "shard pool",
                    "RT-004",
                    f"worker crash left /dev/shm residue: {residue[:4]}",
                )
            )
    return findings


def _check_guard_stress() -> List[Finding]:
    """RT-005: uneven guarded shards vs the serial reference."""
    import numpy as np

    from repro.core.config import TransmissionConfig
    from repro.exceptions import SimulationError
    from repro.registry import COLLECTION_BACKENDS
    from repro.simulation.shard_pool import ShardPool

    findings: List[Finding] = []
    trace = _trace(num_nodes=16)
    config = TransmissionConfig()
    reference = COLLECTION_BACKENDS.create(_BACKEND, trace.copy(), config)
    # Width 3 over 16 nodes: uneven final shard, queues of unequal
    # length per worker — the layouts most likely to expose an
    # off-by-one range write, which the canaries then catch.
    try:
        with ShardPool(workers=3, guard=True) as pool:
            stored, decisions = pool.collect(
                _BACKEND, trace, config, _ranges(16, 3)
            )
    except SimulationError as exc:
        return [
            _finding(
                "shard pool",
                "RT-005",
                f"guarded shard stress tore a canary: {exc}",
            )
        ]
    if not np.array_equal(stored, reference.stored):
        findings.append(
            _finding(
                "shard pool",
                "RT-005",
                "guarded pooled stored column diverged bit-wise from "
                "the serial backend",
            )
        )
    if not np.array_equal(
        decisions, np.asarray(reference.decisions, dtype=bool)
    ):
        findings.append(
            _finding(
                "shard pool",
                "RT-005",
                "guarded pooled decisions diverged from the serial "
                "backend",
            )
        )
    return findings


def run_sanitize_checks(
    only: Optional[Tuple[str, ...]] = None,
) -> List[Finding]:
    """Drive the instrumented ShardPool through the shm contracts.

    Args:
        only: Restrict to these rule ids (``None`` runs all).

    Returns:
        One :class:`Finding` per violated contract — empty when the
        pool leaks nothing, fails loud on worker death and honours its
        declared shard ranges under guard canaries.
    """
    findings: List[Finding] = []
    findings.extend(_check_leak_accounting())
    findings.extend(_check_crash_recovery())
    findings.extend(_check_guard_stress())
    if only is not None:
        findings = [f for f in findings if f.rule_id in only]
    return sorted(findings, key=lambda f: f.sort_key())


__all__ = [
    "SanitizeRule",
    "ShmGuardStressRule",
    "ShmHygieneRule",
    "run_sanitize_checks",
]
