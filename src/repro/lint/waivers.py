"""Inline waivers: ``# repro: noqa RULE-ID(reason)``.

A finding is suppressed when the physical line it is anchored to
carries a waiver naming its rule id *with a written reason* — the
reason is part of the syntax, not a convention, so every suppression in
the tree documents why the invariant does not apply at that site.
Several waivers may share one comment::

    for node in self.nodes:  # repro: noqa KER-003(object-path fallback)

A trailing waiver applies to its own line; a waiver comment on a line
of its own applies to the *next* line (like
``eslint-disable-next-line``), so long reasons never force long source
lines::

    # repro: noqa DT-001(ring adopts the caller's dtype by design)
    arr = np.asarray(value)

A waiver without a reason (``# repro: noqa KER-003`` or an empty
``()``) suppresses nothing and is itself reported as ``WAIVE-001``.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, List, Tuple

from repro.lint.context import LintContext, ModuleInfo, WaiverProblem
from repro.lint.findings import Finding
from repro.lint.rules import LintRule, register_lint_rule

#: Marks a waiver comment; everything after it is parsed as entries.
_MARKER = re.compile(r"#\s*repro:\s*noqa\b(?P<entries>.*)", re.IGNORECASE)

#: One waiver entry: ``RULE-ID`` with an optional ``(reason)``.
_ENTRY = re.compile(r"([A-Z]{2,10}-\d{3})\s*(?:\(([^()]*)\))?")


def parse_waivers(
    info: ModuleInfo,
) -> Tuple[Dict[int, Dict[str, str]], List[WaiverProblem]]:
    """Extract waivers from a module's comments.

    Returns:
        ``(waivers, problems)`` — ``waivers[line][rule_id] = reason``
        for well-formed entries, and one :class:`WaiverProblem` per
        entry missing its reason.
    """
    waivers: Dict[int, Dict[str, str]] = {}
    problems: List[WaiverProblem] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(info.source).readline)
        comments = [
            (token.start[0], token.start[1], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except tokenize.TokenizeError:  # pragma: no cover - parse rule fires
        return waivers, problems
    source_lines = info.source.splitlines()
    for line, column, text in comments:
        # An own-line comment (nothing before the #) waives the next
        # line; a trailing comment waives its own line.
        prefix = source_lines[line - 1][:column] if line <= len(
            source_lines
        ) else ""
        target = line + 1 if not prefix.strip() else line
        marked = _MARKER.search(text)
        if marked is None:
            continue
        for rule_id, reason in _ENTRY.findall(marked.group("entries")):
            reason = (reason or "").strip()
            if not reason:
                problems.append(
                    WaiverProblem(
                        module=info.name,
                        rel_path=info.rel_path,
                        lineno=line,
                        rule_id=rule_id,
                    )
                )
                continue
            waivers.setdefault(target, {})[rule_id] = reason
    return waivers, problems


def collect_waivers(
    context: LintContext,
) -> Dict[str, Dict[int, Dict[str, str]]]:
    """Parse every module's waivers; problems land on the context."""
    by_module: Dict[str, Dict[int, Dict[str, str]]] = {}
    context.waiver_problems = []
    for info in context.iter_modules():
        waivers, problems = parse_waivers(info)
        by_module[info.name] = waivers
        context.waiver_problems.extend(problems)
    return by_module


class WaiverReasonRule(LintRule):
    """WAIVE-001: every inline waiver must carry a written reason."""

    rule_id = "WAIVE-001"
    family = "waivers"
    description = (
        "inline waivers must carry a reason: # repro: noqa RULE-ID(why)"
    )

    def check_module(self, context: LintContext, info: ModuleInfo):
        _, problems = parse_waivers(info)
        for problem in problems:
            yield Finding(
                path=problem.rel_path,
                line=problem.lineno,
                rule_id=self.rule_id,
                message=(
                    f"waiver for {problem.rule_id} has no reason; write "
                    f"# repro: noqa {problem.rule_id}(reason) — a bare "
                    "waiver suppresses nothing"
                ),
            )


register_lint_rule(WaiverReasonRule())

__all__ = ["WaiverReasonRule", "collect_waivers", "parse_waivers"]
