"""Diagnostics emitted by lint rules: one :class:`Finding` per site."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class Finding:
    """One rule violation (or suppressed violation) at a source site.

    Attributes:
        path: File the finding is in, relative to the linted root (for
            runtime findings, the component's registry coordinate, e.g.
            ``transmission policy 'adaptive'``).
        line: 1-based source line (0 for runtime findings).
        rule_id: The violated rule (``DT-001``, ``STATE-002``, …).
        message: Human-readable description of the violation.
        waive_reason: The written justification when the finding was
            suppressed by an inline ``# repro: noqa RULE-ID(reason)``
            waiver; ``None`` for active findings.
    """

    path: str
    line: int
    rule_id: str
    message: str
    waive_reason: Optional[str] = field(default=None, compare=False)

    @property
    def waived(self) -> bool:
        """True when an inline waiver suppressed this finding."""
        return self.waive_reason is not None

    def sort_key(self):
        return (self.path, self.line, self.rule_id)

    def to_dict(self) -> Dict[str, object]:
        """JSON-reporter form (stable field names, see report schema)."""
        data: Dict[str, object] = {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
        if self.waive_reason is not None:
            data["reason"] = self.waive_reason
        return data

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"


__all__ = ["Finding"]
