"""The shared static-analysis model every lint rule reads.

A :class:`LintContext` is built once per ``repro lint`` invocation: it
parses every Python file under the linted roots into a
:class:`ModuleInfo` (dotted module name + AST), extracts the *registry
model* — each ``VAR = Registry(kind, modules=(...))`` declaration, the
``register_*`` helper → registry mapping, and every registration call
site — and derives a static import graph so rules can reason about
which modules a registry's lazy-load list actually reaches.  Rules are
pure functions of this context; nothing here imports the code under
analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

#: Registry variables whose registrations mark a module as *kernel
#: hosting*: the vectorized one-slot transmission kernels, the
#: whole-trace collection recurrences and the batched forecaster banks.
KERNEL_REGISTRY_VARS = frozenset(
    {"SLOT_KERNELS", "COLLECTION_BACKENDS", "FORECASTER_BANKS"}
)

#: Modules hosting the *shared* scalar/batch kernels the banks iterate
#: (``ewma_run``, ``hold_forecast``, ``fit_yule_walker_batch``, …) —
#: kernel-purity rules cover them even though the registrations that
#: re-export them live in ``forecasting/bank.py``.  The scenario
#: engine's link and churn models are held to the same bar: their only
#: randomness must come from explicitly seeded, checkpointable
#: generators (waived per call site), never ambient ``np.random`` or
#: wall clocks.
KERNEL_SHARED_PATTERNS = (
    "*.forecasting.exponential",
    "*.forecasting.sample_hold",
    "*.forecasting.yule_walker",
    "*.scenarios.links",
    "*.scenarios.churn",
    # Shared-memory shard workers re-run registered collection backends
    # out of process: any ambient randomness or wall-clock read there
    # would silently break the pooled == in-process bit-identity pin.
    "*.simulation.shard_pool",
)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str  #: Dotted module name (``repro.core.ring``).
    path: Path  #: Absolute file path.
    rel_path: str  #: Path relative to the linted root (for findings).
    source: str
    tree: ast.Module

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)


@dataclass
class RegistryDecl:
    """A parsed ``VAR = Registry(kind, modules=(...))`` declaration."""

    var: str
    kind: str
    module: str  #: Module the declaration lives in.
    lineno: int
    seed_modules: Tuple[str, ...]
    seeds_literal: bool  #: False when ``modules=`` was not a literal.


@dataclass
class RegisterSite:
    """One registration call (decorator or direct) in a module."""

    registry_var: str
    module: str
    lineno: int


@dataclass
class WaiverProblem:
    """A malformed inline waiver (missing/empty reason)."""

    module: str
    rel_path: str
    lineno: int
    rule_id: str


def package_root(path: Path) -> Path:
    """Topmost ancestor of ``path`` that is still inside a package."""
    current = path if path.is_dir() else path.parent
    while (current / "__init__.py").exists() and current.parent != current:
        if not (current.parent / "__init__.py").exists():
            return current
        current = current.parent
    return current


def module_name_for(path: Path) -> str:
    """Dotted module name of a file, derived from its package layout."""
    path = path.resolve()
    root = package_root(path)
    if (root / "__init__.py").exists():
        base = root.parent
    else:
        base = root
    relative = path.relative_to(base)
    parts = list(relative.parts)
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) if parts else path.stem


def discover_files(paths: Iterable[Path]) -> List[Path]:
    """All ``.py`` files under the given files/directories, sorted."""
    found: Set[Path] = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for child in entry.rglob("*.py"):
                if "__pycache__" not in child.parts:
                    found.add(child.resolve())
        elif entry.suffix == ".py":
            found.add(entry.resolve())
    return sorted(found)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class LintContext:
    """Everything the static rules need, parsed once.

    Args:
        modules: Parsed modules keyed by dotted name.
        root: The directory findings' paths are reported relative to.
    """

    def __init__(self, modules: Dict[str, ModuleInfo], root: Path) -> None:
        self.modules = modules
        self.root = root
        self.waiver_problems: List[WaiverProblem] = []
        self.parse_failures: List[Tuple[str, int, str]] = []
        self.registries: Dict[str, RegistryDecl] = {}
        self.helper_to_registry: Dict[str, str] = {}
        self.register_sites: List[RegisterSite] = []
        self._imports: Dict[str, Set[str]] = {}
        self._analyze_registries()
        self._collect_register_sites()
        self._build_import_graph()

    # -- registry model -------------------------------------------------

    def _analyze_registries(self) -> None:
        for info in self.modules.values():
            for node in info.walk():
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                if not (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "Registry"
                ):
                    continue
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if not targets:
                    continue
                kind = ""
                if value.args and isinstance(value.args[0], ast.Constant):
                    kind = str(value.args[0].value)
                seeds: Tuple[str, ...] = ()
                literal = True
                for keyword in value.keywords:
                    if keyword.arg != "modules":
                        continue
                    if isinstance(keyword.value, (ast.Tuple, ast.List)):
                        elements = keyword.value.elts
                        if all(
                            isinstance(e, ast.Constant)
                            and isinstance(e.value, str)
                            for e in elements
                        ):
                            seeds = tuple(e.value for e in elements)
                        else:
                            literal = False
                    else:
                        literal = False
                self.registries[targets[0]] = RegistryDecl(
                    var=targets[0],
                    kind=kind,
                    module=info.name,
                    lineno=node.lineno,
                    seed_modules=seeds,
                    seeds_literal=literal,
                )
            # Helper functions: ``def register_x(...): return
            # VAR.register(...)`` map the helper name to its registry.
            for node in info.walk():
                if not isinstance(node, ast.FunctionDef):
                    continue
                for stmt in ast.walk(node):
                    if not (
                        isinstance(stmt, ast.Return)
                        and isinstance(stmt.value, ast.Call)
                        and isinstance(stmt.value.func, ast.Attribute)
                        and stmt.value.func.attr == "register"
                        and isinstance(stmt.value.func.value, ast.Name)
                    ):
                        continue
                    var = stmt.value.func.value.id
                    if var in self.registries:
                        self.helper_to_registry[node.name] = var

    def _collect_register_sites(self) -> None:
        for info in self.modules.values():
            for node in info.walk():
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                var: Optional[str] = None
                if (
                    isinstance(func, ast.Name)
                    and func.id in self.helper_to_registry
                ):
                    var = self.helper_to_registry[func.id]
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "register"
                    and isinstance(func.value, ast.Name)
                    and func.value.id in self.registries
                ):
                    var = func.value.id
                if var is not None:
                    self.register_sites.append(
                        RegisterSite(var, info.name, node.lineno)
                    )

    # -- import graph ---------------------------------------------------

    def _resolve_relative(self, info: ModuleInfo, level: int) -> str:
        parts = info.name.split(".")
        # A package's __init__ has name == package; level 1 from a
        # module means its own package, from __init__ it also means
        # the package itself.
        if info.path.name == "__init__.py":
            parts = parts + ["__init__"]
        return ".".join(parts[:-level]) if level < len(parts) else ""

    def _build_import_graph(self) -> None:
        for info in self.modules.values():
            edges: Set[str] = set()
            # Importing any module implicitly imports its ancestor
            # packages first.
            parts = info.name.split(".")
            for k in range(1, len(parts)):
                edges.add(".".join(parts[:k]))
            for node in info.walk():
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        edges.add(alias.name)
                elif isinstance(node, ast.ImportFrom):
                    if node.level:
                        base = self._resolve_relative(info, node.level)
                        if node.module:
                            base = (
                                f"{base}.{node.module}"
                                if base
                                else node.module
                            )
                    else:
                        base = node.module or ""
                    if base:
                        edges.add(base)
                        for alias in node.names:
                            # ``from pkg import sub`` may import a
                            # submodule, not an attribute.
                            candidate = f"{base}.{alias.name}"
                            if candidate in self.modules:
                                edges.add(candidate)
            self._imports[info.name] = {
                e for e in edges if e in self.modules and e != info.name
            }

    def reachable(self, seeds: Iterable[str]) -> Set[str]:
        """Modules transitively imported from ``seeds`` (inclusive)."""
        frontier = [s for s in seeds if s in self.modules]
        seen: Set[str] = set(frontier)
        while frontier:
            current = frontier.pop()
            for nxt in self._imports.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    # -- derived module sets --------------------------------------------

    def kernel_modules(self) -> List[ModuleInfo]:
        """Modules hosting slot/collection/bank kernels.

        Detected from the registrations themselves (any module
        registering into ``SLOT_KERNELS`` / ``COLLECTION_BACKENDS`` /
        ``FORECASTER_BANKS``) plus the named shared-kernel modules, so
        the set tracks the code instead of a hand-maintained list.
        """
        from fnmatch import fnmatch

        names = {
            site.module
            for site in self.register_sites
            if site.registry_var in KERNEL_REGISTRY_VARS
        }
        for info in self.modules.values():
            if any(
                fnmatch(info.name, pat) for pat in KERNEL_SHARED_PATTERNS
            ):
                names.add(info.name)
        return [self.modules[n] for n in sorted(names)]

    def iter_modules(self) -> Iterator[ModuleInfo]:
        for name in sorted(self.modules):
            yield self.modules[name]


def build_context(paths: Iterable[Path], root: Optional[Path] = None):
    """Parse the given files/directories into a :class:`LintContext`.

    Files that fail to parse are recorded in
    :attr:`LintContext.parse_failures` (surfaced as ``PARSE-001``
    findings by the runner) instead of aborting the whole run.
    """
    paths = [Path(p) for p in paths]
    if root is None:
        dirs = [p if p.is_dir() else p.parent for p in paths]
        root = Path(min((str(d) for d in dirs), default=".")).resolve()
    files = discover_files(paths)
    modules: Dict[str, ModuleInfo] = {}
    failures: List[Tuple[str, int, str]] = []
    for file_path in files:
        source = file_path.read_text()
        try:
            rel = str(file_path.relative_to(root))
        except ValueError:
            rel = str(file_path)
        try:
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError as exc:
            failures.append((rel, exc.lineno or 1, exc.msg or "syntax error"))
            continue
        name = module_name_for(file_path)
        modules[name] = ModuleInfo(
            name=name,
            path=file_path,
            rel_path=rel,
            source=source,
            tree=tree,
        )
    context = LintContext(modules, root)
    context.parse_failures = failures
    return context


__all__ = [
    "KERNEL_REGISTRY_VARS",
    "KERNEL_SHARED_PATTERNS",
    "LintContext",
    "ModuleInfo",
    "RegisterSite",
    "RegistryDecl",
    "WaiverProblem",
    "build_context",
    "discover_files",
    "dotted_name",
    "module_name_for",
    "package_root",
]
