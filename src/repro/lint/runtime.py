"""Runtime contract verification: ``repro lint --runtime``.

Static rules prove the checkpoint methods exist and their literal keys
agree; they cannot prove the state actually round-trips.  The runtime
verifier closes that gap by importing every component registry and
driving each registered component through the contract its docstring
promises:

* ``RT-001`` — ``get_state`` → ``set_state`` (on a *freshly built*
  instance) → ``get_state`` reproduces the state bit-identically;
* ``RT-002`` — ``get_state`` output is checkpoint-serializable
  (:func:`repro.checkpoint.encode_state` accepts it);
* ``RT-003`` — the restored component *continues* identically: the
  same subsequent updates/forecasts/decisions produce the same outputs
  as the instance that never stopped.  Stateless components (slot
  kernels, collection backends) are checked for buildability and
  replay determinism instead.

Every component is driven with tiny deterministic inputs, so the whole
sweep runs in seconds and belongs in CI next to the static pass.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.rules import LintRule, register_lint_rule


class RuntimeRule(LintRule):
    """Base for rules that need live components (``--runtime``)."""

    scope = "runtime"


class StateRoundTripRule(RuntimeRule):
    rule_id = "RT-001"
    family = "runtime"
    description = (
        "get_state -> set_state on a fresh instance -> get_state must "
        "reproduce the state bit-identically"
    )


class StateSerializableRule(RuntimeRule):
    rule_id = "RT-002"
    family = "runtime"
    description = (
        "get_state output must be checkpoint-serializable (JSON-able "
        "scalars, dicts, lists and numpy arrays)"
    )


class RestoredContinuationRule(RuntimeRule):
    rule_id = "RT-003"
    family = "runtime"
    description = (
        "a restored component must continue bit-identically to one "
        "that never stopped (and stateless components must replay "
        "deterministically)"
    )


register_lint_rule(StateRoundTripRule())
register_lint_rule(StateSerializableRule())
register_lint_rule(RestoredContinuationRule())


def _finding(coordinate: str, rule_id: str, message: str) -> Finding:
    return Finding(path=coordinate, line=0, rule_id=rule_id, message=message)


def _check_stateful(
    coordinate: str,
    build: Callable[[], Any],
    warmup: Callable[[Any], None],
    probe: Callable[[Any], Any],
) -> List[Finding]:
    """Drive one stateful component through RT-001/002/003."""
    from repro.checkpoint import encode_state, state_equal
    from repro.exceptions import CheckpointError

    findings: List[Finding] = []
    try:
        original = build()
        warmup(original)
        state = original.get_state()
    except Exception as exc:
        return [
            _finding(
                coordinate,
                "RT-001",
                f"failed to build/drive the component: {exc!r}",
            )
        ]
    try:
        encode_state(state)
    except CheckpointError as exc:
        findings.append(_finding(coordinate, "RT-002", str(exc)))
    try:
        restored = build()
        restored.set_state(state)
        second = restored.get_state()
    except Exception as exc:
        findings.append(
            _finding(
                coordinate,
                "RT-001",
                f"set_state/get_state failed on a fresh instance: {exc!r}",
            )
        )
        return findings
    if not state_equal(state, second):
        findings.append(
            _finding(
                coordinate,
                "RT-001",
                "get_state -> set_state -> get_state did not round-trip "
                "bit-identically",
            )
        )
    try:
        continued = probe(original)
        resumed = probe(restored)
    except Exception as exc:
        findings.append(
            _finding(
                coordinate,
                "RT-003",
                f"probing the restored component failed: {exc!r}",
            )
        )
        return findings
    if not state_equal(continued, resumed):
        findings.append(
            _finding(
                coordinate,
                "RT-003",
                "the restored component diverged from the instance that "
                "never stopped on identical subsequent inputs",
            )
        )
    return findings


def _forecaster_config(name: str) -> Any:
    """A tiny, fully deterministic config for the named forecaster."""
    from repro.core.config import ForecastingConfig

    return ForecastingConfig(
        model=name,
        max_horizon=3,
        arima_max_p=1,
        arima_max_d=1,
        arima_max_q=1,
        lstm_hidden=3,
        lstm_lookback=4,
        lstm_epochs=1,
        hw_period=4,
        ar_order=2,
        seed=0,
    )


def _series(length: int) -> Any:
    import numpy as np

    steps = np.arange(length, dtype=float)
    return 0.5 + 0.3 * np.sin(steps / 2.0) + 0.01 * steps


def _trace() -> Any:
    import numpy as np

    steps = np.arange(8 * 3 * 2, dtype=float).reshape(8, 3, 2)
    return 0.5 + 0.4 * np.sin(steps / 5.0)


def _check_forecasters() -> List[Finding]:
    import numpy as np

    from repro.registry import FORECASTERS

    findings: List[Finding] = []
    series = _series(30)
    for name in FORECASTERS.available():
        config = _forecaster_config(name)

        def build(name: str = name, config: Any = config) -> Any:
            return FORECASTERS.create(name, config, 0, 0)

        def warmup(model: Any) -> None:
            model.fit(series)
            model.update(0.55)

        def probe(model: Any) -> Any:
            model.update(0.6)
            return np.asarray(model.forecast(3), dtype=float)

        findings.extend(
            _check_stateful(f"forecaster '{name}'", build, warmup, probe)
        )
    return findings


def _check_banks() -> List[Finding]:
    import numpy as np

    from repro.registry import FORECASTER_BANKS

    findings: List[Finding] = []
    tensor = _series(30 * 2).reshape(30, 2, 1)
    slot = np.asarray([[0.55], [0.45]], dtype=float)
    for name in FORECASTER_BANKS.available():
        config = _forecaster_config(name)

        def build(name: str = name, config: Any = config) -> Any:
            return FORECASTER_BANKS.create(name, config, 2, 1)

        def warmup(bank: Any) -> None:
            bank.fit(tensor)
            bank.update(slot)

        def probe(bank: Any) -> Any:
            bank.update(slot * 1.1)
            return np.asarray(bank.forecast(3), dtype=float)

        findings.extend(
            _check_stateful(f"forecaster bank '{name}'", build, warmup, probe)
        )
    return findings


def _check_policies() -> List[Finding]:
    import numpy as np

    from repro.core.config import TransmissionConfig
    from repro.registry import TRANSMISSION_POLICIES

    findings: List[Finding] = []
    inputs = [
        (np.asarray([0.5, 0.2]), np.asarray([0.4, 0.2])),
        (np.asarray([0.52, 0.21]), np.asarray([0.5, 0.2])),
        (np.asarray([0.9, 0.8]), np.asarray([0.52, 0.21])),
        (np.asarray([0.91, 0.79]), np.asarray([0.9, 0.8])),
    ]
    for name in TRANSMISSION_POLICIES.available():

        def build(name: str = name) -> Any:
            return TRANSMISSION_POLICIES.create(name, TransmissionConfig(), 0)

        def warmup(policy: Any) -> None:
            for current, stored in inputs:
                policy.decide(current, stored)

        def probe(policy: Any) -> Any:
            return [
                bool(policy.decide(current, stored))
                for current, stored in inputs
            ]

        findings.extend(
            _check_stateful(
                f"transmission policy '{name}'", build, warmup, probe
            )
        )
    return findings


def _check_slot_kernels() -> List[Finding]:
    from repro.core.config import TransmissionConfig
    from repro.registry import SLOT_KERNELS

    findings: List[Finding] = []
    for name in SLOT_KERNELS.available():
        coordinate = f"slot kernel '{name}'"
        try:
            kernel = SLOT_KERNELS.create(name, TransmissionConfig())
        except Exception as exc:
            findings.append(
                _finding(
                    coordinate,
                    "RT-001",
                    f"kernel builder failed: {exc!r}",
                )
            )
            continue
        if not callable(kernel):
            findings.append(
                _finding(
                    coordinate,
                    "RT-001",
                    f"kernel builder returned non-callable "
                    f"{type(kernel).__name__}",
                )
            )
    return findings


def _check_collection_backends() -> List[Finding]:
    from repro.checkpoint import state_equal
    from repro.core.config import TransmissionConfig
    from repro.registry import COLLECTION_BACKENDS

    findings: List[Finding] = []
    trace = _trace()
    config = TransmissionConfig()
    for name in COLLECTION_BACKENDS.available():
        coordinate = f"collection backend '{name}'"
        try:
            first = COLLECTION_BACKENDS.create(name, trace.copy(), config)
            second = COLLECTION_BACKENDS.create(name, trace.copy(), config)
        except Exception as exc:
            findings.append(
                _finding(coordinate, "RT-001", f"backend failed: {exc!r}")
            )
            continue
        if not (
            state_equal(first.stored, second.stored)
            and state_equal(
                first.decisions.astype(int), second.decisions.astype(int)
            )
        ):
            findings.append(
                _finding(
                    coordinate,
                    "RT-003",
                    "two runs over the same trace and config diverged; "
                    "collection backends must replay deterministically",
                )
            )
    return findings


def _check_similarity_measures() -> List[Finding]:
    from repro.registry import SIMILARITY_MEASURES

    findings: List[Finding] = []
    for name in SIMILARITY_MEASURES.available():
        try:
            SIMILARITY_MEASURES.get(name)
        except Exception as exc:  # pragma: no cover - import-time failure
            findings.append(
                _finding(
                    f"similarity measure '{name}'",
                    "RT-001",
                    f"registry lookup failed: {exc!r}",
                )
            )
    return findings


def run_runtime_checks(
    only: Optional[Tuple[str, ...]] = None,
) -> List[Finding]:
    """Drive every registered component through the runtime contracts.

    Args:
        only: Restrict to these rule ids (``None`` runs all RT rules).

    Returns:
        One :class:`Finding` per violated contract, sorted by component
        coordinate — empty when every registered component honours its
        checkpoint and determinism contracts.
    """
    findings: List[Finding] = []
    findings.extend(_check_forecasters())
    findings.extend(_check_banks())
    findings.extend(_check_policies())
    findings.extend(_check_slot_kernels())
    findings.extend(_check_collection_backends())
    findings.extend(_check_similarity_measures())
    if only is not None:
        findings = [f for f in findings if f.rule_id in only]
    return sorted(findings, key=lambda f: f.sort_key())


__all__ = [
    "RestoredContinuationRule",
    "RuntimeRule",
    "StateRoundTripRule",
    "StateSerializableRule",
    "run_runtime_checks",
]
