"""The dataflow IR: array/dtype tags propagated through functions.

PR 6's rules were purely syntactic — one AST node, one verdict.  The
shared-memory and dtype rules need to know what a *value* is, not what
an expression looks like: whether a local is an ndarray, whether its
dtype is parameterized (and therefore possibly float32), and whether it
aliases a shared-memory segment.  This module is that layer: a small
abstract interpreter over function bodies that assigns every local one
of the :data:`TAGS`, plus a call-graph summary pass that propagates
tags through calls (so a kernel whose caller passes it a state-dtype
column knows its parameters are state-dtype without annotations).

The lattice, from most to least specific:

* ``VIEW`` — an ndarray mapped over a shared-memory segment buffer
  (``np.ndarray(..., buffer=seg.buf)`` or a helper returning one);
* ``STATE`` — an ndarray whose dtype is *parameterized*: allocated
  with a non-literal ``dtype=`` expression, ``.astype(dtype_var)``, or
  explicitly float32 (any dtype the default float64 promotion would
  silently destroy);
* ``FLOAT64`` — an ndarray or numpy scalar pinned to float64;
* ``ARRAY`` — an ndarray of unknown dtype;
* ``None`` — not an ndarray (python scalars, strings, configs, …).

The analysis is deliberately a single forward pass per function
(branches merge to the higher-ranked tag, loops are not iterated): it
is a lint, not a verifier — precision errors surface as findings a
human waives with a reason, never as silent unsoundness in shipped
code.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.context import LintContext, ModuleInfo

#: Value tags, in increasing specificity rank (see module docstring).
TAGS = ("ARRAY", "FLOAT64", "STATE", "VIEW")

_RANK = {None: 0, "ARRAY": 1, "FLOAT64": 2, "STATE": 3, "VIEW": 4}

#: Array tags (everything except ``None``).
ARRAY_TAGS = frozenset(TAGS)

#: numpy allocators that default to float64 when dtype is omitted.
_FLOAT_ALLOCATORS = frozenset({"zeros", "empty", "full", "ones", "linspace"})

#: numpy constructors that adopt their input's dtype when omitted.
_ADOPTING_ALLOCATORS = frozenset(
    {"asarray", "array", "ascontiguousarray", "atleast_1d", "atleast_2d"}
)

#: numpy functions that propagate their array arguments' dtype.
_PROPAGATING = frozenset(
    {
        "abs", "clip", "where", "maximum", "minimum", "sum", "mean",
        "cumsum", "sqrt", "square", "exp", "log", "concatenate", "stack",
        "sort", "take", "reshape", "transpose", "ravel", "copy",
        "zeros_like", "empty_like", "ones_like", "full_like",
    }
)

#: Methods that return an array with the receiver's dtype.
_PROPAGATING_METHODS = frozenset(
    {
        "sum", "mean", "copy", "reshape", "ravel", "clip", "cumsum",
        "take", "transpose", "squeeze", "flatten", "max", "min",
    }
)

#: dtype literals that mark an array STATE (promotion-fragile).
_STATE_DTYPES = frozenset({"float32", "float16", "single", "half"})

#: dtype literals that pin FLOAT64.
_FLOAT64_DTYPES = frozenset({"float64", "float", "double"})


def max_tag(*tags: Optional[str]) -> Optional[str]:
    """The highest-ranked tag among the arguments."""
    best: Optional[str] = None
    for tag in tags:
        if _RANK[tag] > _RANK[best]:
            best = tag
    return best


@dataclass
class Mixing:
    """One STATE-array ∘ float64-ish arithmetic site (DT-002 fodder)."""

    lineno: int
    detail: str


@dataclass
class ViewWrite:
    """One subscript store into a shared-memory-backed view."""

    lineno: int
    target: str  #: Source text of the written base (best effort).


@dataclass
class PipeSend:
    """One ``.send(...)`` whose payload references an ndarray local."""

    lineno: int
    names: Tuple[str, ...]  #: The offending array-tagged locals.


@dataclass
class FunctionFacts:
    """Everything one pass over a function body learned."""

    qualname: str
    mixings: List[Mixing] = field(default_factory=list)
    view_writes: List[ViewWrite] = field(default_factory=list)
    pipe_sends: List[PipeSend] = field(default_factory=list)
    return_tag: Optional[str] = None
    #: Call sites: callee bare name → highest tag seen per parameter
    #: position / keyword.
    calls: List[Tuple[str, Dict[object, Optional[str]]]] = field(
        default_factory=list
    )


@dataclass
class FunctionSummary:
    """Converged interprocedural facts about one function."""

    qualname: str
    param_tags: Dict[str, Optional[str]] = field(default_factory=dict)
    return_tag: Optional[str] = None


def _dtype_tag(node: Optional[ast.expr]) -> Optional[str]:
    """Classify a ``dtype=`` argument expression into a tag."""
    if node is None:
        return "FLOAT64"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    elif isinstance(node, ast.Name):
        name = node.id
        if name == "float":
            return "FLOAT64"
        # A bare variable holding the dtype: parameterized.
        return "STATE"
    elif isinstance(node, ast.Attribute):
        name = node.attr
        if name in _STATE_DTYPES:
            return "STATE"
        if name in _FLOAT64_DTYPES:
            return "FLOAT64"
        # self.dtype, data.dtype, config.np_dtype, …: parameterized.
        return "STATE"
    elif isinstance(node, ast.Call):
        # np.dtype(x) adopts x's classification.
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "dtype":
            return _dtype_tag(node.args[0]) if node.args else "STATE"
        return "STATE"
    else:
        return "STATE"
    if name in _STATE_DTYPES:
        return "STATE"
    if name in _FLOAT64_DTYPES:
        return "FLOAT64"
    return "STATE"


def _describe(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


class FunctionFlow:
    """One forward abstract-interpretation pass over a function body.

    Args:
        func: The function to analyze.
        qualname: Its dotted coordinate (for summaries).
        param_tags: Converged tags for its parameters (empty on the
            first fixpoint iteration).
        resolve: Bare callee name → :class:`FunctionSummary` (or
            ``None``), the call-graph summary layer.
    """

    def __init__(
        self,
        func: ast.FunctionDef,
        qualname: str,
        param_tags: Dict[str, Optional[str]],
        resolve,
    ) -> None:
        self.func = func
        self.facts = FunctionFacts(qualname=qualname)
        self.env: Dict[str, Optional[str]] = dict(param_tags)
        self.resolve = resolve

    # -- statement dispatch ---------------------------------------------

    def run(self) -> FunctionFacts:
        for stmt in self.func.body:
            self._stmt(stmt)
        return self.facts

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            tag = self._expr(node.value)
            for target in node.targets:
                self._bind(target, tag)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._bind(node.target, self._expr(node.value))
        elif isinstance(node, ast.AugAssign):
            # In-place ops keep the target's dtype (numpy casts the
            # operand down), so they are never upcast sites — but a
            # store through a shm view is still ownership-gated.
            self._expr(node.value)
            self._check_view_store(node.target, node.lineno)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.facts.return_tag = max_tag(
                    self.facts.return_tag, self._expr(node.value)
                )
        elif isinstance(node, ast.Expr):
            self._expr(node.value)
        elif isinstance(node, (ast.If, ast.For, ast.While)):
            if isinstance(node, (ast.For,)):
                self._bind(node.target, self._element_tag(node.iter))
            if hasattr(node, "test"):
                self._expr(node.test)  # type: ignore[attr-defined]
            elif isinstance(node, ast.For):
                self._expr(node.iter)
            for child in node.body + node.orelse:
                self._stmt(child)
        elif isinstance(node, ast.Try):
            for child in (
                node.body
                + [s for h in node.handlers for s in h.body]
                + node.orelse
                + node.finalbody
            ):
                self._stmt(child)
        elif isinstance(node, ast.With):
            for item in node.items:
                tag = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, tag)
            for child in node.body:
                self._stmt(child)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested scopes are analyzed separately
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child)

    def _bind(self, target: ast.expr, tag: Optional[str]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = max_tag(self.env.get(target.id), tag)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, tag if tag == "VIEW" else None)
        elif isinstance(target, ast.Subscript):
            # Storing into a state-dtype column casts silently (never
            # upcasts the column), so stores are not mixing sites —
            # but a store into a shared-memory view is ownership-gated.
            self._check_view_store(target, target.lineno)
        elif isinstance(target, ast.Attribute):
            self._expr(target.value)

    def _target_tag(self, target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Name):
            return self.env.get(target.id)
        if isinstance(target, ast.Subscript):
            return self._expr(target.value)
        return None

    # -- expressions ----------------------------------------------------

    def _element_tag(self, iterable: ast.expr) -> Optional[str]:
        tag = self._expr(iterable)
        return tag if tag in ("VIEW", "STATE", "FLOAT64", "ARRAY") else None

    def _expr(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.BinOp):
            left = self._expr(node.left)
            right = self._expr(node.right)
            self._check_mix(node, left, node.left, right, node.right)
            result = max_tag(left, right)
            return result if result != "VIEW" else "ARRAY"
        if isinstance(node, ast.UnaryOp):
            return self._expr(node.operand)
        if isinstance(node, ast.Compare):
            self._expr(node.left)
            for comparator in node.comparators:
                self._expr(comparator)
            return None
        if isinstance(node, ast.BoolOp):
            return max_tag(*(self._expr(v) for v in node.values))
        if isinstance(node, ast.IfExp):
            self._expr(node.test)
            return max_tag(self._expr(node.body), self._expr(node.orelse))
        if isinstance(node, ast.Subscript):
            base = self._expr(node.value)
            self._expr(node.slice)
            return base
        if isinstance(node, ast.Attribute):
            base = self._expr(node.value)
            if node.attr in ("T", "real", "imag"):
                return base
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self._expr(element)
            return None
        if isinstance(node, ast.Dict):
            for value in node.values:
                if value is not None:
                    self._expr(value)
            return None
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            return None
        if isinstance(node, ast.Starred):
            return self._expr(node.value)
        return None

    # -- calls ----------------------------------------------------------

    def _call(self, node: ast.Call) -> Optional[str]:
        arg_tags: Dict[object, Optional[str]] = {}
        for position, arg in enumerate(node.args):
            arg_tags[position] = self._expr(arg)
        for keyword in node.keywords:
            if keyword.arg is not None:
                arg_tags[keyword.arg] = self._expr(keyword.value)
            else:
                self._expr(keyword.value)
        func = node.func

        # np.ndarray(shape, dtype, buffer=seg.buf) → shared-memory view.
        if any(k.arg == "buffer" for k in node.keywords):
            return "VIEW"

        if isinstance(func, ast.Attribute):
            owner = func.value
            # <dtype expr>.type(x): the sanctioned scalar cast.
            if func.attr == "type":
                return None
            # conn.send(payload): record array-typed payload names.
            if func.attr == "send":
                self._check_send(node)
            if isinstance(owner, ast.Name) and owner.id in ("np", "numpy"):
                return self._numpy_call(func.attr, node, arg_tags)
            # method on a tagged receiver
            receiver = self._expr(owner)
            if func.attr == "astype":
                dtype_arg = node.args[0] if node.args else None
                for keyword in node.keywords:
                    if keyword.arg == "dtype":
                        dtype_arg = keyword.value
                return _dtype_tag(dtype_arg)
            if receiver in ARRAY_TAGS and func.attr in _PROPAGATING_METHODS:
                return receiver if receiver != "VIEW" else "ARRAY"
            self.facts.calls.append((func.attr, arg_tags))
            summary = self.resolve(func.attr)
            if summary is not None:
                return summary.return_tag
            return None

        if isinstance(func, ast.Name):
            if func.id in ("float", "int", "bool", "str", "len", "range"):
                return None
            if func.id in ("SharedMemory",):
                return None
            self.facts.calls.append((func.id, arg_tags))
            summary = self.resolve(func.id)
            if summary is not None:
                return summary.return_tag
        return None

    def _numpy_call(
        self,
        name: str,
        node: ast.Call,
        arg_tags: Dict[object, Optional[str]],
    ) -> Optional[str]:
        if name == "float64":
            return "FLOAT64"
        if name in _STATE_DTYPES:
            return "STATE"
        if name in _FLOAT_ALLOCATORS or name in _ADOPTING_ALLOCATORS:
            dtype_arg = None
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    dtype_arg = keyword.value
            positions = {"zeros": 1, "empty": 1, "ones": 1, "full": 2,
                         "asarray": 1, "array": 1}
            position = positions.get(name)
            if dtype_arg is None and position is not None:
                if len(node.args) > position:
                    dtype_arg = node.args[position]
            if dtype_arg is not None:
                return _dtype_tag(dtype_arg)
            if name in _FLOAT_ALLOCATORS:
                return "FLOAT64"
            # adopting constructor without dtype: propagate the input
            source = max_tag(
                *(tag for tag in arg_tags.values())
            )
            return source if source in ("STATE", "FLOAT64") else "ARRAY"
        if name in _PROPAGATING or name.endswith("_like"):
            source = max_tag(*(tag for tag in arg_tags.values()))
            if source == "VIEW":
                return "ARRAY"
            return source
        if name == "dtype":
            return None
        return None

    # -- checks ---------------------------------------------------------

    def _is_float_literal(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp):
            return self._is_float_literal(node.operand)
        return False

    def _check_mix(
        self,
        site: ast.AST,
        left: Optional[str],
        left_node: ast.expr,
        right: Optional[str],
        right_node: ast.expr,
    ) -> None:
        operator = getattr(site, "op", None)
        if isinstance(operator, (ast.BitOr, ast.BitAnd, ast.BitXor,
                                 ast.LShift, ast.RShift, ast.Mod)):
            return
        pairs = (
            (left, right, right_node),
            (right, left, left_node),
        )
        for state_side, other_side, other_node in pairs:
            if state_side != "STATE":
                continue
            if self._is_float_literal(other_node):
                self.facts.mixings.append(
                    Mixing(
                        lineno=getattr(site, "lineno", other_node.lineno),
                        detail=(
                            f"state-dtype array combined with bare float "
                            f"literal {_describe(other_node)}"
                        ),
                    )
                )
                return
            if other_side == "FLOAT64":
                self.facts.mixings.append(
                    Mixing(
                        lineno=getattr(site, "lineno", other_node.lineno),
                        detail=(
                            "state-dtype array combined with float64-"
                            f"typed value {_describe(other_node)}"
                        ),
                    )
                )
                return

    def _check_view_store(self, target: ast.expr, lineno: int) -> None:
        if not isinstance(target, ast.Subscript):
            return
        if self._expr(target.value) == "VIEW":
            self.facts.view_writes.append(
                ViewWrite(lineno=lineno, target=_describe(target.value))
            )

    def _check_send(self, node: ast.Call) -> None:
        offenders: Set[str] = set()
        for arg in list(node.args) + [k.value for k in node.keywords]:
            for child in ast.walk(arg):
                if (
                    isinstance(child, ast.Name)
                    and self.env.get(child.id) in ARRAY_TAGS
                ):
                    offenders.add(child.id)
        if offenders:
            self.facts.pipe_sends.append(
                PipeSend(lineno=node.lineno, names=tuple(sorted(offenders)))
            )


# ---------------------------------------------------------------------------
# Module summaries: the call-graph layer
# ---------------------------------------------------------------------------


def _iter_functions(
    info: ModuleInfo,
) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """Yield ``(qualname, func)`` for module- and class-level defs."""
    for node in info.tree.body:
        if isinstance(node, ast.FunctionDef):
            yield f"{info.name}.{node.name}", node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    yield f"{info.name}.{node.name}.{item.name}", item


def _param_names(func: ast.FunctionDef) -> List[str]:
    names = [a.arg for a in func.args.posonlyargs + func.args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    names += [a.arg for a in func.args.kwonlyargs]
    return names


class ModuleSummaries:
    """Fixpoint call-graph summaries over the whole linted context.

    Maps every module/class-level function to the converged tags of its
    parameters (joined over every resolvable call site) and its return
    value.  Resolution is by bare function name across the linted set —
    deliberately import-blind: over-approximation produces at worst a
    finding a human reviews, never a silent miss.
    """

    MAX_ITERATIONS = 8

    def __init__(self, context: LintContext) -> None:
        self.functions: Dict[str, Tuple[ModuleInfo, ast.FunctionDef]] = {}
        self.by_name: Dict[str, List[str]] = {}
        self.summaries: Dict[str, FunctionSummary] = {}
        for info in context.iter_modules():
            for qualname, func in _iter_functions(info):
                self.functions[qualname] = (info, func)
                self.by_name.setdefault(func.name, []).append(qualname)
                self.summaries[qualname] = FunctionSummary(
                    qualname=qualname,
                    param_tags={n: None for n in _param_names(func)},
                )
        self._converge()

    def resolve(self, name: str) -> Optional[FunctionSummary]:
        """Join of every summary sharing the bare name (or ``None``)."""
        qualnames = self.by_name.get(name)
        if not qualnames:
            return None
        if len(qualnames) == 1:
            return self.summaries[qualnames[0]]
        joined = FunctionSummary(qualname=name)
        joined.return_tag = max_tag(
            *(self.summaries[q].return_tag for q in qualnames)
        )
        return joined

    def _converge(self) -> None:
        for _ in range(self.MAX_ITERATIONS):
            changed = False
            for qualname, (info, func) in self.functions.items():
                summary = self.summaries[qualname]
                flow = FunctionFlow(
                    func, qualname, dict(summary.param_tags), self.resolve
                )
                facts = flow.run()
                if facts.return_tag != summary.return_tag and (
                    _RANK[facts.return_tag] > _RANK[summary.return_tag]
                ):
                    summary.return_tag = facts.return_tag
                    changed = True
                for callee, arg_tags in facts.calls:
                    changed |= self._feed_call(callee, arg_tags)
            if not changed:
                break

    def _feed_call(
        self, callee: str, arg_tags: Dict[object, Optional[str]]
    ) -> bool:
        changed = False
        for qualname in self.by_name.get(callee, ()):
            info, func = self.functions[qualname]
            params = _param_names(func)
            summary = self.summaries[qualname]
            for key, tag in arg_tags.items():
                if tag is None:
                    continue
                if isinstance(key, int):
                    if key >= len(params):
                        continue
                    param = params[key]
                else:
                    if key not in summary.param_tags:
                        continue
                    param = key
                if _RANK[tag] > _RANK[summary.param_tags.get(param)]:
                    summary.param_tags[param] = tag
                    changed = True
        return changed

    def facts_for(self, info: ModuleInfo) -> List[FunctionFacts]:
        """Final-pass facts for every function in one module."""
        results: List[FunctionFacts] = []
        for qualname, func in _iter_functions(info):
            summary = self.summaries[qualname]
            flow = FunctionFlow(
                func, qualname, dict(summary.param_tags), self.resolve
            )
            results.append(flow.run())
        return results

    def digest(self) -> str:
        """Stable hash of the converged summaries (cache key input)."""
        payload = {
            qualname: {
                "params": {
                    k: v
                    for k, v in sorted(summary.param_tags.items())
                },
                "return": summary.return_tag,
            }
            for qualname, summary in sorted(self.summaries.items())
        }
        encoded = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(encoded).hexdigest()


def module_summaries(context: LintContext) -> ModuleSummaries:
    """The (memoized) summary layer for a context."""
    cached = getattr(context, "_dataflow_summaries", None)
    if cached is None:
        cached = ModuleSummaries(context)
        context._dataflow_summaries = cached
    return cached


def function_node_for(
    info: ModuleInfo, qualname: str
) -> Optional[ast.FunctionDef]:
    """Look the AST node back up from a facts qualname."""
    for candidate, func in _iter_functions(info):
        if candidate == qualname:
            return func
    return None


__all__ = [
    "ARRAY_TAGS",
    "FunctionFacts",
    "FunctionFlow",
    "FunctionSummary",
    "Mixing",
    "ModuleSummaries",
    "PipeSend",
    "TAGS",
    "ViewWrite",
    "function_node_for",
    "max_tag",
    "module_summaries",
]
