"""Registry-consistency rules: lazy-load lists ↔ registrations.

Every :class:`repro.registry.Registry` names the modules whose import
side effects populate it (``modules=(...)``), and the components
self-register where they are defined.  Both halves rot independently:
a renamed module leaves a dead lazy-load entry (the registry silently
loads nothing), and a new component registered in a module the
registry never imports is invisible until something else happens to
import it — the classic "works in tests, missing in production" bug.

* ``REG-001`` — every lazy-load entry must exist in the tree and reach
  (through the static import graph) at least one matching
  ``@register_*`` call.
* ``REG-002`` — every ``@register_*`` call must live in a module the
  owning registry's lazy-load list reaches.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.context import LintContext
from repro.lint.findings import Finding
from repro.lint.rules import LintRule, register_lint_rule


class RegistrySeedRule(LintRule):
    """REG-001: lazy-load entries resolve to real registrations."""

    rule_id = "REG-001"
    family = "registry"
    description = (
        "every Registry(modules=...) entry must exist and reach a "
        "matching @register_* call"
    )
    granularity = "tree"

    def check(self, context: LintContext) -> Iterator[Finding]:
        sites_by_var: dict = {}
        for site in context.register_sites:
            sites_by_var.setdefault(site.registry_var, set()).add(site.module)
        for decl in context.registries.values():
            if not decl.seeds_literal:
                continue
            decl_path = context.modules[decl.module].rel_path
            root_package = decl.module.split(".")[0]
            registered = sites_by_var.get(decl.var, set())
            for seed in decl.seed_modules:
                if seed.split(".")[0] != root_package:
                    continue  # outside the linted tree; cannot check
                if seed not in context.modules:
                    yield Finding(
                        path=decl_path,
                        line=decl.lineno,
                        rule_id=self.rule_id,
                        message=(
                            f"registry {decl.var} lazy-loads {seed!r}, "
                            "which does not exist in the tree"
                        ),
                    )
                    continue
                if not (context.reachable([seed]) & registered):
                    yield Finding(
                        path=decl_path,
                        line=decl.lineno,
                        rule_id=self.rule_id,
                        message=(
                            f"registry {decl.var} lazy-loads {seed!r}, "
                            f"but no module reachable from it registers "
                            f"a {decl.kind or 'component'}"
                        ),
                    )


class OrphanRegistrationRule(LintRule):
    """REG-002: registrations are reachable from their registry."""

    rule_id = "REG-002"
    family = "registry"
    description = (
        "every @register_* call must be reachable from its registry's "
        "lazy-load module list"
    )
    granularity = "tree"

    def check(self, context: LintContext) -> Iterator[Finding]:
        reachable_by_var = {
            var: context.reachable(decl.seed_modules)
            for var, decl in context.registries.items()
            if decl.seeds_literal
        }
        for site in context.register_sites:
            decl = context.registries.get(site.registry_var)
            if decl is None or not decl.seeds_literal:
                continue
            if site.module == decl.module:
                continue  # registered next to the registry itself
            if site.module not in reachable_by_var[site.registry_var]:
                yield Finding(
                    path=context.modules[site.module].rel_path,
                    line=site.lineno,
                    rule_id=self.rule_id,
                    message=(
                        f"module {site.module} registers into "
                        f"{site.registry_var} but is not reachable from "
                        f"its lazy-load modules "
                        f"{list(decl.seed_modules)!r}; the entry is "
                        "invisible until something else imports this "
                        "module"
                    ),
                )


register_lint_rule(RegistrySeedRule())
register_lint_rule(OrphanRegistrationRule())

__all__ = ["OrphanRegistrationRule", "RegistrySeedRule"]
