"""The lint-rule registry: one :class:`LintRule` per invariant.

Rules self-register in the module that defines them, exactly like the
engine's pluggable stages — :data:`LINT_RULES` is a
:class:`repro.registry.Registry` keyed by rule id, loaded lazily from
the rule modules, so ``repro lint`` and ``repro list`` discover rules
the same way ``Engine`` discovers forecasters.

Rule families:

* ``state-contract`` — ``get_state``/``set_state`` symmetry (the
  bit-identical checkpoint/resume contract of PR 5);
* ``registry`` — lazy-load module lists and ``@register_*`` call sites
  stay in sync (no dead entries, no orphan registrations);
* ``kernel-purity`` — slot/collection/bank kernel modules stay pure,
  deterministic and loop-free over the node/series axis (what keeps
  the columnar paths exchangeable with the reference loops);
* ``dtype`` — explicit dtypes at every fleet-scale allocation site
  (the float32 threading of ROADMAP item 1 touches exactly these);
* ``waivers`` — inline suppressions must carry a written reason;
* ``runtime`` — contract checks that need live components
  (``repro lint --runtime``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.lint.findings import Finding
from repro.registry import Registry


class LintRule:
    """One named invariant check.

    Attributes:
        rule_id: Stable identifier (``FAMILY-NNN``) used in findings,
            waivers and the CLI listing.
        family: Rule family (see the module docstring).
        description: One-line summary shown by ``repro list``.
        scope: ``"static"`` rules run over the AST context;
            ``"runtime"`` rules run under ``repro lint --runtime``;
            ``"sanitize"`` rules run under ``repro lint --sanitize``.
        granularity: ``"file"`` rules derive every finding for a file
            from that file alone (given the shared summary layer) and
            participate in the incremental result cache; ``"tree"``
            rules reason across files and always re-run.
    """

    rule_id: str = ""
    family: str = ""
    description: str = ""
    scope: str = "static"
    granularity: str = "file"

    def check(self, context) -> Iterator[Finding]:
        """Yield findings against the given :class:`LintContext`.

        File-granularity rules implement :meth:`check_module` instead;
        this default fans out over every module.
        """
        for info in context.iter_modules():
            yield from self.check_module(context, info)

    def check_module(self, context, info) -> Iterator[Finding]:
        """Yield this rule's findings for one module."""
        return iter(())


#: Rule id → :class:`LintRule` instance; the defining modules
#: self-register on first lookup.
LINT_RULES = Registry(
    "lint rule",
    modules=(
        "repro.lint.rules.state_contract",
        "repro.lint.rules.checkpoint_coverage",
        "repro.lint.rules.registry_sync",
        "repro.lint.rules.kernel_purity",
        "repro.lint.rules.dtype_discipline",
        "repro.lint.rules.dtype_flow",
        "repro.lint.rules.shm_discipline",
        "repro.lint.waivers",
        "repro.lint.runtime",
        "repro.lint.sanitize",
    ),
)


def register_lint_rule(rule: LintRule, *, override: bool = False) -> LintRule:
    """Register a rule instance under its ``rule_id``."""
    return LINT_RULES.register(rule.rule_id, rule, override=override)


class ParseRule(LintRule):
    """Surfaced by the runner for files that fail to parse."""

    rule_id = "PARSE-001"
    family = "framework"
    description = "every linted file must parse as Python source"


register_lint_rule(ParseRule())


def static_rules() -> List[LintRule]:
    """All registered static-scope rules, by rule id."""
    return [
        LINT_RULES.get(name)
        for name in LINT_RULES.available()
        if LINT_RULES.get(name).scope == "static"
    ]


def runtime_rules() -> List[LintRule]:
    """All registered runtime-scope rules, by rule id."""
    return [
        LINT_RULES.get(name)
        for name in LINT_RULES.available()
        if LINT_RULES.get(name).scope == "runtime"
    ]


def sanitize_rules() -> List[LintRule]:
    """All registered sanitizer-scope rules, by rule id."""
    return [
        LINT_RULES.get(name)
        for name in LINT_RULES.available()
        if LINT_RULES.get(name).scope == "sanitize"
    ]


def rules_by_id(rule_ids: Iterable[str]) -> List[LintRule]:
    """Resolve explicit rule ids (unknown ids raise a friendly error)."""
    return [LINT_RULES.get(rule_id) for rule_id in rule_ids]


__all__ = [
    "LINT_RULES",
    "LintRule",
    "ParseRule",
    "register_lint_rule",
    "rules_by_id",
    "runtime_rules",
    "sanitize_rules",
    "static_rules",
]
