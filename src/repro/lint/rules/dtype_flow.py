"""DT-002: dtype dataflow — no float64 upcasts of state-dtype arrays.

``DT-001`` checks allocation sites; it cannot see what happens to the
array afterwards.  PR 8 threaded a ``dtype`` knob through every
allocator and hand-fixed the slot kernels where bare python floats
would promote float32 intermediates to float64 (making the streaming
slot diverge from the batched recurrence).  ``DT-002`` makes that fix
class a rule: the dataflow layer tags every local whose dtype is
parameterized (*state-dtype* — see :mod:`repro.lint.dataflow`), and
any arithmetic combining such an array with a bare float literal or a
float64-typed value is flagged.  The sanctioned idioms pass clean::

    dtype = queues.dtype
    v_t = v0s * (times + dtype.type(1.0)) ** gammas      # cast scalar
    budgets = np.asarray(budgets, dtype=dtype)           # cast array

while the regression the rule exists for is caught::

    v_t = v0s * (times + 1.0) ** gammas                  # DT-002

The pass is intraprocedural with a call-graph summary layer: a kernel
called with a state-dtype fleet column has its parameters tagged
state-dtype at every depth, without annotations.
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import Iterator

from repro.lint.context import LintContext, ModuleInfo
from repro.lint.dataflow import module_summaries
from repro.lint.findings import Finding
from repro.lint.rules import LintRule, register_lint_rule
from repro.lint.rules.dtype_discipline import DTYPE_MODULE_PATTERNS

#: Modules the dataflow pass covers: the DT-001 allocator modules plus
#: the whole-trace collection recurrences and the scenario link models
#: (both consume fleet columns whose dtype the config controls).
DTYPE_FLOW_MODULE_PATTERNS = DTYPE_MODULE_PATTERNS + (
    "*simulation.collection",
    "*scenarios.links",
    "*forecasting.exponential",
    "*forecasting.sample_hold",
    "*forecasting.yule_walker",
)


class DtypeFlowRule(LintRule):
    """DT-002: state-dtype arrays never meet bare float64 arithmetic."""

    rule_id = "DT-002"
    family = "dtype"
    description = (
        "arithmetic mixing state-dtype arrays with bare float "
        "literals or float64 values upcasts under NEP 50; cast via "
        "dtype.type(...) or np.asarray(..., dtype=...)"
    )

    def check_module(
        self, context: LintContext, info: ModuleInfo
    ) -> Iterator[Finding]:
        if not any(
            fnmatch(info.name, pat) for pat in DTYPE_FLOW_MODULE_PATTERNS
        ):
            return
        summaries = module_summaries(context)
        for facts in summaries.facts_for(info):
            for mixing in facts.mixings:
                yield Finding(
                    path=info.rel_path,
                    line=mixing.lineno,
                    rule_id=self.rule_id,
                    message=(
                        f"{mixing.detail}; the result silently "
                        "promotes to float64 and breaks the "
                        "float32-pipeline bit-identity pin — cast the "
                        "scalar with dtype.type(...) or the array with "
                        "np.asarray(..., dtype=...)"
                    ),
                )


register_lint_rule(DtypeFlowRule())

__all__ = ["DTYPE_FLOW_MODULE_PATTERNS", "DtypeFlowRule"]
