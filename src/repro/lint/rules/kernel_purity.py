"""Kernel-purity rules for slot/collection/bank kernel modules.

The columnar hot paths (PRs 3–5) stay exchangeable with the reference
per-node loops only because the kernels are pure array recurrences:
deterministic, mutation-disciplined and free of Python loops over the
node/series axis.  These rules scope to the kernel-hosting modules
(detected from the ``SLOT_KERNELS``/``COLLECTION_BACKENDS``/
``FORECASTER_BANKS`` registrations plus the shared scalar-kernel
modules — see :meth:`LintContext.kernel_modules`):

* ``KER-001`` — no nondeterminism sources (``np.random.*``,
  ``time.*``, ``datetime.now``, ``random.*``).  Seeded draws that are
  deterministic by construction carry a waiver saying so.
* ``KER-002`` — no in-place mutation of function parameters unless the
  function's docstring documents it ("in place") or the parameter is
  named ``out``.  Undocumented aliasing is how batch and streaming
  paths drift apart.
* ``KER-003`` — no Python ``for`` loops over the node/series axis;
  whole-fleet work is one array operation.  The sanctioned object-path
  fallbacks carry waivers naming themselves as such.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.context import LintContext, ModuleInfo, dotted_name
from repro.lint.findings import Finding
from repro.lint.rules import LintRule, register_lint_rule

#: ``time`` module calls that read wall clocks (nondeterministic).
_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "sleep",
    }
)

#: ``datetime``/``date`` constructors that read wall clocks.
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Identifiers that name the node/series axis when they drive a loop.
AXIS_NAMES = frozenset(
    {
        "num_nodes",
        "n_nodes",
        "nodes",
        "node_ids",
        "num_series",
        "n_series",
        "num_clusters",
        "policies",
        "forecasters",
        "_models",
    }
)


def _is_kernel_module(context: LintContext, info: ModuleInfo) -> bool:
    names = getattr(context, "_kernel_module_names", None)
    if names is None:
        names = {m.name for m in context.kernel_modules()}
        context._kernel_module_names = names
    return info.name in names


def _docstring_documents_mutation(func: ast.FunctionDef) -> bool:
    doc = ast.get_docstring(func) or ""
    # Collapse whitespace so "in\n    place" in a wrapped docstring
    # still counts as documentation.
    lowered = " ".join(doc.lower().split())
    return "in place" in lowered or "in-place" in lowered


def _function_params(func: ast.FunctionDef) -> Set[str]:
    names = {a.arg for a in func.args.args}
    names |= {a.arg for a in func.args.posonlyargs}
    names |= {a.arg for a in func.args.kwonlyargs}
    names.discard("self")
    names.discard("cls")
    return names


def _iter_functions(info: ModuleInfo) -> Iterator[ast.FunctionDef]:
    for node in info.walk():
        if isinstance(node, ast.FunctionDef):
            yield node


def _terminal_identifiers(node: ast.AST) -> Set[str]:
    """Every Name id and Attribute attr appearing in an expression."""
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


class KernelDeterminismRule(LintRule):
    """KER-001: kernel modules must not read clocks or global RNGs."""

    rule_id = "KER-001"
    family = "kernel-purity"
    description = (
        "kernel modules may not call np.random.*, time.*, datetime.now "
        "or random.* (determinism is the equivalence contract)"
    )

    def check_module(
        self, context: LintContext, info: ModuleInfo
    ) -> Iterator[Finding]:
        if not _is_kernel_module(context, info):
            return
        imports = self._imported_modules(info)
        for node in info.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            offense = self._classify(dotted, imports)
            if offense is not None:
                yield Finding(
                    path=info.rel_path,
                    line=node.lineno,
                    rule_id=self.rule_id,
                    message=(
                        f"kernel module calls {dotted}(): {offense}"
                    ),
                )

    @staticmethod
    def _imported_modules(info: ModuleInfo) -> Set[str]:
        names: Set[str] = set()
        for node in info.walk():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    names.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module:
                names.add(node.module.split(".")[0])
        return names

    @staticmethod
    def _classify(dotted: str, imports: Set[str]) -> Optional[str]:
        parts = dotted.split(".")
        if len(parts) >= 2 and parts[0] in ("np", "numpy"):
            if parts[1] == "random":
                return "global/constructed RNG in a kernel module"
        if parts[0] == "time" and "time" in imports:
            if len(parts) == 2 and parts[1] in _TIME_ATTRS:
                return "wall-clock read"
        if parts[0] == "random" and "random" in imports:
            return "stdlib RNG in a kernel module"
        if "datetime" in parts or "date" in parts:
            if parts[-1] in _DATETIME_ATTRS:
                return "wall-clock read"
        return None


class KernelMutationRule(LintRule):
    """KER-002: parameter mutation must be documented."""

    rule_id = "KER-002"
    family = "kernel-purity"
    description = (
        "kernel functions may not mutate parameters in place unless the "
        "docstring documents it or the parameter is named 'out'"
    )

    def check_module(
        self, context: LintContext, info: ModuleInfo
    ) -> Iterator[Finding]:
        if not _is_kernel_module(context, info):
            return
        for func in _iter_functions(info):
            if _docstring_documents_mutation(func):
                continue
            params = _function_params(func) - {"out"}
            if not params:
                continue
            yield from self._check_function(info, func, params)

    def _check_function(
        self, info: ModuleInfo, func: ast.FunctionDef, params: Set[str]
    ) -> Iterator[Finding]:
        for node in func.body:
            for stmt in ast.walk(node):
                target = None
                if isinstance(stmt, ast.AugAssign):
                    target = stmt.target
                elif isinstance(stmt, ast.Assign):
                    for candidate in stmt.targets:
                        if isinstance(candidate, ast.Subscript):
                            target = candidate
                param = self._mutated_param(target, params)
                if param is not None:
                    yield Finding(
                        path=info.rel_path,
                        line=stmt.lineno,
                        rule_id=self.rule_id,
                        message=(
                            f"{func.name} mutates parameter {param!r} in "
                            "place without documenting it (say 'in "
                            "place' in the docstring, or take an out= "
                            "parameter)"
                        ),
                    )

    @staticmethod
    def _mutated_param(
        target: Optional[ast.AST], params: Set[str]
    ) -> Optional[str]:
        if isinstance(target, ast.Name) and target.id in params:
            return target.id
        if isinstance(target, ast.Subscript):
            base = target.value
            while isinstance(base, ast.Subscript):
                base = base.value
            if isinstance(base, ast.Name) and base.id in params:
                return base.id
        return None


class KernelAxisLoopRule(LintRule):
    """KER-003: no Python loops over the node/series axis."""

    rule_id = "KER-003"
    family = "kernel-purity"
    description = (
        "kernel modules may not iterate Python for loops over the "
        "node/series axis (use one array operation)"
    )

    def check_module(
        self, context: LintContext, info: ModuleInfo
    ) -> Iterator[Finding]:
        if not _is_kernel_module(context, info):
            return
        for node in info.walk():
            if not isinstance(node, ast.For):
                continue
            axis = _terminal_identifiers(node.iter) & AXIS_NAMES
            if axis:
                name = sorted(axis)[0]
                yield Finding(
                    path=info.rel_path,
                    line=node.lineno,
                    rule_id=self.rule_id,
                    message=(
                        f"for loop iterates the node/series axis "
                        f"({name}); kernels advance the whole fleet "
                        "in one array operation"
                    ),
                )


register_lint_rule(KernelDeterminismRule())
register_lint_rule(KernelMutationRule())
register_lint_rule(KernelAxisLoopRule())

__all__ = [
    "AXIS_NAMES",
    "KernelAxisLoopRule",
    "KernelDeterminismRule",
    "KernelMutationRule",
]
