"""State-contract rules: ``get_state``/``set_state`` symmetry.

Bit-identical checkpoint/resume (PR 5) rests on every stateful
component writing and reading the *same* state keys.  These rules
enforce the two statically checkable halves of that contract:

* ``STATE-001`` — the methods come in pairs.  A class defining
  ``get_state`` without ``set_state`` (or ``_state`` without
  ``_load_state``) can be snapshotted but never restored, which only
  surfaces at resume time.
* ``STATE-002`` — the literal keys written by the getter match the
  literal keys read by the setter.  A key written but never read is
  dead state; a key read but never written is a guaranteed ``KeyError``
  on the first resume.

The analysis is conservative: a getter whose returned dict is not a
literal (or spreads ``**hooks``) marks the written set *open*, and a
setter that forwards the state dict to another callable marks the read
set open — only closed sets are compared, so dynamic composition never
false-positives.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.lint.context import LintContext, ModuleInfo
from repro.lint.findings import Finding
from repro.lint.rules import LintRule, register_lint_rule

#: Method pairs forming the checkpoint protocol (the public pair, and
#: the subclass hook pair composed by the ``Forecaster``/
#: ``ForecasterBank`` base classes).
STATE_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("get_state", "set_state"),
    ("_state", "_load_state"),
)

#: Keys the base-class ``get_state`` contributes to the full state dict
#: — hook-pair setters may legitimately read them even though the
#: matching hook getter never writes them.
BASE_STATE_KEYS = frozenset({"history", "fitted"})


def _own_nodes(func: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    stack = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _dict_keys(node: ast.expr) -> Tuple[Set[str], bool]:
    """Literal string keys of a dict expression; ``open`` on spreads."""
    keys: Set[str] = set()
    is_open = False
    if isinstance(node, ast.Dict):
        for key in node.keys:
            if key is None:  # ``**spread``
                is_open = True
            elif isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.add(key.value)
            else:
                is_open = True
    elif (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "dict"
    ):
        for keyword in node.keywords:
            if keyword.arg is None:
                is_open = True
            else:
                keys.add(keyword.arg)
        if node.args:
            is_open = True
    else:
        is_open = True
    return keys, is_open


def written_keys(func: ast.FunctionDef) -> Tuple[Set[str], bool]:
    """State keys a getter writes, and whether the set is open.

    Handles both the ``return {...}`` idiom and the build-then-return
    idiom (``state = {...}; state["k"] = v; return state``) including
    conditional key writes.
    """
    keys: Set[str] = set()
    is_open = False
    returned_names: Set[str] = set()
    for node in _own_nodes(func):
        if isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Name):
                returned_names.add(node.value.id)
            else:
                found, open_here = _dict_keys(node.value)
                keys |= found
                is_open |= open_here
    for node in _own_nodes(func):
        if not isinstance(node, (ast.Assign, ast.AugAssign)):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id in returned_names
                and isinstance(node, ast.Assign)
            ):
                found, open_here = _dict_keys(node.value)
                keys |= found
                is_open |= open_here
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in returned_names
            ):
                index = target.slice
                if isinstance(index, ast.Constant) and isinstance(
                    index.value, str
                ):
                    keys.add(index.value)
                else:
                    is_open = True
    return keys, is_open


def _state_param(func: ast.FunctionDef) -> Optional[str]:
    args = [a.arg for a in func.args.args]
    if args and args[0] in ("self", "cls"):
        args = args[1:]
    return args[0] if args else None


def read_keys(func: ast.FunctionDef) -> Tuple[Set[str], bool]:
    """State keys a setter reads, and whether the set is open.

    Reads are literal subscripts, ``.get(...)`` calls and ``"k" in
    state`` membership tests on the state parameter; passing the
    parameter to any callable (``self._load_state(state)``) opens the
    set.
    """
    keys: Set[str] = set()
    is_open = False
    param = _state_param(func)
    if param is None:
        return keys, True
    for node in _own_nodes(func):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == param
        ):
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(
                index.value, str
            ):
                keys.add(index.value)
            else:
                is_open = True
        elif isinstance(node, ast.Call):
            func_node = node.func
            if (
                isinstance(func_node, ast.Attribute)
                and func_node.attr == "get"
                and isinstance(func_node.value, ast.Name)
                and func_node.value.id == param
            ):
                if node.args and isinstance(node.args[0], ast.Constant):
                    keys.add(str(node.args[0].value))
                else:
                    is_open = True
            else:
                # The state dict forwarded to another callable: keys
                # may be consumed elsewhere.
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    if isinstance(arg, ast.Name) and arg.id == param:
                        is_open = True
        elif isinstance(node, ast.Compare):
            if any(
                isinstance(op, (ast.In, ast.NotIn))
                for op in node.ops
            ) and any(
                isinstance(c, ast.Name) and c.id == param
                for c in node.comparators
            ):
                if isinstance(node.left, ast.Constant) and isinstance(
                    node.left.value, str
                ):
                    keys.add(node.left.value)
    return keys, is_open


def _class_methods(node: ast.ClassDef):
    return {
        item.name: item
        for item in node.body
        if isinstance(item, ast.FunctionDef)
    }


class StatePairRule(LintRule):
    """STATE-001: checkpoint methods must be defined in pairs."""

    rule_id = "STATE-001"
    family = "state-contract"
    description = (
        "a class defining get_state/_state must define the matching "
        "set_state/_load_state (and vice versa)"
    )

    def check_module(
        self, context: LintContext, info: ModuleInfo
    ) -> Iterator[Finding]:
        for node in info.walk():
            if not isinstance(node, ast.ClassDef):
                continue
            methods = _class_methods(node)
            for getter, setter in STATE_PAIRS:
                has_get, has_set = getter in methods, setter in methods
                if has_get == has_set:
                    continue
                present = getter if has_get else setter
                missing = setter if has_get else getter
                yield Finding(
                    path=info.rel_path,
                    line=methods[present].lineno,
                    rule_id=self.rule_id,
                    message=(
                        f"class {node.name} defines {present} without "
                        f"{missing}; checkpoint state must round-trip"
                    ),
                )


class StateKeysRule(LintRule):
    """STATE-002: getter/setter literal state keys must match."""

    rule_id = "STATE-002"
    family = "state-contract"
    description = (
        "literal state keys written by get_state/_state must match the "
        "keys read by set_state/_load_state"
    )

    def check_module(
        self, context: LintContext, info: ModuleInfo
    ) -> Iterator[Finding]:
        for node in info.walk():
            if not isinstance(node, ast.ClassDef):
                continue
            methods = _class_methods(node)
            for getter, setter in STATE_PAIRS:
                if getter not in methods or setter not in methods:
                    continue
                yield from self._check_pair(
                    info, node, methods[getter], methods[setter],
                    hooks=getter == "_state",
                )

    def _check_pair(
        self,
        info: ModuleInfo,
        cls: ast.ClassDef,
        getter: ast.FunctionDef,
        setter: ast.FunctionDef,
        *,
        hooks: bool,
    ) -> Iterator[Finding]:
        writes, writes_open = written_keys(getter)
        reads, reads_open = read_keys(setter)
        allowed_reads = writes | (BASE_STATE_KEYS if hooks else set())
        if not writes_open:
            for key in sorted(reads - allowed_reads):
                yield Finding(
                    path=info.rel_path,
                    line=setter.lineno,
                    rule_id=self.rule_id,
                    message=(
                        f"{cls.name}.{setter.name} reads state key "
                        f"{key!r} that {getter.name} never writes "
                        "(KeyError on the first resume)"
                    ),
                )
        if not reads_open:
            for key in sorted(writes - reads):
                yield Finding(
                    path=info.rel_path,
                    line=getter.lineno,
                    rule_id=self.rule_id,
                    message=(
                        f"{cls.name}.{getter.name} writes state key "
                        f"{key!r} that {setter.name} never reads "
                        "(dead state, silently dropped on restore)"
                    ),
                )


register_lint_rule(StatePairRule())
register_lint_rule(StateKeysRule())

__all__ = [
    "BASE_STATE_KEYS",
    "STATE_PAIRS",
    "StateKeysRule",
    "StatePairRule",
    "read_keys",
    "written_keys",
]
