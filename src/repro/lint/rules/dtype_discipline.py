"""Dtype-discipline rule for fleet-scale allocation sites.

ROADMAP item 1 threads a ``dtype`` parameter through
:class:`FleetState` so million-node fleets can run in float32.  That
change touches exactly the allocation sites where dtype is currently
implicit — every ``np.zeros(...)`` without a ``dtype=`` silently pins
float64 and will either be missed by the refactor or flip behaviour
under it.  ``DT-001`` makes the dtype explicit *now* in the modules the
refactor will touch: the fleet columns, the slot ring, the transmission
kernels and the forecaster banks.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterator

from repro.lint.context import LintContext, ModuleInfo, dotted_name
from repro.lint.findings import Finding
from repro.lint.rules import LintRule, register_lint_rule

#: Modules where fleet-scale arrays are allocated (fnmatch on the
#: dotted module name; ``*`` also matches the empty prefix so bare
#: fixture packages match too).
DTYPE_MODULE_PATTERNS = (
    "*simulation.fleet",
    "*simulation.shard_pool",
    "*core.ring",
    "*transmission.*",
    "*forecasting.bank",
)

#: Allocator → index of its positional ``dtype`` parameter.
_ALLOCATORS = {
    "zeros": 1,
    "empty": 1,
    "full": 2,
    "asarray": 1,
}


class DtypeDisciplineRule(LintRule):
    """DT-001: allocations in fleet-scale modules state their dtype."""

    rule_id = "DT-001"
    family = "dtype"
    description = (
        "np.zeros/np.empty/np.full/np.asarray in fleet-scale modules "
        "must pass an explicit dtype"
    )

    def check_module(
        self, context: LintContext, info: ModuleInfo
    ) -> Iterator[Finding]:
        if not any(
            fnmatch(info.name, pat) for pat in DTYPE_MODULE_PATTERNS
        ):
            return
        for node in info.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) != 2 or parts[0] not in ("np", "numpy"):
                continue
            allocator = parts[1]
            dtype_pos = _ALLOCATORS.get(allocator)
            if dtype_pos is None:
                continue
            has_dtype = any(
                keyword.arg == "dtype" for keyword in node.keywords
            ) or len(node.args) > dtype_pos
            if not has_dtype:
                yield Finding(
                    path=info.rel_path,
                    line=node.lineno,
                    rule_id=self.rule_id,
                    message=(
                        f"np.{allocator}() without an explicit dtype "
                        "in a fleet-scale module; implicit float64 "
                        "pins precision the float32 fleet refactor "
                        "must control"
                    ),
                )


register_lint_rule(DtypeDisciplineRule())

__all__ = ["DTYPE_MODULE_PATTERNS", "DtypeDisciplineRule"]
