"""Shared-memory discipline rules: SHM-001/002/003.

PR 8's :class:`~repro.simulation.shard_pool.ShardPool` made
``multiprocessing.shared_memory`` the riskiest surface in the repo:
a leaked segment survives the process (``/dev/shm`` residue), a write
from the wrong process races the range owner, and an ndarray that
slips into a command pipe silently re-pickles the very bytes the pool
exists to not copy.  These rules scope to every module importing
``multiprocessing.shared_memory`` and encode the ownership discipline
the sysml_fair_verif exemplar models formally — who may create, write
and destroy which memory, when:

* ``SHM-001`` (leak) — every ``SharedMemory(create=True)`` segment
  must reach ``close()`` **and** ``unlink()`` on all exit paths of the
  creating function, including exception edges: cleanup must sit in a
  ``finally`` block (or in both the normal path and an ``except``
  handler), either directly on the segment variable or via a loop over
  a collection the segment was appended to.  A segment that escapes
  the creating function (returned / stored on ``self``) moves its
  lifecycle out of static reach and must carry a declared-ownership
  annotation.
* ``SHM-002`` (cross-shard race) — subscript stores into
  shared-memory-backed views (``np.ndarray(..., buffer=...)`` or a
  helper returning one, tracked by the dataflow layer) are only legal
  in functions declared *range owners* via the
  ``@shm_range_owner("...")`` decorator or a
  ``# repro: shm-owner(reason)`` comment on the def or the write line.
* ``SHM-003`` (re-pickle) — pipe/queue ``.send(...)`` payloads must
  not reference ndarray-typed locals: requests name node ranges,
  never array data.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.context import LintContext, ModuleInfo, dotted_name
from repro.lint.dataflow import function_node_for, module_summaries
from repro.lint.findings import Finding
from repro.lint.rules import LintRule, register_lint_rule

#: Decorator names that declare a function the owner of the shard
#: ranges it writes (SHM-002).
OWNER_DECORATORS = frozenset({"shm_range_owner", "owns_range"})

#: Comment form of the same declaration, reason mandatory.
_OWNER_COMMENT = re.compile(
    r"#\s*repro:\s*shm-owner\s*\(([^()]+)\)", re.IGNORECASE
)


def is_shm_module(info: ModuleInfo) -> bool:
    """True when the module imports ``multiprocessing.shared_memory``."""
    for node in info.walk():
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("multiprocessing.shared_memory"):
                    return True
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "multiprocessing.shared_memory":
                return True
            if module == "multiprocessing" and any(
                alias.name == "shared_memory" for alias in node.names
            ):
                return True
    return False


def owner_comment_lines(info: ModuleInfo) -> Dict[int, str]:
    """Lines covered by a ``# repro: shm-owner(reason)`` declaration.

    Like waivers, a trailing comment covers its own line and a comment
    on a line of its own covers the *next* line.
    """
    lines: Dict[int, str] = {}
    source_lines = info.source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(info.source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _OWNER_COMMENT.search(token.string)
            if not (match and match.group(1).strip()):
                continue
            line, column = token.start
            prefix = (
                source_lines[line - 1][:column]
                if line <= len(source_lines)
                else ""
            )
            target = line + 1 if not prefix.strip() else line
            lines[target] = match.group(1).strip()
    except tokenize.TokenizeError:  # pragma: no cover - PARSE-001 fires
        pass
    return lines


def _decorator_names(func: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    for decorator in func.decorator_list:
        node = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_name(node)
        if dotted is not None:
            names.add(dotted.split(".")[-1])
    return names


def _def_line_span(func: ast.FunctionDef) -> Tuple[int, int]:
    """Lines a def-level ownership comment may sit on."""
    first = func.lineno
    if func.decorator_list:
        first = min(d.lineno for d in func.decorator_list)
    return first, func.lineno


class _CreateSite:
    """One ``SharedMemory(create=True)`` call bound in a function."""

    def __init__(self, node: ast.Call, var: Optional[str],
                 collection: Optional[str]) -> None:
        self.node = node
        self.var = var  #: Local the segment is bound to (or None).
        self.collection = collection  #: Collection it is appended to.


def _is_create_call(node: ast.Call) -> bool:
    dotted = dotted_name(node.func)
    if dotted is None:
        return False
    leaf = dotted.split(".")[-1]
    if leaf != "SharedMemory":
        return False
    for keyword in node.keywords:
        if keyword.arg == "create":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def _walk_statements(body: List[ast.stmt]) -> Iterator[ast.stmt]:
    for stmt in body:
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                yield from _walk_statements([child])
            elif isinstance(
                child, (ast.ExceptHandler,)
            ):
                yield from _walk_statements(child.body)


def _collect_create_sites(func: ast.FunctionDef) -> List[_CreateSite]:
    sites: List[_CreateSite] = []
    for stmt in _walk_statements(func.body):
        if isinstance(stmt, ast.Assign):
            if isinstance(stmt.value, ast.Call) and _is_create_call(
                stmt.value
            ):
                var = None
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        var = target.id
                sites.append(_CreateSite(stmt.value, var, None))
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            # collection.append(SharedMemory(create=True, ...))
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "append"
                and isinstance(call.func.value, ast.Name)
                and call.args
                and isinstance(call.args[0], ast.Call)
                and _is_create_call(call.args[0])
            ):
                sites.append(
                    _CreateSite(call.args[0], None, call.func.value.id)
                )
            elif _is_create_call(call):
                sites.append(_CreateSite(call, None, None))
    return sites


def _cleanup_calls(
    body: List[ast.stmt], var: Optional[str], collection: Optional[str]
) -> Set[str]:
    """Which of close/unlink the statements apply to the segment.

    Counts direct ``var.close()``/``var.unlink()`` calls and loops over
    ``collection`` whose body calls them on the loop variable.
    """
    found: Set[str] = set()
    for stmt in _walk_statements(body):
        for node in ast.walk(stmt):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("close", "unlink")
            ):
                continue
            receiver = node.func.value
            if (
                var is not None
                and isinstance(receiver, ast.Name)
                and receiver.id == var
            ):
                found.add(node.func.attr)
        if (
            collection is not None
            and isinstance(stmt, ast.For)
            and isinstance(stmt.iter, ast.Name)
            and stmt.iter.id == collection
            and isinstance(stmt.target, ast.Name)
        ):
            loop_var = stmt.target.id
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("close", "unlink")
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == loop_var
                ):
                    found.add(node.func.attr)
    return found


def _escapes(func: ast.FunctionDef, names: Set[str]) -> bool:
    """True when a tracked name is returned or stored on an attribute."""
    for stmt in _walk_statements(func.body):
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            for node in ast.walk(stmt.value):
                if isinstance(node, ast.Name) and node.id in names:
                    return True
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Attribute):
                    for node in ast.walk(stmt.value):
                        if isinstance(node, ast.Name) and node.id in names:
                            return True
    return False


class ShmLeakRule(LintRule):
    """SHM-001: created segments reach close()+unlink() on all paths."""

    rule_id = "SHM-001"
    family = "shared-memory"
    description = (
        "SharedMemory(create=True) segments must reach close() and "
        "unlink() on every exit path (finally-protected), or carry a "
        "declared-ownership annotation when their lifecycle escapes"
    )

    def check_module(
        self, context: LintContext, info: ModuleInfo
    ) -> Iterator[Finding]:
        if not is_shm_module(info):
            return
        owner_lines = owner_comment_lines(info)
        for node in info.walk():
            if not isinstance(node, ast.FunctionDef):
                continue
            yield from self._check_function(info, node, owner_lines)

    def _check_function(
        self,
        info: ModuleInfo,
        func: ast.FunctionDef,
        owner_lines: Dict[int, str],
    ) -> Iterator[Finding]:
        sites = _collect_create_sites(func)
        if not sites:
            return
        finally_bodies: List[List[ast.stmt]] = []
        handler_bodies: List[List[ast.stmt]] = []
        for stmt in _walk_statements(func.body):
            if isinstance(stmt, ast.Try):
                if stmt.finalbody:
                    finally_bodies.append(stmt.finalbody)
                for handler in stmt.handlers:
                    handler_bodies.append(handler.body)
        for site in sites:
            line = site.node.lineno
            if site.var is None and site.collection is None:
                yield Finding(
                    path=info.rel_path,
                    line=line,
                    rule_id=self.rule_id,
                    message=(
                        "SharedMemory(create=True) handle is discarded; "
                        "bind it so close()/unlink() can run on every "
                        "exit path"
                    ),
                )
                continue
            tracked = {n for n in (site.var, site.collection) if n}
            first, last = _def_line_span(func)
            declared = any(
                ln in owner_lines for ln in range(first, last + 1)
            ) or line in owner_lines
            if _escapes(func, tracked) and not declared:
                yield Finding(
                    path=info.rel_path,
                    line=line,
                    rule_id=self.rule_id,
                    message=(
                        "created segment escapes the creating function; "
                        "its lifecycle is not statically verifiable — "
                        "declare ownership with "
                        "# repro: shm-owner(reason) and manage close()/"
                        "unlink() at the owner"
                    ),
                )
                continue
            if declared:
                continue
            in_finally: Set[str] = set()
            for body in finally_bodies:
                in_finally |= _cleanup_calls(
                    body, site.var, site.collection
                )
            if {"close", "unlink"} <= in_finally:
                continue
            everywhere = _cleanup_calls(
                func.body, site.var, site.collection
            )
            in_handlers: Set[str] = set()
            for body in handler_bodies:
                in_handlers |= _cleanup_calls(
                    body, site.var, site.collection
                )
            if {"close", "unlink"} <= in_handlers and {
                "close",
                "unlink",
            } <= everywhere:
                continue
            missing = sorted({"close", "unlink"} - everywhere)
            if missing:
                what = " and ".join(f"{m}()" for m in missing)
                detail = f"never reaches {what}"
            else:
                detail = (
                    "cleanup only covers the happy path; an exception "
                    "between create and cleanup leaks the segment "
                    "(move close()/unlink() into a finally block)"
                )
            yield Finding(
                path=info.rel_path,
                line=line,
                rule_id=self.rule_id,
                message=f"created shared-memory segment {detail}",
            )


class ShmRangeOwnershipRule(LintRule):
    """SHM-002: only declared range owners write through shm views."""

    rule_id = "SHM-002"
    family = "shared-memory"
    description = (
        "writes into shared-memory-backed array views require a "
        "declared range owner (@shm_range_owner or "
        "# repro: shm-owner(reason))"
    )

    def check_module(
        self, context: LintContext, info: ModuleInfo
    ) -> Iterator[Finding]:
        if not is_shm_module(info):
            return
        owner_lines = owner_comment_lines(info)
        summaries = module_summaries(context)
        for facts in summaries.facts_for(info):
            if not facts.view_writes:
                continue
            func = function_node_for(info, facts.qualname)
            if func is not None:
                if _decorator_names(func) & OWNER_DECORATORS:
                    continue
                first, last = _def_line_span(func)
                if any(ln in owner_lines for ln in range(first, last + 1)):
                    continue
            for write in facts.view_writes:
                if write.lineno in owner_lines:
                    continue
                yield Finding(
                    path=info.rel_path,
                    line=write.lineno,
                    rule_id=self.rule_id,
                    message=(
                        f"write into shared-memory view "
                        f"{write.target!r} outside a declared range "
                        "owner; annotate the function with "
                        "@shm_range_owner(...) or the line with "
                        "# repro: shm-owner(reason) (cross-shard race "
                        "otherwise)"
                    ),
                )


class ShmPipePickleRule(LintRule):
    """SHM-003: pipe messages must not carry ndarray-typed locals."""

    rule_id = "SHM-003"
    family = "shared-memory"
    description = (
        "pipe .send(...) payloads must not reference ndarray locals — "
        "silent re-pickling defeats the zero-copy design"
    )

    def check_module(
        self, context: LintContext, info: ModuleInfo
    ) -> Iterator[Finding]:
        if not is_shm_module(info):
            return
        summaries = module_summaries(context)
        for facts in summaries.facts_for(info):
            for send in facts.pipe_sends:
                names = ", ".join(send.names)
                yield Finding(
                    path=info.rel_path,
                    line=send.lineno,
                    rule_id=self.rule_id,
                    message=(
                        f".send(...) payload references ndarray "
                        f"local(s) {names}; pipe messages name node "
                        "ranges — arrays travel through shared memory, "
                        "never the pipe (re-pickling defeats zero-copy)"
                    ),
                )


register_lint_rule(ShmLeakRule())
register_lint_rule(ShmRangeOwnershipRule())
register_lint_rule(ShmPipePickleRule())

__all__ = [
    "OWNER_DECORATORS",
    "ShmLeakRule",
    "ShmPipePickleRule",
    "ShmRangeOwnershipRule",
    "is_shm_module",
    "owner_comment_lines",
]
