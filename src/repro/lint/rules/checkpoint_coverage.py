"""STATE-003: checkpoint coverage — mutable fields must be in state.

``STATE-002`` proves the getter and setter agree on keys; neither rule
notices a *new mutable field* that never enters the state dict at all —
today that is a bit-identity failure discovered three PRs later, when a
resumed session diverges because some counter silently restarted at
its constructor value.  ``STATE-003`` closes the gap statically: for
every class providing ``get_state``/``_state``, the set of attributes
assigned on ``self`` in *runtime* methods is diffed against the
returned state keys.

What counts as runtime mutation: any ``self.X = …`` / ``self.X += …``
outside the constructor (``__init__``/``__post_init__``), the
checkpoint methods themselves (``get_state``/``set_state``/``_state``/
``_load_state``) and ``reset`` (re-initialization, not evolution).
Attributes assigned *only* in the constructor are reconstructible from
config and need no checkpointing.

Coverage is name-based modulo leading underscores: state key
``"queue"`` covers ``self._queue``.  An attribute restored by the
setter (assigned inside ``set_state``/``_load_state``) is covered even
when its key spelling differs.  Getters whose key set is open (spreads,
dynamic composition) are skipped — only closed sets are diffed, so
dynamic state never false-positives.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.lint.context import LintContext, ModuleInfo
from repro.lint.findings import Finding
from repro.lint.rules import LintRule, register_lint_rule
from repro.lint.rules.state_contract import (
    BASE_STATE_KEYS,
    STATE_PAIRS,
    written_keys,
)

#: Methods whose ``self.X = …`` assignments are not runtime mutation.
EXEMPT_METHODS = frozenset(
    {
        "__init__",
        "__post_init__",
        "__new__",
        "get_state",
        "set_state",
        "_state",
        "_load_state",
        "reset",
    }
)


def _normalize(name: str) -> str:
    return name.lstrip("_")


def _self_name(func: ast.FunctionDef) -> str:
    args = func.args.posonlyargs + func.args.args
    return args[0].arg if args else "self"


def _assigned_attrs(func: ast.FunctionDef) -> Dict[str, int]:
    """``self.X`` assignment targets in a method → first line."""
    owner = _self_name(func)
    attrs: Dict[str, int] = {}
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == owner
            ):
                attrs.setdefault(target.attr, node.lineno)
    return attrs


class CheckpointCoverageRule(LintRule):
    """STATE-003: runtime-mutated attributes must reach the state dict."""

    rule_id = "STATE-003"
    family = "state-contract"
    description = (
        "every attribute mutated outside __init__/reset in a class "
        "with get_state/_state must appear in the returned state keys "
        "(or be restored by the setter)"
    )

    def check_module(
        self, context: LintContext, info: ModuleInfo
    ) -> Iterator[Finding]:
        for node in info.walk():
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(info, node)

    def _check_class(
        self, info: ModuleInfo, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = {
            item.name: item
            for item in cls.body
            if isinstance(item, ast.FunctionDef)
        }
        covered: Set[str] = set()
        getters: List[ast.FunctionDef] = []
        is_hooks = False
        for getter_name, setter_name in STATE_PAIRS:
            if getter_name not in methods:
                continue
            getters.append(methods[getter_name])
            is_hooks |= getter_name == "_state"
            writes, writes_open = written_keys(methods[getter_name])
            if writes_open:
                return  # dynamic state: nothing to diff against
            covered |= {_normalize(key) for key in writes}
            setter = methods.get(setter_name)
            if setter is not None:
                covered |= {
                    _normalize(attr)
                    for attr in _assigned_attrs(setter)
                }
        if not getters:
            return
        if is_hooks:
            covered |= {_normalize(key) for key in BASE_STATE_KEYS}
        mutated: Dict[str, int] = {}
        for name, func in methods.items():
            if name in EXEMPT_METHODS:
                continue
            for attr, lineno in _assigned_attrs(func).items():
                current = mutated.get(attr)
                if current is None or lineno < current:
                    mutated[attr] = lineno
        for attr in sorted(mutated):
            if _normalize(attr) in covered:
                continue
            yield Finding(
                path=info.rel_path,
                line=mutated[attr],
                rule_id=self.rule_id,
                message=(
                    f"{cls.name}.{attr} is mutated at runtime but never "
                    "appears in the checkpoint state keys; a resumed "
                    "instance silently restarts it at the constructor "
                    "value (add it to get_state/set_state or waive with "
                    "the reason it is derived/ephemeral)"
                ),
            )


register_lint_rule(CheckpointCoverageRule())

__all__ = ["CheckpointCoverageRule", "EXEMPT_METHODS"]
