"""Reporters: render a :class:`LintResult` as text or JSON.

The text form is one ``path:line: RULE-ID message`` per finding (the
shape every editor and CI annotator already parses).  The JSON form is
a stable schema for tooling::

    {
      "version": 1,
      "ok": false,
      "files": 42,
      "rules": ["DT-001", "KER-001", ...],
      "findings": [
        {"rule": "DT-001", "path": "core/ring.py", "line": 45,
         "message": "..."},
        ...
      ],
      "waived": [
        {"rule": "KER-003", "path": "...", "line": 155,
         "message": "...", "reason": "object-path fallback"}
      ]
    }
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.lint.runner import LintResult

#: Bumped on any change to the JSON reporter's field layout.
REPORT_SCHEMA_VERSION = 1


def render_text(result: "LintResult", *, show_waived: bool = False) -> str:
    """One diagnostic per line, plus a one-line summary."""
    lines: List[str] = [str(finding) for finding in result.findings]
    if show_waived:
        lines.extend(
            f"{finding} [waived: {finding.waive_reason}]"
            for finding in result.waived
        )
    count = len(result.findings)
    noun = "finding" if count == 1 else "findings"
    summary = (
        f"{count} {noun} in {result.files} files "
        f"({len(result.waived)} waived, {len(result.rules_run)} rules)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: "LintResult") -> str:
    """The stable machine-readable report (see module docstring)."""
    payload: Dict[str, object] = {
        "version": REPORT_SCHEMA_VERSION,
        "ok": result.ok,
        "files": result.files,
        "rules": sorted(result.rules_run),
        "findings": [f.to_dict() for f in result.findings],
        "waived": [f.to_dict() for f in result.waived],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _github_escape(text: str) -> str:
    """Escape the workflow-command property/message metacharacters."""
    return (
        text.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )


def render_github(result: "LintResult") -> str:
    """GitHub workflow commands: one ``::error`` per active finding.

    Emitted to stdout inside an Actions job, each line becomes an
    inline annotation on the PR diff at ``path:line``.  Runtime and
    sanitizer findings carry a component coordinate instead of a file
    path; they are emitted without ``file=`` so they still surface in
    the job summary.
    """
    lines: List[str] = []
    for finding in result.findings:
        message = _github_escape(finding.message)
        if finding.line > 0:
            lines.append(
                f"::error file={finding.path},line={finding.line},"
                f"title={finding.rule_id}::{message}"
            )
        else:
            coordinate = _github_escape(finding.path)
            lines.append(
                f"::error title={finding.rule_id}::"
                f"{coordinate}: {message}"
            )
    return "\n".join(lines)


__all__ = [
    "REPORT_SCHEMA_VERSION",
    "render_github",
    "render_json",
    "render_text",
]
