"""Unified public API: one engine, pluggable stages.

:class:`Engine` is the single entry point to the paper's system.  It
composes the registry-backed stages (collection backend, transmission
policy, dynamic clustering, and the per-group forecaster banks that
batch every cluster's model — see :mod:`repro.forecasting.bank`) and
subsumes the two historical entry points:

* **batch** — :meth:`Engine.run` drives a recorded trace through
  collection, clustering and forecasting and returns a
  :class:`RunResult` with the paper's RMSE metrics, transport stats and
  per-stage wall-clock timings (what :func:`repro.core.pipeline.
  run_pipeline` did).  ``run(trace, shards=K, workers=W)`` additionally
  partitions the fleet into contiguous node shards for the collection
  stage (optionally across a process pool) and merges them into one
  columnar :class:`~repro.simulation.fleet.FleetState` — bit-identical
  to the single-shard run;
* **streaming** — :meth:`Engine.step` advances a live deployment by one
  slot: per-node transmission policies, the transport channel, the
  central store's staleness rule, then clustering + forecasting (what
  ``MonitoringSystem.tick`` did).

Engines are constructible from plain data — a :class:`~repro.core.
config.PipelineConfig`, its :meth:`~repro.core.config.PipelineConfig.
to_dict` mapping, or a path to a JSON file of that mapping — via
:meth:`Engine.from_config`, so experiment drivers, the CLI and config
files all share one wiring path::

    from repro.api import Engine

    engine = Engine.from_config("config.json")
    result = engine.run(trace)                  # batch
    print(result.rmse_by_horizon, result.timings)

    engine = Engine.from_config(config, num_nodes=50, num_resources=1)
    output = engine.step(x_t)                   # streaming, one slot
"""

from __future__ import annotations

import inspect
import json
import operator
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import PipelineConfig, TransmissionConfig
from repro.core.metrics import instantaneous_rmse_batch
from repro.core.pipeline import (
    ForecasterFactory,
    OnlinePipeline,
    PipelineResult,
    StepOutput,
)
from repro.forecasting.bank import resolved_bank_name
from repro.core.types import validate_trace
from repro.exceptions import ConfigurationError, DataError
from repro.registry import COLLECTION_BACKENDS, TRANSMISSION_POLICIES
from repro.simulation.collection import CollectionResult
from repro.simulation.controller import CentralStore
from repro.simulation.fleet import (
    FleetState,
    merge_collection_shards,
    shard_slices,
)
from repro.simulation.node import LocalNode
from repro.simulation.transport import Channel, TransportStats
from repro.transmission.base import TransmissionPolicy

#: A per-node policy factory receives the node id.
PolicyFactory = Callable[[int], TransmissionPolicy]


def _shard_aware_kwargs(backend, node_offset: int, total_nodes: int) -> dict:
    """Offset/fleet-size kwargs for backends that opt into them.

    Backends whose decisions depend on fleet-global state (the uniform
    backend draws stagger phases for the whole fleet) declare
    ``node_offset``/``total_nodes`` keyword parameters; purely per-node
    backends need nothing and get nothing.
    """
    try:
        params = inspect.signature(backend).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        return {}
    if "node_offset" in params and "total_nodes" in params:
        return {"node_offset": node_offset, "total_nodes": total_nodes}
    return {}


def _run_collection_shard(
    backend_name: str,
    trace: np.ndarray,
    transmission: TransmissionConfig,
    node_offset: int,
    total_nodes: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run one collection shard — a contiguous node slice of the trace.

    Module-level (hence picklable) so it can run in a worker process;
    returns plain arrays to keep the inter-process payload minimal.
    """
    backend = COLLECTION_BACKENDS.get(backend_name)
    result = backend(
        trace,
        transmission,
        **_shard_aware_kwargs(backend, node_offset, total_nodes),
    )
    return result.stored, result.decisions


@dataclass
class RunResult(PipelineResult):
    """A :class:`~repro.core.pipeline.PipelineResult` plus provenance.

    Attributes (beyond the inherited metrics):
        transport: Message/byte counters — the backend's own accounting
            when it produces one, otherwise derived from the decision
            matrix over the fleet's counter column (so batch runs always
            carry transport provenance).
        timings: Wall-clock seconds per stage: ``collection``,
            ``clustering``, ``training``, ``forecasting``, ``metrics``
            and ``total``.
        config: The resolved configuration the run used.
        collection: The collection-backend name the run used.
        bank: How the model layer actually executed: a vectorized bank
            name from :data:`repro.registry.FORECASTER_BANKS`, or
            ``"object"`` for the per-cluster adapter (always the case
            with a custom ``forecaster_factory``).
        fleet: Columnar :class:`~repro.simulation.fleet.FleetState`
            snapshot after the last slot — final stored values, clocks,
            last-transmit slots and per-node message counters.
        shards: How many node shards the collection stage ran as.
    """

    transport: Optional[TransportStats]
    timings: Dict[str, float]
    config: PipelineConfig
    collection: str
    bank: str = "object"
    fleet: Optional[FleetState] = None
    shards: int = 1

    def summary(self) -> str:
        """Human-readable run summary (CLI/report friendly)."""
        lines = [
            f"collection={self.collection} "
            f"model={self.config.forecasting.model} "
            f"bank={self.bank} "
            f"K={self.config.clustering.num_clusters}",
            f"transmission frequency: {self.decisions.mean():.3f} "
            f"(budget {self.config.transmission.budget})",
            f"intermediate RMSE: {self.intermediate_rmse:.4f}",
        ]
        for horizon, rmse in sorted(self.rmse_by_horizon.items()):
            lines.append(f"  RMSE(h={horizon}) = {rmse:.4f}")
        stage_part = " ".join(
            f"{stage}={seconds:.2f}s"
            for stage, seconds in self.timings.items()
        )
        lines.append(f"timings: {stage_part}")
        return "\n".join(lines)


class Engine:
    """Unified batch + streaming engine over registry-backed stages.

    Args:
        config: Full pipeline configuration.
        collection: Collection backend for :meth:`run` — any name in
            :data:`repro.registry.COLLECTION_BACKENDS`.
        num_nodes: Fleet size for streaming.  Optional: inferred from
            the first :meth:`step` measurement when omitted.
        num_resources: Resource dimensionality d for streaming.
            Optional, inferred like ``num_nodes``.
        policy: Per-node transmission policy for :meth:`step` — any name
            in :data:`repro.registry.TRANSMISSION_POLICIES`.
        policy_factory: Override ``policy`` with a custom per-node
            factory (receives the node id).
        forecaster_factory: Override the forecasting model construction;
            receives ``(cluster_id, group_index)``.  A custom factory
            always runs through the :class:`~repro.forecasting.bank.
            ObjectBank` adapter; otherwise ``config.forecasting.bank``
            selects how the model layer executes (vectorized bank vs
            per-cluster objects — numerically identical either way).
    """

    def __init__(
        self,
        config: PipelineConfig = PipelineConfig(),
        *,
        collection: str = "adaptive",
        num_nodes: Optional[int] = None,
        num_resources: Optional[int] = None,
        policy: str = "adaptive",
        policy_factory: Optional[PolicyFactory] = None,
        forecaster_factory: Optional[ForecasterFactory] = None,
    ) -> None:
        if not isinstance(config, PipelineConfig):
            raise ConfigurationError(
                "config must be a PipelineConfig (use Engine.from_config "
                f"for mappings and JSON files), got {type(config).__name__}"
            )
        self.config = config
        self.collection = collection
        # Fail fast, with close-match suggestions, on unknown names.
        COLLECTION_BACKENDS.get(collection)
        if policy_factory is None:
            builder = TRANSMISSION_POLICIES.get(policy)

            def policy_factory(node_id: int) -> TransmissionPolicy:
                return builder(config.transmission, node_id)

        self._policy_factory: PolicyFactory = policy_factory
        self._forecaster_factory = forecaster_factory

        # Streaming state (one live deployment per engine), all views
        # over one columnar FleetState.
        self.fleet: Optional[FleetState] = None
        self.nodes: List[LocalNode] = []
        self.channel: Optional[Channel] = None
        self.store: Optional[CentralStore] = None
        self.pipeline: Optional[OnlinePipeline] = None
        self._stream_time = 0
        if (num_nodes is None) != (num_resources is None):
            raise ConfigurationError(
                "pass num_nodes and num_resources together (or neither)"
            )
        if num_nodes is not None and num_resources is not None:
            self._build_streaming(num_nodes, num_resources)

    @classmethod
    def from_config(
        cls,
        config,
        **kwargs,
    ) -> "Engine":
        """Build an engine from a config in any of its three forms.

        Args:
            config: A :class:`PipelineConfig`, a mapping in
                :meth:`PipelineConfig.to_dict` form, or a path to a JSON
                file holding that mapping.
            **kwargs: Forwarded to :class:`Engine` (``collection``,
                ``num_nodes``, ``policy``, …).
        """
        if isinstance(config, (str, Path)):
            path = config
            with open(path, "r", encoding="utf-8") as handle:
                config = json.load(handle)
            if not isinstance(config, Mapping):
                raise ConfigurationError(
                    f"config file {str(path)!r} must hold a JSON object "
                    f"in PipelineConfig.to_dict form, got "
                    f"{type(config).__name__}"
                )
        if isinstance(config, Mapping):
            config = PipelineConfig.from_dict(config)
        return cls(config, **kwargs)

    # ------------------------------------------------------------------
    # Streaming mode
    # ------------------------------------------------------------------

    def _build_streaming(self, num_nodes: int, num_resources: int) -> None:
        if num_nodes < 1 or num_resources < 1:
            raise ConfigurationError(
                "num_nodes and num_resources must be >= 1"
            )
        self.fleet = FleetState(num_nodes, num_resources)
        self.channel = Channel(node_counts=self.fleet.message_counts)
        self.store = CentralStore(fleet=self.fleet)
        self.nodes = [
            self.fleet.node_view(i, self._policy_factory(i))
            for i in range(num_nodes)
        ]
        self.pipeline = OnlinePipeline(
            num_nodes,
            num_resources,
            self.config,
            forecaster_factory=self._forecaster_factory,
        )

    @property
    def time(self) -> int:
        """Number of streaming slots processed."""
        return self._stream_time

    @property
    def transport_stats(self) -> TransportStats:
        """Cumulative streaming message/byte counters."""
        if self.channel is None:
            return TransportStats()
        return self.channel.stats

    @property
    def empirical_frequency(self) -> float:
        """Fleet-average streaming transmission frequency so far."""
        if self._stream_time == 0 or not self.nodes:
            return 0.0
        return self.transport_stats.messages / (
            self._stream_time * len(self.nodes)
        )

    def step(self, measurements: np.ndarray) -> StepOutput:
        """Advance the streaming deployment by one time slot.

        Every node's transmission policy sees the fresh measurement, the
        channel delivers, the central store applies the staleness rule,
        and the pipeline clusters + forecasts the stored values.

        Args:
            measurements: Fresh true measurements ``x_t``, shape
                ``(N, d)`` (or ``(N,)`` when d = 1).  On the first step
                of an engine built without explicit dimensions, ``N``
                and ``d`` are inferred from this shape.

        Returns:
            The pipeline's :class:`StepOutput` for this slot.
        """
        x = np.asarray(measurements, dtype=float)
        if x.ndim == 1:
            x = x[:, np.newaxis]
        if x.ndim != 2:
            raise DataError(f"measurements must be (N, d), got {x.shape}")
        if self.store is None:
            self._build_streaming(x.shape[0], x.shape[1])
        if x.shape != (len(self.nodes), self.store.dimension):
            raise DataError(
                f"measurements must be ({len(self.nodes)}, "
                f"{self.store.dimension}), got {x.shape}"
            )
        for node in self.nodes:
            message = node.observe(x[node.node_id])
            if message is not None:
                self.channel.send(message)
        self.store.apply(self.channel.drain(), now=self._stream_time)
        output = self.pipeline.step(self.store.values)
        self._stream_time += 1
        return output

    # ------------------------------------------------------------------
    # Batch mode
    # ------------------------------------------------------------------

    def _collect_sharded(
        self, data: np.ndarray, shards: int, workers: Optional[int]
    ) -> Tuple[CollectionResult, FleetState]:
        """Run the collection stage over ``shards`` contiguous node
        ranges and merge into global arrays plus a fleet snapshot.

        Every registered backend's recurrence is independent per node
        column (fleet-global state like the uniform stagger phases is
        handled via the shard-aware kwargs), so the merged ``stored``
        and ``decisions`` are bit-identical to a single-shard run —
        clustering and forecasting downstream see exactly the same
        ``z_t`` matrix.
        """
        num_steps, num_nodes, dim = data.shape
        if shards == 1:
            collected = COLLECTION_BACKENDS.create(
                self.collection, data, self.config.transmission
            )
            fleet = FleetState.from_run(collected.stored, collected.decisions)
            # Engine-level transport provenance is always derived from
            # the decisions over the fleet's counter column — the same
            # reduction the sharded path performs, so RunResult.transport
            # is identical whatever the shard count (a backend's own
            # accounting, if any, stays visible on direct backend calls).
            collected.stats = TransportStats.from_node_counts(
                fleet.message_counts, dim
            )
            return collected, fleet
        tasks = [
            (self.collection, data[:, lo:hi], self.config.transmission,
             lo, num_nodes)
            for lo, hi in shard_slices(num_nodes, shards)
        ]
        if workers is not None:
            # Any explicit worker count uses a real process pool (a
            # 1-worker pool still exercises pickling end to end);
            # workers=None is the in-process path.
            with ProcessPoolExecutor(
                max_workers=min(workers, shards)
            ) as pool:
                parts = list(
                    pool.map(_run_collection_shard, *zip(*tasks))
                )
        else:
            parts = [_run_collection_shard(*task) for task in tasks]
        stored, decisions = merge_collection_shards(parts)
        fleet = FleetState.from_run(stored, decisions)
        # Transport-stats reduction over the fleet's own counter column
        # (shared array, not a copy).
        stats = TransportStats.from_node_counts(fleet.message_counts, dim)
        return (
            CollectionResult(stored=stored, decisions=decisions, stats=stats),
            fleet,
        )

    def run(
        self,
        trace: np.ndarray,
        *,
        horizons: Optional[Sequence[int]] = None,
        shards: int = 1,
        workers: Optional[int] = None,
    ) -> RunResult:
        """Run collection + clustering + forecasting over a full trace.

        Batch mode is stateless with respect to the engine: each call
        builds a fresh pipeline, so repeated runs are independent and
        reproducible (streaming state, if any, is untouched).

        Args:
            trace: True measurements, shape ``(T, N)`` or ``(T, N, d)``.
            horizons: Horizons to evaluate; default ``0..max_horizon``
                (``h = 0`` is the pure collection error).
            shards: Partition the fleet into this many contiguous node
                shards for the collection stage.  Results are
                bit-identical to ``shards=1`` for every registered
                backend (including :attr:`RunResult.transport`, merged
                by the shard reduction).
            workers: Run the shards in a process pool of this size —
                any explicit value, including 1, creates a real pool
                (default ``None``: in-process, one shard after another —
                the right choice below roughly 100k nodes, where
                process startup dominates).  Requires ``shards > 1``.

        Returns:
            The :class:`RunResult` with RMSE per horizon, transport
            stats, per-stage timings and the final fleet snapshot.
        """
        run_started = time.perf_counter()
        data = validate_trace(trace)
        num_steps, num_nodes, num_resources = data.shape
        config = self.config
        try:
            shards = int(operator.index(shards))
        except TypeError:
            raise ConfigurationError(
                f"shards must be an integer, got {shards!r}"
            ) from None
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if shards > num_nodes:
            raise ConfigurationError(
                f"cannot split {num_nodes} nodes into {shards} shards"
            )
        if workers is not None:
            try:
                workers = int(operator.index(workers))
            except TypeError:
                raise ConfigurationError(
                    f"workers must be an integer, got {workers!r}"
                ) from None
            if workers < 1:
                raise ConfigurationError(
                    f"workers must be >= 1, got {workers}"
                )
        if workers is not None and shards == 1:
            raise ConfigurationError(
                "workers only applies to sharded runs; pass shards > 1"
            )

        started = time.perf_counter()
        collected, fleet = self._collect_sharded(data, shards, workers)
        collection_seconds = time.perf_counter() - started

        pipeline = OnlinePipeline(
            num_nodes,
            num_resources,
            config,
            forecaster_factory=self._forecaster_factory,
        )
        max_h = config.forecasting.max_horizon
        eval_horizons = list(horizons) if horizons is not None else list(
            range(0, max_h + 1)
        )
        for h in eval_horizons:
            if h < 0 or h > max_h:
                raise ConfigurationError(
                    f"horizon {h} outside [0, {max_h}]"
                )

        sq_sums: Dict[int, float] = {h: 0.0 for h in eval_horizons}
        sq_counts: Dict[int, int] = {h: 0 for h in eval_horizons}
        forecast_horizons = np.asarray(
            [h for h in eval_horizons if h != 0], dtype=int
        )
        # Per-slot centroid-of-assigned-cluster estimates, accumulated so
        # the intermediate RMSE is one batched operation at the end.
        centers_series = np.empty_like(collected.stored)
        groups = pipeline.groups
        forecast_start = -1
        metrics_seconds = 0.0

        for t in range(num_steps):
            output = pipeline.step(collected.stored[t])
            for g, assignment in enumerate(output.assignments):
                centers_series[t][:, groups[g]] = assignment.centroids[
                    assignment.labels
                ]

            if output.node_forecasts is not None:
                if forecast_start < 0:
                    forecast_start = t
                started = time.perf_counter()
                live = forecast_horizons[t + forecast_horizons < num_steps]
                if live.size:
                    # All horizons of this slot in one array op.
                    estimates = np.stack(
                        [output.node_forecasts[h] for h in live.tolist()]
                    )
                    errors = instantaneous_rmse_batch(
                        estimates, data[t + live]
                    )
                    for h, err in zip(live.tolist(), errors.tolist()):
                        sq_sums[h] += err**2
                        sq_counts[h] += 1
                metrics_seconds += time.perf_counter() - started

        # Batched accumulation over all slots at once: the pure
        # collection error (h = 0) and the intermediate RMSE — the
        # per-slot values match the streaming instantaneous_rmse
        # definition exactly.
        started = time.perf_counter()
        if 0 in sq_sums:
            errors = instantaneous_rmse_batch(collected.stored, data)
            sq_sums[0] = float(np.sum(errors**2))
            sq_counts[0] = num_steps
        group_sq = np.stack([
            instantaneous_rmse_batch(
                centers_series[:, :, group], collected.stored[:, :, group]
            )
            ** 2
            for group in groups
        ])  # (groups, T)
        intermediate_sq = group_sq.mean(axis=0)

        rmse_by_horizon = {}
        for h in eval_horizons:
            if sq_counts[h] > 0:
                rmse_by_horizon[h] = float(np.sqrt(sq_sums[h] / sq_counts[h]))
        metrics_seconds += time.perf_counter() - started

        timings = {"collection": collection_seconds}
        timings.update(pipeline.stage_seconds)
        timings["metrics"] = metrics_seconds
        timings["total"] = time.perf_counter() - run_started
        return RunResult(
            stored=collected.stored,
            decisions=collected.decisions,
            rmse_by_horizon=rmse_by_horizon,
            intermediate_rmse=float(np.sqrt(np.mean(intermediate_sq))),
            forecast_start=forecast_start,
            transport=collected.stats,
            timings=timings,
            config=config,
            collection=self.collection,
            bank=(
                "object"
                if self._forecaster_factory is not None
                else resolved_bank_name(config.forecasting)
            ),
            fleet=fleet,
            shards=shards,
        )


__all__ = ["Engine", "PolicyFactory", "RunResult"]
