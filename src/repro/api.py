"""Unified public API: one engine, pluggable stages.

:class:`Engine` is the single entry point to the paper's system.  It
composes the registry-backed stages (collection backend, transmission
policy, dynamic clustering, and the per-group forecaster banks that
batch every cluster's model — see :mod:`repro.forecasting.bank`) and
subsumes the two historical entry points:

* **batch** — :meth:`Engine.run` drives a recorded trace through
  collection, clustering and forecasting and returns a
  :class:`RunResult` with the paper's RMSE metrics, transport stats and
  per-stage wall-clock timings (what :func:`repro.core.pipeline.
  run_pipeline` did).  ``run(trace, shards=K, workers=W)`` additionally
  partitions the fleet into contiguous node shards for the collection
  stage (across a persistent shared-memory
  :class:`~repro.simulation.shard_pool.ShardPool` by default, or the
  legacy pickle-per-shard pool with ``pool="pickle"``) and merges them
  into one columnar :class:`~repro.simulation.fleet.FleetState` —
  bit-identical to the single-shard run;
* **streaming** — :meth:`Engine.session` opens a long-lived, stateful
  :class:`~repro.session.StreamSession` with partial ingestion, a
  bounded late-arrival reorder window, on-demand forecasts and
  checkpoint/resume (:meth:`StreamSession.snapshot
  <repro.session.StreamSession.snapshot>` /
  :meth:`Engine.resume`).  :meth:`Engine.step` remains as a thin
  compatibility shim over a lazily created default session, advancing
  it one full slot at a time (what ``MonitoringSystem.tick`` did) —
  but the per-slot hot path now runs the batched slot kernels, not a
  per-node object loop.

Engines are constructible from plain data — a :class:`~repro.core.
config.PipelineConfig`, its :meth:`~repro.core.config.PipelineConfig.
to_dict` mapping, or a path to a JSON file of that mapping — via
:meth:`Engine.from_config`, so experiment drivers, the CLI and config
files all share one wiring path::

    from repro.api import Engine

    engine = Engine.from_config("config.json")
    result = engine.run(trace)                  # batch
    print(result.rmse_by_horizon, result.timings)

    engine = Engine.from_config(config, num_nodes=50, num_resources=1)
    session = engine.session()                  # streaming
    output = session.ingest(x_t)                # one (full) slot
    session.ingest(x_late, node_ids=[3, 9])    # a partial slot
    session.save("state.ckpt")                  # durable checkpoint
    session = Engine.from_config(config).resume("state.ckpt")
"""

from __future__ import annotations

import inspect
import json
import operator
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.checkpoint import Checkpoint, as_checkpoint, config_mismatch
from repro.core.config import PipelineConfig, TransmissionConfig
from repro.core.metrics import instantaneous_rmse_batch
from repro.core.pipeline import (
    ForecasterFactory,
    OnlinePipeline,
    PipelineResult,
    StepOutput,
)
from repro.forecasting.bank import resolved_bank_name
from repro.core.types import validate_trace
from repro.exceptions import CheckpointError, ConfigurationError, DataError
from repro.registry import COLLECTION_BACKENDS, TRANSMISSION_POLICIES
from repro.session import PolicyFactory, StreamSession
from repro.simulation.collection import CollectionResult
from repro.simulation.controller import CentralStore
from repro.simulation.fleet import (
    FleetState,
    merge_collection_shards,
    shard_slices,
)
from repro.simulation.node import LocalNode
from repro.simulation.shard_pool import ShardPool
from repro.simulation.transport import Channel, TransportStats


def _shard_aware_kwargs(
    backend: Any, node_offset: int, total_nodes: int
) -> dict:
    """Offset/fleet-size kwargs for backends that opt into them.

    Backends whose decisions depend on fleet-global state (the uniform
    backend draws stagger phases for the whole fleet) declare
    ``node_offset``/``total_nodes`` keyword parameters; purely per-node
    backends need nothing and get nothing.
    """
    try:
        params = inspect.signature(backend).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        return {}
    if "node_offset" in params and "total_nodes" in params:
        return {"node_offset": node_offset, "total_nodes": total_nodes}
    return {}


def _run_collection_shard(
    backend_name: str,
    trace: np.ndarray,
    transmission: TransmissionConfig,
    node_offset: int,
    total_nodes: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run one collection shard — a contiguous node slice of the trace.

    Module-level (hence picklable) so it can run in a worker process;
    returns plain arrays to keep the inter-process payload minimal.
    """
    backend = COLLECTION_BACKENDS.get(backend_name)
    result = backend(
        trace,
        transmission,
        **_shard_aware_kwargs(backend, node_offset, total_nodes),
    )
    return result.stored, result.decisions


@dataclass
class RunResult(PipelineResult):
    """A :class:`~repro.core.pipeline.PipelineResult` plus provenance.

    Attributes (beyond the inherited metrics):
        transport: Message/byte counters — the backend's own accounting
            when it produces one, otherwise derived from the decision
            matrix over the fleet's counter column (so batch runs always
            carry transport provenance).
        timings: Wall-clock seconds per stage: ``collection``,
            ``clustering``, ``training``, ``forecasting``, ``metrics``
            and ``total``.
        config: The resolved configuration the run used.
        collection: The collection-backend name the run used.
        bank: How the model layer actually executed: a vectorized bank
            name from :data:`repro.registry.FORECASTER_BANKS`, or
            ``"object"`` for the per-cluster adapter (always the case
            with a custom ``forecaster_factory``).
        fleet: Columnar :class:`~repro.simulation.fleet.FleetState`
            snapshot after the last slot — final stored values, clocks,
            last-transmit slots and per-node message counters.
        shards: How many node shards the collection stage ran as.
        late_applied: Late arrivals applied under the reorder window
            (session-backed runs; batch collection is always in-order,
            so 0 there).
        late_dropped: Late arrivals dropped (superseded or beyond the
            reorder window).
    """

    transport: Optional[TransportStats]
    timings: Dict[str, float]
    config: PipelineConfig
    collection: str
    bank: str = "object"
    fleet: Optional[FleetState] = None
    shards: int = 1
    late_applied: int = 0
    late_dropped: int = 0

    def summary(self) -> str:
        """Human-readable run summary (CLI/report friendly)."""
        lines = [
            f"collection={self.collection} "
            f"model={self.config.forecasting.model} "
            f"bank={self.bank} "
            f"K={self.config.clustering.num_clusters}",
            f"transmission frequency: {self.decisions.mean():.3f} "
            f"(budget {self.config.transmission.budget})",
            f"intermediate RMSE: {self.intermediate_rmse:.4f}",
        ]
        for horizon, rmse in sorted(self.rmse_by_horizon.items()):
            lines.append(f"  RMSE(h={horizon}) = {rmse:.4f}")
        stage_part = " ".join(
            f"{stage}={seconds:.2f}s"
            for stage, seconds in self.timings.items()
        )
        lines.append(f"timings: {stage_part}")
        return "\n".join(lines)


class Engine:
    """Unified batch + streaming engine over registry-backed stages.

    Args:
        config: Full pipeline configuration.
        collection: Collection backend for :meth:`run` — any name in
            :data:`repro.registry.COLLECTION_BACKENDS`.
        num_nodes: Fleet size for streaming.  Optional: inferred from
            the first :meth:`step` measurement when omitted.
        num_resources: Resource dimensionality d for streaming.
            Optional, inferred like ``num_nodes``.
        policy: Per-node transmission policy for :meth:`step` — any name
            in :data:`repro.registry.TRANSMISSION_POLICIES`.
        policy_factory: Override ``policy`` with a custom per-node
            factory (receives the node id).
        forecaster_factory: Override the forecasting model construction;
            receives ``(cluster_id, group_index)``.  A custom factory
            always runs through the :class:`~repro.forecasting.bank.
            ObjectBank` adapter; otherwise ``config.forecasting.bank``
            selects how the model layer executes (vectorized bank vs
            per-cluster objects — numerically identical either way).
    """

    def __init__(
        self,
        config: PipelineConfig = PipelineConfig(),
        *,
        collection: str = "adaptive",
        num_nodes: Optional[int] = None,
        num_resources: Optional[int] = None,
        policy: str = "adaptive",
        policy_factory: Optional[PolicyFactory] = None,
        forecaster_factory: Optional[ForecasterFactory] = None,
    ) -> None:
        if not isinstance(config, PipelineConfig):
            raise ConfigurationError(
                "config must be a PipelineConfig (use Engine.from_config "
                f"for mappings and JSON files), got {type(config).__name__}"
            )
        self.config = config
        self.collection = collection
        # Fail fast, with close-match suggestions, on unknown names.
        COLLECTION_BACKENDS.get(collection)
        self.policy: Optional[str] = None if policy_factory else policy
        if policy_factory is None:
            TRANSMISSION_POLICIES.get(policy)
        self._policy_factory = policy_factory
        self._forecaster_factory = forecaster_factory

        # Streaming state: Engine.step drives one lazily created
        # default StreamSession (Engine.session opens independent ones).
        self._session: Optional[StreamSession] = None
        self._stream_dims: Optional[Tuple[int, int]] = None
        if (num_nodes is None) != (num_resources is None):
            raise ConfigurationError(
                "pass num_nodes and num_resources together (or neither)"
            )
        if num_nodes is not None and num_resources is not None:
            self._stream_dims = (num_nodes, num_resources)
            self._session = self.session(num_nodes, num_resources)

    @classmethod
    def from_config(
        cls,
        config: Union[PipelineConfig, Mapping[str, Any], str, Path],
        **kwargs: Any,
    ) -> "Engine":
        """Build an engine from a config in any of its three forms.

        Args:
            config: A :class:`PipelineConfig`, a mapping in
                :meth:`PipelineConfig.to_dict` form, or a path to a JSON
                file holding that mapping.
            **kwargs: Forwarded to :class:`Engine` (``collection``,
                ``num_nodes``, ``policy``, …).
        """
        if isinstance(config, (str, Path)):
            path = config
            with open(path, "r", encoding="utf-8") as handle:
                config = json.load(handle)
            if not isinstance(config, Mapping):
                raise ConfigurationError(
                    f"config file {str(path)!r} must hold a JSON object "
                    f"in PipelineConfig.to_dict form, got "
                    f"{type(config).__name__}"
                )
        if isinstance(config, Mapping):
            config = PipelineConfig.from_dict(config)
        return cls(config, **kwargs)

    # ------------------------------------------------------------------
    # Streaming mode
    # ------------------------------------------------------------------

    def session(
        self,
        num_nodes: Optional[int] = None,
        num_resources: Optional[int] = None,
        *,
        reorder_window: int = 0,
        vectorized: Optional[bool] = None,
        link: Optional[Any] = None,
    ) -> StreamSession:
        """Open a new long-lived :class:`~repro.session.StreamSession`.

        Every call creates an independent deployment (own fleet state,
        transport counters, clustering history and forecaster banks)
        wired with this engine's config, policy and factories.

        Args:
            num_nodes: Fleet size; defaults to the engine's streaming
                dimensions when it was built with them.
            num_resources: Resource dimensionality; same default rule.
            reorder_window: Late-arrival tolerance in slots (see
                :meth:`StreamSession.ingest
                <repro.session.StreamSession.ingest>`).
            vectorized: Force the slot path (kernel vs object loop);
                default picks the batched kernel when the policy has
                one.
            link: Optional :class:`~repro.scenarios.links.LinkModel`
                interposed between transmissions and the channel.
        """
        if num_nodes is None and num_resources is None:
            if self._stream_dims is None:
                raise ConfigurationError(
                    "pass num_nodes and num_resources (the engine was "
                    "built without streaming dimensions)"
                )
            num_nodes, num_resources = self._stream_dims
        if num_nodes is None or num_resources is None:
            raise ConfigurationError(
                "pass num_nodes and num_resources together"
            )
        return StreamSession(
            self.config,
            num_nodes,
            num_resources,
            policy=self.policy or "adaptive",
            policy_factory=self._policy_factory,
            forecaster_factory=self._forecaster_factory,
            reorder_window=reorder_window,
            vectorized=vectorized,
            link=link,
        )

    def resume(
        self,
        source: Union[Checkpoint, str, Path],
        *,
        link: Optional[Any] = None,
        mmap: bool = True,
    ) -> StreamSession:
        """Reconstruct a session from a checkpoint, bit-identically.

        The resumed session continues exactly as the snapshotted one
        would have — forecasts, cluster assignments and transport
        counters match an uninterrupted run bit for bit.  It also
        becomes this engine's default session, so :meth:`step` carries
        on from the checkpoint.

        Args:
            source: A :class:`~repro.checkpoint.Checkpoint` or a path
                to one saved with ``save``.
            link: A :class:`~repro.scenarios.links.LinkModel` shell of
                the checkpoint's configuration; required when the
                checkpoint was taken from a linked session (the link's
                queues and generator resume from the checkpoint), sized
                to the checkpoint's fleet.
            mmap: When ``source`` is a path, map the array members
                copy-on-write and *adopt* them as the session's live
                columns instead of loading and copying — resuming never
                holds two copies of the state (the default; see
                :meth:`Checkpoint.load <repro.checkpoint.Checkpoint.
                load>`).  Irrelevant for an already-loaded checkpoint.

        Raises:
            CheckpointError: On format-version mismatch (raised by
                :meth:`Checkpoint.load <repro.checkpoint.Checkpoint.
                load>`), configuration or dtype mismatch, or missing
                custom factories.
        """
        checkpoint = as_checkpoint(source, mmap=mmap)
        # Normalize the stored config through PipelineConfig so older
        # checkpoints (written before newer top-level knobs like
        # ``dtype`` existed) compare against their resolved defaults
        # instead of spurious "<missing>" diffs.
        try:
            checkpoint_config = PipelineConfig.from_dict(
                checkpoint.config
            ).to_dict()
        except ConfigurationError as exc:
            raise CheckpointError(
                f"checkpoint configuration does not resolve: {exc}"
            ) from exc
        engine_config = self.config.to_dict()
        if checkpoint_config.get("dtype") != engine_config.get("dtype"):
            raise CheckpointError(
                f"checkpoint was written with "
                f"dtype={checkpoint_config.get('dtype')!r}, engine runs "
                f"dtype={engine_config.get('dtype')!r}; restoring across "
                "dtypes would silently cast the fleet state — rebuild "
                "the engine with the checkpoint's dtype"
            )
        diffs = config_mismatch(checkpoint_config, engine_config)
        if diffs:
            detail = "; ".join(
                f"{path}: checkpoint={a!r} engine={b!r}"
                for path, a, b in diffs[:5]
            )
            raise CheckpointError(
                f"checkpoint configuration disagrees with the engine's "
                f"({detail}); build the engine from the checkpoint's "
                "config (Engine.from_checkpoint) or match the configs"
            )
        meta = checkpoint.session
        if bool(meta["custom_policy_factory"]) != (
            self._policy_factory is not None
        ):
            raise CheckpointError(
                "checkpoint and engine disagree about a custom "
                "policy_factory; resume with an engine carrying the "
                "same factory the session was built with"
            )
        if meta["custom_forecaster_factory"] and (
            self._forecaster_factory is None
        ):
            raise CheckpointError(
                "checkpoint was taken with a custom forecaster_factory; "
                "resume with an engine carrying that factory"
            )
        if not meta["custom_policy_factory"] and meta["policy"] != self.policy:
            raise CheckpointError(
                f"checkpoint used transmission policy {meta['policy']!r}, "
                f"engine is configured for {self.policy!r}"
            )
        session = self.session(
            int(meta["num_nodes"]),
            int(meta["num_resources"]),
            reorder_window=int(meta["reorder_window"]),
            vectorized=bool(meta["vectorized"]),
            link=link,
        )
        session.restore(checkpoint)
        self._session = session
        self._stream_dims = (session.num_nodes, session.num_resources)
        return session

    @classmethod
    def from_checkpoint(
        cls, source: Union[Checkpoint, str, Path], **kwargs: Any
    ) -> "Engine":
        """Build an engine *from* a checkpoint and resume its session.

        The engine adopts the checkpoint's resolved config and policy;
        ``kwargs`` are forwarded to the constructor (e.g.
        ``collection``).  Checkpoints taken with custom factories
        cannot be rebuilt this way — construct the engine with the
        factories and call :meth:`resume`.
        """
        checkpoint = as_checkpoint(source, mmap=True)
        meta = checkpoint.session
        if meta["custom_policy_factory"] or meta["custom_forecaster_factory"]:
            raise CheckpointError(
                "checkpoint was taken with custom factories; build the "
                "engine with them and call Engine.resume instead"
            )
        engine = cls.from_config(
            checkpoint.config, policy=meta["policy"], **kwargs
        )
        engine.resume(checkpoint)
        return engine

    # -- default-session views (Engine.step compatibility) -------------

    @property
    def fleet(self) -> Optional[FleetState]:
        """The default session's columnar fleet state (None before one
        exists)."""
        return None if self._session is None else self._session.fleet

    @property
    def nodes(self) -> List[LocalNode]:
        """The default session's per-node views (empty before one
        exists).

        Under the vectorized slot path (the default for registered
        policies) the views' *policy objects* are construction-time
        artifacts: their per-object decision histories and counters do
        not advance — the authoritative per-node policy state is the
        fleet's ``policy_state`` column, and frequency accounting lives
        in :attr:`transport_stats` / :attr:`empirical_frequency`.
        """
        return [] if self._session is None else self._session.nodes

    @property
    def channel(self) -> Optional[Channel]:
        return None if self._session is None else self._session.channel

    @property
    def store(self) -> Optional[CentralStore]:
        return None if self._session is None else self._session.store

    @property
    def pipeline(self) -> Optional[OnlinePipeline]:
        return None if self._session is None else self._session.pipeline

    @property
    def time(self) -> int:
        """Number of streaming slots processed."""
        return 0 if self._session is None else self._session.time

    @property
    def transport_stats(self) -> TransportStats:
        """Cumulative streaming message/byte counters."""
        if self._session is None:
            return TransportStats()
        return self._session.transport_stats

    @property
    def empirical_frequency(self) -> float:
        """Fleet-average streaming transmission frequency so far."""
        if self._session is None:
            return 0.0
        return self._session.empirical_frequency

    def step(self, measurements: np.ndarray) -> StepOutput:
        """Advance the default streaming session by one full slot.

        A thin compatibility shim over :meth:`session` /
        :meth:`StreamSession.ingest
        <repro.session.StreamSession.ingest>`: the first call creates
        the default session (inferring ``N`` and ``d`` from the
        measurement shape when the engine was built without them), and
        each call ingests one full slot.  The slot itself runs the
        batched transmission slot kernels — bit-identical to the
        historical per-node object loop, at a fraction of the cost.
        One behavioral difference from the historical loop: the
        per-node *policy objects* reachable via :attr:`nodes` no longer
        advance their own decision histories (see :attr:`nodes`); use
        :attr:`transport_stats` / the fleet columns for per-node state.

        Args:
            measurements: Fresh true measurements ``x_t``, shape
                ``(N, d)`` (or ``(N,)`` when d = 1).

        Returns:
            The slot's :class:`StepOutput` (with per-slot transport
            delta and timings).
        """
        x = np.asarray(measurements, dtype=float)
        if x.ndim == 1:
            x = x[:, np.newaxis]
        if x.ndim != 2:
            raise DataError(f"measurements must be (N, d), got {x.shape}")
        if self._session is None:
            self._stream_dims = (x.shape[0], x.shape[1])
            self._session = self.session(x.shape[0], x.shape[1])
        session = self._session
        if x.shape != (session.num_nodes, session.num_resources):
            raise DataError(
                f"measurements must be ({session.num_nodes}, "
                f"{session.num_resources}), got {x.shape}"
            )
        return session.ingest(x)

    # ------------------------------------------------------------------
    # Batch mode
    # ------------------------------------------------------------------

    def _collect_sharded(
        self,
        data: np.ndarray,
        shards: int,
        workers: Optional[int],
        pool: str = "shared",
    ) -> Tuple[CollectionResult, FleetState]:
        """Run the collection stage over ``shards`` contiguous node
        ranges and merge into global arrays plus a fleet snapshot.

        Every registered backend's recurrence is independent per node
        column (fleet-global state like the uniform stagger phases is
        handled via the shard-aware kwargs), so the merged ``stored``
        and ``decisions`` are bit-identical to a single-shard run —
        clustering and forecasting downstream see exactly the same
        ``z_t`` matrix.
        """
        num_steps, num_nodes, dim = data.shape
        if shards == 1:
            collected = COLLECTION_BACKENDS.create(
                self.collection, data, self.config.transmission
            )
            fleet = FleetState.from_run(collected.stored, collected.decisions)
            # Engine-level transport provenance is always derived from
            # the decisions over the fleet's counter column — the same
            # reduction the sharded path performs, so RunResult.transport
            # is identical whatever the shard count (a backend's own
            # accounting, if any, stays visible on direct backend calls).
            collected.stats = TransportStats.from_node_counts(
                fleet.message_counts, dim
            )
            return collected, fleet
        ranges = shard_slices(num_nodes, shards)
        if workers is not None and pool == "shared":
            # Persistent shared-memory workers: the trace and both
            # result columns live in shared segments, so shard requests
            # and results never cross a pickle boundary.
            with ShardPool(min(workers, shards)) as shard_pool:
                stored, decisions = shard_pool.collect(
                    self.collection, data, self.config.transmission, ranges
                )
        else:
            tasks = [
                (self.collection, data[:, lo:hi], self.config.transmission,
                 lo, num_nodes)
                for lo, hi in ranges
            ]
            if workers is not None:
                # Legacy pickle-per-shard pool (pool="pickle"): each
                # shard's trace slice and results are serialized through
                # a ProcessPoolExecutor task.
                with ProcessPoolExecutor(
                    max_workers=min(workers, shards)
                ) as executor:
                    parts = list(
                        executor.map(_run_collection_shard, *zip(*tasks))
                    )
            else:
                parts = [_run_collection_shard(*task) for task in tasks]
            stored, decisions = merge_collection_shards(parts)
        fleet = FleetState.from_run(stored, decisions)
        # Transport-stats reduction over the fleet's own counter column
        # (shared array, not a copy).
        stats = TransportStats.from_node_counts(fleet.message_counts, dim)
        return (
            CollectionResult(stored=stored, decisions=decisions, stats=stats),
            fleet,
        )

    def run(
        self,
        trace: np.ndarray,
        *,
        horizons: Optional[Sequence[int]] = None,
        shards: int = 1,
        workers: Optional[int] = None,
        pool: str = "shared",
    ) -> RunResult:
        """Run collection + clustering + forecasting over a full trace.

        Batch mode is stateless with respect to the engine: each call
        builds a fresh pipeline, so repeated runs are independent and
        reproducible (streaming state, if any, is untouched).

        Args:
            trace: True measurements, shape ``(T, N)`` or ``(T, N, d)``.
            horizons: Horizons to evaluate; default ``0..max_horizon``
                (``h = 0`` is the pure collection error).
            shards: Partition the fleet into this many contiguous node
                shards for the collection stage.  Results are
                bit-identical to ``shards=1`` for every registered
                backend (including :attr:`RunResult.transport`, merged
                by the shard reduction).
            workers: Run the shards in a process pool of this size —
                any explicit value, including 1, creates a real pool
                (default ``None``: in-process, one shard after another —
                the right choice below roughly 100k nodes, where
                process startup dominates).  Requires ``shards > 1``.
            pool: Which multi-process pool ``workers`` selects:
                ``"shared"`` (default) runs persistent
                :class:`~repro.simulation.shard_pool.ShardPool` workers
                over shared-memory trace/result segments — shard
                requests never pickle array data; ``"pickle"`` is the
                legacy ``ProcessPoolExecutor`` path that serializes
                every shard's slice and results.  Both are bit-identical
                to the in-process run.

        Returns:
            The :class:`RunResult` with RMSE per horizon, transport
            stats, per-stage timings and the final fleet snapshot.
        """
        run_started = time.perf_counter()
        data = validate_trace(trace, dtype=self.config.np_dtype)
        num_steps, num_nodes, num_resources = data.shape
        config = self.config
        try:
            shards = int(operator.index(shards))
        except TypeError:
            raise ConfigurationError(
                f"shards must be an integer, got {shards!r}"
            ) from None
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if shards > num_nodes:
            raise ConfigurationError(
                f"cannot split {num_nodes} nodes into {shards} shards"
            )
        if workers is not None:
            try:
                workers = int(operator.index(workers))
            except TypeError:
                raise ConfigurationError(
                    f"workers must be an integer, got {workers!r}"
                ) from None
            if workers < 1:
                raise ConfigurationError(
                    f"workers must be >= 1, got {workers}"
                )
        if workers is not None and shards == 1:
            raise ConfigurationError(
                "workers only applies to sharded runs; pass shards > 1"
            )
        if pool not in ("shared", "pickle"):
            raise ConfigurationError(
                f"pool must be 'shared' or 'pickle', got {pool!r}"
            )

        started = time.perf_counter()
        collected, fleet = self._collect_sharded(data, shards, workers, pool)
        collection_seconds = time.perf_counter() - started

        pipeline = OnlinePipeline(
            num_nodes,
            num_resources,
            config,
            forecaster_factory=self._forecaster_factory,
        )
        max_h = config.forecasting.max_horizon
        eval_horizons = list(horizons) if horizons is not None else list(
            range(0, max_h + 1)
        )
        for h in eval_horizons:
            if h < 0 or h > max_h:
                raise ConfigurationError(
                    f"horizon {h} outside [0, {max_h}]"
                )

        sq_sums: Dict[int, float] = {h: 0.0 for h in eval_horizons}
        sq_counts: Dict[int, int] = {h: 0 for h in eval_horizons}
        forecast_horizons = np.asarray(
            [h for h in eval_horizons if h != 0], dtype=int
        )
        # Per-slot centroid-of-assigned-cluster estimates, accumulated so
        # the intermediate RMSE is one batched operation at the end.
        centers_series = np.empty_like(collected.stored)
        groups = pipeline.groups
        forecast_start = -1
        metrics_seconds = 0.0

        for t in range(num_steps):
            output = pipeline.step(collected.stored[t])
            for g, assignment in enumerate(output.assignments):
                centers_series[t][:, groups[g]] = assignment.centroids[
                    assignment.labels
                ]

            if output.node_forecasts is not None:
                if forecast_start < 0:
                    forecast_start = t
                started = time.perf_counter()
                live = forecast_horizons[t + forecast_horizons < num_steps]
                if live.size:
                    # All horizons of this slot in one array op.
                    estimates = np.stack(
                        [output.node_forecasts[h] for h in live.tolist()]
                    )
                    errors = instantaneous_rmse_batch(
                        estimates, data[t + live]
                    )
                    for h, err in zip(live.tolist(), errors.tolist()):
                        sq_sums[h] += err**2
                        sq_counts[h] += 1
                metrics_seconds += time.perf_counter() - started

        # Batched accumulation over all slots at once: the pure
        # collection error (h = 0) and the intermediate RMSE — the
        # per-slot values match the streaming instantaneous_rmse
        # definition exactly.
        started = time.perf_counter()
        if 0 in sq_sums:
            errors = instantaneous_rmse_batch(collected.stored, data)
            sq_sums[0] = float(np.sum(errors**2))
            sq_counts[0] = num_steps
        group_sq = np.stack([
            instantaneous_rmse_batch(
                centers_series[:, :, group], collected.stored[:, :, group]
            )
            ** 2
            for group in groups
        ])  # (groups, T)
        intermediate_sq = group_sq.mean(axis=0)

        rmse_by_horizon = {}
        for h in eval_horizons:
            if sq_counts[h] > 0:
                rmse_by_horizon[h] = float(np.sqrt(sq_sums[h] / sq_counts[h]))
        metrics_seconds += time.perf_counter() - started

        timings = {"collection": collection_seconds}
        timings.update(pipeline.stage_seconds)
        timings["metrics"] = metrics_seconds
        timings["total"] = time.perf_counter() - run_started
        return RunResult(
            stored=collected.stored,
            decisions=collected.decisions,
            rmse_by_horizon=rmse_by_horizon,
            intermediate_rmse=float(np.sqrt(np.mean(intermediate_sq))),
            forecast_start=forecast_start,
            transport=collected.stats,
            timings=timings,
            config=config,
            collection=self.collection,
            bank=(
                "object"
                if self._forecaster_factory is not None
                else resolved_bank_name(config.forecasting)
            ),
            fleet=fleet,
            shards=shards,
        )


__all__ = ["Engine", "PolicyFactory", "RunResult", "StreamSession"]
