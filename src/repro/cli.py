"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — show the experiment registry (one entry per table/figure)
  and the pluggable-component registries (forecasters, collection
  backends, transmission policies, similarity measures).
* ``run <experiment> [...]`` — run one or more experiments and print
  their formatted results, with ``--nodes/--steps`` scale overrides.
* ``run --config <json>`` — build an :class:`~repro.api.Engine` from a
  JSON config file and run it end to end on a synthetic trace.
* ``demo`` — run the quickstart pipeline on a synthetic trace.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.api import Engine
from repro.core.config import PipelineConfig
from repro.datasets import load_alibaba_like
from repro.exceptions import ReproError
from repro.experiments import EXPERIMENTS
from repro.registry import (
    COLLECTION_BACKENDS,
    FORECASTERS,
    FORECASTER_BANKS,
    SIMILARITY_MEASURES,
    TRANSMISSION_POLICIES,
)

#: Parameter names accepted by every experiment runner for scaling.
_SCALE_KEYS = ("num_nodes", "num_steps")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Online Collection and Forecasting of "
            "Resource Utilization in Large-Scale Distributed Systems' "
            "(Tuor et al., ICDCS 2019)."
        ),
    )
    commands = parser.add_subparsers(dest="command")

    commands.add_parser(
        "list", help="list experiments and registered components"
    )

    run_parser = commands.add_parser(
        "run", help="run experiments, or an engine from a config file"
    )
    run_parser.add_argument(
        "experiments", nargs="*",
        help=f"experiment ids (from: {', '.join(sorted(EXPERIMENTS))})",
    )
    run_parser.add_argument(
        "--config", default=None, metavar="JSON",
        help="run the unified engine from a JSON config file "
             "(PipelineConfig.to_dict form) instead of experiments",
    )
    run_parser.add_argument(
        "--collection", default="adaptive",
        help="collection backend for --config runs "
             f"(one of: {', '.join(COLLECTION_BACKENDS.available())})",
    )
    run_parser.add_argument(
        "--shards", type=int, default=1, metavar="K",
        help="partition the fleet into K contiguous node shards for the "
             "collection stage of --config runs (results are "
             "bit-identical to a single shard)",
    )
    run_parser.add_argument(
        "--workers", type=int, default=None, metavar="W",
        help="run the shards in a process pool of W workers "
             "(default: in-process)",
    )
    run_parser.add_argument(
        "--nodes", type=int, default=None,
        help="override the number of simulated machines",
    )
    run_parser.add_argument(
        "--steps", type=int, default=None,
        help="override the number of time slots",
    )

    demo_parser = commands.add_parser(
        "demo", help="run the quickstart pipeline"
    )
    demo_parser.add_argument("--nodes", type=int, default=60)
    demo_parser.add_argument("--steps", type=int, default=500)
    demo_parser.add_argument("--budget", type=float, default=0.3)
    demo_parser.add_argument("--clusters", type=int, default=3)
    return parser


def _command_list() -> int:
    print("experiments (paper artifact -> runner):")
    for name in EXPERIMENTS:
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"  {name:<22} {summary}")
    print("\ncomponents (registry -> names):")
    for label, registry in (
        ("forecasters", FORECASTERS),
        ("forecaster banks", FORECASTER_BANKS),
        ("collection backends", COLLECTION_BACKENDS),
        ("transmission policies", TRANSMISSION_POLICIES),
        ("similarity measures", SIMILARITY_MEASURES),
    ):
        print(f"  {label:<22} {', '.join(registry.available())}")
    return 0


def _command_run_config(args: argparse.Namespace) -> int:
    num_nodes = args.nodes if args.nodes is not None else 24
    num_steps = args.steps if args.steps is not None else 240
    try:
        engine = Engine.from_config(args.config, collection=args.collection)
    except OSError as exc:
        print(f"cannot read --config {args.config!r}: {exc}", file=sys.stderr)
        return 2
    except (TypeError, ValueError, ReproError) as exc:
        print(f"invalid configuration: {exc}", file=sys.stderr)
        return 2
    dataset = load_alibaba_like(num_nodes=num_nodes, num_steps=num_steps)
    try:
        result = engine.run(
            dataset.resource("cpu"),
            shards=args.shards,
            workers=args.workers,
        )
    except ReproError as exc:
        print(f"invalid configuration: {exc}", file=sys.stderr)
        return 2
    shard_part = (
        f", {args.shards} shards" if args.shards != 1 else ""
    )
    print(
        f"engine run: config={args.config} "
        f"({num_nodes} nodes, {num_steps} steps{shard_part})"
    )
    print(result.summary())
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if args.config is not None:
        if args.experiments:
            print(
                "--config and experiment ids are mutually exclusive",
                file=sys.stderr,
            )
            return 2
        return _command_run_config(args)
    if args.collection != "adaptive":
        print("--collection only applies to --config runs; experiments "
              "choose their own collection", file=sys.stderr)
        return 2
    if args.shards != 1 or args.workers is not None:
        print("--shards/--workers only apply to --config runs",
              file=sys.stderr)
        return 2
    if not args.experiments:
        print("nothing to run: pass experiment ids or --config",
              file=sys.stderr)
        return 2
    unknown = [e for e in args.experiments if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    for name in args.experiments:
        runner = EXPERIMENTS[name]
        kwargs = {}
        if args.nodes is not None:
            kwargs["num_nodes"] = args.nodes
        if args.steps is not None:
            kwargs["num_steps"] = args.steps
        # Drop overrides the runner does not accept (e.g. fig12 uses
        # train_steps/test_steps instead of num_steps).
        accepted = runner.__code__.co_varnames[: runner.__code__.co_argcount]
        all_names = set(accepted) | set(
            runner.__code__.co_varnames[
                : runner.__code__.co_argcount + runner.__code__.co_kwonlyargcount
            ]
        )
        kwargs = {k: v for k, v in kwargs.items() if k in all_names}
        print(f"== {name} {kwargs or ''}")
        started = time.perf_counter()
        result = runner(**kwargs)
        elapsed = time.perf_counter() - started
        print(result.format())
        print(f"[{elapsed:.1f}s]\n")
    return 0


def _command_demo(args: argparse.Namespace) -> int:
    dataset = load_alibaba_like(num_nodes=args.nodes, num_steps=args.steps)
    config = PipelineConfig.small(
        num_clusters=args.clusters,
        budget=args.budget,
        initial_collection=max(50, args.steps // 4),
        retrain_interval=max(50, args.steps // 4),
    )
    result = Engine(config).run(dataset.resource("cpu"))
    print(f"dataset: {dataset.name} ({args.nodes} nodes, {args.steps} steps)")
    print(result.summary())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "demo":
        return _command_demo(args)
    parser.print_help()
    return 1


if __name__ == "__main__":
    sys.exit(main())
