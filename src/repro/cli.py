"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — show the experiment registry (one entry per table/figure)
  and the pluggable-component registries (forecasters, collection
  backends, transmission policies, similarity measures).
* ``run <experiment> [...]`` — run one or more experiments and print
  their formatted results, with ``--nodes/--steps`` scale overrides.
* ``run --config <json>`` — build an :class:`~repro.api.Engine` from a
  JSON config file and run it end to end on a synthetic trace.
* ``run --config <json> --stream`` — drive a long-lived
  :class:`~repro.session.StreamSession` slot by slot instead of the
  batch path, with ``--checkpoint <path>`` (and ``--checkpoint-every
  N``) writing durable snapshots and ``--resume <path>`` continuing
  bit-identically from one.
* ``run --scenario <name>`` — replay a registered scenario (link model
  × churn schedule × trace source, see :mod:`repro.scenarios`) through
  a streaming session; supports the same ``--checkpoint`` /
  ``--checkpoint-every`` / ``--resume`` flags plus ``--steps``.
* ``demo`` — run the quickstart pipeline on a synthetic trace.
* ``lint [paths...]`` — run the repo-specific invariant checks
  (state contracts, registry consistency, kernel purity, dtype
  discipline) over the installed tree or the given paths, with
  ``--runtime`` adding live contract verification and ``--format
  json`` a machine-readable report.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.api import Engine
from repro.checkpoint import CHECKPOINT_FORMAT_VERSION, as_checkpoint
from repro.core.config import SUPPORTED_DTYPES, PipelineConfig
from repro.datasets import load_alibaba_like
from repro.exceptions import ReproError
from repro.experiments import EXPERIMENTS
from repro.registry import (
    COLLECTION_BACKENDS,
    FORECASTERS,
    FORECASTER_BANKS,
    SCENARIOS,
    SIMILARITY_MEASURES,
    SLOT_KERNELS,
    TRANSMISSION_POLICIES,
)

#: Parameter names accepted by every experiment runner for scaling.
_SCALE_KEYS = ("num_nodes", "num_steps")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Online Collection and Forecasting of "
            "Resource Utilization in Large-Scale Distributed Systems' "
            "(Tuor et al., ICDCS 2019)."
        ),
    )
    commands = parser.add_subparsers(dest="command")

    commands.add_parser(
        "list", help="list experiments and registered components"
    )

    run_parser = commands.add_parser(
        "run", help="run experiments, or an engine from a config file"
    )
    run_parser.add_argument(
        "experiments", nargs="*",
        help=f"experiment ids (from: {', '.join(sorted(EXPERIMENTS))})",
    )
    run_parser.add_argument(
        "--config", default=None, metavar="JSON",
        help="run the unified engine from a JSON config file "
             "(PipelineConfig.to_dict form) instead of experiments",
    )
    run_parser.add_argument(
        "--collection", default="adaptive",
        help="collection backend for --config runs "
             f"(one of: {', '.join(COLLECTION_BACKENDS.available())})",
    )
    run_parser.add_argument(
        "--shards", type=int, default=1, metavar="K",
        help="partition the fleet into K contiguous node shards for the "
             "collection stage of --config runs (results are "
             "bit-identical to a single shard)",
    )
    run_parser.add_argument(
        "--workers", type=int, default=None, metavar="W",
        help="run the shards in a pool of W persistent shared-memory "
             "workers (default: in-process)",
    )
    run_parser.add_argument(
        "--pool", choices=("shared", "pickle"), default="shared",
        help="which worker pool --workers selects: persistent "
             "shared-memory shard workers (default) or the legacy "
             "pickle-per-shard process pool",
    )
    run_parser.add_argument(
        "--dtype", choices=SUPPORTED_DTYPES, default=None,
        help="override the config's fleet dtype (float64 keeps the "
             "bit-identity pins; float32 halves column memory for "
             "million-node fleets)",
    )
    run_parser.add_argument(
        "--nodes", type=int, default=None,
        help="override the number of simulated machines",
    )
    run_parser.add_argument(
        "--steps", type=int, default=None,
        help="override the number of time slots",
    )
    run_parser.add_argument(
        "--stream", action="store_true",
        help="drive a streaming session slot by slot instead of the "
             "batch path (--config runs only)",
    )
    run_parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="replay a registered scenario (link model x churn x trace "
             "source) through a streaming session "
             f"(one of: {', '.join(SCENARIOS.available())})",
    )
    run_parser.add_argument(
        "--policy", default="adaptive",
        help="transmission policy for --stream runs "
             f"(one of: {', '.join(TRANSMISSION_POLICIES.available())})",
    )
    run_parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write a checkpoint of the streaming session to PATH "
             "(at the end of the run, plus every --checkpoint-every "
             "slots)",
    )
    run_parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="also checkpoint every N slots (requires --checkpoint)",
    )
    run_parser.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume the streaming session from a checkpoint and "
             "continue on the synthetic trace (config/policy are taken "
             "from the checkpoint when --config is omitted)",
    )

    demo_parser = commands.add_parser(
        "demo", help="run the quickstart pipeline"
    )
    demo_parser.add_argument("--nodes", type=int, default=60)
    demo_parser.add_argument("--steps", type=int, default=500)
    demo_parser.add_argument("--budget", type=float, default=0.3)
    demo_parser.add_argument("--clusters", type=int, default=3)

    lint_parser = commands.add_parser(
        "lint", help="run the repo-specific invariant checks"
    )
    lint_parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: the installed repro "
             "package)",
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="report format (default: text; 'github' emits ::error "
             "workflow commands for inline PR annotations)",
    )
    lint_parser.add_argument(
        "--runtime", action="store_true",
        help="also drive every registered component through the "
             "checkpoint round-trip and determinism contracts",
    )
    lint_parser.add_argument(
        "--sanitize", action="store_true",
        help="also run the shared-memory sanitizer: guard-canaried "
             "ShardPool rounds with fd/segment leak accounting and "
             "worker-crash recovery (RT-004/RT-005, never waivable)",
    )
    lint_parser.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    lint_parser.add_argument(
        "--show-waived", action="store_true",
        help="also print findings suppressed by inline waivers",
    )
    lint_parser.add_argument(
        "--cache", default=None, metavar="PATH",
        help="incremental result cache file; unchanged files are "
             "served from it instead of re-linted",
    )
    lint_parser.add_argument(
        "--changed", default=None, metavar="REF",
        help="only report file findings on files changed relative to "
             "the given git ref (committed, staged or unstaged)",
    )
    return parser


def _command_list() -> int:
    print("experiments (paper artifact -> runner):")
    for name in EXPERIMENTS:
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"  {name:<22} {summary}")
    print("\ncomponents (registry -> names):")
    for label, registry in (
        ("forecasters", FORECASTERS),
        ("forecaster banks", FORECASTER_BANKS),
        ("collection backends", COLLECTION_BACKENDS),
        ("transmission policies", TRANSMISSION_POLICIES),
        ("slot kernels", SLOT_KERNELS),
        ("similarity measures", SIMILARITY_MEASURES),
        ("scenarios", SCENARIOS),
    ):
        print(f"  {label:<22} {', '.join(registry.available())}")
    default_dtype = PipelineConfig().dtype
    print(
        f"  {'fleet dtypes':<22} "
        + ", ".join(
            f"{name} (default)" if name == default_dtype else name
            for name in SUPPORTED_DTYPES
        )
    )
    print(f"\ncheckpoint format: v{CHECKPOINT_FORMAT_VERSION}")
    from repro.lint import LINT_RULES

    print("\nlint rules (repro lint):")
    for rule_id in LINT_RULES.available():
        rule = LINT_RULES.get(rule_id)
        scope = " [runtime]" if rule.scope == "runtime" else ""
        print(f"  {rule_id:<12} {rule.description}{scope}")
    return 0


def _with_dtype(engine: Engine, args: argparse.Namespace, **kwargs) -> Engine:
    """Rebuild ``engine`` with ``--dtype`` applied (no-op otherwise)."""
    if args.dtype is None or args.dtype == engine.config.dtype:
        return engine
    overridden = dict(engine.config.to_dict())
    overridden["dtype"] = args.dtype
    return Engine.from_config(overridden, **kwargs)


def _command_run_config(args: argparse.Namespace) -> int:
    num_nodes = args.nodes if args.nodes is not None else 24
    num_steps = args.steps if args.steps is not None else 240
    try:
        engine = Engine.from_config(args.config, collection=args.collection)
        engine = _with_dtype(engine, args, collection=args.collection)
    except OSError as exc:
        print(f"cannot read --config {args.config!r}: {exc}", file=sys.stderr)
        return 2
    except (TypeError, ValueError, ReproError) as exc:
        print(f"invalid configuration: {exc}", file=sys.stderr)
        return 2
    dataset = load_alibaba_like(num_nodes=num_nodes, num_steps=num_steps)
    try:
        result = engine.run(
            dataset.resource("cpu"),
            shards=args.shards,
            workers=args.workers,
            pool=args.pool,
        )
    except ReproError as exc:
        print(f"invalid configuration: {exc}", file=sys.stderr)
        return 2
    shard_part = (
        f", {args.shards} shards" if args.shards != 1 else ""
    )
    print(
        f"engine run: config={args.config} "
        f"({num_nodes} nodes, {num_steps} steps{shard_part}, "
        f"dtype={engine.config.dtype})"
    )
    print(result.summary())
    return 0


def _command_run_stream(args: argparse.Namespace) -> int:
    """Drive a streaming session over the synthetic trace.

    With ``--resume`` the session continues from the checkpoint's slot
    on the same deterministic synthetic trace, so an interrupted run
    plus its resumption is bit-identical to an uninterrupted one.
    """
    num_nodes = args.nodes if args.nodes is not None else 24
    num_steps = args.steps if args.steps is not None else 240
    if args.checkpoint_every is not None and args.checkpoint is None:
        print("--checkpoint-every requires --checkpoint", file=sys.stderr)
        return 2
    try:
        if args.resume is not None:
            # mmap=True: array members are mapped copy-on-write and
            # adopted as the session's live columns (zero-copy resume).
            checkpoint = as_checkpoint(args.resume, mmap=True)
            meta = checkpoint.session
            print(
                f"resuming {args.resume}: format "
                f"v{checkpoint.version}, written by repro "
                f"{checkpoint.library_version}, "
                f"dtype={checkpoint.config.get('dtype', 'float64')}, "
                f"N={meta.get('num_nodes')}, d={meta.get('num_resources')}, "
                f"slot={meta.get('time')}, policy={meta.get('policy')}"
            )
            if args.config is not None:
                engine = Engine.from_config(args.config, policy=args.policy)
            else:
                engine = Engine.from_config(
                    checkpoint.config,
                    policy=checkpoint.session["policy"] or "adaptive",
                )
            session = engine.resume(checkpoint)
            if args.nodes is not None and args.nodes != session.num_nodes:
                print(
                    f"--nodes {args.nodes} contradicts the checkpoint's "
                    f"{session.num_nodes}-node session; a resumed session "
                    "keeps its fleet size",
                    file=sys.stderr,
                )
                return 2
            num_nodes = session.num_nodes
        else:
            engine = Engine.from_config(args.config, policy=args.policy)
            engine = _with_dtype(engine, args, policy=args.policy)
            session = engine.session(num_nodes, 1)
    except OSError as exc:
        print(f"cannot read configuration: {exc}", file=sys.stderr)
        return 2
    except (TypeError, ValueError, ReproError) as exc:
        print(f"invalid configuration: {exc}", file=sys.stderr)
        return 2

    trace = load_alibaba_like(
        num_nodes=num_nodes, num_steps=num_steps
    ).resource("cpu")
    start = session.time
    if start >= num_steps:
        print(
            f"checkpoint is already at slot {start}; raise --steps "
            f"beyond {num_steps} to continue", file=sys.stderr,
        )
        return 2
    started = time.perf_counter()
    for t in range(start, num_steps):
        session.ingest(trace[t])
        if (
            args.checkpoint is not None
            and args.checkpoint_every is not None
            and session.time % args.checkpoint_every == 0
        ):
            session.save(args.checkpoint)
    elapsed = time.perf_counter() - started
    if args.checkpoint is not None:
        path = session.save(args.checkpoint)
        print(f"checkpoint written: {path} (format v"
              f"{CHECKPOINT_FORMAT_VERSION})")
    slots = num_steps - start
    mode = "vectorized slot kernel" if session.vectorized else "object loop"
    print(
        f"stream session: {num_nodes} nodes, slots {start}..{num_steps - 1}"
        f" ({mode})"
    )
    print(
        f"transmission frequency: {session.empirical_frequency:.3f} "
        f"({session.transport_stats.messages} messages, "
        f"{session.transport_stats.payload_bytes()} payload bytes)"
    )
    if session.late_applied or session.late_dropped:
        print(
            f"late arrivals: {session.late_applied} applied, "
            f"{session.late_dropped} dropped"
        )
    try:
        forecasts = session.forecast()
        horizons = ", ".join(str(h) for h in sorted(forecasts))
        print(f"forecasts available for horizons: {horizons}")
    except ReproError:
        print("forecasts: not yet (still in the initial collection phase)")
    print(f"[{elapsed:.1f}s, {slots / max(elapsed, 1e-9):.0f} slots/s]")
    return 0


def _command_run_scenario(args: argparse.Namespace) -> int:
    """Replay a registered scenario through a streaming session."""
    from repro.scenarios import run_scenario
    from repro.scenarios.harness import resolve_scenario

    if args.nodes is not None:
        print(
            "--nodes does not apply to --scenario runs (fleet size is "
            "part of the scenario spec)", file=sys.stderr,
        )
        return 2
    if args.checkpoint_every is not None and args.checkpoint is None:
        print("--checkpoint-every requires --checkpoint", file=sys.stderr)
        return 2
    try:
        spec = resolve_scenario(args.scenario)
        if args.steps is not None:
            spec = spec.with_steps(args.steps)
        started = time.perf_counter()
        report = run_scenario(
            spec,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume_from=args.resume,
        )
    except OSError as exc:
        print(f"cannot read checkpoint: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"scenario failed: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    print(report.summary())
    if args.checkpoint is not None:
        print(f"checkpoint written: {args.checkpoint} "
              f"(format v{CHECKPOINT_FORMAT_VERSION})")
    print(f"[{elapsed:.1f}s, {report.slots / max(elapsed, 1e-9):.0f} "
          "slots/s]")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        if args.experiments or args.config is not None or args.stream:
            print(
                "--scenario runs standalone (no experiment ids, "
                "--config or --stream)", file=sys.stderr,
            )
            return 2
        return _command_run_scenario(args)
    if args.stream or args.resume is not None:
        if args.experiments:
            print(
                "--stream and experiment ids are mutually exclusive",
                file=sys.stderr,
            )
            return 2
        if args.config is None and args.resume is None:
            print("--stream needs --config or --resume", file=sys.stderr)
            return 2
        return _command_run_stream(args)
    if args.checkpoint is not None or args.checkpoint_every is not None:
        print("--checkpoint only applies to --stream runs", file=sys.stderr)
        return 2
    if args.config is not None:
        if args.experiments:
            print(
                "--config and experiment ids are mutually exclusive",
                file=sys.stderr,
            )
            return 2
        return _command_run_config(args)
    if args.collection != "adaptive":
        print("--collection only applies to --config runs; experiments "
              "choose their own collection", file=sys.stderr)
        return 2
    if args.shards != 1 or args.workers is not None:
        print("--shards/--workers only apply to --config runs",
              file=sys.stderr)
        return 2
    if args.dtype is not None:
        print("--dtype only applies to --config/--stream runs; "
              "experiments pin their own precision", file=sys.stderr)
        return 2
    if not args.experiments:
        print("nothing to run: pass experiment ids or --config",
              file=sys.stderr)
        return 2
    unknown = [e for e in args.experiments if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    for name in args.experiments:
        runner = EXPERIMENTS[name]
        kwargs = {}
        if args.nodes is not None:
            kwargs["num_nodes"] = args.nodes
        if args.steps is not None:
            kwargs["num_steps"] = args.steps
        # Drop overrides the runner does not accept (e.g. fig12 uses
        # train_steps/test_steps instead of num_steps).
        accepted = runner.__code__.co_varnames[: runner.__code__.co_argcount]
        all_names = set(accepted) | set(
            runner.__code__.co_varnames[
                : runner.__code__.co_argcount + runner.__code__.co_kwonlyargcount
            ]
        )
        kwargs = {k: v for k, v in kwargs.items() if k in all_names}
        print(f"== {name} {kwargs or ''}")
        started = time.perf_counter()
        result = runner(**kwargs)
        elapsed = time.perf_counter() - started
        print(result.format())
        print(f"[{elapsed:.1f}s]\n")
    return 0


def _command_demo(args: argparse.Namespace) -> int:
    dataset = load_alibaba_like(num_nodes=args.nodes, num_steps=args.steps)
    config = PipelineConfig.small(
        num_clusters=args.clusters,
        budget=args.budget,
        initial_collection=max(50, args.steps // 4),
        retrain_interval=max(50, args.steps // 4),
    )
    result = Engine(config).run(dataset.resource("cpu"))
    print(f"dataset: {dataset.name} ({args.nodes} nodes, {args.steps} steps)")
    print(result.summary())
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lint import (
        changed_files,
        lint_paths,
        render_github,
        render_json,
        render_text,
    )

    rules = None
    if args.rules is not None:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    changed = None
    if args.changed is not None:
        try:
            changed = changed_files(args.changed)
        except Exception as exc:
            print(
                f"--changed {args.changed}: git diff failed: {exc}",
                file=sys.stderr,
            )
            return 2
    try:
        result = lint_paths(
            args.paths or None,
            rules=rules,
            runtime=args.runtime,
            sanitize=args.sanitize,
            cache_path=Path(args.cache) if args.cache else None,
            changed=changed,
        )
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(result))
    elif args.format == "github":
        output = render_github(result)
        if output:
            print(output)
    else:
        print(render_text(result, show_waived=args.show_waived))
    return result.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "demo":
        return _command_demo(args)
    if args.command == "lint":
        return _command_lint(args)
    parser.print_help()
    return 1


if __name__ == "__main__":
    sys.exit(main())
