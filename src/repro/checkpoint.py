"""Versioned, portable checkpoints for streaming sessions.

A :class:`Checkpoint` is the durable form of a live
:class:`~repro.session.StreamSession`: the resolved
:class:`~repro.core.config.PipelineConfig`, the session's metadata
(fleet shape, policy, clock, ingestion counters) and the full nested
component state assembled from the ``get_state``/``set_state``
contracts of :class:`~repro.simulation.fleet.FleetState`,
:class:`~repro.simulation.transport.Channel`,
:class:`~repro.core.ring.SlotRing`,
:class:`~repro.clustering.dynamic.DynamicClusterTracker` and every
:class:`~repro.forecasting.bank.ForecasterBank` (including
``ObjectBank``-wrapped ARIMA/LSTM/user models via the
:meth:`~repro.forecasting.base.Forecaster.get_state` protocol).

On disk a checkpoint is a single ``.npz`` archive: every numpy array in
the state tree is stored as its own archive member, and one JSON
*manifest* member carries the format version, the resolved config and
all non-array state with placeholders pointing at the array members.
Array members are written **uncompressed** (``ZIP_STORED``) so
:meth:`Checkpoint.load` can map them straight off disk
(``mmap=True``): each member becomes a copy-on-write
:class:`numpy.memmap` view of the archive, and the session restore
path *adopts* those views in place of freshly allocated columns — a
resume at N=1M never holds two copies of the state.  The manifest
itself stays deflated, and archives from older builds (whose array
members are deflated) load transparently through the in-memory path,
member by member.  The artifact is portable — no pickling, nothing
process-specific — and :meth:`Checkpoint.load` rejects unknown format
versions loudly instead of misinterpreting them.

Resuming is exact by construction: every component contract captures
all forward-relevant state (including RNG streams), and the round-trip
test suite pins a resumed session bit-identical to one that never
stopped, for every registered transmission policy and forecaster bank.
"""

from __future__ import annotations

import io
import json
import os
import zipfile
from pathlib import Path
from typing import Any, Dict, List, Mapping, Tuple, Union

import numpy as np

from repro.exceptions import CheckpointError


def _library_version() -> str:
    """``repro.__version__``, resolved lazily (import-cycle safe)."""
    import repro

    return getattr(repro, "__version__", "unknown")

#: Format version written into every manifest; bumped on any change to
#: the artifact layout or the component state contracts.
CHECKPOINT_FORMAT_VERSION = 1

#: Archive member holding the JSON manifest.
_MANIFEST_MEMBER = "manifest.json"

#: Placeholder key marking an extracted array in the manifest tree.
_ARRAY_KEY = "__array__"


def _encode(value: Any, arrays: Dict[str, np.ndarray], path: str) -> Any:
    """Recursively split a state tree into JSON-able data + arrays.

    Numpy arrays are pulled out into ``arrays`` under sequential keys
    and replaced by ``{"__array__": key}`` placeholders; scalars, dicts
    and lists pass through.  Anything else is a contract violation and
    raises :class:`CheckpointError` naming the offending path.
    """
    if isinstance(value, np.ndarray):
        key = f"a{len(arrays)}"
        arrays[key] = value
        return {_ARRAY_KEY: key}
    if isinstance(value, np.generic):
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        encoded = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise CheckpointError(
                    f"state key {k!r} at {path!r} is not a string"
                )
            if k == _ARRAY_KEY:
                raise CheckpointError(
                    f"state key {_ARRAY_KEY!r} at {path!r} collides with "
                    "the checkpoint array placeholder"
                )
            encoded[k] = _encode(v, arrays, f"{path}.{k}")
        return encoded
    if isinstance(value, (list, tuple)):
        return [
            _encode(v, arrays, f"{path}[{i}]") for i, v in enumerate(value)
        ]
    raise CheckpointError(
        f"state value of type {type(value).__name__} at {path!r} is not "
        "checkpoint-serializable; get_state must return JSON-able "
        "scalars, dicts, lists and numpy arrays"
    )


def _decode(value: Any, arrays: Mapping[str, np.ndarray], path: str) -> Any:
    """Reassemble a state tree from manifest data + archive arrays."""
    if isinstance(value, dict):
        if set(value) == {_ARRAY_KEY}:
            key = value[_ARRAY_KEY]
            try:
                return arrays[key]
            except KeyError:
                raise CheckpointError(
                    f"checkpoint is missing array member {key!r} "
                    f"referenced at {path!r} (truncated artifact?)"
                ) from None
        return {k: _decode(v, arrays, f"{path}.{k}") for k, v in value.items()}
    if isinstance(value, list):
        return [
            _decode(v, arrays, f"{path}[{i}]") for i, v in enumerate(value)
        ]
    return value


def _mmap_member(
    path: Path, info: zipfile.ZipInfo
) -> "np.ndarray | None":
    """Map one stored ``.npy`` archive member copy-on-write, or ``None``.

    Only ``ZIP_STORED`` members are mappable (their bytes sit verbatim
    in the archive).  The member's data offset is recovered from its
    *local* file header — the central-directory ``header_offset`` plus
    the 30-byte fixed header plus the local name/extra lengths, which
    may differ from the central directory's.  The ``.npy`` header is
    then parsed in place and the payload wrapped in a ``mode='c'``
    :class:`numpy.memmap`: reads come straight off the page cache,
    writes are private to this process, and nothing is persisted back.

    Returns ``None`` whenever the member cannot be mapped (deflated
    legacy archives, zero-size payloads, fortran order, exotic npy
    versions) — the caller falls back to the in-memory loader.
    """
    if info.compress_type != zipfile.ZIP_STORED:
        return None
    try:
        with open(path, "rb") as handle:
            handle.seek(info.header_offset)
            local = handle.read(30)
            if len(local) != 30 or local[:4] != b"PK\x03\x04":
                return None
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            handle.seek(info.header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                header = np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                header = np.lib.format.read_array_header_2_0(handle)
            else:
                return None
            shape, fortran, dtype = header
            if fortran or dtype.hasobject:
                return None
            if int(np.prod(shape)) == 0:
                # Zero pages to map; a plain empty array is equivalent.
                return np.empty(shape, dtype=dtype)
            return np.memmap(
                path, dtype=dtype, mode="c", offset=handle.tell(),
                shape=shape, order="C",
            )
    except (OSError, ValueError):
        return None


class Checkpoint:
    """A session's durable state: resolved config + metadata + state tree.

    Instances are produced by :meth:`repro.session.StreamSession.
    snapshot` and consumed by :meth:`repro.api.Engine.resume`; they can
    round-trip through disk via :meth:`save`/:meth:`load`.

    Args:
        config: The resolved pipeline config in
            :meth:`~repro.core.config.PipelineConfig.to_dict` form.
        session: Session metadata (fleet shape, policy name, clock,
            reorder window, ingestion counters, factory provenance).
        state: Nested component state assembled from the
            ``get_state`` contracts.
        version: Checkpoint format version (current on creation).
        library_version: ``repro.__version__`` that wrote the artifact
            (informational — compatibility is governed by ``version``).
    """

    def __init__(
        self,
        *,
        config: Dict[str, Any],
        session: Dict[str, Any],
        state: Dict[str, Any],
        version: int = CHECKPOINT_FORMAT_VERSION,
        library_version: str = "",
    ) -> None:
        self.config = config
        self.session = session
        self.state = state
        self.version = int(version)
        self.library_version = library_version or _library_version()
        self._adoptable = False

    def claim_adoption(self) -> bool:
        """Claim this checkpoint's arrays for zero-copy adoption — once.

        Only checkpoints loaded with ``mmap=True`` are adoptable: their
        arrays are private copy-on-write views this object owns, so the
        first restorer may take them as live columns instead of copying.
        The claim is one-shot — a second restore of the same object gets
        ``False`` and must copy, preventing two sessions from silently
        aliasing the same state.  Snapshots of live sessions are never
        adoptable (their arrays would tie the checkpoint to the restored
        session's mutations).
        """
        if not self._adoptable:
            return False
        self._adoptable = False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        meta = self.session
        return (
            f"Checkpoint(v{self.version}, N={meta.get('num_nodes')}, "
            f"d={meta.get('num_resources')}, t={meta.get('time')}, "
            f"policy={meta.get('policy')!r})"
        )

    # ------------------------------------------------------------------
    # Disk round-trip
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Write the checkpoint as one ``.npz``-style archive.

        The write is atomic: the archive is assembled in a sibling
        temporary file and renamed over ``path``, so a crash mid-save
        (the very failure checkpoints exist to survive) can never
        destroy a previous good checkpoint at the same path.

        Array members are written ``ZIP_STORED`` (uncompressed) so a
        later :meth:`load` with ``mmap=True`` can map them off disk
        without inflating anything; the manifest stays deflated.

        Returns:
            The path written.
        """
        arrays: Dict[str, np.ndarray] = {}
        manifest = {
            "format_version": self.version,
            "library_version": self.library_version,
            "config": self.config,
            "session": _encode(self.session, arrays, "session"),
            "state": _encode(self.state, arrays, "state"),
        }
        path = Path(path)
        scratch = path.with_name(path.name + f".tmp-{os.getpid()}")
        try:
            with zipfile.ZipFile(
                scratch, "w", zipfile.ZIP_DEFLATED
            ) as archive:
                archive.writestr(
                    _MANIFEST_MEMBER, json.dumps(manifest, indent=2)
                )
                for key, array in arrays.items():
                    buffer = io.BytesIO()
                    np.save(buffer, np.asarray(array), allow_pickle=False)
                    archive.writestr(
                        f"{key}.npy",
                        buffer.getvalue(),
                        compress_type=zipfile.ZIP_STORED,
                    )
            os.replace(scratch, path)
        finally:
            scratch.unlink(missing_ok=True)
        return path

    @classmethod
    def load(
        cls, path: Union[str, Path], *, mmap: bool = False
    ) -> "Checkpoint":
        """Read a checkpoint written by :meth:`save`.

        Args:
            mmap: Map stored array members copy-on-write instead of
                reading them into memory.  The resulting checkpoint is
                *adoptable* (see :meth:`claim_adoption`): the first
                session to restore it takes the mapped views as its live
                columns, so resuming an N=1M fleet never materializes a
                second copy of the state.  Members that cannot be mapped
                (deflated archives from older builds) silently fall back
                to the in-memory loader, member by member.

        Raises:
            CheckpointError: On a corrupt artifact, a missing manifest,
                or a format version this build does not understand.
        """
        path = Path(path)
        try:
            with zipfile.ZipFile(path, "r") as archive:
                names = set(archive.namelist())
                if _MANIFEST_MEMBER not in names:
                    raise CheckpointError(
                        f"{path} has no {_MANIFEST_MEMBER}; not a repro "
                        "checkpoint"
                    )
                manifest = json.loads(archive.read(_MANIFEST_MEMBER))
                arrays: Dict[str, np.ndarray] = {}
                for name in names - {_MANIFEST_MEMBER}:
                    array = None
                    if mmap:
                        array = _mmap_member(path, archive.getinfo(name))
                    if array is None:
                        with archive.open(name) as member:
                            array = np.load(
                                io.BytesIO(member.read()),
                                allow_pickle=False,
                            )
                    arrays[name[: -len(".npy")]] = array
        except zipfile.BadZipFile as exc:
            raise CheckpointError(f"{path} is not a checkpoint: {exc}") from exc
        version = manifest.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has format version {version!r}; this "
                f"build reads version {CHECKPOINT_FORMAT_VERSION} — "
                "re-snapshot with a matching library version"
            )
        checkpoint = cls(
            config=manifest["config"],
            session=_decode(manifest["session"], arrays, "session"),
            state=_decode(manifest["state"], arrays, "state"),
            version=int(version),
            library_version=manifest.get("library_version", "unknown"),
        )
        checkpoint._adoptable = bool(mmap)
        return checkpoint


def encode_state(state: Any) -> Tuple[Any, Dict[str, np.ndarray]]:
    """Validate a state tree against the checkpoint contract.

    Public wrapper over the serializer used by :meth:`Checkpoint.save`:
    returns the JSON-able manifest form plus the extracted arrays, and
    raises :class:`CheckpointError` naming the offending path when the
    tree contains anything a checkpoint cannot carry.  The runtime
    contract verifier (``repro lint --runtime``) uses this to prove
    every registered component's ``get_state`` is serializable without
    writing an artifact.
    """
    arrays: Dict[str, np.ndarray] = {}
    return _encode(state, arrays, "state"), arrays


def state_equal(a: Any, b: Any) -> bool:
    """Deep equality over state trees, strict about arrays.

    Arrays must match in dtype, shape and bytes (NaNs compare equal —
    a resumed NaN is still the same state); dicts and lists compare
    structurally; scalars compare by ``==`` with ``bool``/``int``
    distinguished so a resume cannot silently coerce types.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return False
        if a.dtype != b.dtype or a.shape != b.shape:
            return False
        return bool(np.array_equal(a, b, equal_nan=a.dtype.kind == "f"))
    if isinstance(a, Mapping) and isinstance(b, Mapping):
        if set(a) != set(b):
            return False
        return all(state_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return False
        return all(state_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, bool) != isinstance(b, bool):
        return False
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (a != a and b != b)
    return bool(a == b)


def as_checkpoint(
    source: Union[Checkpoint, str, Path], *, mmap: bool = False
) -> Checkpoint:
    """Coerce a checkpoint-or-path into a loaded :class:`Checkpoint`.

    ``mmap`` applies only when ``source`` is a path (see
    :meth:`Checkpoint.load`); an already-loaded checkpoint passes
    through untouched.
    """
    if isinstance(source, Checkpoint):
        return source
    if isinstance(source, (str, Path)):
        return Checkpoint.load(source, mmap=mmap)
    raise CheckpointError(
        f"expected a Checkpoint or a path, got {type(source).__name__}"
    )


def config_mismatch(
    checkpoint_config: Mapping[str, Any], engine_config: Mapping[str, Any]
) -> List[Tuple[str, Any, Any]]:
    """Leaf-level differences between two resolved config dicts.

    Returns ``(dotted.path, checkpoint_value, engine_value)`` triples —
    empty when the configs agree — so mismatch errors can name exactly
    what diverged instead of dumping both dicts.
    """
    diffs: List[Tuple[str, Any, Any]] = []

    def walk(a: Any, b: Any, path: str) -> None:
        if isinstance(a, Mapping) and isinstance(b, Mapping):
            for key in sorted(set(a) | set(b)):
                walk(
                    a.get(key, "<missing>"),
                    b.get(key, "<missing>"),
                    f"{path}.{key}" if path else str(key),
                )
        elif a != b:
            diffs.append((path, a, b))

    walk(checkpoint_config, engine_config, "")
    return diffs


__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "Checkpoint",
    "as_checkpoint",
    "config_mismatch",
    "encode_state",
    "state_equal",
]
