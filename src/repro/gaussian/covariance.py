"""Covariance estimation for the Gaussian monitoring baselines.

The methods of Silvestri et al. (ICDCS 2015), used as comparison points
in Sec. VI-E of the paper, model node measurements as a multivariate
Gaussian whose covariance is estimated during a training phase in which
*every* node transmits.  With 500 training samples for ~100 nodes the
raw sample covariance is poorly conditioned, so a small shrinkage toward
the diagonal is applied before inversion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError


@dataclass(frozen=True)
class GaussianModel:
    """Mean vector and (regularized) covariance of node measurements.

    Attributes:
        mean: Shape ``(N,)``.
        covariance: Shape ``(N, N)``, symmetric positive definite after
            shrinkage.
    """

    mean: np.ndarray
    covariance: np.ndarray

    @property
    def num_nodes(self) -> int:
        return int(self.mean.shape[0])

    def correlation(self) -> np.ndarray:
        """Correlation matrix derived from the covariance."""
        std = np.sqrt(np.diag(self.covariance))
        std = np.where(std > 1e-12, std, 1.0)
        return self.covariance / np.outer(std, std)


def estimate_gaussian(
    samples: np.ndarray, *, shrinkage: float = 0.05
) -> GaussianModel:
    """Estimate a Gaussian model from training samples.

    Args:
        samples: Shape ``(T, N)``: rows are time slots, columns nodes.
        shrinkage: Convex shrinkage weight toward the diagonal,
            ``Σ ← (1 − λ)·Σ̂ + λ·diag(Σ̂)``; also adds a small ridge so the
            matrix is invertible even with constant nodes.

    Returns:
        The fitted :class:`GaussianModel`.
    """
    data = np.asarray(samples, dtype=float)
    if data.ndim != 2:
        raise DataError(f"samples must be (T, N), got shape {data.shape}")
    if data.shape[0] < 2:
        raise DataError("need at least 2 samples to estimate covariance")
    if not 0.0 <= shrinkage <= 1.0:
        raise DataError(f"shrinkage must be in [0, 1], got {shrinkage}")
    mean = data.mean(axis=0)
    centered = data - mean
    cov = centered.T @ centered / (data.shape[0] - 1)
    diag = np.diag(np.diag(cov))
    cov = (1.0 - shrinkage) * cov + shrinkage * diag
    cov += 1e-9 * np.eye(cov.shape[0])
    return GaussianModel(mean=mean, covariance=cov)
