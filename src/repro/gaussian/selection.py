"""Monitor-selection strategies of the Gaussian baseline family.

The paper compares against three algorithms from Silvestri et al.
(ICDCS 2015) without restating them; our implementations follow the
descriptions in that line of work (see DESIGN.md §3 for the
interpretation note):

* **Top-W** — rank nodes by how strongly they explain the rest of the
  system (aggregate squared correlation) and keep the top W.
* **Batch Selection** — greedy forward selection that, at every step,
  adds the node giving the largest reduction in total posterior variance
  of the still-unobserved nodes (a submodular variance-reduction
  objective, evaluated jointly on the batch).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gaussian.covariance import GaussianModel


def top_w_selection(model: GaussianModel, num_monitors: int) -> List[int]:
    """Select the W nodes with the largest aggregate squared correlation.

    A node that is strongly correlated with many others is a good
    predictor of the whole system; ranking by ``Σ_j corr(i, j)²`` keeps
    the W most informative individual nodes (without accounting for
    redundancy among them — that is Batch Selection's job).
    """
    _check_count(model, num_monitors)
    corr = model.correlation()
    weight = (corr**2).sum(axis=1)
    order = np.argsort(-weight)
    return sorted(int(i) for i in order[:num_monitors])


def batch_selection(model: GaussianModel, num_monitors: int) -> List[int]:
    """Greedy joint selection minimizing total posterior variance.

    At each round the candidate ``s`` maximizing the variance reduction
    ``Σ_j Σ[j, s]² / Σ[s, s]`` on the *current residual covariance* is
    added, and the covariance is deflated by the chosen node's
    contribution (Schur complement step).  This accounts for redundancy:
    two highly correlated nodes will not both be picked early.
    """
    _check_count(model, num_monitors)
    residual = model.covariance.copy()
    num_nodes = model.num_nodes
    chosen: List[int] = []
    available = np.ones(num_nodes, dtype=bool)
    for _ in range(num_monitors):
        variances = np.diag(residual)
        gains = np.where(
            variances > 1e-12,
            (residual**2).sum(axis=0) / np.maximum(variances, 1e-12),
            -np.inf,
        )
        gains = np.where(available, gains, -np.inf)
        best = int(np.argmax(gains))
        if not np.isfinite(gains[best]):
            # Everything remaining is deterministic given the chosen set;
            # fill with arbitrary available nodes.
            best = int(np.flatnonzero(available)[0])
        chosen.append(best)
        available[best] = False
        pivot = residual[best, best]
        if pivot > 1e-12:
            column = residual[:, best].copy()
            residual -= np.outer(column, column) / pivot
    return sorted(chosen)


def random_selection(
    num_nodes: int, num_monitors: int, rng: np.random.Generator
) -> List[int]:
    """Uniformly random monitor set (the minimum-distance baseline)."""
    if num_monitors > num_nodes:
        raise ConfigurationError(
            f"cannot select {num_monitors} monitors from {num_nodes} nodes"
        )
    chosen = rng.choice(num_nodes, size=num_monitors, replace=False)
    return sorted(int(i) for i in chosen)


def _check_count(model: GaussianModel, num_monitors: int) -> None:
    if num_monitors < 1:
        raise ConfigurationError(
            f"num_monitors must be >= 1, got {num_monitors}"
        )
    if num_monitors > model.num_nodes:
        raise ConfigurationError(
            f"cannot select {num_monitors} monitors from "
            f"{model.num_nodes} nodes"
        )
