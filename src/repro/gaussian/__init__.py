"""Gaussian monitor-selection baselines (Silvestri et al., ICDCS 2015).

Used by the Sec. VI-E comparison (Fig. 12, Table IV).  See DESIGN.md §3
for how the Top-W / Top-W-Update / Batch Selection algorithms were
interpreted from the cited work.
"""

from repro.gaussian.covariance import GaussianModel, estimate_gaussian
from repro.gaussian.inference import infer_unobserved, posterior_variance
from repro.gaussian.monitor import (
    BatchSelectionScheme,
    MinimumDistanceScheme,
    MonitoringEvaluation,
    MonitoringScheme,
    ProposedMonitorScheme,
    TopWScheme,
    TopWUpdateScheme,
    evaluate_scheme,
)
from repro.gaussian.selection import (
    batch_selection,
    random_selection,
    top_w_selection,
)

__all__ = [
    "GaussianModel",
    "estimate_gaussian",
    "infer_unobserved",
    "posterior_variance",
    "BatchSelectionScheme",
    "MinimumDistanceScheme",
    "MonitoringEvaluation",
    "MonitoringScheme",
    "ProposedMonitorScheme",
    "TopWScheme",
    "TopWUpdateScheme",
    "evaluate_scheme",
    "batch_selection",
    "random_selection",
    "top_w_selection",
]
