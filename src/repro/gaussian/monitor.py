"""Train/test monitoring schemes for the Sec. VI-E comparison.

The setting (from [3]): a *training phase* where every node transmits
(B = 1) is used to pick ``K ≪ N`` monitors; during the *testing phase*
only the monitors transmit (B = K/N) and the controller estimates all
other nodes from the monitor readings.  There is no temporal forecasting.

Five schemes are implemented, matching Fig. 12 / Table IV:

* ``ProposedMonitorScheme`` — the paper's adaptation of its clustering:
  K-means over nodes (feature = the node's training time series), the
  node nearest each centroid becomes the monitor, and every node in a
  cluster is estimated by its monitor's reading.
* ``MinimumDistanceScheme`` — random monitors, other nodes assigned to
  the nearest monitor (in training-series distance).
* ``TopWScheme`` / ``BatchSelectionScheme`` — Gaussian model with the
  respective selection strategy, conditional-Gaussian inference.
* ``TopWUpdateScheme`` — Top-W that, during testing, keeps appending the
  reconstructed rows to its sample buffer and periodically re-estimates
  the covariance and re-selects monitors (much more expensive — the
  Table IV point).
"""

from __future__ import annotations

import abc
import time as _time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.clustering.kmeans import kmeans
from repro.core.metrics import instantaneous_rmse, time_averaged_rmse
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.gaussian.covariance import GaussianModel, estimate_gaussian
from repro.gaussian.inference import infer_unobserved
from repro.gaussian.selection import (
    batch_selection,
    random_selection,
    top_w_selection,
)


class MonitoringScheme(abc.ABC):
    """Train-then-monitor estimation scheme."""

    name: str = "abstract"

    def __init__(self, num_monitors: int) -> None:
        if num_monitors < 1:
            raise ConfigurationError("num_monitors must be >= 1")
        self.num_monitors = num_monitors
        self._monitors: Optional[List[int]] = None

    @property
    def monitors(self) -> List[int]:
        if self._monitors is None:
            raise NotFittedError(f"{self.name}: train() has not been called")
        return self._monitors

    @abc.abstractmethod
    def train(self, train_data: np.ndarray) -> None:
        """Fit from the all-transmit training phase, shape ``(T, N)``."""

    @abc.abstractmethod
    def estimate_step(self, true_row: np.ndarray) -> np.ndarray:
        """Estimate all nodes from monitor observations of one test slot.

        Args:
            true_row: The true values ``(N,)``; the scheme may only read
                the entries at its monitor indices.
        """

    def _observe(self, true_row: np.ndarray) -> np.ndarray:
        row = np.asarray(true_row, dtype=float)
        return row[np.asarray(self.monitors, dtype=int)]


class ProposedMonitorScheme(MonitoringScheme):
    """The paper's clustering-based monitor selection (Sec. VI-E)."""

    name = "proposed"

    def __init__(self, num_monitors: int, *, seed: Optional[int] = 0) -> None:
        super().__init__(num_monitors)
        self._rng = np.random.default_rng(seed)
        self._assignment: Optional[np.ndarray] = None

    def train(self, train_data: np.ndarray) -> None:
        data = np.asarray(train_data, dtype=float)
        if data.ndim != 2:
            raise DataError(f"train_data must be (T, N), got {data.shape}")
        features = data.T  # one row per node: its training time series
        result = kmeans(
            features, self.num_monitors, restarts=3, rng=self._rng
        )
        monitors: List[int] = []
        assignment = result.labels.copy()
        for j in range(self.num_monitors):
            members = np.flatnonzero(result.labels == j)
            diffs = features[members] - result.centroids[j]
            monitor = members[int(np.argmin(np.einsum("nd,nd->n", diffs, diffs)))]
            monitors.append(int(monitor))
        self._monitors = monitors
        self._assignment = assignment

    def estimate_step(self, true_row: np.ndarray) -> np.ndarray:
        if self._assignment is None:
            raise NotFittedError("train() has not been called")
        observed = self._observe(true_row)
        return observed[self._assignment]


class MinimumDistanceScheme(MonitoringScheme):
    """Random monitors + nearest-monitor assignment (Sec. VI-E baseline)."""

    name = "minimum_distance"

    def __init__(self, num_monitors: int, *, seed: Optional[int] = 0) -> None:
        super().__init__(num_monitors)
        self._rng = np.random.default_rng(seed)
        self._assignment: Optional[np.ndarray] = None

    def train(self, train_data: np.ndarray) -> None:
        data = np.asarray(train_data, dtype=float)
        if data.ndim != 2:
            raise DataError(f"train_data must be (T, N), got {data.shape}")
        num_nodes = data.shape[1]
        monitors = random_selection(num_nodes, self.num_monitors, self._rng)
        features = data.T
        monitor_features = features[monitors]
        diff = features[:, np.newaxis, :] - monitor_features[np.newaxis, :, :]
        sq = np.einsum("nkd,nkd->nk", diff, diff)
        assignment = np.argmin(sq, axis=1)
        for j, monitor in enumerate(monitors):
            assignment[monitor] = j
        self._monitors = monitors
        self._assignment = assignment

    def estimate_step(self, true_row: np.ndarray) -> np.ndarray:
        if self._assignment is None:
            raise NotFittedError("train() has not been called")
        observed = self._observe(true_row)
        return observed[self._assignment]


class TopWScheme(MonitoringScheme):
    """Gaussian model + Top-W one-shot monitor selection."""

    name = "top_w"

    def __init__(self, num_monitors: int, *, shrinkage: float = 0.0) -> None:
        super().__init__(num_monitors)
        self.shrinkage = shrinkage
        self._model: Optional[GaussianModel] = None

    def train(self, train_data: np.ndarray) -> None:
        self._model = estimate_gaussian(train_data, shrinkage=self.shrinkage)
        self._monitors = top_w_selection(self._model, self.num_monitors)

    def estimate_step(self, true_row: np.ndarray) -> np.ndarray:
        if self._model is None:
            raise NotFittedError("train() has not been called")
        observed = self._observe(true_row)
        return infer_unobserved(self._model, self.monitors, observed)


class BatchSelectionScheme(TopWScheme):
    """Gaussian model + greedy joint (batch) monitor selection."""

    name = "batch_selection"

    def train(self, train_data: np.ndarray) -> None:
        self._model = estimate_gaussian(train_data, shrinkage=self.shrinkage)
        self._monitors = batch_selection(self._model, self.num_monitors)


class TopWUpdateScheme(TopWScheme):
    """Top-W with periodic covariance re-estimation during testing."""

    name = "top_w_update"

    def __init__(
        self,
        num_monitors: int,
        *,
        shrinkage: float = 0.0,
        update_interval: int = 25,
        buffer_limit: int = 2000,
    ) -> None:
        super().__init__(num_monitors, shrinkage=shrinkage)
        if update_interval < 1:
            raise ConfigurationError("update_interval must be >= 1")
        self.update_interval = update_interval
        self.buffer_limit = buffer_limit
        self._buffer: List[np.ndarray] = []
        self._steps_since_update = 0

    def train(self, train_data: np.ndarray) -> None:
        super().train(train_data)
        self._buffer = [row.copy() for row in np.asarray(train_data, float)]
        self._steps_since_update = 0

    def estimate_step(self, true_row: np.ndarray) -> np.ndarray:
        estimate = super().estimate_step(true_row)
        # Feed the reconstructed row back into the sample buffer; the
        # monitors contribute truth, the rest contribute inferences.
        self._buffer.append(estimate.copy())
        if len(self._buffer) > self.buffer_limit:
            self._buffer = self._buffer[-self.buffer_limit :]
        self._steps_since_update += 1
        if self._steps_since_update >= self.update_interval:
            data = np.asarray(self._buffer)
            self._model = estimate_gaussian(data, shrinkage=self.shrinkage)
            self._monitors = top_w_selection(self._model, self.num_monitors)
            self._steps_since_update = 0
        return estimate


@dataclass
class MonitoringEvaluation:
    """RMSE and wall-clock of one scheme on one train/test split.

    Attributes:
        scheme: The scheme's name.
        rmse: Time-averaged RMSE over the testing phase (Eq. 4 style).
        train_seconds: Wall-clock of the training phase.
        test_seconds: Wall-clock of the testing phase.
    """

    scheme: str
    rmse: float
    train_seconds: float
    test_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.train_seconds + self.test_seconds


def evaluate_scheme(
    scheme: MonitoringScheme,
    train_data: np.ndarray,
    test_data: np.ndarray,
) -> MonitoringEvaluation:
    """Run the full train/test protocol and measure error and time."""
    train = np.asarray(train_data, dtype=float)
    test = np.asarray(test_data, dtype=float)
    if train.ndim != 2 or test.ndim != 2 or train.shape[1] != test.shape[1]:
        raise DataError("train/test must be (T, N) with matching N")
    start = _time.perf_counter()
    scheme.train(train)
    train_seconds = _time.perf_counter() - start

    errors = []
    start = _time.perf_counter()
    for t in range(test.shape[0]):
        estimate = scheme.estimate_step(test[t])
        errors.append(instantaneous_rmse(estimate, test[t]))
    test_seconds = _time.perf_counter() - start
    return MonitoringEvaluation(
        scheme=scheme.name,
        rmse=time_averaged_rmse(errors),
        train_seconds=train_seconds,
        test_seconds=test_seconds,
    )
