"""Conditional-Gaussian inference of unobserved nodes.

Given monitors ``S`` reporting values ``x_S``, the remaining nodes ``U``
are inferred by Gaussian conditioning:

    x̂_U = μ_U + Σ_US · Σ_SS⁻¹ · (x_S − μ_S)

which is the minimum-mean-square-error linear estimator under the model.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DataError
from repro.gaussian.covariance import GaussianModel


def infer_unobserved(
    model: GaussianModel,
    monitors: Sequence[int],
    observed: np.ndarray,
) -> np.ndarray:
    """Reconstruct the full measurement vector from monitor readings.

    Args:
        model: The fitted Gaussian model.
        monitors: Indices of the monitoring nodes ``S``.
        observed: Values measured at the monitors, aligned with
            ``monitors``.

    Returns:
        Array of shape ``(N,)``: monitor positions hold their observed
        values; all others hold the conditional mean.
    """
    num_nodes = model.num_nodes
    monitor_idx = np.asarray(list(monitors), dtype=int)
    values = np.asarray(observed, dtype=float)
    if monitor_idx.ndim != 1 or values.shape != monitor_idx.shape:
        raise DataError("monitors and observed must be 1-D and aligned")
    if monitor_idx.size == 0:
        return model.mean.copy()
    if monitor_idx.min() < 0 or monitor_idx.max() >= num_nodes:
        raise DataError("monitor index out of range")
    if np.unique(monitor_idx).size != monitor_idx.size:
        raise DataError("duplicate monitor indices")

    mask = np.zeros(num_nodes, dtype=bool)
    mask[monitor_idx] = True
    unobserved_idx = np.flatnonzero(~mask)

    out = np.empty(num_nodes)
    out[monitor_idx] = values
    if unobserved_idx.size == 0:
        return out

    sigma_ss = model.covariance[np.ix_(monitor_idx, monitor_idx)]
    sigma_us = model.covariance[np.ix_(unobserved_idx, monitor_idx)]
    residual = values - model.mean[monitor_idx]
    solved = np.linalg.solve(sigma_ss, residual)
    out[unobserved_idx] = model.mean[unobserved_idx] + sigma_us @ solved
    return out


def posterior_variance(
    model: GaussianModel, monitors: Sequence[int]
) -> np.ndarray:
    """Per-node posterior variance given the monitor set.

    ``var(x_U | x_S) = diag(Σ_UU − Σ_US Σ_SS⁻¹ Σ_SU)``; monitors have
    zero posterior variance.  Used by the Batch Selection objective.
    """
    num_nodes = model.num_nodes
    monitor_idx = np.asarray(list(monitors), dtype=int)
    variances = np.diag(model.covariance).copy()
    if monitor_idx.size == 0:
        return variances
    mask = np.zeros(num_nodes, dtype=bool)
    mask[monitor_idx] = True
    unobserved_idx = np.flatnonzero(~mask)
    variances[monitor_idx] = 0.0
    if unobserved_idx.size == 0:
        return variances
    sigma_ss = model.covariance[np.ix_(monitor_idx, monitor_idx)]
    sigma_us = model.covariance[np.ix_(unobserved_idx, monitor_idx)]
    solved = np.linalg.solve(sigma_ss, sigma_us.T)
    explained = np.einsum("ij,ji->i", sigma_us, solved)
    variances[unobserved_idx] = variances[unobserved_idx] - explained
    return np.maximum(variances, 0.0)
