"""repro — Online collection and forecasting of resource utilization.

A from-scratch reproduction of Tuor, Wang, Leung, Ko, *Online Collection
and Forecasting of Resource Utilization in Large-Scale Distributed
Systems* (ICDCS 2019).  The library provides:

* an adaptive Lyapunov drift-plus-penalty transmission policy that keeps
  each node's transmission frequency under a budget B (Sec. V-A);
* dynamic K-means clustering with Hungarian-matching re-indexing so
  cluster identities persist over time (Sec. V-B);
* per-cluster temporal forecasting (ARIMA / LSTM / sample-and-hold)
  executed through columnar :mod:`forecaster banks
  <repro.forecasting.bank>` — every cluster's model of a resource group
  batched into one fit/update/forecast call — with majority-vote
  membership forecasting and α-clipped per-node offsets (Sec. V-C);
* the evaluation substrate: synthetic stand-ins for the Alibaba,
  Bitbrains, Google and Intel-lab traces, the Gaussian monitor-selection
  baselines of Silvestri et al. (ICDCS 2015), metrics, and one
  experiment module per table/figure of the paper.

Quickstart::

    from repro import Engine, PipelineConfig
    from repro.datasets import load_alibaba_like

    dataset = load_alibaba_like(num_nodes=50, num_steps=400)
    engine = Engine(PipelineConfig.small())
    result = engine.run(dataset.resource("cpu"))
    print(result.rmse_by_horizon)

Every stage is pluggable by name through :mod:`repro.registry`
(forecasters, transmission policies, collection backends, similarity
measures); ``Engine.from_config`` additionally accepts a config dict or
a JSON file path, so deployments are constructible from plain data.
"""

from repro.api import Engine, RunResult
from repro.checkpoint import CHECKPOINT_FORMAT_VERSION, Checkpoint
from repro.core import (
    ClusteringConfig,
    ForecastingConfig,
    OnlinePipeline,
    PipelineConfig,
    PipelineResult,
    TransmissionConfig,
    run_pipeline,
)
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    ConvergenceError,
    DataError,
    NotFittedError,
    ReproError,
    SimulationError,
)
from repro.forecasting.bank import ForecasterBank, ObjectBank
from repro.registry import (
    COLLECTION_BACKENDS,
    FORECASTERS,
    FORECASTER_BANKS,
    SCENARIOS,
    SIMILARITY_MEASURES,
    TRANSMISSION_POLICIES,
    Registry,
)
from repro.session import StreamSession
from repro.simulation.fleet import FleetState

__version__ = "1.8.0"

__all__ = [
    "Engine",
    "FleetState",
    "RunResult",
    "StreamSession",
    "Checkpoint",
    "CHECKPOINT_FORMAT_VERSION",
    "ClusteringConfig",
    "ForecastingConfig",
    "OnlinePipeline",
    "PipelineConfig",
    "PipelineResult",
    "TransmissionConfig",
    "run_pipeline",
    "ForecasterBank",
    "ObjectBank",
    "Registry",
    "COLLECTION_BACKENDS",
    "FORECASTERS",
    "FORECASTER_BANKS",
    "SCENARIOS",
    "SIMILARITY_MEASURES",
    "TRANSMISSION_POLICIES",
    "CheckpointError",
    "ConfigurationError",
    "ConvergenceError",
    "DataError",
    "NotFittedError",
    "ReproError",
    "SimulationError",
    "__version__",
]
