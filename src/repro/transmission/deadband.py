"""Deadband (send-on-delta) transmission baseline.

The adaptive-sampling literature the paper positions against ([13]–[17]:
ARIMA-driven sampling, set-similarity collection, etc.) transmits when
the local value deviates from the last transmitted value by more than a
threshold δ.  Its defining weakness — the paper's Sec. II argument — is
that the *transmission frequency is only implicit*: it depends on the
data's volatility, so an operator cannot budget bandwidth.  This policy
exists to demonstrate exactly that (see the deadband ablation
experiment).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DataError
from repro.registry import (
    register_collection_backend,
    register_transmission_policy,
)
from repro.transmission.base import TransmissionPolicy


class DeadbandTransmissionPolicy(TransmissionPolicy):
    """Transmit when ``(1/d)·||z − x||² > delta²``.

    Args:
        delta: Deadband half-width on the per-dimension RMS deviation;
            transmission happens when the stored value drifts beyond it.
    """

    def __init__(self, delta: float) -> None:
        super().__init__()
        if delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {delta}")
        self.delta = delta

    def decide(self, current: np.ndarray, stored: np.ndarray) -> bool:
        cur = np.atleast_1d(np.asarray(current, dtype=float))
        sto = np.atleast_1d(np.asarray(stored, dtype=float))
        if cur.shape != sto.shape:
            raise DataError(
                f"current shape {cur.shape} != stored shape {sto.shape}"
            )
        deviation = float(np.mean((sto - cur) ** 2))
        transmit = deviation > self.delta**2
        self._record(transmit)
        return transmit


def simulate_deadband_collection(trace: np.ndarray, delta: float):
    """Vectorized deadband collection over a full trace.

    Args:
        trace: True measurements, shape ``(T, N)`` or ``(T, N, d)``.
        delta: Deadband half-width.

    Returns:
        A :class:`~repro.simulation.collection.CollectionResult`.
    """
    from repro.core.types import validate_trace
    from repro.simulation.collection import CollectionResult

    if delta <= 0:
        raise ConfigurationError(f"delta must be positive, got {delta}")
    data = validate_trace(trace)
    num_steps, num_nodes, _ = data.shape
    stored_now = data[0].copy()
    stored = np.empty_like(data)
    decisions = np.zeros((num_steps, num_nodes), dtype=int)
    decisions[0, :] = 1
    stored[0] = stored_now
    threshold = delta**2
    for t in range(1, num_steps):
        deviation = np.mean((stored_now - data[t]) ** 2, axis=1)
        transmit = deviation > threshold
        stored_now = np.where(transmit[:, np.newaxis], data[t], stored_now)
        decisions[t] = transmit
        stored[t] = stored_now
    return CollectionResult(stored=stored, decisions=decisions)


@register_transmission_policy("deadband")
def _build_deadband(config, node_id: int) -> DeadbandTransmissionPolicy:
    return DeadbandTransmissionPolicy(config.deadband_delta)


@register_collection_backend("deadband")
def _collect_deadband(trace: np.ndarray, config):
    return simulate_deadband_collection(trace, config.deadband_delta)
