"""Deadband (send-on-delta) transmission baseline.

The adaptive-sampling literature the paper positions against ([13]–[17]:
ARIMA-driven sampling, set-similarity collection, etc.) transmits when
the local value deviates from the last transmitted value by more than a
threshold δ.  Its defining weakness — the paper's Sec. II argument — is
that the *transmission frequency is only implicit*: it depends on the
data's volatility, so an operator cannot budget bandwidth.  This policy
exists to demonstrate exactly that (see the deadband ablation
experiment).
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

from repro.exceptions import ConfigurationError, DataError
from repro.registry import (
    register_collection_backend,
    register_slot_kernel,
    register_transmission_policy,
)
from repro.transmission.base import TransmissionPolicy


def deadband_transmit_slot(
    x: np.ndarray,
    stored: np.ndarray,
    observed: np.ndarray,
    threshold: Union[float, np.ndarray],
) -> np.ndarray:
    """One fleet-wide deadband slot: transmit on drift beyond ``δ²``.

    The batched form of :meth:`DeadbandTransmissionPolicy.decide`
    (fresh nodes transmit unconditionally, like the forced first
    transmission).  Shared by the whole-trace deadband collection and
    the streaming session's vectorized slot.

    Args:
        x: Fresh measurements, shape ``(n, d)``.
        stored: Stored values ``z_t``, shape ``(n, d)``.
        observed: Bool ``(n,)`` — False forces the initial transmission.
        threshold: The *squared* deadband half-width ``δ²`` (scalar or
            per-node), pre-squared by the caller so the comparison is
            bit-identical to the scalar policy's ``delta**2``.

    Returns:
        Bool ``(n,)`` transmission decisions.
    """
    deviation = ((stored - x) ** 2).mean(axis=1)
    return (deviation > threshold) | ~observed


@register_slot_kernel("deadband")
def _deadband_slot_kernel(config) -> Callable:
    threshold = config.deadband_delta ** 2

    def kernel(x, stored, observed, state, times):
        return deadband_transmit_slot(x, stored, observed, threshold)

    return kernel


class DeadbandTransmissionPolicy(TransmissionPolicy):
    """Transmit when ``(1/d)·||z − x||² > delta²``.

    Args:
        delta: Deadband half-width on the per-dimension RMS deviation;
            transmission happens when the stored value drifts beyond it.
    """

    def __init__(self, delta: float) -> None:
        super().__init__()
        if delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {delta}")
        self.delta = delta

    def decide(self, current: np.ndarray, stored: np.ndarray) -> bool:
        cur = np.atleast_1d(np.asarray(current, dtype=float))
        sto = np.atleast_1d(np.asarray(stored, dtype=float))
        if cur.shape != sto.shape:
            raise DataError(
                f"current shape {cur.shape} != stored shape {sto.shape}"
            )
        deviation = float(np.mean((sto - cur) ** 2))
        transmit = deviation > self.delta**2
        self._record(transmit)
        return transmit


def simulate_deadband_collection(trace: np.ndarray, delta: float):
    """Vectorized deadband collection over a full trace.

    Args:
        trace: True measurements, shape ``(T, N)`` or ``(T, N, d)``.
        delta: Deadband half-width.

    Returns:
        A :class:`~repro.simulation.collection.CollectionResult`.
    """
    from repro.core.types import validate_trace
    from repro.simulation.collection import CollectionResult

    if delta <= 0:
        raise ConfigurationError(f"delta must be positive, got {delta}")
    data = validate_trace(trace)
    num_steps, num_nodes, _ = data.shape
    stored_now = np.zeros_like(data[0])
    observed = np.zeros(num_nodes, dtype=bool)
    stored = np.empty_like(data)
    decisions = np.zeros((num_steps, num_nodes), dtype=int)
    threshold = delta**2
    for t in range(num_steps):
        transmit = deadband_transmit_slot(
            data[t], stored_now, observed, threshold
        )
        stored_now = np.where(transmit[:, np.newaxis], data[t], stored_now)
        observed |= transmit
        decisions[t] = transmit
        stored[t] = stored_now
    return CollectionResult(stored=stored, decisions=decisions)


@register_transmission_policy("deadband")
def _build_deadband(config, node_id: int) -> DeadbandTransmissionPolicy:
    return DeadbandTransmissionPolicy(config.deadband_delta)


@register_collection_backend("deadband")
def _collect_deadband(trace: np.ndarray, config):
    return simulate_deadband_collection(trace, config.deadband_delta)
