"""Perfect (always-transmit) transmission policy.

The streaming counterpart of the ``"perfect"`` collection backend:
every node transmits every slot (B = 1), so the central store is never
stale.  Useful as the no-staleness reference in live deployments and
for isolating clustering/forecasting error from collection error.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.registry import register_slot_kernel, register_transmission_policy
from repro.transmission.base import TransmissionPolicy


class PerfectTransmissionPolicy(TransmissionPolicy):
    """Transmit unconditionally every slot (stateless)."""

    def decide(self, current: np.ndarray, stored: np.ndarray) -> bool:
        self._record(True)
        return True


@register_transmission_policy("perfect")
def _build_perfect(config, node_id: int) -> PerfectTransmissionPolicy:
    return PerfectTransmissionPolicy()


@register_slot_kernel("perfect")
def _perfect_slot_kernel(config) -> Callable:
    def kernel(x, stored, observed, state, times):
        return np.ones(x.shape[0], dtype=bool)

    return kernel
