"""Abstract interface for per-node transmission policies (Sec. V-A).

A transmission policy runs at each local node and decides, once per time
slot, whether to send the node's current measurement to the central node.
Policies see the current measurement ``x_{i,t}`` and the value currently
stored at the central node ``z_{i,t}`` (which the node can track itself,
since it knows what it last transmitted).
"""

from __future__ import annotations

import abc
from typing import List

import numpy as np


class TransmissionPolicy(abc.ABC):
    """Decides per slot whether a node transmits its measurement."""

    def __init__(self) -> None:
        self._decisions: List[int] = []

    @abc.abstractmethod
    def decide(self, current: np.ndarray, stored: np.ndarray) -> bool:
        """Return True if the node should transmit this slot.

        Implementations must call :meth:`_record` with the decision so the
        empirical frequency statistics stay consistent.

        Args:
            current: The node's fresh measurement ``x_{i,t}`` (d-vector).
            stored: The stale value ``z_{i,t}`` the central node would keep
                if no transmission happens (d-vector).
        """

    def first_transmission(self) -> None:
        """Account for a forced initial transmission.

        The very first measurement of a node must always be sent (the
        central node has no value for it yet).  Policies override this to
        charge that send against their budget state; the default simply
        records the decision.
        """
        self._record(True)

    def _record(self, transmitted: bool) -> None:
        self._decisions.append(1 if transmitted else 0)

    def record_batch(self, decisions: np.ndarray) -> None:
        """Append one decision per slot for a whole batch run at once.

        Used by vectorized engines that compute many slots' decisions in
        a single array operation and then fast-forward the per-node
        policy objects, keeping :attr:`decisions` and
        :attr:`empirical_frequency` consistent with a slot-by-slot run.
        """
        self._decisions.extend(
            np.asarray(decisions, dtype=int).ravel().tolist()
        )

    @property
    def fleet_scalar_state(self) -> float:
        """The policy's scalar accumulator, mirrored into the columnar
        :attr:`FleetState.policy_state
        <repro.simulation.fleet.FleetState.policy_state>` column (the
        Lyapunov virtual queue for the adaptive policy, the rate
        accumulator for uniform sampling; 0.0 for stateless policies).
        """
        return 0.0

    @property
    def decisions(self) -> np.ndarray:
        """Binary history of decisions, one entry per slot."""
        return np.asarray(self._decisions, dtype=int)

    @property
    def empirical_frequency(self) -> float:
        """Fraction of slots in which the node transmitted so far."""
        if not self._decisions:
            return 0.0
        return float(np.mean(self._decisions))

    def get_state(self) -> dict:
        """Forward-relevant policy state for checkpoints.

        The checkpoint protocol: :meth:`get_state` returns a dict of
        JSON-able scalars / numpy arrays, and :meth:`set_state` restores
        it so that every future :meth:`decide` is bit-identical to a
        policy that never stopped.  Diagnostic histories
        (:attr:`decisions`, queue samples) are deliberately *not*
        captured — they grow with the stream and do not influence future
        decisions; session-level frequency accounting survives through
        the transport counters instead.  Stateless policies need not
        override.
        """
        return {}

    def set_state(self, state: dict) -> None:
        """Restore the state captured by :meth:`get_state`."""

    def reset(self) -> None:
        """Clear decision history and any internal state."""
        self._decisions.clear()
