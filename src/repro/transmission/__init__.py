"""Transmission policies: when does a local node send its measurement.

Implements the paper's adaptive Lyapunov drift-plus-penalty policy
(Sec. V-A), the uniform-sampling baseline it is compared against in
Fig. 4, the deadband (send-on-delta) baseline of the related-work
ablation, and the perfect (always-transmit) reference.

Each policy exists in two bit-identical forms: the per-node
:class:`~repro.transmission.base.TransmissionPolicy` object, and a
vectorized *slot kernel* (``*_transmit_slot``) evaluating one slot's
decisions for a whole fleet in one array operation — registered in
:data:`repro.registry.SLOT_KERNELS` and used by the batch collection
recurrences and streaming sessions.
"""

from repro.transmission.adaptive import (
    AdaptiveTransmissionPolicy,
    adaptive_transmit_slot,
)
from repro.transmission.base import TransmissionPolicy
from repro.transmission.deadband import (
    DeadbandTransmissionPolicy,
    deadband_transmit_slot,
    simulate_deadband_collection,
)
from repro.transmission.perfect import PerfectTransmissionPolicy
from repro.transmission.uniform import (
    UniformTransmissionPolicy,
    uniform_transmit_slot,
)

__all__ = [
    "AdaptiveTransmissionPolicy",
    "TransmissionPolicy",
    "DeadbandTransmissionPolicy",
    "PerfectTransmissionPolicy",
    "UniformTransmissionPolicy",
    "adaptive_transmit_slot",
    "deadband_transmit_slot",
    "simulate_deadband_collection",
    "uniform_transmit_slot",
]
