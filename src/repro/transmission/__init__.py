"""Transmission policies: when does a local node send its measurement.

Implements the paper's adaptive Lyapunov drift-plus-penalty policy
(Sec. V-A) and the uniform-sampling baseline it is compared against in
Fig. 4.
"""

from repro.transmission.adaptive import AdaptiveTransmissionPolicy
from repro.transmission.base import TransmissionPolicy
from repro.transmission.deadband import (
    DeadbandTransmissionPolicy,
    simulate_deadband_collection,
)
from repro.transmission.uniform import UniformTransmissionPolicy

__all__ = [
    "AdaptiveTransmissionPolicy",
    "TransmissionPolicy",
    "DeadbandTransmissionPolicy",
    "simulate_deadband_collection",
    "UniformTransmissionPolicy",
]
