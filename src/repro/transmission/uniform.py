"""Uniform-sampling transmission baseline (Sec. VI-B, Fig. 4).

Transmits at a fixed interval so that the average transmission frequency
equals the budget ``B``, regardless of how much the measurement changed.
For non-integer ``1/B`` an error-diffusion accumulator is used so the
long-run empirical frequency still converges to exactly ``B``.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.registry import register_slot_kernel, register_transmission_policy
from repro.transmission.base import TransmissionPolicy


def uniform_transmit_slot(
    observed: np.ndarray,
    accumulators: np.ndarray,
    budgets: Union[float, np.ndarray],
) -> np.ndarray:
    """One fleet-wide slot of the error-diffusion sampling recurrence.

    The batched form of :meth:`UniformTransmissionPolicy.decide` (nodes
    past their forced first transmission advance their accumulator;
    fresh nodes transmit without touching it, exactly like
    ``first_transmission``).  Shared by the whole-trace collection
    recurrence and the streaming session's vectorized slot.

    Args:
        observed: Bool ``(n,)`` — False forces the initial transmission.
        accumulators: Rate accumulators, shape ``(n,)``; advanced in
            place for observed nodes.
        budgets: Target frequency ``B`` (scalar or per-node ``(n,)``).

    Returns:
        Bool ``(n,)`` transmission decisions.
    """
    # Stay in the accumulator column's dtype (see the adaptive kernel):
    # a scalar budget must not promote float32 state through float64.
    budgets = np.asarray(budgets, dtype=accumulators.dtype)
    accumulators += budgets * observed
    crossed = (accumulators >= 1.0) & observed
    accumulators[crossed] -= 1.0
    return crossed | ~observed


@register_slot_kernel("uniform")
def _uniform_slot_kernel(config) -> Callable:
    budget = config.budget

    def kernel(x, stored, observed, state, times):
        return uniform_transmit_slot(observed, state, budget)

    return kernel


class UniformTransmissionPolicy(TransmissionPolicy):
    """Fixed-rate transmission at frequency ``B``.

    Args:
        budget: Target frequency ``B`` in (0, 1].
        phase: Initial accumulator value in [0, 1); lets a fleet of nodes
            stagger their transmissions instead of synchronizing.
    """

    def __init__(self, budget: float, *, phase: float = 0.0) -> None:
        super().__init__()
        if not 0.0 < budget <= 1.0:
            raise ConfigurationError(f"budget must be in (0, 1], got {budget}")
        if not 0.0 <= phase < 1.0:
            raise ConfigurationError(f"phase must be in [0, 1), got {phase}")
        self.budget = budget
        self.phase = phase
        self._accumulator = phase

    @property
    def fleet_scalar_state(self) -> float:
        return self._accumulator

    def decide(self, current: np.ndarray, stored: np.ndarray) -> bool:
        """Transmit whenever the rate accumulator crosses 1.

        ``current``/``stored`` are ignored — this policy is oblivious to
        the data, which is exactly what Fig. 4 contrasts against.
        """
        self._accumulator += self.budget
        transmit = self._accumulator >= 1.0
        if transmit:
            self._accumulator -= 1.0
        self._record(transmit)
        return transmit

    def sync_batch(
        self, decisions: np.ndarray, final_accumulator: float
    ) -> None:
        """Fast-forward the policy past a vectorized batch run.

        Args:
            decisions: Binary decisions for the processed slots.
            final_accumulator: Accumulator value after the last slot.
        """
        self.record_batch(decisions)
        self._accumulator = float(final_accumulator)

    def get_state(self) -> Dict[str, object]:
        return {"accumulator": self._accumulator}

    def set_state(self, state: Dict[str, object]) -> None:
        self._accumulator = float(state["accumulator"])

    def reset(self) -> None:
        super().reset()
        self._accumulator = self.phase


@register_transmission_policy("uniform")
def _build_uniform(config, node_id: int) -> UniformTransmissionPolicy:
    # Phase 0 for determinism; pass a custom policy_factory to stagger
    # a fleet (e.g. ``phase=node_id / num_nodes``).
    return UniformTransmissionPolicy(config.budget)
