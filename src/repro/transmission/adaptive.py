"""Adaptive transmission via Lyapunov drift-plus-penalty (Sec. V-A).

Each node maintains a virtual queue ``Q_i(t)`` measuring accumulated
violation of its transmission budget ``B_i``.  Per slot it picks

    β_{i,t} = argmin_{β ∈ {0,1}}  V_t · F_{i,t}(β) + Q_i(t) · Y_i(β)

with penalty ``F_{i,t}(0) = (1/d)·||z_{i,t} − x_{i,t}||²``, ``F_{i,t}(1) =
0``, budget drift ``Y_i(β) = β − B_i``, and time-increasing weight
``V_t = V0 · (t+1)^γ``.  The queue then updates as ``Q_i(t+1) = Q_i(t) +
Y_i(β_{i,t})``.

Lyapunov-optimization theory guarantees the long-run empirical frequency
converges to ``B_i`` (the constraint is met with equality since extra
transmissions never hurt RMSE), while transmissions concentrate on slots
where the stored value has drifted most from the truth.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

import numpy as np

from repro.core.config import TransmissionConfig
from repro.exceptions import DataError
from repro.registry import register_slot_kernel, register_transmission_policy
from repro.transmission.base import TransmissionPolicy

#: Per-node parameters accepted by the batched kernels: one shared
#: scalar or a per-node ``(n,)`` array.
Param = Union[float, np.ndarray]


def adaptive_transmit_slot(
    x: np.ndarray,
    stored: np.ndarray,
    observed: np.ndarray,
    queues: np.ndarray,
    times: Union[int, np.ndarray],
    budgets: Param,
    v0s: Param,
    gammas: Param,
) -> np.ndarray:
    """One fleet-wide slot of the drift-plus-penalty recurrence.

    Evaluates, for a batch of ``n`` nodes at once, exactly what
    :meth:`AdaptiveTransmissionPolicy.decide` (or
    :meth:`~AdaptiveTransmissionPolicy.first_transmission` for nodes
    that have not observed anything yet) computes per node — element-wise
    operations keep every node's arithmetic bit-identical to the scalar
    path.  Shared by the whole-trace collection recurrence and the
    streaming session's vectorized slot.

    Args:
        x: Fresh measurements ``x_t``, shape ``(n, d)``.
        stored: The nodes' mirrors of the stored values ``z_t``, shape
            ``(n, d)`` (rows of not-yet-observed nodes are ignored).
        observed: Bool ``(n,)`` — False forces the initial transmission.
        queues: Virtual queues ``Q_i(t)``, shape ``(n,)``; updated in
            place with this slot's drift.
        times: Per-node decision counts (``(n,)`` or a shared scalar).
        budgets: Budget ``B`` (scalar or per-node).
        v0s: Control weight ``V0`` (scalar or per-node).
        gammas: Growth exponent ``γ`` (scalar or per-node).

    Returns:
        Bool ``(n,)`` transmission decisions ``β_{i,t}``.
    """
    dim = x.shape[1]
    # Run the whole recurrence in the queue column's dtype: scalar
    # parameters from a float32 pipeline would otherwise promote every
    # intermediate to float64 and make the streaming slot diverge from
    # the batched recurrence (exact no-op for float64 — python-float
    # parameters and int slot clocks cast losslessly).
    dtype = queues.dtype
    budgets = np.asarray(budgets, dtype=dtype)
    v0s = np.asarray(v0s, dtype=dtype)
    gammas = np.asarray(gammas, dtype=dtype)
    v_t = v0s * (np.asarray(times, dtype=dtype) + dtype.type(1.0)) ** gammas
    penalty = ((stored - x) ** 2).sum(axis=1) / dim
    objective_skip = v_t * penalty - queues * budgets
    objective_send = queues * (dtype.type(1.0) - budgets)
    transmit = (objective_send < objective_skip) | ~observed
    queues += transmit - budgets
    return transmit


@register_slot_kernel("adaptive")
def _adaptive_slot_kernel(config: TransmissionConfig) -> Callable:
    budget, v0, gamma = config.budget, config.v0, config.gamma

    def kernel(x, stored, observed, state, times):
        return adaptive_transmit_slot(
            x, stored, observed, state, times, budget, v0, gamma
        )

    return kernel


class AdaptiveTransmissionPolicy(TransmissionPolicy):
    """Drift-plus-penalty transmission controller for one node.

    Args:
        config: Budget ``B`` and control parameters ``V0``, ``γ``.
    """

    def __init__(self, config: TransmissionConfig = TransmissionConfig()) -> None:
        super().__init__()
        self.config = config
        self._queue = 0.0
        self._time = 0
        self._queue_history: List[float] = []

    @property
    def queue_length(self) -> float:
        """Current virtual queue length ``Q_i(t)``."""
        return self._queue

    @property
    def fleet_scalar_state(self) -> float:
        return self._queue

    @property
    def queue_history(self) -> np.ndarray:
        """``Q_i(t)`` sampled before every decision."""
        return np.asarray(self._queue_history, dtype=float)

    def penalty(self, current: np.ndarray, stored: np.ndarray) -> float:
        """The no-transmit penalty ``F_{i,t}(0) = (1/d)·||z − x||²``."""
        cur = np.atleast_1d(np.asarray(current, dtype=float))
        sto = np.atleast_1d(np.asarray(stored, dtype=float))
        if cur.shape != sto.shape:
            raise DataError(
                f"current shape {cur.shape} != stored shape {sto.shape}"
            )
        dim = cur.shape[0]
        return float(np.sum((sto - cur) ** 2) / dim)

    def first_transmission(self) -> None:
        """Charge the forced initial send against the virtual queue."""
        self._queue_history.append(self._queue)
        self._queue += 1.0 - self.config.budget
        self._time += 1
        self._record(True)

    def decide(self, current: np.ndarray, stored: np.ndarray) -> bool:
        """Evaluate the drift-plus-penalty objective for β ∈ {0, 1}.

        Objective values:
            β = 0:  V_t · F_{i,t}(0) + Q(t) · (0 − B)
            β = 1:  V_t · 0          + Q(t) · (1 − B)

        Transmit when the β = 1 objective is strictly smaller.
        """
        self._queue_history.append(self._queue)
        v_t = self.config.v0 * (self._time + 1) ** self.config.gamma
        budget = self.config.budget
        objective_skip = v_t * self.penalty(current, stored) - self._queue * budget
        objective_send = self._queue * (1.0 - budget)
        transmit = objective_send < objective_skip
        self._queue += (1.0 if transmit else 0.0) - budget
        # The queue is deliberately left signed: negative values are
        # accumulated *credit* from quiet periods, which is what lets the
        # long-run frequency meet the budget with equality (the paper's
        # Fig. 3) instead of quantizing to 1/ceil(1/B).  Clipping at zero
        # (Neely's inequality-constraint queue) would only enforce <= B.
        self._time += 1
        self._record(transmit)
        return transmit

    def sync_batch(
        self,
        decisions: np.ndarray,
        queue_samples: np.ndarray,
        final_queue: float,
    ) -> None:
        """Fast-forward the policy past a vectorized batch run.

        Args:
            decisions: Binary decisions for the processed slots.
            queue_samples: ``Q_i(t)`` sampled before each decision,
                aligned with ``decisions``.
            final_queue: Queue value after the last processed slot.
        """
        self.record_batch(decisions)
        self._queue_history.extend(
            np.asarray(queue_samples, dtype=float).ravel().tolist()
        )
        self._queue = float(final_queue)
        self._time += int(np.size(decisions))

    def get_state(self) -> Dict[str, object]:
        return {"queue": self._queue, "time": self._time}

    def set_state(self, state: Dict[str, object]) -> None:
        self._queue = float(state["queue"])
        self._time = int(state["time"])

    def reset(self) -> None:
        super().reset()
        self._queue = 0.0
        self._time = 0
        self._queue_history.clear()


@register_transmission_policy("adaptive")
def _build_adaptive(config: TransmissionConfig, node_id: int) -> AdaptiveTransmissionPolicy:
    return AdaptiveTransmissionPolicy(config)
