"""Deprecation plumbing for the historical entry points.

The deprecated shims (:func:`repro.core.pipeline.run_pipeline`,
:class:`repro.simulation.system.MonitoringSystem`) warn exactly once per
process — enough to be seen, quiet enough that a driver looping over an
old entry point is not flooded.  Everything else in the library is
warning-free, so users can run under ``-W error::DeprecationWarning``.
"""

from __future__ import annotations

import warnings
from typing import Set

_WARNED: Set[str] = set()


def warn_once(key: str, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` for ``key`` on the first call only."""
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Forget which deprecations already warned (test isolation hook)."""
    _WARNED.clear()
