"""Clustering substrate: K-means, matching, and dynamic cluster tracking.

Implements Sec. V-B of the paper plus the clustering baselines used in
the evaluation (static offline clustering and random minimum-distance
clustering).
"""

from repro.clustering.dynamic import DynamicClusterTracker
from repro.clustering.kmeans import KMeansResult, kmeans, kmeans_plus_plus_init
from repro.clustering.matching import (
    assignment_total,
    maximum_weight_assignment,
    minimum_cost_assignment,
)
from repro.clustering.minimum_distance import MinimumDistanceClustering
from repro.clustering.similarity import (
    intersection_similarity_from_labels,
    intersection_similarity_matrix,
    jaccard_similarity_from_labels,
    jaccard_similarity_matrix,
    persistent_labels,
    similarity_matrix,
    similarity_matrix_from_labels,
)
from repro.clustering.static import StaticClustering
from repro.clustering.windowing import WindowedFeatureBuilder, windowed_features

__all__ = [
    "DynamicClusterTracker",
    "KMeansResult",
    "kmeans",
    "kmeans_plus_plus_init",
    "assignment_total",
    "maximum_weight_assignment",
    "minimum_cost_assignment",
    "MinimumDistanceClustering",
    "intersection_similarity_from_labels",
    "intersection_similarity_matrix",
    "jaccard_similarity_from_labels",
    "jaccard_similarity_matrix",
    "persistent_labels",
    "similarity_matrix",
    "similarity_matrix_from_labels",
    "StaticClustering",
    "WindowedFeatureBuilder",
    "windowed_features",
]
