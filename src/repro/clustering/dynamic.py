"""Dynamic cluster construction over time (Sec. V-B).

At every time slot the central node:

1. runs K-means on the currently stored measurements ``z_t``;
2. re-indexes the resulting clusters against the previous ``M`` partitions
   by solving a maximum-weight bipartite matching on the similarity
   measure (Eq. 10–11), so cluster ``j``'s identity persists over time;
3. records the re-indexed partition and centroids, forming one time series
   of centroids per cluster — the input to the forecasting stage.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Set

import numpy as np

from repro.clustering.kmeans import kmeans
from repro.clustering.matching import maximum_weight_assignment
from repro.clustering.similarity import similarity_matrix_from_labels
from repro.core.types import ClusterAssignment
from repro.exceptions import ConfigurationError, DataError


class DynamicClusterTracker:
    """Tracks an evolving K-cluster partition of node measurements.

    Args:
        num_clusters: Number of clusters K.
        history_depth: Look-back ``M`` of the similarity measure.
        similarity: ``"intersection"`` (paper, Eq. 10) or ``"jaccard"``.
        restarts: K-means++ restarts per step.
        seed: Seed of the internal RNG (reproducible clustering).
        warm_start: When True, seed each step's K-means with the previous
            step's centroids (a natural speed optimization for slowly
            moving data).  The paper does not specify this; default off.
    """

    def __init__(
        self,
        num_clusters: int,
        *,
        history_depth: int = 1,
        similarity: str = "intersection",
        restarts: int = 3,
        seed: Optional[int] = None,
        warm_start: bool = False,
    ) -> None:
        if num_clusters < 1:
            raise ConfigurationError(
                f"num_clusters must be >= 1, got {num_clusters}"
            )
        if history_depth < 1:
            raise ConfigurationError(
                f"history_depth must be >= 1, got {history_depth}"
            )
        self.num_clusters = num_clusters
        self.history_depth = history_depth
        self.similarity = similarity
        self.restarts = restarts
        self.warm_start = warm_start
        self._rng = np.random.default_rng(seed)
        # Re-indexed labels of the last `history_depth` slots — the raw
        # material of the Eq. 10 similarity (kept as arrays so the
        # contingency is one bincount, not per-node set building).
        self._label_window: Deque[np.ndarray] = deque(maxlen=history_depth)
        self._previous_centroids: Optional[np.ndarray] = None
        self._centroid_history: List[np.ndarray] = []
        self._assignments: List[ClusterAssignment] = []
        self._time = 0
        self._dim: Optional[int] = None

    @property
    def time(self) -> int:
        """Number of updates performed so far."""
        return self._time

    @property
    def assignments(self) -> Sequence[ClusterAssignment]:
        """All re-indexed assignments so far, oldest first."""
        return self._assignments

    @property
    def _partition_history(self) -> List[List[Set[int]]]:
        """Remembered partitions as node-id sets (compatibility view).

        The tracker stores label arrays internally; this rebuilds the
        set-of-sets form of each remembered slot on demand.
        """
        return [
            [
                set(np.flatnonzero(labels == j).tolist())
                for j in range(self.num_clusters)
            ]
            for labels in self._label_window
        ]

    def centroid_series(self, cluster: int) -> np.ndarray:
        """Time series of centroids for ``cluster``, shape ``(t, d)``.

        Before the first update the series is empty but keeps a
        consistent 2-D shape: ``(0, d)`` once the dimensionality is
        known, ``(0, 1)`` otherwise.
        """
        if cluster < 0 or cluster >= self.num_clusters:
            raise ConfigurationError(
                f"cluster {cluster} outside [0, {self.num_clusters})"
            )
        if not self._centroid_history:
            return np.empty((0, self._dim if self._dim is not None else 1))
        return np.stack([c[cluster] for c in self._centroid_history])

    def centroid_tensor(self) -> np.ndarray:
        """Centroid series of every cluster at once, shape ``(t, K, d)``.

        ``centroid_tensor()[:, j]`` equals :meth:`centroid_series`
        ``(j)``; this is the batched form consumed by the forecaster
        banks.  Before the first update the tensor is empty with a
        consistent shape: ``(0, K, d)`` once the dimensionality is
        known, ``(0, K, 1)`` otherwise.
        """
        if not self._centroid_history:
            return np.empty((
                0,
                self.num_clusters,
                self._dim if self._dim is not None else 1,
            ))
        return np.stack(self._centroid_history)

    def update(
        self,
        values: np.ndarray,
        features: Optional[np.ndarray] = None,
    ) -> ClusterAssignment:
        """Cluster one time slot of stored measurements.

        Args:
            values: Shape ``(N, d)`` (or ``(N,)``) — the measurements
                ``z_t`` used to compute the reported centroids.
            features: Optional shape ``(N, f)`` feature matrix to run
                K-means on instead of ``values`` (used for temporal-window
                clustering, Fig. 5).  Reported centroids are always means
                of ``values`` so different feature choices stay comparable.

        Returns:
            The re-indexed :class:`ClusterAssignment` for this slot.
        """
        data = np.asarray(values, dtype=float)
        if data.ndim == 1:
            data = data[:, np.newaxis]
        if data.ndim != 2:
            raise DataError(f"values must be (N, d), got shape {data.shape}")
        feats = data if features is None else np.asarray(features, dtype=float)
        if feats.ndim == 1:
            feats = feats[:, np.newaxis]
        if feats.shape[0] != data.shape[0]:
            raise DataError(
                f"features rows {feats.shape[0]} != values rows {data.shape[0]}"
            )

        if self.num_clusters >= data.shape[0]:
            # Degenerate K = N case (each node its own cluster, used by
            # the paper's sample-and-hold-per-node comparison): identity
            # labels are already maximally persistent, so K-means and
            # re-indexing are skipped.
            return self._identity_update(data)

        initial = None
        if (
            self.warm_start
            and self._previous_centroids is not None
            and features is None
        ):
            initial = self._previous_centroids
        result = kmeans(
            feats,
            self.num_clusters,
            restarts=self.restarts,
            rng=self._rng,
            initial_centroids=initial,
        )
        labels = result.labels

        if self._label_window:
            labels = self._reindex(labels)
        centroids = self._value_centroids(data, labels)

        self._label_window.append(np.asarray(labels, dtype=int).copy())
        self._centroid_history.append(centroids)
        self._dim = data.shape[1]
        if features is None:
            self._previous_centroids = centroids
        assignment = ClusterAssignment(
            time=self._time, labels=labels, centroids=centroids
        )
        self._assignments.append(assignment)
        self._time += 1
        return assignment

    # ------------------------------------------------------------------
    # Fleet churn (node-axis remapping)
    # ------------------------------------------------------------------

    def reindex_nodes(
        self, index_map: np.ndarray, *, fill_label: int = 0
    ) -> None:
        """Remap the node axis of every remembered labelling.

        Fleet churn renumbers nodes; the similarity window (Eq. 10) and
        the recorded assignments are node-aligned label arrays, so both
        are rebuilt as ``new[i] = old[index_map[i]]``, with joined
        nodes (``index_map[i] == -1``) backfilled with ``fill_label``.
        The whole assignment history is remapped — not just the
        window — so the checkpoint contract (one stackable ``(t, N)``
        label matrix) keeps holding after churn.  Centroid histories
        are per-cluster and unaffected.

        Args:
            index_map: int array, one entry per *new* node: the old
                node index it descends from, or ``-1`` for a join.
            fill_label: Cluster label assumed for a joined node's
                missing history (it corrects itself within one
                similarity window).
        """
        index_map = np.asarray(index_map, dtype=np.int64).ravel()
        fresh = index_map < 0
        gather = np.where(fresh, 0, index_map)

        def remap(labels: np.ndarray) -> np.ndarray:
            out = np.asarray(labels)[gather].copy()
            out[fresh] = int(fill_label)
            return out

        window = [remap(labels) for labels in self._label_window]
        self._label_window = deque(window, maxlen=self.history_depth)
        self._assignments = [
            ClusterAssignment(
                time=a.time, labels=remap(a.labels), centroids=a.centroids
            )
            for a in self._assignments
        ]

    # ------------------------------------------------------------------
    # Checkpoint state contract
    # ------------------------------------------------------------------

    def get_state(self) -> dict:
        """Serializable tracker state (checkpoint contract).

        Captures everything a future :meth:`update` depends on: the full
        re-indexed label and centroid histories (labels double as the
        similarity window; centroids are the forecasters' training
        data), the previous centroids used for empty-cluster fallback
        and warm starts, and the *exact* internal RNG state — K-means
        restarts draw from it, so bit-identical resumption requires the
        generator to continue mid-stream.
        """
        return {
            "num_clusters": self.num_clusters,
            "time": self._time,
            "dim": self._dim,
            "labels": (
                np.stack([a.labels for a in self._assignments])
                if self._assignments else None
            ),
            "centroids": (
                np.stack(self._centroid_history)
                if self._centroid_history else None
            ),
            "previous_centroids": (
                None if self._previous_centroids is None
                else self._previous_centroids.copy()
            ),
            "rng": self._rng.bit_generator.state,
        }

    def set_state(self, state: dict) -> None:
        """Restore a state captured by :meth:`get_state`."""
        if int(state["num_clusters"]) != self.num_clusters:
            raise ConfigurationError(
                f"state holds K={state['num_clusters']}, tracker has "
                f"K={self.num_clusters}"
            )
        self._time = int(state["time"])
        self._dim = None if state["dim"] is None else int(state["dim"])
        labels = state["labels"]
        centroids = state["centroids"]
        self._assignments = []
        self._centroid_history = []
        self._label_window = deque(maxlen=self.history_depth)
        if labels is not None:
            labels = np.asarray(labels)
            centroids = np.asarray(centroids, dtype=float)
            for t in range(labels.shape[0]):
                self._assignments.append(
                    ClusterAssignment(
                        time=t, labels=labels[t], centroids=centroids[t]
                    )
                )
                self._centroid_history.append(centroids[t])
            for row in labels[-self.history_depth:]:
                self._label_window.append(np.asarray(row, dtype=int).copy())
        previous = state["previous_centroids"]
        self._previous_centroids = (
            None if previous is None else np.asarray(previous, dtype=float)
        )
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng"]
        self._rng = rng

    def _identity_update(self, data: np.ndarray) -> ClusterAssignment:
        """K >= N: node i forms cluster i; extra clusters stay empty."""
        num_nodes = data.shape[0]
        labels = np.arange(num_nodes)
        if self.num_clusters == num_nodes:
            centroids = data.copy()
        else:
            centroids = self._value_centroids(data, labels)
        self._label_window.append(np.asarray(labels, dtype=int).copy())
        self._centroid_history.append(centroids)
        self._dim = data.shape[1]
        self._previous_centroids = centroids
        assignment = ClusterAssignment(
            time=self._time, labels=labels, centroids=centroids
        )
        self._assignments.append(assignment)
        self._time += 1
        return assignment

    def _reindex(self, labels: np.ndarray) -> np.ndarray:
        """Re-map raw K-means labels onto persistent historical indices.

        The Eq. 10 contingency is computed directly from the label
        arrays (one ``bincount``), so re-indexing costs O(N + K³)
        instead of O(N·K) Python-level set operations per slot.
        """
        weights = similarity_matrix_from_labels(
            self.similarity,
            labels,
            list(self._label_window),
            self.num_clusters,
        )
        phi = maximum_weight_assignment(weights)
        return phi[np.asarray(labels, dtype=int)].astype(
            labels.dtype, copy=False
        )

    def _value_centroids(
        self, values: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Mean of ``values`` per cluster; empty clusters keep the previous
        centroid (or the global mean on the first step)."""
        dim = values.shape[1]
        centroids = np.zeros((self.num_clusters, dim))
        for j in range(self.num_clusters):
            members = labels == j
            if members.any():
                centroids[j] = values[members].mean(axis=0)
            elif self._previous_centroids is not None and (
                self._previous_centroids.shape[1] == dim
            ):
                centroids[j] = self._previous_centroids[j]
            else:
                centroids[j] = values.mean(axis=0)
        return centroids
