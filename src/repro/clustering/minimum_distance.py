"""Minimum-distance (random-centroid) baseline (Sec. VI-C2).

At every time slot, K nodes are selected uniformly at random; their
measurements act as "centroids" and every other node is mapped to the
nearest selected node by Euclidean distance.  This models the behaviour
of compressed-sensing-style approaches that pick monitoring nodes at
random ([6]–[10] in the paper).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.types import ClusterAssignment
from repro.exceptions import ConfigurationError, DataError


class MinimumDistanceClustering:
    """Random-representative clustering, re-drawn every slot.

    Args:
        num_clusters: Number of representatives K drawn per slot.
        seed: RNG seed for representative selection.
    """

    def __init__(self, num_clusters: int, *, seed: Optional[int] = None) -> None:
        if num_clusters < 1:
            raise ConfigurationError(
                f"num_clusters must be >= 1, got {num_clusters}"
            )
        self.num_clusters = num_clusters
        self._rng = np.random.default_rng(seed)
        self._time = 0

    def update(self, values: np.ndarray) -> ClusterAssignment:
        """Cluster one slot of measurements around K random nodes.

        Args:
            values: Shape ``(N, d)`` or ``(N,)`` stored measurements.

        Returns:
            Assignment whose centroid ``j`` is the measurement of the j-th
            randomly selected representative node.
        """
        data = np.asarray(values, dtype=float)
        if data.ndim == 1:
            data = data[:, np.newaxis]
        if data.ndim != 2:
            raise DataError(f"values must be (N, d), got shape {data.shape}")
        num_nodes = data.shape[0]
        if self.num_clusters > num_nodes:
            raise ConfigurationError(
                f"num_clusters={self.num_clusters} exceeds N={num_nodes}"
            )
        representatives = self._rng.choice(
            num_nodes, size=self.num_clusters, replace=False
        )
        centroids = data[representatives]
        diff = data[:, np.newaxis, :] - centroids[np.newaxis, :, :]
        sq = np.einsum("nkd,nkd->nk", diff, diff)
        labels = np.argmin(sq, axis=1)
        # Representatives always belong to their own cluster (distance 0,
        # argmin picks the first zero which is themselves unless duplicates
        # exist; force it for determinism).
        for j, rep in enumerate(representatives):
            labels[rep] = j
        assignment = ClusterAssignment(
            time=self._time, labels=labels, centroids=centroids
        )
        self._time += 1
        return assignment
