"""Cluster-similarity measures used for re-indexing (Sec. V-B, Fig. 11).

The paper's measure (Eq. 10) counts the nodes that appear simultaneously
in a new K-means cluster and in the same historical cluster index across
the last ``M`` steps:

    w_{k,j} = | C'_{k,t} ∩ ⋂_{m=1..min(M, t−1)} C_{j,t−m} |

A normalized Jaccard-index variant (used by Greene et al. for community
matching, and compared against in Fig. 11) is also provided.

Two equivalent formulations exist side by side:

* the set-based functions (:func:`intersection_similarity_matrix`,
  :func:`jaccard_similarity_matrix`) operate on explicit node-id sets —
  the direct transcription of Eq. 10, kept as the readable reference;
* the label-based functions (:func:`similarity_matrix_from_labels` and
  friends) operate on ``(N,)`` label arrays and build the full ``(K, K)``
  contingency through one :func:`numpy.bincount` — no per-node Python
  work, which is what the per-slot re-indexing of a fleet-scale tracker
  uses.  Property tests pin both formulations bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, DataError
from repro.registry import SIMILARITY_MEASURES, register_similarity


def history_intersection(history: Sequence[Sequence[Set[int]]], cluster: int) -> Set[int]:
    """Intersect cluster ``cluster`` across all partitions in ``history``.

    Args:
        history: The most recent partitions, ordered oldest → newest; each
            partition is a sequence of node-id sets indexed by cluster id.
        cluster: Historical cluster index ``j``.

    Returns:
        ``⋂_m history[m][cluster]`` — nodes that stayed in cluster ``j``
        through every remembered step.
    """
    if not history:
        raise DataError("history must contain at least one partition")
    result = set(history[0][cluster])
    for partition in history[1:]:
        result &= partition[cluster]
    return result


def intersection_similarity_matrix(
    new_clusters: Sequence[Set[int]],
    history: Sequence[Sequence[Set[int]]],
) -> np.ndarray:
    """Build the paper's similarity matrix ``w`` (Eq. 10).

    Args:
        new_clusters: The K clusters from this step's K-means run,
            indexed by ``k``.
        history: Up to ``M`` previous (re-indexed) partitions, oldest
            first; each partition is indexed by the historical id ``j``.

    Returns:
        Matrix of shape ``(K, K)`` with ``w[k, j]``.
    """
    num_clusters = len(new_clusters)
    if any(len(p) != num_clusters for p in history):
        raise DataError("all partitions must have the same number of clusters")
    weights = np.zeros((num_clusters, num_clusters))
    persistent = [
        history_intersection(history, j) for j in range(num_clusters)
    ]
    for k, new in enumerate(new_clusters):
        new_set = set(new)
        for j in range(num_clusters):
            weights[k, j] = len(new_set & persistent[j])
    return weights


def jaccard_similarity_matrix(
    new_clusters: Sequence[Set[int]],
    history: Sequence[Sequence[Set[int]]],
) -> np.ndarray:
    """Jaccard-index similarity matrix (the Fig. 11 alternative).

    ``w[k, j] = |C'_k ∩ P_j| / |C'_k ∪ P_j|`` where ``P_j`` is the
    intersection of historical cluster ``j`` over the remembered steps.
    """
    num_clusters = len(new_clusters)
    if any(len(p) != num_clusters for p in history):
        raise DataError("all partitions must have the same number of clusters")
    weights = np.zeros((num_clusters, num_clusters))
    persistent = [
        history_intersection(history, j) for j in range(num_clusters)
    ]
    for k, new in enumerate(new_clusters):
        new_set = set(new)
        for j in range(num_clusters):
            union = new_set | persistent[j]
            if union:
                weights[k, j] = len(new_set & persistent[j]) / len(union)
    return weights


@dataclass(frozen=True)
class SimilarityMeasure:
    """A registered cluster-similarity measure.

    Both formulations of the same measure travel together so every
    consumer (readable set-based reference, vectorized label-based hot
    path) resolves through one registry name.

    Attributes:
        name: Registry key.
        from_sets: ``(new_clusters, history) -> (K, K)`` on node-id sets.
        from_labels: ``(new_labels, label_history, num_clusters) ->
            (K, K)`` on label arrays.
    """

    name: str
    from_sets: Callable[..., np.ndarray]
    from_labels: Callable[..., np.ndarray]


def similarity_matrix(
    kind: str,
    new_clusters: Sequence[Set[int]],
    history: Sequence[Sequence[Set[int]]],
) -> np.ndarray:
    """Dispatch on a similarity name registered in SIMILARITY_MEASURES."""
    return SIMILARITY_MEASURES.get(kind).from_sets(new_clusters, history)


# ----------------------------------------------------------------------
# Label-array formulation (vectorized re-indexing hot path)
# ----------------------------------------------------------------------


def _stack_label_history(
    label_history: Sequence[np.ndarray],
) -> np.ndarray:
    """Stack per-slot label arrays into ``(M, N)``.

    Partitions of different sizes (the fleet grew or shrank within the
    window) are right-padded with ``-1`` — node ids absent from a slot's
    partition belong to no cluster there, matching the set semantics.
    """
    if not len(label_history):
        raise DataError("history must contain at least one partition")
    arrays = [np.asarray(labels, dtype=int) for labels in label_history]
    for arr in arrays:
        if arr.ndim != 1:
            raise DataError(
                f"label arrays must be 1-D per slot, got shape {arr.shape}"
            )
    width = max(arr.shape[0] for arr in arrays)
    if all(arr.shape[0] == width for arr in arrays):
        return np.stack(arrays)
    stacked = np.full((len(arrays), width), -1, dtype=int)
    for m, arr in enumerate(arrays):
        stacked[m, : arr.shape[0]] = arr
    return stacked


def _persistent_from_stack(stacked: np.ndarray) -> np.ndarray:
    base = stacked[0]
    stable = (stacked == base).all(axis=0)
    return np.where(stable, base, -1)


def persistent_labels(label_history: Sequence[np.ndarray]) -> np.ndarray:
    """Per-node persistent cluster over a window of label arrays.

    Node ``i`` belongs to the persistent set ``P_j = ⋂_m C_{j,t−m}``
    exactly when its label equals ``j`` in *every* remembered partition —
    so each node has at most one persistent cluster.

    Args:
        label_history: The most recent re-indexed label arrays (each of
            shape ``(N,)``), ordered oldest → newest.  Arrays may differ
            in length when the fleet size changed; a node missing from
            any slot is not persistent.

    Returns:
        The persistent cluster of each node, or ``-1`` for nodes whose
        cluster changed (or that were absent) within the window; length
        is the widest partition in the window.
    """
    return _persistent_from_stack(_stack_label_history(label_history))


def _contingency(
    new_labels: np.ndarray, persistent: np.ndarray, num_clusters: int
) -> np.ndarray:
    """``(K, K)`` counts of nodes with ``new == k`` and ``persistent == j``.

    Node ids beyond either array's length exist only on one side and
    can never be in an intersection, so only the common prefix counts.
    """
    common = min(new_labels.shape[0], persistent.shape[0])
    mask = persistent[:common] >= 0
    flat = new_labels[:common][mask] * num_clusters + persistent[:common][mask]
    counts = np.bincount(flat, minlength=num_clusters * num_clusters)
    return counts.reshape(num_clusters, num_clusters).astype(float)


def intersection_similarity_from_labels(
    new_labels: np.ndarray,
    label_history: Sequence[np.ndarray],
    num_clusters: int,
) -> np.ndarray:
    """Eq. 10 similarity matrix from label arrays via one bincount.

    Equivalent to building the node-id sets and calling
    :func:`intersection_similarity_matrix`, without any per-node Python
    work.

    Args:
        new_labels: This step's raw K-means labels, shape ``(N,)``.
        label_history: Up to ``M`` previous re-indexed label arrays,
            oldest first.
        num_clusters: K (labels must lie in ``[0, K)``).

    Returns:
        Matrix of shape ``(K, K)`` with ``w[k, j]``.
    """
    labels, persistent = _validated_labels(
        new_labels, label_history, num_clusters
    )
    return _contingency(labels, persistent, num_clusters)


def jaccard_similarity_from_labels(
    new_labels: np.ndarray,
    label_history: Sequence[np.ndarray],
    num_clusters: int,
) -> np.ndarray:
    """Jaccard similarity matrix from label arrays (Fig. 11 variant)."""
    labels, persistent = _validated_labels(
        new_labels, label_history, num_clusters
    )
    intersection = _contingency(labels, persistent, num_clusters)
    new_sizes = np.bincount(labels, minlength=num_clusters).astype(float)
    persistent_sizes = np.bincount(
        persistent[persistent >= 0], minlength=num_clusters
    ).astype(float)
    union = new_sizes[:, np.newaxis] + persistent_sizes[np.newaxis, :]
    union -= intersection
    with np.errstate(divide="ignore", invalid="ignore"):
        weights = np.where(union > 0, intersection / union, 0.0)
    return weights


def _validated_labels(
    new_labels: np.ndarray,
    label_history: Sequence[np.ndarray],
    num_clusters: int,
) -> Tuple[np.ndarray, np.ndarray]:
    if num_clusters < 1:
        raise ConfigurationError(
            f"num_clusters must be >= 1, got {num_clusters}"
        )
    labels = np.asarray(new_labels, dtype=int)
    if labels.ndim != 1:
        raise DataError(
            f"new_labels must be 1-D, got shape {labels.shape}"
        )
    stacked = _stack_label_history(label_history)
    if labels.size and (labels.min() < 0 or labels.max() >= num_clusters):
        raise DataError(
            f"new_labels must lie in [0, {num_clusters}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    # -1 is the padding sentinel for absent node ids; anything below it
    # or at/above K cannot come from a valid partition.
    if stacked.size and (stacked.min() < -1 or stacked.max() >= num_clusters):
        raise DataError(
            f"history labels must lie in [0, {num_clusters}), got range "
            f"[{stacked.min()}, {stacked.max()}]"
        )
    return labels, _persistent_from_stack(stacked)


def similarity_matrix_from_labels(
    kind: str,
    new_labels: np.ndarray,
    label_history: Sequence[np.ndarray],
    num_clusters: int,
) -> np.ndarray:
    """Label-array twin of :func:`similarity_matrix`."""
    return SIMILARITY_MEASURES.get(kind).from_labels(
        new_labels, label_history, num_clusters
    )


register_similarity("intersection")(
    SimilarityMeasure(
        name="intersection",
        from_sets=intersection_similarity_matrix,
        from_labels=intersection_similarity_from_labels,
    )
)
register_similarity("jaccard")(
    SimilarityMeasure(
        name="jaccard",
        from_sets=jaccard_similarity_matrix,
        from_labels=jaccard_similarity_from_labels,
    )
)
