"""Cluster-similarity measures used for re-indexing (Sec. V-B, Fig. 11).

The paper's measure (Eq. 10) counts the nodes that appear simultaneously
in a new K-means cluster and in the same historical cluster index across
the last ``M`` steps:

    w_{k,j} = | C'_{k,t} ∩ ⋂_{m=1..min(M, t−1)} C_{j,t−m} |

A normalized Jaccard-index variant (used by Greene et al. for community
matching, and compared against in Fig. 11) is also provided.
"""

from __future__ import annotations

from typing import List, Sequence, Set

import numpy as np

from repro.exceptions import ConfigurationError, DataError


def history_intersection(history: Sequence[Sequence[Set[int]]], cluster: int) -> Set[int]:
    """Intersect cluster ``cluster`` across all partitions in ``history``.

    Args:
        history: The most recent partitions, ordered oldest → newest; each
            partition is a sequence of node-id sets indexed by cluster id.
        cluster: Historical cluster index ``j``.

    Returns:
        ``⋂_m history[m][cluster]`` — nodes that stayed in cluster ``j``
        through every remembered step.
    """
    if not history:
        raise DataError("history must contain at least one partition")
    result = set(history[0][cluster])
    for partition in history[1:]:
        result &= partition[cluster]
    return result


def intersection_similarity_matrix(
    new_clusters: Sequence[Set[int]],
    history: Sequence[Sequence[Set[int]]],
) -> np.ndarray:
    """Build the paper's similarity matrix ``w`` (Eq. 10).

    Args:
        new_clusters: The K clusters from this step's K-means run,
            indexed by ``k``.
        history: Up to ``M`` previous (re-indexed) partitions, oldest
            first; each partition is indexed by the historical id ``j``.

    Returns:
        Matrix of shape ``(K, K)`` with ``w[k, j]``.
    """
    num_clusters = len(new_clusters)
    if any(len(p) != num_clusters for p in history):
        raise DataError("all partitions must have the same number of clusters")
    weights = np.zeros((num_clusters, num_clusters))
    persistent = [
        history_intersection(history, j) for j in range(num_clusters)
    ]
    for k, new in enumerate(new_clusters):
        new_set = set(new)
        for j in range(num_clusters):
            weights[k, j] = len(new_set & persistent[j])
    return weights


def jaccard_similarity_matrix(
    new_clusters: Sequence[Set[int]],
    history: Sequence[Sequence[Set[int]]],
) -> np.ndarray:
    """Jaccard-index similarity matrix (the Fig. 11 alternative).

    ``w[k, j] = |C'_k ∩ P_j| / |C'_k ∪ P_j|`` where ``P_j`` is the
    intersection of historical cluster ``j`` over the remembered steps.
    """
    num_clusters = len(new_clusters)
    if any(len(p) != num_clusters for p in history):
        raise DataError("all partitions must have the same number of clusters")
    weights = np.zeros((num_clusters, num_clusters))
    persistent = [
        history_intersection(history, j) for j in range(num_clusters)
    ]
    for k, new in enumerate(new_clusters):
        new_set = set(new)
        for j in range(num_clusters):
            union = new_set | persistent[j]
            if union:
                weights[k, j] = len(new_set & persistent[j]) / len(union)
    return weights


def similarity_matrix(
    kind: str,
    new_clusters: Sequence[Set[int]],
    history: Sequence[Sequence[Set[int]]],
) -> np.ndarray:
    """Dispatch on the similarity kind (``"intersection"`` or ``"jaccard"``)."""
    if kind == "intersection":
        return intersection_similarity_matrix(new_clusters, history)
    if kind == "jaccard":
        return jaccard_similarity_matrix(new_clusters, history)
    raise ConfigurationError(f"unknown similarity kind {kind!r}")
