"""Maximum-weight bipartite matching via the Hungarian algorithm.

The cluster re-indexing step of Sec. V-B maps the K freshly computed
K-means clusters onto the K historical cluster indices so that the sum of
similarities ``Σ_k w_{k,φ(k)}`` is maximized (Eq. 11).  This is the
classic assignment problem; we implement the O(n³) Hungarian algorithm
(Jonker–Volgenant potentials variant) from scratch and expose both
min-cost and max-weight entry points.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError

_INF = float("inf")


def minimum_cost_assignment(cost: np.ndarray) -> np.ndarray:
    """Solve the square assignment problem, minimizing total cost.

    Args:
        cost: Square matrix of shape ``(n, n)``; ``cost[i, j]`` is the cost
            of assigning row ``i`` to column ``j``.

    Returns:
        Array ``assignment`` of shape ``(n,)`` where row ``i`` is assigned
        to column ``assignment[i]``; the assignment minimizes the total
        cost.
    """
    matrix = np.asarray(cost, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise DataError(f"cost matrix must be square, got shape {matrix.shape}")
    if not np.isfinite(matrix).all():
        raise DataError("cost matrix contains NaN or infinite entries")
    n = matrix.shape[0]
    if n == 0:
        return np.empty(0, dtype=int)

    # Jonker–Volgenant style shortest augmenting path algorithm with
    # 1-based sentinel row/column 0.
    u = np.zeros(n + 1)
    v = np.zeros(n + 1)
    # way[j] = predecessor column of column j on the augmenting path
    match = np.zeros(n + 1, dtype=int)  # match[j] = row matched to column j

    for i in range(1, n + 1):
        match[0] = i
        j0 = 0
        minv = np.full(n + 1, _INF)
        way = np.zeros(n + 1, dtype=int)
        used = np.zeros(n + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = match[j0]
            delta = _INF
            j1 = 0
            for j in range(1, n + 1):
                if used[j]:
                    continue
                cur = matrix[i0 - 1, j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u[match[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if match[j0] == 0:
                break
        # Augment along the path back to the sentinel.
        while j0 != 0:
            j1 = way[j0]
            match[j0] = match[j1]
            j0 = j1

    assignment = np.zeros(n, dtype=int)
    for j in range(1, n + 1):
        assignment[match[j] - 1] = j - 1
    return assignment


def maximum_weight_assignment(weights: np.ndarray) -> np.ndarray:
    """Solve the square assignment problem, maximizing total weight.

    This is the form used by Eq. 11 of the paper: rows are the K-means
    cluster indices ``k``, columns are the historical indices ``j``, and
    ``weights[k, j]`` is the similarity ``w_{k,j}``.

    Returns:
        Array ``phi`` where K-means cluster ``k`` maps to historical index
        ``phi[k]``.
    """
    matrix = np.asarray(weights, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise DataError(
            f"weight matrix must be square, got shape {matrix.shape}"
        )
    return minimum_cost_assignment(matrix.max() - matrix)


def assignment_total(weights: np.ndarray, assignment: np.ndarray) -> float:
    """Total weight of an assignment ``Σ_k weights[k, assignment[k]]``."""
    matrix = np.asarray(weights, dtype=float)
    idx = np.asarray(assignment, dtype=int)
    return float(matrix[np.arange(matrix.shape[0]), idx].sum())
