"""Temporal-window feature construction for clustering (Sec. V-B, Fig. 5).

The paper's clustering can optionally operate on extended feature vectors
containing a node's measurements over the last ``w`` time steps rather
than just the current one.  Fig. 5 sweeps this window length and finds
``w = 1`` best for the highly dynamic traces studied.  This module builds
those windowed feature matrices from a history of stored measurements.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

import numpy as np

from repro.exceptions import ConfigurationError, DataError


class WindowedFeatureBuilder:
    """Accumulates per-slot measurements and emits windowed features.

    Args:
        window: Number of most recent slots (including the current one)
            concatenated into each node's feature vector.
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window
        self._buffer: Deque[np.ndarray] = deque(maxlen=window)

    def push(self, values: np.ndarray) -> np.ndarray:
        """Add one slot of measurements and return the current features.

        Until ``window`` slots have been seen, the oldest available slot is
        repeated (zero-order hold backwards), so the feature dimension is
        constant from the first call.

        Args:
            values: Shape ``(N, d)`` or ``(N,)`` measurements for one slot.

        Returns:
            Feature matrix of shape ``(N, window * d)``, most recent slot
            last.
        """
        data = np.asarray(values, dtype=float)
        if data.ndim == 1:
            data = data[:, np.newaxis]
        if data.ndim != 2:
            raise DataError(f"values must be (N, d), got shape {data.shape}")
        if self._buffer and self._buffer[-1].shape != data.shape:
            raise DataError(
                f"inconsistent slot shape: {data.shape} after "
                f"{self._buffer[-1].shape}"
            )
        self._buffer.append(data)
        slots = list(self._buffer)
        while len(slots) < self.window:
            slots.insert(0, slots[0])
        return np.concatenate(slots, axis=1)

    def reset(self) -> None:
        """Drop all buffered history."""
        self._buffer.clear()


def windowed_features(trace: np.ndarray, window: int) -> np.ndarray:
    """Vectorized batch version over a full trace.

    Args:
        trace: Shape ``(T, N)`` or ``(T, N, d)``.
        window: Window length ``w``.

    Returns:
        Array of shape ``(T, N, w * d)`` where entry ``t`` holds the
        features a :class:`WindowedFeatureBuilder` would emit at slot
        ``t``.
    """
    arr = np.asarray(trace, dtype=float)
    if arr.ndim == 2:
        arr = arr[:, :, np.newaxis]
    if arr.ndim != 3:
        raise DataError(f"trace must be (T, N[, d]), got {arr.shape}")
    builder = WindowedFeatureBuilder(window)
    return np.stack([builder.push(arr[t]) for t in range(arr.shape[0])])
