"""K-means clustering implemented from scratch.

The paper's dynamic clustering step (Sec. V-B) runs K-means on the stored
measurements ``z_t`` at every time slot.  We implement Lloyd's algorithm
with k-means++ seeding, multiple restarts, and deterministic empty-cluster
repair (the farthest point from its centroid is promoted to a new
centroid), which matters because per-step data in this application is
often low-dimensional and tightly bunched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, DataError


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one K-means run.

    Attributes:
        labels: Shape ``(N,)`` cluster id per point.
        centroids: Shape ``(K, d)`` cluster centers.
        inertia: Sum of squared distances of points to assigned centroids.
        iterations: Lloyd iterations performed.
    """

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    iterations: int


def _squared_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, shape ``(N, K)``."""
    diff = points[:, np.newaxis, :] - centroids[np.newaxis, :, :]
    return np.einsum("nkd,nkd->nk", diff, diff)


def kmeans_plus_plus_init(
    points: np.ndarray, num_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """Select initial centroids with the k-means++ scheme.

    The first centroid is uniform over the points; each subsequent
    centroid is drawn with probability proportional to the squared
    distance from the nearest already-chosen centroid.
    """
    num_points = points.shape[0]
    first = int(rng.integers(num_points))
    chosen = [first]
    closest_sq = np.sum((points - points[first]) ** 2, axis=1)
    for _ in range(1, num_clusters):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with a chosen centroid; pick
            # uniformly among the rest to keep K distinct slots.
            candidates = [i for i in range(num_points) if i not in chosen]
            if not candidates:
                candidates = list(range(num_points))
            nxt = int(rng.choice(candidates))
        else:
            probabilities = closest_sq / total
            nxt = int(rng.choice(num_points, p=probabilities))
        chosen.append(nxt)
        dist_new = np.sum((points - points[nxt]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, dist_new)
    return points[chosen].copy()


def _repair_empty_clusters(
    points: np.ndarray,
    labels: np.ndarray,
    centroids: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reassign the farthest points to any empty clusters.

    Lloyd iterations can empty a cluster when K is close to N or data is
    degenerate.  For each empty cluster we promote the point farthest from
    its current centroid (a standard repair that keeps exactly K clusters).
    """
    num_clusters = centroids.shape[0]
    counts = np.bincount(labels, minlength=num_clusters)
    empty = np.flatnonzero(counts == 0)
    if empty.size == 0:
        return labels, centroids
    sq = _squared_distances(points, centroids)
    assigned_sq = sq[np.arange(points.shape[0]), labels]
    order = np.argsort(-assigned_sq)
    used = set()
    for cluster in empty:
        for idx in order:
            idx = int(idx)
            if idx in used:
                continue
            # Only steal from clusters that will stay non-empty.
            if counts[labels[idx]] > 1:
                used.add(idx)
                counts[labels[idx]] -= 1
                labels = labels.copy()
                labels[idx] = cluster
                counts[cluster] += 1
                centroids = centroids.copy()
                centroids[cluster] = points[idx]
                break
    return labels, centroids


def kmeans(
    points: np.ndarray,
    num_clusters: int,
    *,
    restarts: int = 3,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
    rng: Optional[np.random.Generator] = None,
    initial_centroids: Optional[np.ndarray] = None,
) -> KMeansResult:
    """Run K-means with k-means++ seeding and multiple restarts.

    Args:
        points: Data of shape ``(N, d)`` or ``(N,)`` (promoted to d=1).
        num_clusters: Number of clusters K; must satisfy ``1 <= K <= N``.
        restarts: Independent k-means++ restarts; the lowest-inertia run
            wins.  Ignored when ``initial_centroids`` is given.
        max_iterations: Lloyd iteration cap per restart.
        tolerance: Stop when total centroid movement falls below this.
        rng: Random generator for seeding (fresh default if None).
        initial_centroids: Optional warm-start centroids of shape
            ``(K, d)``; used for the single run performed.

    Returns:
        The best :class:`KMeansResult` across restarts.
    """
    data = np.asarray(points, dtype=float)
    if data.ndim == 1:
        data = data[:, np.newaxis]
    if data.ndim != 2:
        raise DataError(f"points must be (N, d), got shape {data.shape}")
    num_points = data.shape[0]
    if num_clusters < 1:
        raise ConfigurationError(f"num_clusters must be >= 1, got {num_clusters}")
    if num_clusters > num_points:
        raise ConfigurationError(
            f"num_clusters={num_clusters} exceeds number of points {num_points}"
        )
    if rng is None:
        rng = np.random.default_rng()

    best: Optional[KMeansResult] = None
    runs = 1 if initial_centroids is not None else max(1, restarts)
    for _ in range(runs):
        if initial_centroids is not None:
            centroids = np.asarray(initial_centroids, dtype=float).copy()
            if centroids.shape != (num_clusters, data.shape[1]):
                raise ConfigurationError(
                    "initial_centroids must have shape "
                    f"({num_clusters}, {data.shape[1]}), got {centroids.shape}"
                )
        else:
            centroids = kmeans_plus_plus_init(data, num_clusters, rng)
        labels = np.zeros(num_points, dtype=int)
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            sq = _squared_distances(data, centroids)
            labels = np.argmin(sq, axis=1)
            labels, centroids = _repair_empty_clusters(data, labels, centroids)
            new_centroids = centroids.copy()
            for j in range(num_clusters):
                members = labels == j
                if members.any():
                    new_centroids[j] = data[members].mean(axis=0)
            movement = float(np.sum((new_centroids - centroids) ** 2))
            centroids = new_centroids
            if movement < tolerance:
                break
        sq = _squared_distances(data, centroids)
        labels = np.argmin(sq, axis=1)
        labels, centroids = _repair_empty_clusters(data, labels, centroids)
        inertia = float(sq[np.arange(num_points), labels].sum())
        result = KMeansResult(
            labels=labels, centroids=centroids, inertia=inertia,
            iterations=iterations,
        )
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best
