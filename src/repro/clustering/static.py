"""Offline static-clustering baseline (Sec. VI-C2).

Nodes are grouped once, using the *entire* time series at each node as a
feature vector (which presumes knowledge of the future — the paper flags
this baseline as offline and therefore not practical).  The partition is
then fixed for all time slots; per-slot centroids are means of the stored
measurements within each fixed group.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.clustering.kmeans import kmeans
from repro.core.types import ClusterAssignment
from repro.exceptions import DataError, NotFittedError


class StaticClustering:
    """K-means on full per-node time series, fixed thereafter.

    Args:
        num_clusters: Number of clusters K.
        restarts: K-means++ restarts for the single offline fit.
        seed: RNG seed.
    """

    def __init__(
        self,
        num_clusters: int,
        *,
        restarts: int = 3,
        seed: Optional[int] = None,
    ) -> None:
        self.num_clusters = num_clusters
        self.restarts = restarts
        self._rng = np.random.default_rng(seed)
        self._labels: Optional[np.ndarray] = None

    @property
    def labels(self) -> np.ndarray:
        if self._labels is None:
            raise NotFittedError("StaticClustering.fit has not been called")
        return self._labels

    def fit(self, trace: np.ndarray) -> "StaticClustering":
        """Fit the fixed partition from the full trace.

        Args:
            trace: Shape ``(T, N)`` or ``(T, N, d)``; each node's feature
                vector is its flattened full time series.
        """
        arr = np.asarray(trace, dtype=float)
        if arr.ndim == 2:
            arr = arr[:, :, np.newaxis]
        if arr.ndim != 3:
            raise DataError(f"trace must be (T, N[, d]), got {arr.shape}")
        num_nodes = arr.shape[1]
        features = arr.transpose(1, 0, 2).reshape(num_nodes, -1)
        result = kmeans(
            features, self.num_clusters, restarts=self.restarts, rng=self._rng
        )
        self._labels = result.labels
        return self

    def assign(self, values: np.ndarray, time: int = 0) -> ClusterAssignment:
        """Produce the (fixed) assignment with centroids from ``values``.

        Args:
            values: Shape ``(N, d)`` or ``(N,)`` stored measurements at one
                slot.
            time: Slot index recorded on the assignment.
        """
        labels = self.labels
        data = np.asarray(values, dtype=float)
        if data.ndim == 1:
            data = data[:, np.newaxis]
        if data.shape[0] != labels.shape[0]:
            raise DataError(
                f"{data.shape[0]} values for {labels.shape[0]} fitted nodes"
            )
        centroids = np.zeros((self.num_clusters, data.shape[1]))
        for j in range(self.num_clusters):
            members = labels == j
            if members.any():
                centroids[j] = data[members].mean(axis=0)
            else:
                centroids[j] = data.mean(axis=0)
        return ClusterAssignment(time=time, labels=labels, centroids=centroids)
