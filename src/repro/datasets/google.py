"""Google-cluster-usage-trace-like synthetic dataset.

Stands in for the Google cluster-usage trace v2 (Sec. VI-A1): ~12,478
machines over 29 days at 5-minute sampling (8,350 steps).  The defining
property the paper extracts from this trace (Fig. 1) is *weak long-term
spatial correlation* between machines: task placement churns constantly,
so two machines correlated this hour may be unrelated the next.  The
generator therefore uses relatively high membership churn and strong
idiosyncratic noise.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import TraceDataset
from repro.datasets.synthetic import ProfileTraceSpec, generate_resource_trace

#: Paper-reported scale: 12,478 machines (2 removed), 8,350 slots.
PAPER_NUM_NODES = 12476
PAPER_NUM_STEPS = 8350
STEPS_PER_DAY = 288  # 5-minute sampling


def load_google_like(
    num_nodes: int = 200,
    num_steps: int = 2000,
    *,
    seed: int = 13,
    num_profiles: int = 5,
) -> TraceDataset:
    """Generate the Google-like trace.

    Args:
        num_nodes: Machines to simulate (paper: 12476).
        num_steps: Five-minute slots (paper: 8350).
        seed: RNG seed.
        num_profiles: Latent workload profiles per resource.

    Returns:
        A :class:`TraceDataset` with resources ``("cpu", "memory")``.
    """
    rng = np.random.default_rng(seed)
    cpu_spec = ProfileTraceSpec(
        num_profiles=num_profiles,
        base_range=(0.2, 0.55),
        diurnal_amplitude=0.08,
        steps_per_day=STEPS_PER_DAY,
        ar_coefficient=0.92,
        ar_scale=0.025,
        churn=0.008,
        node_offset_scale=0.04,
        noise_scale=0.055,
        regime_rate=0.005,
        regime_node_fraction=0.5,
        idle_fraction=0.3,
        replica_fraction=0.35,
    )
    memory_spec = ProfileTraceSpec(
        num_profiles=num_profiles,
        base_range=(0.3, 0.6),
        diurnal_amplitude=0.05,
        steps_per_day=STEPS_PER_DAY,
        ar_coefficient=0.95,
        ar_scale=0.015,
        churn=0.006,
        node_offset_scale=0.04,
        noise_scale=0.04,
        regime_rate=0.004,
        regime_node_fraction=0.4,
        idle_fraction=0.3,
        idle_level=0.06,
        replica_fraction=0.35,
    )
    cpu = generate_resource_trace(cpu_spec, num_steps, num_nodes, rng)
    memory = generate_resource_trace(memory_spec, num_steps, num_nodes, rng)
    return TraceDataset(
        name="google-like",
        data=np.stack([cpu, memory], axis=2),
        resource_names=("cpu", "memory"),
        period_minutes=5.0,
    )
