"""Ingestion of real trace files, when the user has them on disk.

The synthetic generators make the library self-contained, but a user with
access to the actual Alibaba/Bitbrains/Google exports can load them here.
The expected format is deliberately simple — one CSV per resource type
with rows = time slots and columns = machines, values normalized to
[0, 1] — since each raw trace needs dataset-specific preprocessing that
is documented in the paper (Sec. VI-A1) and in README.md.
"""

from __future__ import annotations

import csv
import os
from typing import Sequence, Tuple

import numpy as np

from repro.datasets.base import TraceDataset
from repro.exceptions import DataError


def read_matrix_csv(path: str) -> np.ndarray:
    """Read a numeric CSV into a ``(T, N)`` float array.

    A single optional header row (any non-numeric first row) is skipped.
    """
    if not os.path.exists(path):
        raise DataError(f"trace file not found: {path}")
    rows = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        for line_no, row in enumerate(reader):
            if not row:
                continue
            try:
                rows.append([float(cell) for cell in row])
            except ValueError:
                if line_no == 0:
                    continue  # header
                raise DataError(
                    f"{path}:{line_no + 1}: non-numeric value in trace"
                )
    if not rows:
        raise DataError(f"{path} contains no data rows")
    lengths = {len(r) for r in rows}
    if len(lengths) != 1:
        raise DataError(f"{path}: inconsistent column counts {sorted(lengths)}")
    return np.asarray(rows, dtype=float)


def load_trace_csv(
    paths: Sequence[str],
    resource_names: Tuple[str, ...],
    *,
    name: str = "custom",
    period_minutes: float = 5.0,
    clip: bool = True,
) -> TraceDataset:
    """Load one CSV per resource type and stack them into a dataset.

    Args:
        paths: One CSV path per resource, all with identical shapes.
        resource_names: Matching resource names.
        name: Dataset name.
        period_minutes: Sampling period metadata.
        clip: Clip values into [0, 1] (raw traces often contain slight
            overshoots after normalization).

    Returns:
        The stacked :class:`TraceDataset`.
    """
    if len(paths) != len(resource_names):
        raise DataError(
            f"{len(paths)} paths for {len(resource_names)} resource names"
        )
    if not paths:
        raise DataError("need at least one resource CSV")
    matrices = [read_matrix_csv(p) for p in paths]
    shape = matrices[0].shape
    for path, matrix in zip(paths, matrices):
        if matrix.shape != shape:
            raise DataError(
                f"{path} has shape {matrix.shape}, expected {shape}"
            )
    data = np.stack(matrices, axis=2)
    if clip:
        data = np.clip(data, 0.0, 1.0)
    return TraceDataset(
        name=name,
        data=data,
        resource_names=tuple(resource_names),
        period_minutes=period_minutes,
    )
