"""Summary statistics of a trace dataset.

Gives a quick characterization of any :class:`TraceDataset` — real or
synthetic — along the axes that drive the paper's algorithms: level,
variability, temporal smoothness (lag-1 autocorrelation), spatial
correlation, and the fraction of near-idle machines.  Useful both for
sanity-checking a real-trace import and for verifying that the
synthetic stand-ins land in the intended regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.correlation import pairwise_correlations
from repro.analysis.reporting import format_table
from repro.datasets.base import TraceDataset
from repro.exceptions import DataError


@dataclass(frozen=True)
class ResourceSummary:
    """Per-resource trace statistics.

    Attributes:
        mean: Grand mean utilization.
        std: Mean per-node standard deviation over time.
        lag1_autocorrelation: Mean per-node lag-1 autocorrelation
            (temporal smoothness; near 1 = slow drift, near 0 = noise).
        median_abs_correlation: Median absolute pairwise (spatial)
            correlation across nodes.
        idle_fraction: Fraction of nodes whose temporal std is below
            ``idle_std_threshold`` — near-constant machines.
    """

    mean: float
    std: float
    lag1_autocorrelation: float
    median_abs_correlation: float
    idle_fraction: float


def describe_resource(
    trace: np.ndarray, *, idle_std_threshold: float = 0.01
) -> ResourceSummary:
    """Summarize one resource's ``(T, N)`` trace."""
    data = np.asarray(trace, dtype=float)
    if data.ndim != 2 or data.shape[0] < 3:
        raise DataError(
            f"trace must be (T >= 3, N), got shape {data.shape}"
        )
    stds = data.std(axis=0)
    centered = data - data.mean(axis=0)
    num = np.sum(centered[1:] * centered[:-1], axis=0)
    den = np.sum(centered**2, axis=0)
    valid = den > 1e-12
    lag1 = float(np.mean(num[valid] / den[valid])) if valid.any() else 0.0
    try:
        median_corr = float(
            np.median(np.abs(pairwise_correlations(data)))
        )
    except DataError:
        median_corr = 0.0
    return ResourceSummary(
        mean=float(data.mean()),
        std=float(stds.mean()),
        lag1_autocorrelation=lag1,
        median_abs_correlation=median_corr,
        idle_fraction=float(np.mean(stds < idle_std_threshold)),
    )


def describe(dataset: TraceDataset) -> Dict[str, ResourceSummary]:
    """Summarize every resource of a dataset."""
    return {
        name: describe_resource(dataset.resource(name))
        for name in dataset.resource_names
    }


def format_description(dataset: TraceDataset) -> str:
    """Render the dataset summary as an aligned table."""
    summaries = describe(dataset)
    rows = []
    for name, summary in summaries.items():
        rows.append(
            [
                name,
                summary.mean,
                summary.std,
                summary.lag1_autocorrelation,
                summary.median_abs_correlation,
                summary.idle_fraction,
            ]
        )
    header = (
        f"{dataset.name}: {dataset.num_nodes} nodes x "
        f"{dataset.num_steps} steps @ {dataset.period_minutes:g} min\n"
    )
    return header + format_table(
        ["resource", "mean", "std", "lag1 AC", "med |corr|", "idle frac"],
        rows,
    )
