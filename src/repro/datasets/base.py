"""Dataset container used across experiments.

A :class:`TraceDataset` holds a time-slotted utilization trace of shape
``(T, N, d)`` plus the metadata experiments care about (resource names,
sampling period).  Real traces (Alibaba/Bitbrains/Google) and our
synthetic stand-ins are both represented this way, so every algorithm and
benchmark is agnostic to the data's origin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.types import validate_trace
from repro.exceptions import DataError


@dataclass
class TraceDataset:
    """A resource-utilization trace for ``N`` nodes over ``T`` slots.

    Attributes:
        name: Human-readable dataset name.
        data: Array of shape ``(T, N, d)`` with values in [0, 1].
        resource_names: Length-``d`` names, e.g. ``("cpu", "memory")``.
        period_minutes: Sampling period of one slot, in minutes.
    """

    name: str
    data: np.ndarray
    resource_names: Tuple[str, ...] = ("cpu", "memory")
    period_minutes: float = 5.0

    def __post_init__(self) -> None:
        self.data = validate_trace(self.data)
        if len(self.resource_names) != self.data.shape[2]:
            raise DataError(
                f"{len(self.resource_names)} resource names for "
                f"d={self.data.shape[2]} dimensions"
            )

    @property
    def num_steps(self) -> int:
        return int(self.data.shape[0])

    @property
    def num_nodes(self) -> int:
        return int(self.data.shape[1])

    @property
    def num_resources(self) -> int:
        return int(self.data.shape[2])

    def resource(self, name: str) -> np.ndarray:
        """Return the ``(T, N)`` trace of one resource type by name."""
        try:
            idx = self.resource_names.index(name)
        except ValueError:
            raise DataError(
                f"unknown resource {name!r}; have {self.resource_names}"
            )
        return self.data[:, :, idx]

    def slice(
        self,
        *,
        steps: slice = slice(None),
        nodes: slice = slice(None),
    ) -> "TraceDataset":
        """Return a view-backed sub-dataset (used for scaled-down benches)."""
        return TraceDataset(
            name=self.name,
            data=self.data[steps, nodes, :],
            resource_names=self.resource_names,
            period_minutes=self.period_minutes,
        )

    def subsample_nodes(
        self, count: int, *, seed: int = 0
    ) -> "TraceDataset":
        """Randomly select ``count`` nodes (as the paper does in Sec. VI-E)."""
        if count > self.num_nodes:
            raise DataError(
                f"cannot sample {count} nodes from {self.num_nodes}"
            )
        rng = np.random.default_rng(seed)
        chosen = np.sort(rng.choice(self.num_nodes, size=count, replace=False))
        return TraceDataset(
            name=f"{self.name}[{count} nodes]",
            data=self.data[:, chosen, :],
            resource_names=self.resource_names,
            period_minutes=self.period_minutes,
        )
