"""Synthetic workload building blocks.

The real evaluation traces (Alibaba v2018, Bitbrains GWA-T-12 Rnd, Google
cluster-usage v2) are tens of gigabytes and not redistributable, so the
reproduction generates synthetic traces with the statistical properties
the paper's algorithms are sensitive to:

* **latent workload profiles** — groups of machines running similar
  workloads, giving the short-term spatial correlation the clustering
  stage exploits;
* **diurnal periodicity** — daily load cycles;
* **AR(1) profile dynamics** — smooth stochastic drift of each profile;
* **membership churn** — machines migrating between profiles over time,
  which is what makes *dynamic* (vs static) clustering necessary;
* **bursts** — heavy-tailed spikes typical of VM workloads (Bitbrains);
* **observation noise** — per-machine idiosyncratic fluctuation, which
  weakens long-term pairwise correlation (the paper's Fig. 1 point).

All values are clipped to the normalized utilization range [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ProfileTraceSpec:
    """Parameters of one resource's latent-profile trace generator.

    Attributes:
        num_profiles: Number of latent workload profiles G.
        base_range: Profiles draw their baseline level from this range.
        diurnal_amplitude: Peak amplitude of the daily cycle.
        steps_per_day: Slots per day (defines the diurnal period).
        ar_coefficient: AR(1) coefficient of profile drift, in [0, 1).
        ar_scale: Innovation std-dev of the profile drift.
        churn: Per-slot probability a node migrates to a random profile.
        node_offset_scale: Std-dev of each node's persistent offset.
        noise_scale: Std-dev of per-slot per-node observation noise.
        burst_rate: Per-slot probability a node starts a burst.
        burst_magnitude: Burst height (added, then clipped at 1).
        burst_duration: Mean burst length in slots (geometric).
        regime_rate: Per-slot probability of a *workload regime shift*:
            profile baselines are re-drawn and a fraction of nodes is
            re-assigned at once.  This models fleet-wide task migrations
            and is what makes long-term covariance misleading — the key
            property (Sec. III) that defeats Gaussian-based methods on
            real cluster traces.
        regime_node_fraction: Fraction of nodes reshuffled at a regime
            shift.
        idle_fraction: Fraction of machines that are (nearly) idle —
            parked at ``idle_level`` with only tiny noise, ignoring the
            workload profiles.  Real cluster traces contain many such
            machines; they produce near-duplicate rows that make raw
            sample covariances nearly singular (the failure mode of the
            Gaussian baselines in Fig. 12).
        idle_level: Mean utilization of idle machines.
        idle_noise: Noise std-dev of idle machines.
        replica_fraction: Fraction of machines that are *replicas*:
            they track their workload profile with near-zero
            idiosyncratic noise and no personal offset (think identical
            instances of a replicated service).  Groups of replicas are
            nearly collinear, which is what makes raw sample covariances
            ill-conditioned on real traces (the Top-W failure mode in
            Fig. 12).
        replica_noise: Noise std-dev of replica machines.
    """

    num_profiles: int = 3
    base_range: Tuple[float, float] = (0.2, 0.6)
    diurnal_amplitude: float = 0.15
    steps_per_day: int = 288
    ar_coefficient: float = 0.95
    ar_scale: float = 0.02
    churn: float = 0.002
    node_offset_scale: float = 0.03
    noise_scale: float = 0.02
    burst_rate: float = 0.0
    burst_magnitude: float = 0.3
    burst_duration: float = 5.0
    regime_rate: float = 0.0
    regime_node_fraction: float = 0.5
    idle_fraction: float = 0.0
    idle_level: float = 0.02
    idle_noise: float = 0.004
    replica_fraction: float = 0.0
    replica_noise: float = 0.002

    def __post_init__(self) -> None:
        if self.num_profiles < 1:
            raise ConfigurationError("num_profiles must be >= 1")
        if not 0 <= self.ar_coefficient < 1:
            raise ConfigurationError("ar_coefficient must be in [0, 1)")
        if not 0 <= self.churn <= 1:
            raise ConfigurationError("churn must be in [0, 1]")
        if self.steps_per_day < 1:
            raise ConfigurationError("steps_per_day must be >= 1")
        if self.burst_duration <= 0:
            raise ConfigurationError("burst_duration must be positive")
        if not 0 <= self.regime_rate <= 1:
            raise ConfigurationError("regime_rate must be in [0, 1]")
        if not 0 <= self.regime_node_fraction <= 1:
            raise ConfigurationError(
                "regime_node_fraction must be in [0, 1]"
            )
        if not 0 <= self.idle_fraction <= 1:
            raise ConfigurationError("idle_fraction must be in [0, 1]")
        if self.idle_noise < 0:
            raise ConfigurationError("idle_noise must be >= 0")
        if not 0 <= self.replica_fraction <= 1:
            raise ConfigurationError("replica_fraction must be in [0, 1]")
        if self.replica_noise < 0:
            raise ConfigurationError("replica_noise must be >= 0")


def draw_regime_events(
    spec: ProfileTraceSpec, num_steps: int, rng: np.random.Generator
) -> np.ndarray:
    """Boolean mask of regime-shift slots (Bernoulli per slot)."""
    if spec.regime_rate <= 0:
        return np.zeros(num_steps, dtype=bool)
    events = rng.random(num_steps) < spec.regime_rate
    events[0] = False  # the initial draw is not a shift
    return events


def generate_profile_paths(
    spec: ProfileTraceSpec,
    num_steps: int,
    rng: np.random.Generator,
    events: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Latent profile trajectories, shape ``(T, G)``.

    Each profile is ``base + diurnal + AR(1) drift`` with its own phase,
    so profiles are distinguishable and slowly moving.  At regime-shift
    slots (``events``) the baselines are re-drawn, producing fleet-wide
    level shifts.
    """
    g = spec.num_profiles
    bases = rng.uniform(*spec.base_range, size=g)
    phases = rng.uniform(0, 2 * np.pi, size=g)
    amplitudes = spec.diurnal_amplitude * rng.uniform(0.5, 1.5, size=g)
    t = np.arange(num_steps)
    paths = np.zeros((num_steps, g))
    state = np.zeros(g)
    for step in range(num_steps):
        if events is not None and events[step]:
            bases = rng.uniform(*spec.base_range, size=g)
        state = spec.ar_coefficient * state + rng.normal(
            0, spec.ar_scale, size=g
        )
        diurnal = amplitudes * np.sin(
            2 * np.pi * t[step] / spec.steps_per_day + phases
        )
        paths[step] = bases + diurnal + state
    return paths


def generate_memberships(
    spec: ProfileTraceSpec,
    num_steps: int,
    num_nodes: int,
    rng: np.random.Generator,
    events: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Node-to-profile membership over time, shape ``(T, N)`` of ints.

    Nodes start uniformly distributed over profiles and migrate to a
    uniformly random profile with probability ``churn`` per slot; at
    regime-shift slots, ``regime_node_fraction`` of the fleet migrates
    at once.
    """
    members = np.zeros((num_steps, num_nodes), dtype=int)
    current = rng.integers(spec.num_profiles, size=num_nodes)
    for step in range(num_steps):
        if events is not None and events[step] and spec.regime_node_fraction > 0:
            count = int(round(spec.regime_node_fraction * num_nodes))
            if count > 0:
                chosen = rng.choice(num_nodes, size=count, replace=False)
                current = current.copy()
                current[chosen] = rng.integers(spec.num_profiles, size=count)
        if spec.churn > 0:
            migrate = rng.random(num_nodes) < spec.churn
            if migrate.any():
                current = current.copy()
                current[migrate] = rng.integers(
                    spec.num_profiles, size=int(migrate.sum())
                )
        members[step] = current
    return members


def generate_bursts(
    spec: ProfileTraceSpec,
    num_steps: int,
    num_nodes: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Additive burst process, shape ``(T, N)``.

    Bursts start as a Bernoulli process per node and last a geometric
    number of slots, with exponential magnitudes — a simple heavy-tailed
    spike model.
    """
    bursts = np.zeros((num_steps, num_nodes))
    if spec.burst_rate <= 0:
        return bursts
    remaining = np.zeros(num_nodes, dtype=int)
    height = np.zeros(num_nodes)
    continue_prob = 1.0 - 1.0 / spec.burst_duration
    for step in range(num_steps):
        start = (remaining == 0) & (rng.random(num_nodes) < spec.burst_rate)
        if start.any():
            remaining[start] = 1 + rng.geometric(
                1.0 - continue_prob, size=int(start.sum())
            )
            height[start] = rng.exponential(
                spec.burst_magnitude, size=int(start.sum())
            )
        active = remaining > 0
        bursts[step, active] = height[active]
        remaining[active] -= 1
    return bursts


def generate_resource_trace(
    spec: ProfileTraceSpec,
    num_steps: int,
    num_nodes: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """One resource type's full trace, shape ``(T, N)`` in [0, 1]."""
    events = draw_regime_events(spec, num_steps, rng)
    profiles = generate_profile_paths(spec, num_steps, rng, events)
    members = generate_memberships(spec, num_steps, num_nodes, rng, events)
    offsets = rng.normal(0, spec.node_offset_scale, size=num_nodes)
    noise_scales = np.full(num_nodes, spec.noise_scale)
    num_replicas = int(round(spec.replica_fraction * num_nodes))
    if num_replicas > 0:
        replicas = rng.choice(num_nodes, size=num_replicas, replace=False)
        noise_scales[replicas] = spec.replica_noise
        offsets[replicas] = 0.0  # replicas are identical instances
    noise = rng.normal(0, 1.0, size=(num_steps, num_nodes)) * noise_scales
    bursts = generate_bursts(spec, num_steps, num_nodes, rng)
    rows = np.arange(num_steps)[:, np.newaxis]
    values = profiles[rows, members] + offsets + noise + bursts
    num_idle = int(round(spec.idle_fraction * num_nodes))
    if num_idle > 0:
        idle_nodes = rng.choice(num_nodes, size=num_idle, replace=False)
        idle_values = spec.idle_level * (
            1.0 + rng.normal(0, 0.2, size=num_idle)
        ) + rng.normal(0, spec.idle_noise, size=(num_steps, num_idle))
        values[:, idle_nodes] = idle_values
    return np.clip(values, 0.0, 1.0)
