"""Intel-Berkeley-lab-like synthetic sensor dataset (for Fig. 1 only).

The paper's motivational experiment (Sec. III) contrasts the *strong*
long-term spatial correlation of sensor-network measurements (temperature
and humidity at 54 motes in one room) against the weak correlation of
compute-cluster utilizations.  A shared smooth environmental field plus
small per-sensor offsets and tiny noise reproduces that property: all
sensors track the same physical signal, so pairwise correlations sit
close to 1.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import TraceDataset

#: The Intel deployment had 54 motes sampled over ~12 days.
PAPER_NUM_NODES = 54
STEPS_PER_DAY = 288  # 5-minute aggregation


def load_sensor_like(
    num_nodes: int = 54,
    num_steps: int = 2000,
    *,
    seed: int = 17,
) -> TraceDataset:
    """Generate the sensor-field trace.

    Args:
        num_nodes: Number of sensor motes.
        num_steps: Slots to generate.
        seed: RNG seed.

    Returns:
        A :class:`TraceDataset` with resources ``("temperature",
        "humidity")`` normalized to [0, 1].
    """
    rng = np.random.default_rng(seed)
    t = np.arange(num_steps)

    def field(base: float, amplitude: float, phase: float, drift_scale: float) -> np.ndarray:
        diurnal = amplitude * np.sin(2 * np.pi * t / STEPS_PER_DAY + phase)
        drift = np.cumsum(rng.normal(0, drift_scale, size=num_steps))
        return base + diurnal + drift

    def observe(shared: np.ndarray, offset_scale: float, noise_scale: float) -> np.ndarray:
        offsets = rng.normal(0, offset_scale, size=num_nodes)
        gains = 1.0 + rng.normal(0, 0.03, size=num_nodes)
        noise = rng.normal(0, noise_scale, size=(num_steps, num_nodes))
        values = shared[:, np.newaxis] * gains + offsets + noise
        return np.clip(values, 0.0, 1.0)

    temperature_field = field(0.5, 0.2, 0.0, 0.0008)
    humidity_field = field(0.55, 0.15, np.pi / 2, 0.0008)
    temperature = observe(temperature_field, 0.02, 0.008)
    humidity = observe(humidity_field, 0.025, 0.01)
    return TraceDataset(
        name="sensor-like",
        data=np.stack([temperature, humidity], axis=2),
        resource_names=("temperature", "humidity"),
        period_minutes=5.0,
    )
