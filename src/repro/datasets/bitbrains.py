"""Bitbrains-GWA-T-12-like synthetic dataset.

Stands in for the Rnd trace of the GWA-T-12 Bitbrains dataset
(Sec. VI-A1): 500 VMs over one month at 5-minute sampling (8,259 steps).
Bitbrains hosts business-critical VMs whose utilization is burst-
dominated: long quiet stretches punctuated by heavy spikes.  The
generator therefore uses low baselines, weak diurnality, and an explicit
heavy-tailed burst process — the regime that most stresses the adaptive
transmission policy.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import TraceDataset
from repro.datasets.synthetic import ProfileTraceSpec, generate_resource_trace

#: Paper-reported scale: 500 VMs, 8,259 five-minute slots.
PAPER_NUM_NODES = 500
PAPER_NUM_STEPS = 8259
STEPS_PER_DAY = 288  # 5-minute sampling


def load_bitbrains_like(
    num_nodes: int = 120,
    num_steps: int = 2000,
    *,
    seed: int = 11,
    num_profiles: int = 3,
) -> TraceDataset:
    """Generate the Bitbrains-like trace.

    Args:
        num_nodes: VMs to simulate (paper: 500).
        num_steps: Five-minute slots (paper: 8259).
        seed: RNG seed.
        num_profiles: Latent workload profiles per resource.

    Returns:
        A :class:`TraceDataset` with resources ``("cpu", "memory")``.
    """
    rng = np.random.default_rng(seed)
    cpu_spec = ProfileTraceSpec(
        num_profiles=num_profiles,
        base_range=(0.08, 0.3),
        diurnal_amplitude=0.06,
        steps_per_day=STEPS_PER_DAY,
        ar_coefficient=0.9,
        ar_scale=0.02,
        churn=0.003,
        node_offset_scale=0.03,
        noise_scale=0.05,
        burst_rate=0.01,
        burst_magnitude=0.35,
        burst_duration=6.0,
        regime_rate=0.003,
        regime_node_fraction=0.3,
        idle_fraction=0.25,
        replica_fraction=0.3,
    )
    memory_spec = ProfileTraceSpec(
        num_profiles=num_profiles,
        base_range=(0.2, 0.55),
        diurnal_amplitude=0.04,
        steps_per_day=STEPS_PER_DAY,
        ar_coefficient=0.97,
        ar_scale=0.012,
        churn=0.002,
        node_offset_scale=0.05,
        noise_scale=0.02,
        burst_rate=0.004,
        burst_magnitude=0.25,
        burst_duration=10.0,
        regime_rate=0.002,
        regime_node_fraction=0.25,
        idle_fraction=0.25,
        idle_level=0.08,
        replica_fraction=0.3,
    )
    cpu = generate_resource_trace(cpu_spec, num_steps, num_nodes, rng)
    memory = generate_resource_trace(memory_spec, num_steps, num_nodes, rng)
    return TraceDataset(
        name="bitbrains-like",
        data=np.stack([cpu, memory], axis=2),
        resource_names=("cpu", "memory"),
        period_minutes=5.0,
    )
