"""Datasets: synthetic stand-ins for the paper's traces + CSV ingestion.

``load_alibaba_like``, ``load_bitbrains_like`` and ``load_google_like``
mirror the three computing-cluster traces of Sec. VI-A1;
``load_sensor_like`` mirrors the Intel-lab sensor data used by the
motivational experiment of Sec. III.  See DESIGN.md for the substitution
rationale.
"""

from repro.datasets.alibaba import load_alibaba_like
from repro.datasets.base import TraceDataset
from repro.datasets.bitbrains import load_bitbrains_like
from repro.datasets.describe import (
    ResourceSummary,
    describe,
    describe_resource,
    format_description,
)
from repro.datasets.google import load_google_like
from repro.datasets.loader import load_trace_csv, read_matrix_csv
from repro.datasets.sensor import load_sensor_like
from repro.datasets.synthetic import (
    ProfileTraceSpec,
    generate_bursts,
    generate_memberships,
    generate_profile_paths,
    generate_resource_trace,
)

#: The three cluster datasets the paper evaluates on, by name.
CLUSTER_DATASETS = {
    "alibaba": load_alibaba_like,
    "bitbrains": load_bitbrains_like,
    "google": load_google_like,
}

__all__ = [
    "TraceDataset",
    "load_alibaba_like",
    "load_bitbrains_like",
    "load_google_like",
    "load_sensor_like",
    "load_trace_csv",
    "ResourceSummary",
    "describe",
    "describe_resource",
    "format_description",
    "read_matrix_csv",
    "ProfileTraceSpec",
    "generate_bursts",
    "generate_memberships",
    "generate_profile_paths",
    "generate_resource_trace",
    "CLUSTER_DATASETS",
]
