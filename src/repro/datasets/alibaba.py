"""Alibaba-cluster-trace-like synthetic dataset.

Stands in for the Alibaba cluster trace v2018 (Sec. VI-A1): 4,000
machines over 8 days at 1-minute sampling (11,519 steps), CPU and memory
utilization.  The generator emphasizes strong diurnal cycles with
moderate profile churn — batch+online colocation gives Alibaba machines
pronounced daily patterns.

Call :func:`load_alibaba_like` with reduced ``num_nodes``/``num_steps``
for laptop-scale experiments; defaults reproduce the paper's scale.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import TraceDataset
from repro.datasets.synthetic import ProfileTraceSpec, generate_resource_trace

#: Paper-reported scale: 4,000 machines, 11,519 one-minute slots.
PAPER_NUM_NODES = 4000
PAPER_NUM_STEPS = 11519
STEPS_PER_DAY = 1440  # 1-minute sampling


def load_alibaba_like(
    num_nodes: int = 200,
    num_steps: int = 2000,
    *,
    seed: int = 7,
    num_profiles: int = 4,
) -> TraceDataset:
    """Generate the Alibaba-like trace.

    Args:
        num_nodes: Machines to simulate (paper: 4000).
        num_steps: One-minute slots (paper: 11519).
        seed: RNG seed — traces are fully reproducible.
        num_profiles: Latent workload profiles per resource.

    Returns:
        A :class:`TraceDataset` with resources ``("cpu", "memory")``.
    """
    rng = np.random.default_rng(seed)
    cpu_spec = ProfileTraceSpec(
        num_profiles=num_profiles,
        base_range=(0.25, 0.6),
        diurnal_amplitude=0.18,
        steps_per_day=STEPS_PER_DAY,
        ar_coefficient=0.97,
        ar_scale=0.015,
        churn=0.002,
        node_offset_scale=0.03,
        noise_scale=0.08,
        regime_rate=0.002,
        regime_node_fraction=0.3,
        idle_fraction=0.1,
        replica_fraction=0.25,
    )
    memory_spec = ProfileTraceSpec(
        num_profiles=num_profiles,
        base_range=(0.35, 0.7),
        diurnal_amplitude=0.08,
        steps_per_day=STEPS_PER_DAY,
        ar_coefficient=0.985,
        ar_scale=0.01,
        churn=0.0015,
        node_offset_scale=0.04,
        noise_scale=0.035,
        regime_rate=0.0015,
        regime_node_fraction=0.25,
        idle_fraction=0.1,
        idle_level=0.1,
        replica_fraction=0.25,
    )
    cpu = generate_resource_trace(cpu_spec, num_steps, num_nodes, rng)
    memory = generate_resource_trace(memory_spec, num_steps, num_nodes, rng)
    return TraceDataset(
        name="alibaba-like",
        data=np.stack([cpu, memory], axis=2),
        resource_names=("cpu", "memory"),
        period_minutes=1.0,
    )
