"""Named component registries: the pluggable-stage backbone.

The paper's system is a composition of swappable stages — transmission
policy, collection backend, dynamic-clustering similarity, per-cluster
forecasting model.  Each stage family has one :class:`Registry` here;
the concrete implementations self-register in the module that defines
them, so adding a backend never means editing the engine:

* :data:`FORECASTERS` — builders ``(config, cluster, group) ->
  Forecaster`` keyed by ``ForecastingConfig.model`` names
  (``"arima"``, ``"lstm"``, ``"sample_hold"``, …);
* :data:`FORECASTER_BANKS` — builders ``(config, num_clusters, dim) ->
  ForecasterBank`` vectorizing all of a group's per-cluster models at
  once (``"sample_hold"``, ``"mean"``, ``"ses"``, ``"ar"``); models
  without an entry fall back to the ``ObjectBank`` adapter;
* :data:`TRANSMISSION_POLICIES` — builders ``(transmission_config,
  node_id) -> TransmissionPolicy`` (``"adaptive"``, ``"uniform"``,
  ``"deadband"``, ``"perfect"``);
* :data:`SLOT_KERNELS` — builders ``(transmission_config) -> kernel``
  producing the vectorized one-slot form of a policy, used by streaming
  sessions to decide a whole fleet's transmissions in one array call;
* :data:`COLLECTION_BACKENDS` — callables ``(trace,
  transmission_config) -> CollectionResult`` (``"adaptive"``,
  ``"uniform"``, ``"perfect"``, ``"deadband"``);
* :data:`SIMILARITY_MEASURES` — :class:`~repro.clustering.similarity.
  SimilarityMeasure` instances (``"intersection"``, ``"jaccard"``).

Registries load lazily: the defining modules are imported on first
lookup, so importing :mod:`repro.registry` itself is dependency-free and
config validation can consult ``available()`` without import cycles.

Registering a new component from user code::

    from repro.registry import register_forecaster

    @register_forecaster("theta")
    def _build_theta(config, cluster, group):
        return ThetaForecaster(period=config.hw_period)

    ForecastingConfig(model="theta")   # now valid everywhere
"""

from __future__ import annotations

import difflib
import importlib
from typing import Any, Callable, Dict, Iterator, Sequence, Tuple

from repro.exceptions import ConfigurationError


def closest(name: str, candidates: Sequence[str]) -> str:
    """A ``did you mean …?`` hint for an unknown name (may be empty)."""
    matches = difflib.get_close_matches(str(name), list(candidates), n=3)
    if not matches:
        return ""
    return " (did you mean " + " or ".join(repr(m) for m in matches) + "?)"


class Registry:
    """A case-sensitive name → component registry for one stage family.

    Args:
        kind: Human-readable component kind (``"forecaster"``), used in
            error messages.
        modules: Module paths imported lazily before the first lookup —
            the modules whose import side effects populate the registry
            (components self-register where they are defined).
    """

    def __init__(self, kind: str, *, modules: Sequence[str] = ()) -> None:
        self.kind = kind
        self._modules = tuple(modules)
        self._loaded = False
        self._loading = False
        self._entries: Dict[str, Any] = {}

    def _ensure_loaded(self) -> None:
        if self._loaded or self._loading:
            # _loading guards re-entrancy: the defining modules may
            # themselves touch the registry (e.g. construct a config)
            # while importing.
            return
        self._loading = True
        try:
            for module in self._modules:
                importlib.import_module(module)
        finally:
            # On import failure the registry stays not-loaded, so the
            # next lookup retries and surfaces the real ImportError
            # instead of a misleading unknown-name error.
            self._loading = False
        self._loaded = True

    def register(
        self, name: str, obj: Any = None, *, override: bool = False
    ) -> Callable[[Any], Any]:
        """Register ``obj`` under ``name``; usable as a decorator.

        Args:
            name: Registry key (the user-facing component name).
            obj: The component (builder/instance).  Omit to use the
                returned callable as a decorator.
            override: Allow replacing an existing entry.  Without it,
                re-registering a *different* object under a taken name
                raises (re-registering the same object is a no-op, so
                module re-imports stay harmless).

        Returns:
            The registered object (decorator-friendly).
        """
        if not name or not isinstance(name, str):
            raise ConfigurationError(
                f"{self.kind} name must be a non-empty string, got {name!r}"
            )

        def _add(target: Any) -> Any:
            current = self._entries.get(name)
            if current is not None and current is not target and not override:
                raise ConfigurationError(
                    f"{self.kind} {name!r} is already registered; pass "
                    f"override=True to replace it"
                )
            self._entries[name] = target
            return target

        if obj is None:
            return _add
        return _add(obj)

    def get(self, name: str) -> Any:
        """Look up a component, raising a friendly error when unknown."""
        self._ensure_loaded()
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(self.unknown_message(name)) from None

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Look up a component and call it with the given arguments."""
        return self.get(name)(*args, **kwargs)

    def available(self) -> Tuple[str, ...]:
        """All registered names, sorted."""
        self._ensure_loaded()
        return tuple(sorted(self._entries))

    def unknown_message(self, name: str) -> str:
        """The error text for an unknown name, with close-match hints."""
        self._ensure_loaded()
        return (
            f"unknown {self.kind} {name!r}{closest(name, self._entries)}; "
            f"available: {', '.join(self.available())}"
        )

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.available())

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, entries={list(self._entries)})"


#: ``ForecastingConfig.model`` name → builder ``(config, cluster, group)``.
FORECASTERS = Registry("forecaster", modules=("repro.forecasting",))

#: Bank name → builder ``(forecasting_config, num_clusters, dim)``
#: returning a :class:`~repro.forecasting.bank.ForecasterBank`.  Keyed
#: by the forecaster model names they accelerate; models without an
#: entry run through the :class:`~repro.forecasting.bank.ObjectBank`
#: adapter (see :func:`~repro.forecasting.bank.resolve_bank`).
FORECASTER_BANKS = Registry(
    "forecaster bank", modules=("repro.forecasting.bank",)
)

#: Policy name → builder ``(transmission_config, node_id)``.
TRANSMISSION_POLICIES = Registry(
    "transmission policy", modules=("repro.transmission",)
)

#: Policy name → builder ``(transmission_config) -> slot kernel``.  A
#: slot kernel is the whole-fleet vectorized form of one policy slot:
#: ``kernel(x, stored, observed, state, times) -> transmit`` evaluates
#: every active node's decision in one array operation (mutating the
#: per-node scalar ``state`` column in place), bit-identical to looping
#: the per-node policy objects.  Policies without an entry run sessions
#: through the object loop (see :class:`repro.session.StreamSession`).
SLOT_KERNELS = Registry(
    "transmission slot kernel", modules=("repro.transmission",)
)

#: Collection backend name → ``(trace, transmission_config) -> CollectionResult``.
COLLECTION_BACKENDS = Registry(
    "collection backend",
    modules=("repro.simulation.collection", "repro.transmission.deadband"),
)

#: Similarity name → :class:`~repro.clustering.similarity.SimilarityMeasure`.
SIMILARITY_MEASURES = Registry(
    "similarity measure", modules=("repro.clustering.similarity",)
)

#: Scenario name → builder ``() -> ScenarioSpec`` (link model × churn
#: schedule × trace source), run by
#: :func:`repro.scenarios.harness.run_scenario`.
SCENARIOS = Registry("scenario", modules=("repro.scenarios.builtin",))


def register_forecaster(
    name: str, *, override: bool = False
) -> Callable[[Any], Any]:
    """Decorator registering a forecaster builder.

    The builder receives ``(config, cluster, group)`` — the full
    :class:`~repro.core.config.ForecastingConfig`, the cluster id and
    the resource-group index — and returns a fresh, unfitted forecaster.
    """
    return FORECASTERS.register(name, override=override)


def register_forecaster_bank(
    name: str, *, override: bool = False
) -> Callable[[Any], Any]:
    """Decorator registering a vectorized forecaster-bank builder.

    The builder receives ``(forecasting_config, num_clusters, dim)`` and
    returns a fresh :class:`~repro.forecasting.bank.ForecasterBank`
    covering all ``num_clusters × dim`` series of one resource group.
    Register under the forecaster model name the bank accelerates so
    ``ForecastingConfig(bank="auto")`` picks it up.
    """
    return FORECASTER_BANKS.register(name, override=override)


def register_transmission_policy(
    name: str, *, override: bool = False
) -> Callable[[Any], Any]:
    """Decorator registering a per-node transmission-policy builder.

    The builder receives ``(transmission_config, node_id)`` and returns
    a fresh :class:`~repro.transmission.base.TransmissionPolicy`.
    """
    return TRANSMISSION_POLICIES.register(name, override=override)


def register_slot_kernel(
    name: str, *, override: bool = False
) -> Callable[[Any], Any]:
    """Decorator registering a vectorized transmission slot kernel.

    The builder receives the ``transmission_config`` and returns a
    callable ``kernel(x, stored, observed, state, times) -> transmit``
    evaluating one slot's decisions for a batch of nodes at once:
    ``x``/``stored`` are ``(n, d)`` fresh/centrally-stored values,
    ``observed`` marks nodes past their forced first transmission,
    ``state`` is the per-node scalar policy accumulator (mutated in
    place — the :attr:`FleetState.policy_state
    <repro.simulation.fleet.FleetState.policy_state>` column), and
    ``times`` the per-node decision counts.  Register under the policy
    name the kernel accelerates so streaming sessions pick it up.
    """
    return SLOT_KERNELS.register(name, override=override)


def register_collection_backend(
    name: str, *, override: bool = False
) -> Callable[[Any], Any]:
    """Decorator registering a whole-trace collection backend.

    The backend receives ``(trace, transmission_config)`` and returns a
    :class:`~repro.simulation.collection.CollectionResult`.
    """
    return COLLECTION_BACKENDS.register(name, override=override)


def register_similarity(
    name: str, *, override: bool = False
) -> Callable[[Any], Any]:
    """Decorator registering a cluster-similarity measure."""
    return SIMILARITY_MEASURES.register(name, override=override)


def register_scenario(
    name: str, *, override: bool = False
) -> Callable[[Any], Any]:
    """Decorator registering a scenario builder.

    The builder takes no arguments and returns a fresh
    :class:`~repro.scenarios.spec.ScenarioSpec` (specs are cheap value
    objects; building per lookup keeps registered scenarios immutable).
    """
    return SCENARIOS.register(name, override=override)


__all__ = [
    "Registry",
    "closest",
    "FORECASTERS",
    "FORECASTER_BANKS",
    "TRANSMISSION_POLICIES",
    "SLOT_KERNELS",
    "COLLECTION_BACKENDS",
    "SIMILARITY_MEASURES",
    "SCENARIOS",
    "register_forecaster",
    "register_forecaster_bank",
    "register_transmission_policy",
    "register_slot_kernel",
    "register_collection_backend",
    "register_similarity",
    "register_scenario",
]
