"""Spatial-correlation analysis (Sec. III, Fig. 1).

The paper's motivational experiment computes, for every pair of nodes,
the Pearson correlation of their full time series, and compares the
empirical CDF of those values between sensor-network data (strongly
correlated) and compute-cluster data (weakly correlated).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import DataError


def pairwise_correlations(trace: np.ndarray) -> np.ndarray:
    """All distinct pairwise Pearson correlations of node time series.

    Args:
        trace: Shape ``(T, N)``: one column per node.

    Returns:
        Array of length ``N·(N−1)/2`` with the upper-triangle
        correlations.  Nodes with zero variance are excluded from the
        pairs (their correlation is undefined).
    """
    data = np.asarray(trace, dtype=float)
    if data.ndim != 2:
        raise DataError(f"trace must be (T, N), got shape {data.shape}")
    if data.shape[0] < 2:
        raise DataError("need at least 2 time steps")
    std = data.std(axis=0)
    valid = np.flatnonzero(std > 1e-12)
    if valid.size < 2:
        raise DataError("fewer than 2 nodes with non-zero variance")
    subset = data[:, valid]
    corr = np.corrcoef(subset, rowvar=False)
    upper = np.triu_indices(corr.shape[0], k=1)
    return corr[upper]


def empirical_cdf(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF support points and probabilities.

    Returns:
        ``(x, F)`` where ``F[i]`` is the fraction of values ≤ ``x[i]``.
    """
    v = np.sort(np.asarray(values, dtype=float))
    if v.size == 0:
        raise DataError("values is empty")
    probabilities = np.arange(1, v.size + 1) / v.size
    return v, probabilities


def cdf_at(values: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Evaluate the empirical CDF of ``values`` at arbitrary ``points``."""
    v = np.sort(np.asarray(values, dtype=float))
    pts = np.asarray(points, dtype=float)
    if v.size == 0:
        raise DataError("values is empty")
    return np.searchsorted(v, pts, side="right") / v.size


def median_absolute_correlation(trace: np.ndarray) -> float:
    """Median |correlation| across node pairs — a one-number summary of
    how spatially correlated a dataset is (Fig. 1's takeaway)."""
    return float(np.median(np.abs(pairwise_correlations(trace))))


def fraction_above(trace: np.ndarray, threshold: float) -> float:
    """Fraction of pairwise correlations above ``threshold``.

    The paper's Fig. 1 observation: for sensor data most correlations
    exceed 0.5, for cluster data most lie within (−0.5, 0.5).
    """
    corr = pairwise_correlations(trace)
    return float(np.mean(corr > threshold))
