"""Error decomposition: where does the forecast RMSE come from?

The pipeline's end-to-end error at horizon ``h`` mixes three sources the
paper discusses separately but never decomposes:

* **staleness** — ``z_t ≠ x_t`` because nodes transmit at frequency
  ``B < 1`` (the h = 0 RMSE, Sec. VI-B);
* **spatial (clustering)** — representing each node by its cluster
  centroid (+ offset) instead of its own value (the "intermediate RMSE"
  of Sec. VI-C);
* **temporal** — forecasting the centroid ``h`` steps ahead instead of
  knowing it (Sec. VI-D).

:func:`decompose_error` isolates the three by re-running the estimation
with the corresponding component made exact (perfect transmission /
per-node clusters / oracle centroids), giving operators a principled
answer to "should I buy bandwidth, clusters, or a better model?".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_mapping
from repro.api import Engine
from repro.core.config import PipelineConfig
from repro.core.types import validate_trace
from repro.exceptions import DataError


@dataclass(frozen=True)
class ErrorDecomposition:
    """RMSE at one horizon under progressively idealized components.

    Attributes:
        horizon: The forecast step analysed.
        total: End-to-end pipeline RMSE (adaptive collection, K clusters,
            real forecaster).
        without_staleness: Same pipeline with B = 1 (perfect collection);
            the difference ``total − without_staleness`` is the staleness
            contribution.
        staleness_only: RMSE at h = 0 (no clustering, no forecasting) —
            the floor imposed by the transmission budget alone.
        clustering_only: Intermediate RMSE of the run (centroid vs stored
            value; no temporal error).
    """

    horizon: int
    total: float
    without_staleness: float
    staleness_only: float
    clustering_only: float

    @property
    def staleness_share(self) -> float:
        """Fraction of total squared error attributable to staleness."""
        if self.total <= 0:
            return 0.0
        reduced = max(self.total**2 - self.without_staleness**2, 0.0)
        return reduced / self.total**2

    def format(self) -> str:
        return format_mapping(
            f"error decomposition at h={self.horizon}",
            {
                "total RMSE": self.total,
                "without staleness (B=1)": self.without_staleness,
                "staleness floor (h=0)": self.staleness_only,
                "clustering (intermediate)": self.clustering_only,
                "staleness share of total": self.staleness_share,
            },
        )


def decompose_error(
    trace: np.ndarray,
    config: PipelineConfig,
    horizon: int,
) -> ErrorDecomposition:
    """Run the pipeline twice (adaptive vs perfect collection) and
    extract the three error components at one horizon.

    Args:
        trace: True measurements ``(T, N[, d])``.
        config: Pipeline configuration (its ``max_horizon`` must cover
            ``horizon``).
        horizon: Forecast step to analyse (``1 <= horizon <=
            config.forecasting.max_horizon``).
    """
    data = validate_trace(trace)
    if not 1 <= horizon <= config.forecasting.max_horizon:
        raise DataError(
            f"horizon {horizon} outside [1, "
            f"{config.forecasting.max_horizon}]"
        )
    adaptive = Engine(config, collection="adaptive").run(
        data, horizons=[0, horizon]
    )
    perfect = Engine(config, collection="perfect").run(
        data, horizons=[horizon]
    )
    return ErrorDecomposition(
        horizon=horizon,
        total=adaptive.rmse_by_horizon[horizon],
        without_staleness=perfect.rmse_by_horizon[horizon],
        staleness_only=adaptive.rmse_by_horizon[0],
        clustering_only=adaptive.intermediate_rmse,
    )
