"""Analysis helpers: spatial correlation (Fig. 1) and result reporting."""

from repro.analysis.correlation import (
    cdf_at,
    empirical_cdf,
    fraction_above,
    median_absolute_correlation,
    pairwise_correlations,
)
from repro.analysis.decomposition import ErrorDecomposition, decompose_error
from repro.analysis.reporting import format_mapping, format_series, format_table

__all__ = [
    "cdf_at",
    "empirical_cdf",
    "fraction_above",
    "median_absolute_correlation",
    "pairwise_correlations",
    "ErrorDecomposition",
    "decompose_error",
    "format_mapping",
    "format_series",
    "format_table",
]
