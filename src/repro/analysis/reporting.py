"""Plain-text reporting of experiment results.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers render them consistently (aligned columns,
fixed precision) so EXPERIMENTS.md entries can be pasted directly from
bench output.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

Number = Union[int, float]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Union[str, Number]]],
    *,
    precision: int = 4,
) -> str:
    """Render an aligned plain-text table.

    Args:
        headers: Column names.
        rows: Row cells; floats are formatted to ``precision`` digits.
        precision: Decimal places for float cells.

    Returns:
        The table as a multi-line string.
    """
    def fmt(cell: Union[str, Number]) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[Number], ys: Sequence[Number], *, precision: int = 4
) -> str:
    """Render one figure series as ``name: (x, y) (x, y) ...``."""
    pairs = " ".join(
        f"({x:g}, {y:.{precision}f})" for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"


def format_mapping(
    title: str, mapping: Mapping[str, Number], *, precision: int = 4
) -> str:
    """Render a ``{label: value}`` result block."""
    lines = [title]
    width = max((len(k) for k in mapping), default=0)
    for key, value in mapping.items():
        if isinstance(value, float):
            lines.append(f"  {key.ljust(width)}  {value:.{precision}f}")
        else:
            lines.append(f"  {key.ljust(width)}  {value}")
    return "\n".join(lines)
