"""Reference (pre-vectorization) hot-path implementations.

These are the straightforward per-node Python-loop versions of the
fleet-scale hot path: α-clipped offset estimation (Eq. 12), the
similarity re-indexing contingency (Eq. 10–11), and the majority-vote
membership forecast (Sec. V-C).  The production implementations in
:mod:`repro.forecasting.offsets`, :mod:`repro.clustering.similarity` and
:mod:`repro.forecasting.membership` are vectorized rewrites of these
loops; the property tests in ``tests/test_equivalence.py`` assert the
rewrites are *bit-identical* on randomized traces, and the scaling
benchmark in ``benchmarks/test_bench_hot_path.py`` measures the speedup
against them.

They are intentionally kept simple and obviously-correct; do not
optimize this module.
"""

from __future__ import annotations

from typing import List, Sequence, Set

import numpy as np

from repro.clustering.similarity import similarity_matrix
from repro.exceptions import ConfigurationError, DataError


def alpha_clip_reference(
    value: np.ndarray, centroids: np.ndarray, cluster: int
) -> float:
    """Per-node α-clipping via an explicit loop over rival centroids."""
    z = np.atleast_1d(np.asarray(value, dtype=float))
    cents = np.asarray(centroids, dtype=float)
    if cents.ndim == 1:
        cents = cents[:, np.newaxis]
    num_clusters = cents.shape[0]
    if cluster < 0 or cluster >= num_clusters:
        raise ConfigurationError(
            f"cluster {cluster} outside [0, {num_clusters})"
        )
    direction = z - cents[cluster]
    norm_sq = float((direction * direction).sum())
    if norm_sq == 0.0:
        return 1.0
    alpha = 1.0
    for other in range(num_clusters):
        if other == cluster:
            continue
        u = cents[other] - cents[cluster]
        projection = float((direction * u).sum())
        if projection <= 0.0:
            continue  # moving along `direction` goes away from this rival
        # Boundary: ||α·direction||² == ||α·direction − u||²
        #        ⇔ α == ||u||² / (2 · direction·u)
        boundary = float((u * u).sum()) / (2.0 * projection)
        alpha = min(alpha, boundary)
    return float(max(alpha, 1e-12))


def estimate_offsets_reference(
    stored_history: Sequence[np.ndarray],
    centroid_history: Sequence[np.ndarray],
    memberships: np.ndarray,
    lookback: int,
    *,
    clip: bool = True,
) -> np.ndarray:
    """Eq. 12 offsets via the original window × node double loop."""
    if lookback < 0:
        raise ConfigurationError(f"lookback must be >= 0, got {lookback}")
    if len(stored_history) != len(centroid_history):
        raise DataError(
            "stored_history and centroid_history lengths differ: "
            f"{len(stored_history)} vs {len(centroid_history)}"
        )
    if not stored_history:
        raise DataError("histories are empty")
    window = min(lookback + 1, len(stored_history))
    memberships = np.asarray(memberships, dtype=int)
    first = np.asarray(stored_history[-window], dtype=float)
    num_nodes = first.shape[0]
    if memberships.shape != (num_nodes,):
        raise DataError(
            f"memberships must have shape ({num_nodes},), got {memberships.shape}"
        )
    stored = [
        np.asarray(s, dtype=float).reshape(num_nodes, -1)
        for s in stored_history[-window:]
    ]
    cents = [
        np.asarray(c, dtype=float).reshape(-1, stored[0].shape[1])
        for c in centroid_history[-window:]
    ]
    dim = stored[0].shape[1]
    offsets = np.zeros((num_nodes, dim))
    for m in range(window):
        z_slot = stored[m]
        c_slot = cents[m]
        for i in range(num_nodes):
            j = memberships[i]
            diff = z_slot[i] - c_slot[j]
            alpha = alpha_clip_reference(z_slot[i], c_slot, j) if clip else 1.0
            offsets[i] += alpha * diff
    offsets /= window
    return offsets


def reindex_weights_reference(
    kind: str,
    new_labels: np.ndarray,
    label_history: Sequence[np.ndarray],
    num_clusters: int,
) -> np.ndarray:
    """Similarity matrix via explicit node-id set construction (Eq. 10).

    Builds the per-cluster node sets from the label arrays — exactly what
    :meth:`DynamicClusterTracker._reindex` did before the contingency
    rewrite — then delegates to the set-based similarity functions.
    """
    labels = np.asarray(new_labels, dtype=int)
    new_clusters: List[Set[int]] = [
        set(np.flatnonzero(labels == k).tolist())
        for k in range(num_clusters)
    ]
    partitions = [
        [
            set(np.flatnonzero(np.asarray(past, dtype=int) == j).tolist())
            for j in range(num_clusters)
        ]
        for past in label_history
    ]
    return similarity_matrix(kind, new_clusters, partitions)


def forecast_membership_reference(
    label_history: Sequence[np.ndarray], lookback: int
) -> np.ndarray:
    """Majority-vote membership forecast via a per-node Python loop."""
    if lookback < 0:
        raise ConfigurationError(f"lookback must be >= 0, got {lookback}")
    if not label_history:
        raise DataError("label_history is empty")
    window = [
        np.asarray(l, dtype=int) for l in label_history[-(lookback + 1):]
    ]
    num_nodes = window[0].shape[0]
    if any(l.shape != (num_nodes,) for l in window):
        raise DataError("label arrays in history have inconsistent shapes")
    stacked = np.stack(window)  # (W, N)
    num_clusters = int(stacked.max()) + 1
    forecast = np.empty(num_nodes, dtype=int)
    for i in range(num_nodes):
        counts = np.bincount(stacked[:, i], minlength=num_clusters)
        best = counts.max()
        # Tie-break toward the most recently occupied cluster among the
        # maximal ones, which keeps the forecast stable under oscillation.
        candidates = np.flatnonzero(counts == best)
        if candidates.size == 1:
            forecast[i] = candidates[0]
        else:
            recent = stacked[::-1, i]
            for label in recent:
                if label in candidates:
                    forecast[i] = label
                    break
    return forecast
