"""Time-slotted simulation substrate: columnar fleet, transport, store."""

from repro.simulation.collection import (
    CollectionResult,
    CollectionSimulation,
    collect,
    simulate_adaptive_collection,
    simulate_uniform_collection,
)
from repro.simulation.controller import CentralStore
from repro.simulation.fleet import FleetState, merge_collection_shards, shard_slices
from repro.simulation.node import LocalNode
from repro.simulation.transport import Channel, PerNodeMessages, TransportStats


def __getattr__(name):
    # MonitoringSystem pulls in repro.core.pipeline, which itself imports
    # repro.simulation.collection; resolving it lazily breaks the cycle.
    if name == "MonitoringSystem":
        from repro.simulation.system import MonitoringSystem

        return MonitoringSystem
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CollectionResult",
    "CollectionSimulation",
    "collect",
    "simulate_adaptive_collection",
    "simulate_uniform_collection",
    "CentralStore",
    "FleetState",
    "LocalNode",
    "MonitoringSystem",
    "Channel",
    "PerNodeMessages",
    "TransportStats",
    "merge_collection_shards",
    "shard_slices",
]
