"""Deprecated streaming facade: a thin shim over :class:`repro.api.Engine`.

:class:`MonitoringSystem` predates the unified engine.  It is kept as a
compatibility wrapper — construction, :meth:`~MonitoringSystem.tick`
semantics and every exposed attribute delegate to an
:class:`~repro.api.Engine` in streaming mode, and equivalence tests pin
``tick`` bit-identical to :meth:`Engine.step <repro.api.Engine.step>`.
New code should build the engine directly::

    from repro.api import Engine

    engine = Engine(config, num_nodes=50, num_resources=1)
    output = engine.step(x_t)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._compat import warn_once
from repro.api import Engine, PolicyFactory
from repro.core.config import PipelineConfig
from repro.core.pipeline import ForecasterFactory, OnlinePipeline, StepOutput
from repro.simulation.controller import CentralStore
from repro.simulation.transport import Channel, TransportStats


class MonitoringSystem:
    """A complete online monitoring-and-forecasting deployment.

    .. deprecated::
        Use :class:`repro.api.Engine` in streaming mode; this class is a
        compatibility shim over it.

    Args:
        num_nodes: Number of machines.
        num_resources: Resource types per measurement (d).
        config: Pipeline configuration (transmission budget, clustering,
            forecasting).
        policy_factory: Optional per-node transmission-policy factory;
            defaults to the paper's adaptive policy with
            ``config.transmission``.
        forecaster_factory: Optional forecasting-model override.
    """

    def __init__(
        self,
        num_nodes: int,
        num_resources: int,
        config: PipelineConfig = PipelineConfig(),
        *,
        policy_factory: Optional[PolicyFactory] = None,
        forecaster_factory: Optional[ForecasterFactory] = None,
    ) -> None:
        warn_once(
            "MonitoringSystem",
            "MonitoringSystem is deprecated; use repro.api.Engine("
            "config, num_nodes=..., num_resources=...) and engine.step",
        )
        self.config = config
        self.engine = Engine(
            config,
            num_nodes=num_nodes,
            num_resources=num_resources,
            policy_factory=policy_factory,
            forecaster_factory=forecaster_factory,
        )

    @property
    def nodes(self) -> list:
        """The engine's per-node :class:`LocalNode` objects."""
        return self.engine.nodes

    @property
    def channel(self) -> Channel:
        return self.engine.channel

    @property
    def store(self) -> CentralStore:
        return self.engine.store

    @property
    def pipeline(self) -> OnlinePipeline:
        return self.engine.pipeline

    @property
    def time(self) -> int:
        """Number of slots processed."""
        return self.engine.time

    @property
    def transport_stats(self) -> TransportStats:
        """Cumulative message/byte counters."""
        return self.engine.transport_stats

    @property
    def empirical_frequency(self) -> float:
        """Fleet-average transmission frequency so far."""
        return self.engine.empirical_frequency

    def tick(self, measurements: np.ndarray) -> StepOutput:
        """Advance the whole system by one time slot.

        Delegates to :meth:`repro.api.Engine.step`.

        Args:
            measurements: Fresh true measurements ``x_t``, shape
                ``(N, d)`` (or ``(N,)`` when d = 1).

        Returns:
            The pipeline's :class:`StepOutput` for this slot (cluster
            assignments; forecasts once the initial collection phase has
            passed).
        """
        return self.engine.step(measurements)

    def forecast_report(self, output: StepOutput, horizon: int) -> str:
        """Human-readable summary of one slot's forecast.

        Args:
            output: A :class:`StepOutput` from :meth:`tick`.
            horizon: Which horizon to summarize.
        """
        if output.node_forecasts is None:
            return (
                f"t={output.time}: collecting "
                f"(forecasting starts after "
                f"{self.config.forecasting.initial_collection} slots)"
            )
        forecast = output.node_forecasts[horizon]
        lines = [
            f"t={output.time}: forecast for t+{horizon} "
            f"(fleet mean {forecast.mean():.3f})"
        ]
        hottest = np.argsort(-forecast[:, 0])[:3]
        for node in hottest:
            lines.append(
                f"  node {int(node)}: predicted {forecast[node, 0]:.3f}"
            )
        return "\n".join(lines)
