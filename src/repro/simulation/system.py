"""Deployable monitoring system: nodes + transport + controller + pipeline.

:class:`MonitoringSystem` is the facade a downstream user would actually
run: it owns one :class:`~repro.simulation.node.LocalNode` per machine
(each with its own adaptive transmission policy), the transport channel
with message accounting, the central store applying the staleness rule,
and the :class:`~repro.core.pipeline.OnlinePipeline` doing clustering
and forecasting — all advanced together by one :meth:`tick` per time
slot.  Unlike :func:`~repro.core.pipeline.run_pipeline` (which is
optimized for batch experiments over recorded traces), this class is
strictly incremental and suitable for wiring to a live metric feed.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.pipeline import ForecasterFactory, OnlinePipeline, StepOutput
from repro.exceptions import ConfigurationError, DataError
from repro.simulation.controller import CentralStore
from repro.simulation.node import LocalNode
from repro.simulation.transport import Channel, TransportStats
from repro.transmission.adaptive import AdaptiveTransmissionPolicy
from repro.transmission.base import TransmissionPolicy


class MonitoringSystem:
    """A complete online monitoring-and-forecasting deployment.

    Args:
        num_nodes: Number of machines.
        num_resources: Resource types per measurement (d).
        config: Pipeline configuration (transmission budget, clustering,
            forecasting).
        policy_factory: Optional per-node transmission-policy factory;
            defaults to the paper's adaptive policy with
            ``config.transmission``.
        forecaster_factory: Optional forecasting-model override.
    """

    def __init__(
        self,
        num_nodes: int,
        num_resources: int,
        config: PipelineConfig = PipelineConfig(),
        *,
        policy_factory: Optional[Callable[[int], TransmissionPolicy]] = None,
        forecaster_factory: Optional[ForecasterFactory] = None,
    ) -> None:
        if num_nodes < 1 or num_resources < 1:
            raise ConfigurationError(
                "num_nodes and num_resources must be >= 1"
            )
        self.config = config
        if policy_factory is None:
            def policy_factory(_node_id: int) -> TransmissionPolicy:
                return AdaptiveTransmissionPolicy(config.transmission)
        self.nodes = [
            LocalNode(i, policy_factory(i)) for i in range(num_nodes)
        ]
        self.channel = Channel()
        self.store = CentralStore(num_nodes, num_resources)
        self.pipeline = OnlinePipeline(
            num_nodes,
            num_resources,
            config,
            forecaster_factory=forecaster_factory,
        )
        self._time = 0

    @property
    def time(self) -> int:
        """Number of slots processed."""
        return self._time

    @property
    def transport_stats(self) -> TransportStats:
        """Cumulative message/byte counters."""
        return self.channel.stats

    @property
    def empirical_frequency(self) -> float:
        """Fleet-average transmission frequency so far."""
        if self._time == 0:
            return 0.0
        return self.channel.stats.messages / (self._time * len(self.nodes))

    def tick(self, measurements: np.ndarray) -> StepOutput:
        """Advance the whole system by one time slot.

        Args:
            measurements: Fresh true measurements ``x_t``, shape
                ``(N, d)`` (or ``(N,)`` when d = 1).

        Returns:
            The pipeline's :class:`StepOutput` for this slot (cluster
            assignments; forecasts once the initial collection phase has
            passed).
        """
        x = np.asarray(measurements, dtype=float)
        if x.ndim == 1:
            x = x[:, np.newaxis]
        if x.shape != (len(self.nodes), self.store.dimension):
            raise DataError(
                f"measurements must be ({len(self.nodes)}, "
                f"{self.store.dimension}), got {x.shape}"
            )
        for node in self.nodes:
            message = node.observe(x[node.node_id])
            if message is not None:
                self.channel.send(message)
        self.store.apply(self.channel.drain(), now=self._time)
        output = self.pipeline.step(self.store.values)
        self._time += 1
        return output

    def forecast_report(self, output: StepOutput, horizon: int) -> str:
        """Human-readable summary of one slot's forecast.

        Args:
            output: A :class:`StepOutput` from :meth:`tick`.
            horizon: Which horizon to summarize.
        """
        if output.node_forecasts is None:
            return (
                f"t={output.time}: collecting "
                f"(forecasting starts after "
                f"{self.config.forecasting.initial_collection} slots)"
            )
        forecast = output.node_forecasts[horizon]
        lines = [
            f"t={output.time}: forecast for t+{horizon} "
            f"(fleet mean {forecast.mean():.3f})"
        ]
        hottest = np.argsort(-forecast[:, 0])[:3]
        for node in hottest:
            lines.append(
                f"  node {int(node)}: predicted {forecast[node, 0]:.3f}"
            )
        return "\n".join(lines)
