"""Local node model (Sec. IV).

A :class:`LocalNode` owns a transmission policy and mirrors the value the
central node currently stores for it (``z_{i,t}``) — it can do so without
feedback because it knows exactly what it last transmitted.  Each slot it
observes a fresh measurement and either emits it or stays silent.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.types import Measurement, NodeId
from repro.exceptions import DataError, SimulationError
from repro.transmission.base import TransmissionPolicy


class LocalNode:
    """One machine producing measurements and deciding transmissions.

    Args:
        node_id: The node's index ``i``.
        policy: Its transmission policy (adaptive or uniform).
    """

    def __init__(self, node_id: NodeId, policy: TransmissionPolicy) -> None:
        self.node_id = node_id
        self.policy = policy
        self._stored: Optional[np.ndarray] = None
        self._time = 0

    @property
    def stored_value(self) -> np.ndarray:
        """The node's copy of what the central node currently stores."""
        if self._stored is None:
            raise SimulationError(
                f"node {self.node_id} has not observed any measurement yet"
            )
        return self._stored

    @property
    def time(self) -> int:
        return self._time

    def observe(self, value: np.ndarray) -> Optional[Measurement]:
        """Process one slot's fresh measurement.

        The very first measurement is always transmitted (the central node
        has nothing stored yet, so ``z`` would be undefined otherwise) and
        is charged against the policy's budget like any other decision.

        Args:
            value: The measurement ``x_{i,t}`` (d-vector).

        Returns:
            The transmitted :class:`Measurement`, or None if the node
            stayed silent this slot.
        """
        x = np.atleast_1d(np.asarray(value, dtype=float))
        if not np.isfinite(x).all():
            raise DataError(f"node {self.node_id}: non-finite measurement")
        if self._stored is None:
            # Forced initial transmission; charged to the policy's budget
            # state so frequency accounting includes it.
            self.policy.first_transmission()
            transmit = True
        else:
            transmit = self.policy.decide(x, self._stored)
        time = self._time
        self._time += 1
        if transmit:
            self._stored = x.copy()
            return Measurement(node=self.node_id, time=time, value=x.copy())
        return None

    def sync_batch(self, num_steps: int, stored_value: np.ndarray) -> None:
        """Fast-forward the node past a vectorized batch run.

        The caller is responsible for syncing the policy separately (see
        the policies' ``sync_batch``); this advances the node's clock and
        its mirror of the centrally stored value.

        Args:
            num_steps: How many slots the batch run covered.
            stored_value: The node's last transmitted value (which equals
                the central store's final ``z_i``).
        """
        self._time += int(num_steps)
        # Copy, matching observe(): the mirror must not alias the
        # caller's result arrays.
        self._stored = np.atleast_1d(np.array(stored_value, dtype=float))

    def reset(self) -> None:
        """Clear state (also resets the policy's history)."""
        self._stored = None
        self._time = 0
        self.policy.reset()
