"""Local node model (Sec. IV) as a view over the columnar fleet state.

A :class:`LocalNode` owns a transmission policy and mirrors the value the
central node currently stores for it (``z_{i,t}``) — it can do so without
feedback because it knows exactly what it last transmitted.  Each slot it
observes a fresh measurement and either emits it or stays silent.

Since the columnar refactor the node holds no arrays of its own: it is a
``(fleet, index)`` view whose reads and writes go straight to the
:class:`~repro.simulation.fleet.FleetState` columns (``stored``,
``times``, ``observed``, ``last_update``, ``policy_state``).  A node
constructed standalone — ``LocalNode(i, policy)`` — owns a private
single-node fleet, so the historical API is unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.types import Measurement, NodeId
from repro.exceptions import DataError, SimulationError
from repro.simulation.fleet import FleetState
from repro.transmission.base import TransmissionPolicy


class LocalNode:
    """One machine producing measurements and deciding transmissions.

    Args:
        node_id: The node's index ``i``.
        policy: Its transmission policy (adaptive or uniform).
        fleet: The columnar fleet this node is a view of.  When omitted
            the node owns a private single-node
            :class:`~repro.simulation.fleet.FleetState`; when given,
            ``node_id`` must index one of its columns.
    """

    def __init__(
        self,
        node_id: NodeId,
        policy: TransmissionPolicy,
        *,
        fleet: Optional[FleetState] = None,
    ) -> None:
        self.node_id = node_id
        self.policy = policy
        if fleet is None:
            self.fleet = FleetState(1)
            self._index = 0
        else:
            if not 0 <= node_id < fleet.num_nodes:
                raise SimulationError(
                    f"node id {node_id} outside fleet of {fleet.num_nodes}"
                )
            self.fleet = fleet
            self._index = int(node_id)

    @property
    def stored_value(self) -> np.ndarray:
        """The node's copy of what the central node currently stores.

        A zero-copy *read-only* view into the fleet's ``stored`` column
        — writes go through :meth:`observe`, never through the mirror
        (mutating the returned array would silently corrupt the shared
        ``z_t``).
        """
        if not self.fleet.observed[self._index]:
            raise SimulationError(
                f"node {self.node_id} has not observed any measurement yet"
            )
        view = self.fleet.stored[self._index].view()
        view.flags.writeable = False
        return view

    @property
    def time(self) -> int:
        return int(self.fleet.times[self._index])

    def observe(self, value: np.ndarray) -> Optional[Measurement]:
        """Process one slot's fresh measurement.

        The very first measurement is always transmitted (the central node
        has nothing stored yet, so ``z`` would be undefined otherwise) and
        is charged against the policy's budget like any other decision.

        Args:
            value: The measurement ``x_{i,t}`` (d-vector).

        Returns:
            The transmitted :class:`Measurement`, or None if the node
            stayed silent this slot.
        """
        x = np.atleast_1d(np.asarray(value, dtype=float))
        if not np.isfinite(x).all():
            raise DataError(f"node {self.node_id}: non-finite measurement")
        fleet, i = self.fleet, self._index
        if not fleet.observed[i]:
            # Forced initial transmission; charged to the policy's budget
            # state so frequency accounting includes it.
            self.policy.first_transmission()
            transmit = True
        else:
            transmit = self.policy.decide(x, fleet.stored[i])
        time = int(fleet.times[i])
        fleet.times[i] += 1
        fleet.policy_state[i] = self.policy.fleet_scalar_state
        if transmit:
            fleet.ensure_dim(x.shape[0])
            fleet.stored[i] = x
            fleet.observed[i] = True
            fleet.last_update[i] = time
            return Measurement(node=self.node_id, time=time, value=x.copy())
        return None

    def sync_batch(self, num_steps: int, stored_value: np.ndarray) -> None:
        """Fast-forward the node past a vectorized batch run.

        The caller is responsible for syncing the policy separately (see
        the policies' ``sync_batch``); this advances the node's clock and
        its mirror of the centrally stored value.  Whole-fleet callers
        should prefer the columnar
        :meth:`FleetState.advance_batch
        <repro.simulation.fleet.FleetState.advance_batch>`, which also
        recovers the exact last-transmit slots.

        Args:
            num_steps: How many slots the batch run covered.
            stored_value: The node's last transmitted value (which equals
                the central store's final ``z_i``).
        """
        fleet, i = self.fleet, self._index
        fleet.times[i] += int(num_steps)
        value = np.atleast_1d(np.asarray(stored_value, dtype=float))
        fleet.ensure_dim(value.shape[0])
        fleet.stored[i] = value
        fleet.observed[i] = True
        fleet.policy_state[i] = self.policy.fleet_scalar_state

    def rebind(self, node_id: NodeId) -> None:
        """Point this view at a different fleet column (fleet churn).

        :meth:`FleetState.compact
        <repro.simulation.fleet.FleetState.compact>` renumbers the
        surviving nodes; the session rebinds each surviving node object
        to its new index so its policy state (the authoritative state in
        object-loop sessions) rides along untouched.
        """
        if not 0 <= node_id < self.fleet.num_nodes:
            raise SimulationError(
                f"node id {node_id} outside fleet of {self.fleet.num_nodes}"
            )
        self.node_id = node_id
        self._index = int(node_id)

    def reset(self) -> None:
        """Clear state (also resets the policy's history)."""
        self.fleet.reset_nodes(self._index)
        self.policy.reset()
